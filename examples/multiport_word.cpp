// Word-oriented, multiport memories: the Table 2 scenario.
//
//   $ ./multiport_word
//
// The microcode program's last two instructions (LoopData / LoopPort)
// repeat the whole algorithm for every data background and for every
// port — the paper's mechanism for supporting word-oriented and multiport
// arrays with the same controller.  This example shows the background
// sweep, an intra-word coupling defect that only a non-trivial background
// exposes, and per-port testing of a dual-port array.

#include <cstdio>

#include "bist/session.h"
#include "march/expand.h"
#include "march/library.h"
#include "mbist_ucode/controller.h"

int main() {
  using namespace pmbist;

  const memsim::MemoryGeometry geometry{
      .address_bits = 8, .word_bits = 8, .num_ports = 2};

  // The standard backgrounds the data generator walks for 8-bit words.
  std::printf("data backgrounds for %d-bit words:", geometry.word_bits);
  for (auto bg : march::standard_backgrounds(geometry.word_bits))
    std::printf(" 0x%02llX", static_cast<unsigned long long>(bg));
  std::printf("\n\n");

  mbist_ucode::MicrocodeController bist{{.geometry = geometry}};
  bist.load_algorithm(march::march_c());

  // Healthy dual-port memory: the whole test repeats per background and
  // per port.
  {
    memsim::SramModel memory{geometry, 5};
    const auto r = bist::run_session(bist, memory);
    const auto per_pass =
        march::expanded_op_count(march::march_c(), geometry) /
        (march::standard_backgrounds(geometry.word_bits).size() *
         static_cast<std::size_t>(geometry.num_ports));
    std::printf("healthy dual-port 256x8: %s — %llu ops total (%llu per "
                "background-pass, 4 backgrounds x 2 ports)\n",
                r.passed() ? "PASS" : "FAIL",
                static_cast<unsigned long long>(r.reads + r.writes),
                static_cast<unsigned long long>(per_pass));
  }

  // An intra-word state-coupling defect: while bit 1 of word 0x42 holds 1,
  // bit 2 of the same word is forced to 1.  With the all-zeros background
  // both bits always carry the same value, so the forcing never disagrees
  // with the expected data; the 0xCC background (bit1=0, bit2=1) separates
  // them and exposes the defect.
  {
    memsim::FaultyMemory memory{geometry, 5};
    memory.add_fault(memsim::StateCouplingFault{
        {0x42, 1}, {0x42, 2}, /*aggressor_state=*/true,
        /*forced_value=*/true});
    const auto r = bist::run_session(bist, memory);
    std::printf("intra-word coupling    : %s",
                r.passed() ? "PASS (MISSED!)" : "FAIL (caught)");
    if (!r.failures.empty()) {
      std::printf(" — first failing read at addr 0x%X, expected 0x%02llX, "
                  "got 0x%02llX",
                  r.failures.front().op.addr,
                  static_cast<unsigned long long>(r.failures.front().op.data),
                  static_cast<unsigned long long>(r.failures.front().actual));
    }
    std::printf("\n");
  }

  // Would a bit-oriented-style single background have caught it?  Run just
  // the background-0 pass.
  {
    memsim::FaultyMemory memory{geometry, 5};
    memory.add_fault(memsim::StateCouplingFault{
        {0x42, 1}, {0x42, 2}, /*aggressor_state=*/true,
        /*forced_value=*/true});
    const auto single =
        march::expand_single_pass(march::march_c(), geometry, 0, 0);
    const auto r = march::run_stream(single, memory);
    std::printf("background 0x00 alone  : %s — %s\n",
                r.passed() ? "PASS" : "FAIL",
                r.passed() ? "the defect escapes without the background sweep"
                           : "unexpectedly caught");
  }
  return 0;
}
