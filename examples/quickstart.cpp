// Quickstart: program the microcode-based BIST controller with March C and
// test an embedded SRAM — first fault-free, then with an injected defect.
//
//   $ ./quickstart
//
// Walks through the complete flow: pick a memory geometry, assemble a
// march algorithm into microcode, run the BIST session, read the verdict.

#include <cstdio>

#include "bist/session.h"
#include "march/library.h"
#include "mbist_ucode/area.h"
#include "mbist_ucode/controller.h"

int main() {
  using namespace pmbist;

  // 1. The memory under test: 1K x 8 embedded SRAM, one port.
  const memsim::MemoryGeometry geometry{
      .address_bits = 10, .word_bits = 8, .num_ports = 1};

  // 2. A microcode-based BIST controller sized for the full algorithm
  //    library (Z = 32 instructions of 10 bits).
  mbist_ucode::MicrocodeController bist{{.geometry = geometry}};

  // 3. Assemble March C into the storage unit.  The assembler folds the
  //    symmetric halves through the Repeat instruction: 9 instructions.
  bist.load_algorithm(march::march_c());
  std::printf("%s\n", bist.program().listing().c_str());

  // 4. Run against a healthy memory.
  {
    memsim::SramModel memory{geometry, /*powerup_seed=*/2026};
    const auto result = bist::run_session(bist, memory);
    std::printf("healthy memory : %s  (%llu cycles, %llu reads, %llu "
                "writes)\n",
                result.passed() ? "PASS" : "FAIL",
                static_cast<unsigned long long>(result.cycles),
                static_cast<unsigned long long>(result.reads),
                static_cast<unsigned long long>(result.writes));
  }

  // 5. Run against a memory with a stuck-at-0 bit at word 0x155, bit 3.
  {
    memsim::FaultyMemory memory{geometry, /*powerup_seed=*/2026};
    memory.add_fault(memsim::StuckAtFault{{0x155, 3}, false});
    const auto result = bist::run_session(bist, memory);
    std::printf("faulty memory  : %s", result.passed() ? "PASS" : "FAIL");
    if (!result.failures.empty()) {
      const auto& f = result.failures.front();
      std::printf("  first failure at addr 0x%X (expected 0x%02llX, read "
                  "0x%02llX)",
                  f.op.addr, static_cast<unsigned long long>(f.op.data),
                  static_cast<unsigned long long>(f.actual));
    }
    std::printf("\n");
  }

  // 6. What does this BIST unit cost in silicon?
  const auto lib = netlist::TechLibrary::cmos5s();
  const auto area = mbist_ucode::microcode_area(
      {.geometry = geometry,
       .storage_cell = netlist::StorageCellClass::ScanOnly});
  std::printf("\n%s", area.to_string(lib).c_str());
  return 0;
}
