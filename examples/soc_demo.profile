# Example mission profile for `pmbist field` (format: docs/FIELD.md),
# paired with examples/soc_demo.chip.
#
# Each window is a span of cycles in which the named memory is idle and
# may be tested transparently.  The power-on sessions of this chip cost
# between ~200 cycles (trim_ram) and ~20k cycles (dcache), so the small
# arrays finish several passes per window while the caches must
# checkpoint at an element boundary and resume in a later window.  The
# two-lane test bus forces contention stalls whenever three memories are
# idle at once.

profile soc_demo_mission
horizon 200000
bus_budget 2

window icache start=0      end=6000
window icache start=40000  end=46000
window icache start=80000  end=86000
window icache start=120000 end=126000
window icache start=160000 end=166000

window dcache start=10000  end=18000
window dcache start=50000  end=58000
window dcache start=90000  end=98000
window dcache start=130000 end=138000
window dcache start=170000 end=178000

window dsp_a start=5000   end=9000
window dsp_a start=35000  end=39000
window dsp_a start=65000  end=69000
window dsp_a start=95000  end=99000
window dsp_a start=125000 end=129000
window dsp_a start=155000 end=159000
window dsp_a start=185000 end=189000

window dsp_b start=20000  end=24000
window dsp_b start=50000  end=54000
window dsp_b start=80000  end=84000
window dsp_b start=110000 end=114000
window dsp_b start=140000 end=144000
window dsp_b start=170000 end=174000

window gpu_tile start=0      end=10000
window gpu_tile start=50000  end=60000
window gpu_tile start=100000 end=110000
window gpu_tile start=150000 end=160000

window nic_fifo start=2000   end=8000
window nic_fifo start=27000  end=33000
window nic_fifo start=52000  end=58000
window nic_fifo start=77000  end=83000
window nic_fifo start=102000 end=108000
window nic_fifo start=127000 end=133000
window nic_fifo start=152000 end=158000
window nic_fifo start=177000 end=183000

window fuse_box start=0      end=1500
window fuse_box start=20000  end=21500
window fuse_box start=40000  end=41500
window fuse_box start=60000  end=61500
window fuse_box start=80000  end=81500
window fuse_box start=100000 end=101500
window fuse_box start=120000 end=121500
window fuse_box start=140000 end=141500
window fuse_box start=160000 end=161500
window fuse_box start=180000 end=181500

window trim_ram start=1000   end=1600
window trim_ram start=16000  end=16600
window trim_ram start=31000  end=31600
window trim_ram start=46000  end=46600
window trim_ram start=61000  end=61600
window trim_ram start=76000  end=76600
window trim_ram start=91000  end=91600
window trim_ram start=106000 end=106600
window trim_ram start=121000 end=121600
window trim_ram start=136000 end=136600
window trim_ram start=151000 end=151600
window trim_ram start=166000 end=166600
window trim_ram start=181000 end=181600
window trim_ram start=196000 end=196600
