// Custom algorithm: the flexibility argument of the paper, live.
//
//   $ ./custom_algorithm
//
// A test engineer writes a new march algorithm in the text DSL.  The
// microcode-based controller accepts it with *no hardware change* — just a
// new storage-unit image.  The programmable FSM-based controller accepts
// it only if every element maps onto the canned SM0..SM7 components; a
// hardwired controller would need a redesign (here: a freshly generated
// and re-synthesized FSM, with its area bill).

#include <cstdio>

#include "bist/session.h"
#include "march/parser.h"
#include "mbist_hardwired/area.h"
#include "mbist_hardwired/controller.h"
#include "mbist_pfsm/controller.h"
#include "mbist_ucode/controller.h"

namespace {

using namespace pmbist;

const memsim::MemoryGeometry kGeometry{
    .address_bits = 8, .word_bits = 1, .num_ports = 1};

void try_everywhere(const char* name, const char* dsl) {
  const auto alg = march::parse(dsl, name);
  std::printf("--- %s = %s\n", name, alg.to_string().c_str());

  // Microcode-based: assemble and run.
  mbist_ucode::MicrocodeController ucode{{.geometry = kGeometry}};
  try {
    ucode.load_algorithm(alg);
    memsim::SramModel mem{kGeometry, 3};
    const auto r = bist::run_session(ucode, mem);
    std::printf("    microcode : %d instructions, %s in %llu cycles\n",
                ucode.program().size(), r.passed() ? "PASS" : "FAIL",
                static_cast<unsigned long long>(r.cycles));
  } catch (const std::exception& e) {
    std::printf("    microcode : rejected (%s)\n", e.what());
  }

  // Programmable FSM-based: only if the SM set covers it.
  std::string why;
  if (mbist_pfsm::is_mappable(alg, &why)) {
    mbist_pfsm::PfsmController pfsm{{.geometry = kGeometry}};
    pfsm.load_algorithm(alg);
    memsim::SramModel mem{kGeometry, 3};
    const auto r = bist::run_session(pfsm, mem);
    std::printf("    prog. FSM : %d instructions, %s in %llu cycles\n",
                pfsm.program().size(), r.passed() ? "PASS" : "FAIL",
                static_cast<unsigned long long>(r.cycles));
  } else {
    std::printf("    prog. FSM : NOT REALIZABLE — %s\n", why.c_str());
  }

  // Hardwired: always possible, but it is a new controller.
  const auto lib = netlist::TechLibrary::cmos5s();
  mbist_hardwired::HardwiredController hw{alg, {.geometry = kGeometry}};
  memsim::SramModel mem{kGeometry, 3};
  const auto r = bist::run_session(hw, mem);
  const auto area = mbist_hardwired::hardwired_area(alg, {.geometry = kGeometry});
  std::printf("    hardwired : redesign! new FSM, %.0f GE, %s\n\n",
              area.total_ge(lib), r.passed() ? "PASS" : "FAIL");
}

}  // namespace

int main() {
  // A classic the SM set covers.
  try_everywhere("March C-", "any(w0); up(r0,w1); up(r1,w0); down(r0,w1); "
                             "down(r1,w0); any(r0)");
  // March LR (van de Goor & Al-Ars family): 6-op element — beyond SM0..7.
  try_everywhere("March LR",
                 "any(w0); down(r0,w1); up(r1,w0,r0,w1); up(r1,w0); "
                 "up(r0,w1,r1,w0); up(r0)");
  // A double-read screen for marginal cells: SM4 handles (r,r,r) but not
  // the mixed element.
  try_everywhere("RR screen",
                 "any(w1); up(r1,r1,w0); down(r0,r0,w1); any(r1)");
  return 0;
}
