// Built-in self-repair flow: the production payoff of BIST diagnostics.
//
//   $ ./repair_flow
//
// A die comes out of fabrication with several defects.  The programmable
// BIST runs March C and captures the failures; the fail bitmap feeds the
// redundancy analyzer (must-repair + exhaustive final analysis); spare
// rows/columns are switched in; the same BIST program verifies the
// repaired die.

#include <cstdio>

#include "bist/session.h"
#include "march/library.h"
#include "mbist_ucode/controller.h"
#include "repair/repaired_memory.h"

int main() {
  using namespace pmbist;

  const memsim::MemoryGeometry geometry{.address_bits = 6, .word_bits = 1,
                                        .num_ports = 1};
  const memsim::ArrayTopology topology{
      6, 3, memsim::AddressScrambler::scrambled(6, 7)};  // 8x8 grid

  // The defective die: a clustered row defect plus two isolated cells.
  memsim::FaultyMemory die{geometry, 42};
  for (std::uint32_t col : {1u, 3u, 4u, 6u})
    die.add_fault(memsim::StuckAtFault{{topology.at({2, col}), 0}, true});
  die.add_fault(memsim::TransitionFault{{topology.at({5, 5}), 0}, true});
  die.add_fault(memsim::StuckAtFault{{topology.at({7, 0}), 0}, false});

  mbist_ucode::MicrocodeController bist{{.geometry = geometry}};
  bist.load_algorithm(march::march_c());

  // 1. Production test: capture all failures.
  const auto before = bist::run_session(bist, die, {.max_failures = 1024});
  std::printf("initial test : %s (%zu failing reads)\n",
              before.passed() ? "PASS" : "FAIL", before.failures.size());

  // 2. Diagnostics: build the fail bitmap.
  diag::FailBitmap bitmap{geometry};
  bitmap.accumulate(before.failures);
  std::printf("%s\n", bitmap.render().c_str());

  // 3. Redundancy analysis: 1 spare row + 2 spare columns available.
  const repair::RedundancyConfig budget{.spare_rows = 1, .spare_cols = 2};
  const auto solution = repair::allocate_redundancy(bitmap, topology, budget);
  if (!solution.repairable) {
    std::printf("redundancy analysis: UNREPAIRABLE with %d+%d spares\n",
                budget.spare_rows, budget.spare_cols);
    return 1;
  }
  std::printf("redundancy analysis: repairable — replacing");
  for (auto r : solution.rows_replaced) std::printf(" row %u", r);
  for (auto c : solution.cols_replaced) std::printf(" col %u", c);
  std::printf(" (%d spares of %d used)\n", solution.spares_used(),
              budget.spare_rows + budget.spare_cols);

  // 4. Switch in the spares and retest with the same program.
  repair::RepairedMemory repaired{die, topology, solution};
  const auto after = bist::run_session(bist, repaired);
  std::printf("post-repair  : %s (%llu operations re-run)\n",
              after.passed() ? "PASS — die recovered" : "FAIL",
              static_cast<unsigned long long>(after.reads + after.writes));
  return after.passed() ? 0 : 1;
}
