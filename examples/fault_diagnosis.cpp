// Fault diagnosis: the use case the paper cites to justify programmable
// BIST — the same controller hardware runs a *suite* of algorithms, and
// the combined failure signatures localize and classify the defect.
//
//   $ ./fault_diagnosis
//
// Injects a zoo of defects one at a time, runs the diagnostic suite
// (March C, C+, C++), prints the fail bitmap and the classifier verdict.

#include <cstdio>

#include "diag/bitmap.h"
#include "diag/classify.h"
#include "march/library.h"

namespace {

using namespace pmbist;

void investigate(const char* label, const memsim::Fault& fault) {
  const memsim::MemoryGeometry geometry{
      .address_bits = 6, .word_bits = 8, .num_ports = 1};
  memsim::FaultyMemory memory{geometry, /*powerup_seed=*/7};
  memory.add_fault(fault);

  std::printf("--- defect: %s ---\n", label);
  std::printf("    injected: %s\n", memsim::describe(fault).c_str());

  // Run the diagnostic suite and build the bitmap from a fresh March C++
  // run (the most sensitive algorithm in the suite).
  const auto diagnosis = diag::diagnose(memory);

  memsim::FaultyMemory fresh{geometry, /*powerup_seed=*/7};
  fresh.add_fault(fault);
  const auto stream = march::expand(march::march_c_plus_plus(), geometry);
  const auto run = march::run_stream(stream, fresh, /*max_failures=*/256);
  diag::FailBitmap bitmap{geometry};
  bitmap.accumulate(run.failures);
  std::printf("    %s", bitmap.render().c_str());

  if (!diagnosis.any_failure) {
    std::printf("    verdict : no failure observed by the suite\n\n");
    return;
  }
  std::printf("    verdict : candidate classes {");
  bool first = true;
  for (const auto cls : diagnosis.candidates) {
    std::printf("%s%s", first ? "" : ", ",
                std::string(memsim::fault_class_name(cls)).c_str());
    first = false;
  }
  std::printf("}, %zu suspect cell(s)\n\n", diagnosis.suspect_cells.size());
}

}  // namespace

int main() {
  using namespace pmbist::memsim;
  investigate("stuck-at-0 cell", StuckAtFault{{17, 2}, false});
  investigate("stuck-at-1 cell", StuckAtFault{{40, 6}, true});
  investigate("rising transition fault", TransitionFault{{9, 0}, true});
  investigate("inversion coupling",
              InversionCouplingFault{{5, 1}, {33, 1}, true});
  investigate("address decoder maps 12 onto 13", AddressDecoderFault{12, {13}});
  investigate("data retention leak",
              DataRetentionFault{{50, 4}, false,
                                 pmbist::march::kDefaultPauseNs / 2});
  investigate("weak cell (disconnected pull-up)",
              ReadDestructiveFault{{28, 7}, /*deceptive=*/true});
  return 0;
}
