// SoC scheduling: test a whole chip of heterogeneous memories in one call
// — shared programmable controllers, a chip-level power budget, and
// built-in self repair for the arrays that need it.
//
//   $ ./soc_schedule
//
// Builds the 9-memory demo chip, schedules it under its power budget, runs
// every session in parallel, and prints the schedule and verdicts.
// docs/SOC.md documents the chip-file format and the scheduling contract.

#include <cstdio>

#include "soc/chip.h"
#include "soc/scheduler.h"

int main() {
  using namespace pmbist;

  // 1. The chip: caches, DSP scratchpads, a GPU tile buffer, a NIC FIFO,
  //    and two small repairable arrays shipped with manufacturing defects.
  const auto chip = soc::demo_soc();

  // 2. The plan: the CPU caches share one microcode controller, the DSP
  //    scratchpads share one pFSM controller, the rest run dedicated
  //    engines — all under a chip-level toggle-weight budget.
  const auto plan = soc::demo_plan();

  // 3. Schedule and execute.  Results are bit-identical for any jobs
  //    value; 0 uses every core.
  const auto result = soc::run_soc(chip, plan, {.jobs = 0});

  std::printf("%-12s %-10s %10s %10s  %s\n", "memory", "algorithm", "start",
              "end", "group");
  for (const auto& s : result.schedule)
    std::printf("%-12s %-10s %10llu %10llu  %s\n", s.memory.c_str(),
                s.algorithm.c_str(),
                static_cast<unsigned long long>(s.start_cycle),
                static_cast<unsigned long long>(s.end_cycle()),
                s.share_group.c_str());
  std::printf("\nmakespan %llu cycles, peak power %g (budget %g)\n\n",
              static_cast<unsigned long long>(result.makespan_cycles),
              result.peak_power, plan.power().budget);

  for (const auto& r : result.instances) {
    std::printf("%-12s %s", r.memory.c_str(),
                r.healthy() ? "healthy" : "FAULTY");
    if (r.repair && r.repair->retest_passed)
      std::printf("  (repaired with %d spare rows / %d cols, retested "
                  "clean)",
                  r.repair->spare_rows_used, r.repair->spare_cols_used);
    std::printf("\n");
  }

  // 4. The same chip round-trips through the text format (docs/SOC.md).
  std::printf("\nchip file:\n%s", soc::to_chip_text(chip, plan).c_str());
  return result.all_healthy() ? 0 : 1;
}
