// On-line (transparent) testing: the application the paper's conclusion
// says the microcode architecture extends to (Nicolaidis' transparent
// BIST, the paper's ref [7]).
//
//   $ ./online_test
//
// A memory holds live application data.  The transparent transform of a
// march algorithm XORs every test value with the resident contents, so the
// test (a) still detects defects and (b) leaves the memory exactly as it
// found it — no backup, no downtime beyond the test itself.

#include <cstdio>
#include <cstring>

#include "diag/transparent.h"
#include "march/library.h"

int main() {
  using namespace pmbist;

  const memsim::MemoryGeometry geometry{
      .address_bits = 6, .word_bits = 8, .num_ports = 1};

  // "Application data": a message resident in the array.
  const char message[] = "programmable MBIST, DATE 1999 -- transparent!";
  memsim::SramModel memory{geometry, 0};
  for (memsim::Address a = 0; a < geometry.num_words(); ++a)
    memory.write(0, a,
                 a < sizeof(message) ? static_cast<memsim::Word>(
                                           static_cast<unsigned char>(
                                               message[a]))
                                     : 0x5A);

  auto read_back = [&](memsim::Memory& mem) {
    std::string s;
    for (memsim::Address a = 0; a < sizeof(message) - 1; ++a)
      s += static_cast<char>(mem.read(0, a));
    return s;
  };

  std::printf("resident data before test: \"%s\"\n", read_back(memory).c_str());

  // Periodic in-field test with transparent March C.
  const auto result = diag::run_transparent(march::march_c(), memory);
  std::printf("transparent March C      : %s, contents %s\n",
              result.passed ? "PASS" : "FAIL",
              result.contents_preserved ? "preserved" : "CLOBBERED");
  std::printf("resident data after test : \"%s\"\n\n",
              read_back(memory).c_str());

  // The same transform still catches defects.
  memsim::FaultyMemory broken{geometry, 0};
  for (memsim::Address a = 0; a < geometry.num_words(); ++a)
    broken.write(0, a, 0xA5);
  broken.add_fault(memsim::TransitionFault{{0x21, 5}, /*rising=*/true});
  const auto caught = diag::run_transparent(march::march_c(), broken);
  std::printf("with a transition fault  : %s",
              caught.passed ? "PASS (missed!)" : "FAIL (caught)");
  if (!caught.failures.empty())
    std::printf(" at addr 0x%X", caught.failures.front().op.addr);
  std::printf("\n");

  // MATS ends with the cells at d=1 — the transform appends a restore
  // pass so even that stays transparent.
  memsim::SramModel memory2{geometry, 9};
  const auto before = memory2.read(0, 12);
  const auto r2 = diag::run_transparent(march::mats(), memory2);
  std::printf("transparent MATS         : %s, contents %s (word 12: "
              "0x%02llX -> 0x%02llX)\n",
              r2.passed ? "PASS" : "FAIL",
              r2.contents_preserved ? "preserved" : "CLOBBERED",
              static_cast<unsigned long long>(before),
              static_cast<unsigned long long>(memory2.read(0, 12)));
  return 0;
}
