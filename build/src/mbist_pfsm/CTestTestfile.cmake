# CMake generated Testfile for 
# Source directory: /root/repo/src/mbist_pfsm
# Build directory: /root/repo/build/src/mbist_pfsm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
