
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mbist_pfsm/area.cpp" "src/mbist_pfsm/CMakeFiles/pmbist_pfsm.dir/area.cpp.o" "gcc" "src/mbist_pfsm/CMakeFiles/pmbist_pfsm.dir/area.cpp.o.d"
  "/root/repo/src/mbist_pfsm/compiler.cpp" "src/mbist_pfsm/CMakeFiles/pmbist_pfsm.dir/compiler.cpp.o" "gcc" "src/mbist_pfsm/CMakeFiles/pmbist_pfsm.dir/compiler.cpp.o.d"
  "/root/repo/src/mbist_pfsm/components.cpp" "src/mbist_pfsm/CMakeFiles/pmbist_pfsm.dir/components.cpp.o" "gcc" "src/mbist_pfsm/CMakeFiles/pmbist_pfsm.dir/components.cpp.o.d"
  "/root/repo/src/mbist_pfsm/controller.cpp" "src/mbist_pfsm/CMakeFiles/pmbist_pfsm.dir/controller.cpp.o" "gcc" "src/mbist_pfsm/CMakeFiles/pmbist_pfsm.dir/controller.cpp.o.d"
  "/root/repo/src/mbist_pfsm/isa.cpp" "src/mbist_pfsm/CMakeFiles/pmbist_pfsm.dir/isa.cpp.o" "gcc" "src/mbist_pfsm/CMakeFiles/pmbist_pfsm.dir/isa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bist/CMakeFiles/pmbist_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/march/CMakeFiles/pmbist_march.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pmbist_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pmbist_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
