file(REMOVE_RECURSE
  "CMakeFiles/pmbist_pfsm.dir/area.cpp.o"
  "CMakeFiles/pmbist_pfsm.dir/area.cpp.o.d"
  "CMakeFiles/pmbist_pfsm.dir/compiler.cpp.o"
  "CMakeFiles/pmbist_pfsm.dir/compiler.cpp.o.d"
  "CMakeFiles/pmbist_pfsm.dir/components.cpp.o"
  "CMakeFiles/pmbist_pfsm.dir/components.cpp.o.d"
  "CMakeFiles/pmbist_pfsm.dir/controller.cpp.o"
  "CMakeFiles/pmbist_pfsm.dir/controller.cpp.o.d"
  "CMakeFiles/pmbist_pfsm.dir/isa.cpp.o"
  "CMakeFiles/pmbist_pfsm.dir/isa.cpp.o.d"
  "libpmbist_pfsm.a"
  "libpmbist_pfsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbist_pfsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
