file(REMOVE_RECURSE
  "libpmbist_pfsm.a"
)
