# Empty compiler generated dependencies file for pmbist_pfsm.
# This may be replaced when dependencies are built.
