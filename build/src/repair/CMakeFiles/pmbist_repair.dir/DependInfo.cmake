
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repair/redundancy.cpp" "src/repair/CMakeFiles/pmbist_repair.dir/redundancy.cpp.o" "gcc" "src/repair/CMakeFiles/pmbist_repair.dir/redundancy.cpp.o.d"
  "/root/repo/src/repair/repaired_memory.cpp" "src/repair/CMakeFiles/pmbist_repair.dir/repaired_memory.cpp.o" "gcc" "src/repair/CMakeFiles/pmbist_repair.dir/repaired_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/diag/CMakeFiles/pmbist_diag.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pmbist_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/march/CMakeFiles/pmbist_march.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
