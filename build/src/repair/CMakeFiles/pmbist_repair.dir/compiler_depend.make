# Empty compiler generated dependencies file for pmbist_repair.
# This may be replaced when dependencies are built.
