file(REMOVE_RECURSE
  "libpmbist_repair.a"
)
