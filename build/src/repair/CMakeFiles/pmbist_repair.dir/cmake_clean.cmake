file(REMOVE_RECURSE
  "CMakeFiles/pmbist_repair.dir/redundancy.cpp.o"
  "CMakeFiles/pmbist_repair.dir/redundancy.cpp.o.d"
  "CMakeFiles/pmbist_repair.dir/repaired_memory.cpp.o"
  "CMakeFiles/pmbist_repair.dir/repaired_memory.cpp.o.d"
  "libpmbist_repair.a"
  "libpmbist_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbist_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
