
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bist/controller.cpp" "src/bist/CMakeFiles/pmbist_bist.dir/controller.cpp.o" "gcc" "src/bist/CMakeFiles/pmbist_bist.dir/controller.cpp.o.d"
  "/root/repo/src/bist/datapath.cpp" "src/bist/CMakeFiles/pmbist_bist.dir/datapath.cpp.o" "gcc" "src/bist/CMakeFiles/pmbist_bist.dir/datapath.cpp.o.d"
  "/root/repo/src/bist/misr.cpp" "src/bist/CMakeFiles/pmbist_bist.dir/misr.cpp.o" "gcc" "src/bist/CMakeFiles/pmbist_bist.dir/misr.cpp.o.d"
  "/root/repo/src/bist/session.cpp" "src/bist/CMakeFiles/pmbist_bist.dir/session.cpp.o" "gcc" "src/bist/CMakeFiles/pmbist_bist.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/march/CMakeFiles/pmbist_march.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pmbist_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pmbist_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
