file(REMOVE_RECURSE
  "libpmbist_bist.a"
)
