# Empty dependencies file for pmbist_bist.
# This may be replaced when dependencies are built.
