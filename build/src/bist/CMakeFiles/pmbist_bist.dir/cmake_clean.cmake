file(REMOVE_RECURSE
  "CMakeFiles/pmbist_bist.dir/controller.cpp.o"
  "CMakeFiles/pmbist_bist.dir/controller.cpp.o.d"
  "CMakeFiles/pmbist_bist.dir/datapath.cpp.o"
  "CMakeFiles/pmbist_bist.dir/datapath.cpp.o.d"
  "CMakeFiles/pmbist_bist.dir/misr.cpp.o"
  "CMakeFiles/pmbist_bist.dir/misr.cpp.o.d"
  "CMakeFiles/pmbist_bist.dir/session.cpp.o"
  "CMakeFiles/pmbist_bist.dir/session.cpp.o.d"
  "libpmbist_bist.a"
  "libpmbist_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbist_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
