# CMake generated Testfile for 
# Source directory: /root/repo/src/mbist_ucode
# Build directory: /root/repo/build/src/mbist_ucode
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
