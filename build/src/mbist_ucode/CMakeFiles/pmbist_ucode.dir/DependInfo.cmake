
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mbist_ucode/area.cpp" "src/mbist_ucode/CMakeFiles/pmbist_ucode.dir/area.cpp.o" "gcc" "src/mbist_ucode/CMakeFiles/pmbist_ucode.dir/area.cpp.o.d"
  "/root/repo/src/mbist_ucode/assembler.cpp" "src/mbist_ucode/CMakeFiles/pmbist_ucode.dir/assembler.cpp.o" "gcc" "src/mbist_ucode/CMakeFiles/pmbist_ucode.dir/assembler.cpp.o.d"
  "/root/repo/src/mbist_ucode/controller.cpp" "src/mbist_ucode/CMakeFiles/pmbist_ucode.dir/controller.cpp.o" "gcc" "src/mbist_ucode/CMakeFiles/pmbist_ucode.dir/controller.cpp.o.d"
  "/root/repo/src/mbist_ucode/isa.cpp" "src/mbist_ucode/CMakeFiles/pmbist_ucode.dir/isa.cpp.o" "gcc" "src/mbist_ucode/CMakeFiles/pmbist_ucode.dir/isa.cpp.o.d"
  "/root/repo/src/mbist_ucode/rtl.cpp" "src/mbist_ucode/CMakeFiles/pmbist_ucode.dir/rtl.cpp.o" "gcc" "src/mbist_ucode/CMakeFiles/pmbist_ucode.dir/rtl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bist/CMakeFiles/pmbist_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/pmbist_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/march/CMakeFiles/pmbist_march.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pmbist_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
