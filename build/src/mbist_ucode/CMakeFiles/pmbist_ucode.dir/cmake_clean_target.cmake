file(REMOVE_RECURSE
  "libpmbist_ucode.a"
)
