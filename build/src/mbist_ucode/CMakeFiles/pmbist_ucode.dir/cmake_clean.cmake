file(REMOVE_RECURSE
  "CMakeFiles/pmbist_ucode.dir/area.cpp.o"
  "CMakeFiles/pmbist_ucode.dir/area.cpp.o.d"
  "CMakeFiles/pmbist_ucode.dir/assembler.cpp.o"
  "CMakeFiles/pmbist_ucode.dir/assembler.cpp.o.d"
  "CMakeFiles/pmbist_ucode.dir/controller.cpp.o"
  "CMakeFiles/pmbist_ucode.dir/controller.cpp.o.d"
  "CMakeFiles/pmbist_ucode.dir/isa.cpp.o"
  "CMakeFiles/pmbist_ucode.dir/isa.cpp.o.d"
  "CMakeFiles/pmbist_ucode.dir/rtl.cpp.o"
  "CMakeFiles/pmbist_ucode.dir/rtl.cpp.o.d"
  "libpmbist_ucode.a"
  "libpmbist_ucode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbist_ucode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
