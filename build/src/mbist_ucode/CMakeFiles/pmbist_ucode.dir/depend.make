# Empty dependencies file for pmbist_ucode.
# This may be replaced when dependencies are built.
