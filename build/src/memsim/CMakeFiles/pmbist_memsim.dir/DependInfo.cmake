
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/fault_model.cpp" "src/memsim/CMakeFiles/pmbist_memsim.dir/fault_model.cpp.o" "gcc" "src/memsim/CMakeFiles/pmbist_memsim.dir/fault_model.cpp.o.d"
  "/root/repo/src/memsim/faulty_memory.cpp" "src/memsim/CMakeFiles/pmbist_memsim.dir/faulty_memory.cpp.o" "gcc" "src/memsim/CMakeFiles/pmbist_memsim.dir/faulty_memory.cpp.o.d"
  "/root/repo/src/memsim/memory.cpp" "src/memsim/CMakeFiles/pmbist_memsim.dir/memory.cpp.o" "gcc" "src/memsim/CMakeFiles/pmbist_memsim.dir/memory.cpp.o.d"
  "/root/repo/src/memsim/topology.cpp" "src/memsim/CMakeFiles/pmbist_memsim.dir/topology.cpp.o" "gcc" "src/memsim/CMakeFiles/pmbist_memsim.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
