file(REMOVE_RECURSE
  "libpmbist_memsim.a"
)
