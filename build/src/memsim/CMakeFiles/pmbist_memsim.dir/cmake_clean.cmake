file(REMOVE_RECURSE
  "CMakeFiles/pmbist_memsim.dir/fault_model.cpp.o"
  "CMakeFiles/pmbist_memsim.dir/fault_model.cpp.o.d"
  "CMakeFiles/pmbist_memsim.dir/faulty_memory.cpp.o"
  "CMakeFiles/pmbist_memsim.dir/faulty_memory.cpp.o.d"
  "CMakeFiles/pmbist_memsim.dir/memory.cpp.o"
  "CMakeFiles/pmbist_memsim.dir/memory.cpp.o.d"
  "CMakeFiles/pmbist_memsim.dir/topology.cpp.o"
  "CMakeFiles/pmbist_memsim.dir/topology.cpp.o.d"
  "libpmbist_memsim.a"
  "libpmbist_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbist_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
