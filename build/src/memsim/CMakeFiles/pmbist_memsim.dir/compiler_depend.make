# Empty compiler generated dependencies file for pmbist_memsim.
# This may be replaced when dependencies are built.
