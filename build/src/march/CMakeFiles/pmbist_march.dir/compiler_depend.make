# Empty compiler generated dependencies file for pmbist_march.
# This may be replaced when dependencies are built.
