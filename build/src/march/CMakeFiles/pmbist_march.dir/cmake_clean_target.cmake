file(REMOVE_RECURSE
  "libpmbist_march.a"
)
