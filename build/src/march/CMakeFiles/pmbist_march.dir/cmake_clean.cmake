file(REMOVE_RECURSE
  "CMakeFiles/pmbist_march.dir/analysis.cpp.o"
  "CMakeFiles/pmbist_march.dir/analysis.cpp.o.d"
  "CMakeFiles/pmbist_march.dir/coverage.cpp.o"
  "CMakeFiles/pmbist_march.dir/coverage.cpp.o.d"
  "CMakeFiles/pmbist_march.dir/expand.cpp.o"
  "CMakeFiles/pmbist_march.dir/expand.cpp.o.d"
  "CMakeFiles/pmbist_march.dir/library.cpp.o"
  "CMakeFiles/pmbist_march.dir/library.cpp.o.d"
  "CMakeFiles/pmbist_march.dir/march.cpp.o"
  "CMakeFiles/pmbist_march.dir/march.cpp.o.d"
  "CMakeFiles/pmbist_march.dir/parser.cpp.o"
  "CMakeFiles/pmbist_march.dir/parser.cpp.o.d"
  "libpmbist_march.a"
  "libpmbist_march.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbist_march.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
