
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/march/analysis.cpp" "src/march/CMakeFiles/pmbist_march.dir/analysis.cpp.o" "gcc" "src/march/CMakeFiles/pmbist_march.dir/analysis.cpp.o.d"
  "/root/repo/src/march/coverage.cpp" "src/march/CMakeFiles/pmbist_march.dir/coverage.cpp.o" "gcc" "src/march/CMakeFiles/pmbist_march.dir/coverage.cpp.o.d"
  "/root/repo/src/march/expand.cpp" "src/march/CMakeFiles/pmbist_march.dir/expand.cpp.o" "gcc" "src/march/CMakeFiles/pmbist_march.dir/expand.cpp.o.d"
  "/root/repo/src/march/library.cpp" "src/march/CMakeFiles/pmbist_march.dir/library.cpp.o" "gcc" "src/march/CMakeFiles/pmbist_march.dir/library.cpp.o.d"
  "/root/repo/src/march/march.cpp" "src/march/CMakeFiles/pmbist_march.dir/march.cpp.o" "gcc" "src/march/CMakeFiles/pmbist_march.dir/march.cpp.o.d"
  "/root/repo/src/march/parser.cpp" "src/march/CMakeFiles/pmbist_march.dir/parser.cpp.o" "gcc" "src/march/CMakeFiles/pmbist_march.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memsim/CMakeFiles/pmbist_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
