file(REMOVE_RECURSE
  "libpmbist_diag.a"
)
