# Empty dependencies file for pmbist_diag.
# This may be replaced when dependencies are built.
