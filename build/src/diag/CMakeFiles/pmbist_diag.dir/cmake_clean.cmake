file(REMOVE_RECURSE
  "CMakeFiles/pmbist_diag.dir/bitmap.cpp.o"
  "CMakeFiles/pmbist_diag.dir/bitmap.cpp.o.d"
  "CMakeFiles/pmbist_diag.dir/classify.cpp.o"
  "CMakeFiles/pmbist_diag.dir/classify.cpp.o.d"
  "CMakeFiles/pmbist_diag.dir/npsf.cpp.o"
  "CMakeFiles/pmbist_diag.dir/npsf.cpp.o.d"
  "CMakeFiles/pmbist_diag.dir/transparent.cpp.o"
  "CMakeFiles/pmbist_diag.dir/transparent.cpp.o.d"
  "libpmbist_diag.a"
  "libpmbist_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbist_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
