
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diag/bitmap.cpp" "src/diag/CMakeFiles/pmbist_diag.dir/bitmap.cpp.o" "gcc" "src/diag/CMakeFiles/pmbist_diag.dir/bitmap.cpp.o.d"
  "/root/repo/src/diag/classify.cpp" "src/diag/CMakeFiles/pmbist_diag.dir/classify.cpp.o" "gcc" "src/diag/CMakeFiles/pmbist_diag.dir/classify.cpp.o.d"
  "/root/repo/src/diag/npsf.cpp" "src/diag/CMakeFiles/pmbist_diag.dir/npsf.cpp.o" "gcc" "src/diag/CMakeFiles/pmbist_diag.dir/npsf.cpp.o.d"
  "/root/repo/src/diag/transparent.cpp" "src/diag/CMakeFiles/pmbist_diag.dir/transparent.cpp.o" "gcc" "src/diag/CMakeFiles/pmbist_diag.dir/transparent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/march/CMakeFiles/pmbist_march.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pmbist_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
