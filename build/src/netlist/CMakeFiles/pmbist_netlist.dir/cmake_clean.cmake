file(REMOVE_RECURSE
  "CMakeFiles/pmbist_netlist.dir/components.cpp.o"
  "CMakeFiles/pmbist_netlist.dir/components.cpp.o.d"
  "CMakeFiles/pmbist_netlist.dir/fsm_synth.cpp.o"
  "CMakeFiles/pmbist_netlist.dir/fsm_synth.cpp.o.d"
  "CMakeFiles/pmbist_netlist.dir/gate_inventory.cpp.o"
  "CMakeFiles/pmbist_netlist.dir/gate_inventory.cpp.o.d"
  "CMakeFiles/pmbist_netlist.dir/logic.cpp.o"
  "CMakeFiles/pmbist_netlist.dir/logic.cpp.o.d"
  "CMakeFiles/pmbist_netlist.dir/qm.cpp.o"
  "CMakeFiles/pmbist_netlist.dir/qm.cpp.o.d"
  "CMakeFiles/pmbist_netlist.dir/tech_library.cpp.o"
  "CMakeFiles/pmbist_netlist.dir/tech_library.cpp.o.d"
  "CMakeFiles/pmbist_netlist.dir/verilog.cpp.o"
  "CMakeFiles/pmbist_netlist.dir/verilog.cpp.o.d"
  "libpmbist_netlist.a"
  "libpmbist_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbist_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
