file(REMOVE_RECURSE
  "libpmbist_netlist.a"
)
