
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/components.cpp" "src/netlist/CMakeFiles/pmbist_netlist.dir/components.cpp.o" "gcc" "src/netlist/CMakeFiles/pmbist_netlist.dir/components.cpp.o.d"
  "/root/repo/src/netlist/fsm_synth.cpp" "src/netlist/CMakeFiles/pmbist_netlist.dir/fsm_synth.cpp.o" "gcc" "src/netlist/CMakeFiles/pmbist_netlist.dir/fsm_synth.cpp.o.d"
  "/root/repo/src/netlist/gate_inventory.cpp" "src/netlist/CMakeFiles/pmbist_netlist.dir/gate_inventory.cpp.o" "gcc" "src/netlist/CMakeFiles/pmbist_netlist.dir/gate_inventory.cpp.o.d"
  "/root/repo/src/netlist/logic.cpp" "src/netlist/CMakeFiles/pmbist_netlist.dir/logic.cpp.o" "gcc" "src/netlist/CMakeFiles/pmbist_netlist.dir/logic.cpp.o.d"
  "/root/repo/src/netlist/qm.cpp" "src/netlist/CMakeFiles/pmbist_netlist.dir/qm.cpp.o" "gcc" "src/netlist/CMakeFiles/pmbist_netlist.dir/qm.cpp.o.d"
  "/root/repo/src/netlist/tech_library.cpp" "src/netlist/CMakeFiles/pmbist_netlist.dir/tech_library.cpp.o" "gcc" "src/netlist/CMakeFiles/pmbist_netlist.dir/tech_library.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "src/netlist/CMakeFiles/pmbist_netlist.dir/verilog.cpp.o" "gcc" "src/netlist/CMakeFiles/pmbist_netlist.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
