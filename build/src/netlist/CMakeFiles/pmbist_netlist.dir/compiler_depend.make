# Empty compiler generated dependencies file for pmbist_netlist.
# This may be replaced when dependencies are built.
