# CMake generated Testfile for 
# Source directory: /root/repo/src/mbist_hardwired
# Build directory: /root/repo/build/src/mbist_hardwired
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
