file(REMOVE_RECURSE
  "libpmbist_hardwired.a"
)
