file(REMOVE_RECURSE
  "CMakeFiles/pmbist_hardwired.dir/area.cpp.o"
  "CMakeFiles/pmbist_hardwired.dir/area.cpp.o.d"
  "CMakeFiles/pmbist_hardwired.dir/controller.cpp.o"
  "CMakeFiles/pmbist_hardwired.dir/controller.cpp.o.d"
  "CMakeFiles/pmbist_hardwired.dir/generator.cpp.o"
  "CMakeFiles/pmbist_hardwired.dir/generator.cpp.o.d"
  "libpmbist_hardwired.a"
  "libpmbist_hardwired.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbist_hardwired.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
