# Empty dependencies file for pmbist_hardwired.
# This may be replaced when dependencies are built.
