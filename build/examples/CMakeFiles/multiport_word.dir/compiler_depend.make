# Empty compiler generated dependencies file for multiport_word.
# This may be replaced when dependencies are built.
