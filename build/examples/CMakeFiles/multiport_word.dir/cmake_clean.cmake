file(REMOVE_RECURSE
  "CMakeFiles/multiport_word.dir/multiport_word.cpp.o"
  "CMakeFiles/multiport_word.dir/multiport_word.cpp.o.d"
  "multiport_word"
  "multiport_word.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiport_word.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
