
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/pmbist_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pmbist_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/march/CMakeFiles/pmbist_march.dir/DependInfo.cmake"
  "/root/repo/build/src/bist/CMakeFiles/pmbist_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/mbist_ucode/CMakeFiles/pmbist_ucode.dir/DependInfo.cmake"
  "/root/repo/build/src/mbist_pfsm/CMakeFiles/pmbist_pfsm.dir/DependInfo.cmake"
  "/root/repo/build/src/mbist_hardwired/CMakeFiles/pmbist_hardwired.dir/DependInfo.cmake"
  "/root/repo/build/src/diag/CMakeFiles/pmbist_diag.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/pmbist_repair.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
