# Empty dependencies file for repair_flow.
# This may be replaced when dependencies are built.
