file(REMOVE_RECURSE
  "CMakeFiles/repair_flow.dir/repair_flow.cpp.o"
  "CMakeFiles/repair_flow.dir/repair_flow.cpp.o.d"
  "repair_flow"
  "repair_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
