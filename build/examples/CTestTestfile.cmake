# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_diagnosis "/root/repo/build/examples/fault_diagnosis")
set_tests_properties(example_fault_diagnosis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_algorithm "/root/repo/build/examples/custom_algorithm")
set_tests_properties(example_custom_algorithm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multiport_word "/root/repo/build/examples/multiport_word")
set_tests_properties(example_multiport_word PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_online_test "/root/repo/build/examples/online_test")
set_tests_properties(example_online_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_repair_flow "/root/repo/build/examples/repair_flow")
set_tests_properties(example_repair_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
