file(REMOVE_RECURSE
  "CMakeFiles/test_hardwired.dir/test_hardwired.cpp.o"
  "CMakeFiles/test_hardwired.dir/test_hardwired.cpp.o.d"
  "test_hardwired"
  "test_hardwired.pdb"
  "test_hardwired[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hardwired.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
