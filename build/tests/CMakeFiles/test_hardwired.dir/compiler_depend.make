# Empty compiler generated dependencies file for test_hardwired.
# This may be replaced when dependencies are built.
