file(REMOVE_RECURSE
  "CMakeFiles/test_ucode.dir/test_ucode.cpp.o"
  "CMakeFiles/test_ucode.dir/test_ucode.cpp.o.d"
  "test_ucode"
  "test_ucode.pdb"
  "test_ucode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ucode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
