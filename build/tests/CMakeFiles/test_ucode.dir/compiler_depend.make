# Empty compiler generated dependencies file for test_ucode.
# This may be replaced when dependencies are built.
