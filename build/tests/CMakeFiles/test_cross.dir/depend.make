# Empty dependencies file for test_cross.
# This may be replaced when dependencies are built.
