file(REMOVE_RECURSE
  "CMakeFiles/test_cross.dir/test_cross.cpp.o"
  "CMakeFiles/test_cross.dir/test_cross.cpp.o.d"
  "test_cross"
  "test_cross.pdb"
  "test_cross[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
