# Empty compiler generated dependencies file for test_pfsm.
# This may be replaced when dependencies are built.
