file(REMOVE_RECURSE
  "CMakeFiles/test_pfsm.dir/test_pfsm.cpp.o"
  "CMakeFiles/test_pfsm.dir/test_pfsm.cpp.o.d"
  "test_pfsm"
  "test_pfsm.pdb"
  "test_pfsm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
