# Empty dependencies file for test_npsf.
# This may be replaced when dependencies are built.
