file(REMOVE_RECURSE
  "CMakeFiles/test_npsf.dir/test_npsf.cpp.o"
  "CMakeFiles/test_npsf.dir/test_npsf.cpp.o.d"
  "test_npsf"
  "test_npsf.pdb"
  "test_npsf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_npsf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
