# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_memsim[1]_include.cmake")
include("/root/repo/build/tests/test_march[1]_include.cmake")
include("/root/repo/build/tests/test_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_ucode[1]_include.cmake")
include("/root/repo/build/tests/test_pfsm[1]_include.cmake")
include("/root/repo/build/tests/test_hardwired[1]_include.cmake")
include("/root/repo/build/tests/test_diag[1]_include.cmake")
include("/root/repo/build/tests/test_cross[1]_include.cmake")
include("/root/repo/build/tests/test_bist[1]_include.cmake")
include("/root/repo/build/tests/test_misr[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_verilog[1]_include.cmake")
include("/root/repo/build/tests/test_npsf[1]_include.cmake")
include("/root/repo/build/tests/test_repair[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_umbrella[1]_include.cmake")
