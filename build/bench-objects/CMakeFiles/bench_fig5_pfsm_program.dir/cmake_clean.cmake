file(REMOVE_RECURSE
  "../bench/bench_fig5_pfsm_program"
  "../bench/bench_fig5_pfsm_program.pdb"
  "CMakeFiles/bench_fig5_pfsm_program.dir/bench_fig5_pfsm_program.cpp.o"
  "CMakeFiles/bench_fig5_pfsm_program.dir/bench_fig5_pfsm_program.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_pfsm_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
