# Empty compiler generated dependencies file for bench_table2_word_multiport.
# This may be replaced when dependencies are built.
