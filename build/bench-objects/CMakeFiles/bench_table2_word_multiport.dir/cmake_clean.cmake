file(REMOVE_RECURSE
  "../bench/bench_table2_word_multiport"
  "../bench/bench_table2_word_multiport.pdb"
  "CMakeFiles/bench_table2_word_multiport.dir/bench_table2_word_multiport.cpp.o"
  "CMakeFiles/bench_table2_word_multiport.dir/bench_table2_word_multiport.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_word_multiport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
