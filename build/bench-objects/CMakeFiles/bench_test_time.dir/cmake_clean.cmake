file(REMOVE_RECURSE
  "../bench/bench_test_time"
  "../bench/bench_test_time.pdb"
  "CMakeFiles/bench_test_time.dir/bench_test_time.cpp.o"
  "CMakeFiles/bench_test_time.dir/bench_test_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_test_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
