# Empty compiler generated dependencies file for bench_test_time.
# This may be replaced when dependencies are built.
