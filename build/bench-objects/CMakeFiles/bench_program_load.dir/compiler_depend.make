# Empty compiler generated dependencies file for bench_program_load.
# This may be replaced when dependencies are built.
