file(REMOVE_RECURSE
  "../bench/bench_program_load"
  "../bench/bench_program_load.pdb"
  "CMakeFiles/bench_program_load.dir/bench_program_load.cpp.o"
  "CMakeFiles/bench_program_load.dir/bench_program_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_program_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
