# Empty dependencies file for bench_fig2_ucode_program.
# This may be replaced when dependencies are built.
