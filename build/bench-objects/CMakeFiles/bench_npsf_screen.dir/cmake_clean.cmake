file(REMOVE_RECURSE
  "../bench/bench_npsf_screen"
  "../bench/bench_npsf_screen.pdb"
  "CMakeFiles/bench_npsf_screen.dir/bench_npsf_screen.cpp.o"
  "CMakeFiles/bench_npsf_screen.dir/bench_npsf_screen.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_npsf_screen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
