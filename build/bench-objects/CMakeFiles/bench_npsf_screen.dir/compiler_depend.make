# Empty compiler generated dependencies file for bench_npsf_screen.
# This may be replaced when dependencies are built.
