# Empty compiler generated dependencies file for bench_misr_compaction.
# This may be replaced when dependencies are built.
