file(REMOVE_RECURSE
  "../bench/bench_misr_compaction"
  "../bench/bench_misr_compaction.pdb"
  "CMakeFiles/bench_misr_compaction.dir/bench_misr_compaction.cpp.o"
  "CMakeFiles/bench_misr_compaction.dir/bench_misr_compaction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misr_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
