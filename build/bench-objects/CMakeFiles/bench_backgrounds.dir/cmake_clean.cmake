file(REMOVE_RECURSE
  "../bench/bench_backgrounds"
  "../bench/bench_backgrounds.pdb"
  "CMakeFiles/bench_backgrounds.dir/bench_backgrounds.cpp.o"
  "CMakeFiles/bench_backgrounds.dir/bench_backgrounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backgrounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
