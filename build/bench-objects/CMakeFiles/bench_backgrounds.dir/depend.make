# Empty dependencies file for bench_backgrounds.
# This may be replaced when dependencies are built.
