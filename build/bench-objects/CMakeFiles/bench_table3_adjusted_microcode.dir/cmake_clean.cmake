file(REMOVE_RECURSE
  "../bench/bench_table3_adjusted_microcode"
  "../bench/bench_table3_adjusted_microcode.pdb"
  "CMakeFiles/bench_table3_adjusted_microcode.dir/bench_table3_adjusted_microcode.cpp.o"
  "CMakeFiles/bench_table3_adjusted_microcode.dir/bench_table3_adjusted_microcode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_adjusted_microcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
