# Empty compiler generated dependencies file for bench_table3_adjusted_microcode.
# This may be replaced when dependencies are built.
