# Empty dependencies file for bench_table1_bit_oriented.
# This may be replaced when dependencies are built.
