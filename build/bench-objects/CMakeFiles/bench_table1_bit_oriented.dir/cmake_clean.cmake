file(REMOVE_RECURSE
  "../bench/bench_table1_bit_oriented"
  "../bench/bench_table1_bit_oriented.pdb"
  "CMakeFiles/bench_table1_bit_oriented.dir/bench_table1_bit_oriented.cpp.o"
  "CMakeFiles/bench_table1_bit_oriented.dir/bench_table1_bit_oriented.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_bit_oriented.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
