file(REMOVE_RECURSE
  "../bench/bench_fault_coverage"
  "../bench/bench_fault_coverage.pdb"
  "CMakeFiles/bench_fault_coverage.dir/bench_fault_coverage.cpp.o"
  "CMakeFiles/bench_fault_coverage.dir/bench_fault_coverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
