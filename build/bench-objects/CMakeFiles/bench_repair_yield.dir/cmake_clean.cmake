file(REMOVE_RECURSE
  "../bench/bench_repair_yield"
  "../bench/bench_repair_yield.pdb"
  "CMakeFiles/bench_repair_yield.dir/bench_repair_yield.cpp.o"
  "CMakeFiles/bench_repair_yield.dir/bench_repair_yield.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repair_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
