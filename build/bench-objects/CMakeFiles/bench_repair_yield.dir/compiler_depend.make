# Empty compiler generated dependencies file for bench_repair_yield.
# This may be replaced when dependencies are built.
