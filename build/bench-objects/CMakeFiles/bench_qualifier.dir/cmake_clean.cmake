file(REMOVE_RECURSE
  "../bench/bench_qualifier"
  "../bench/bench_qualifier.pdb"
  "CMakeFiles/bench_qualifier.dir/bench_qualifier.cpp.o"
  "CMakeFiles/bench_qualifier.dir/bench_qualifier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qualifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
