# Empty compiler generated dependencies file for bench_qualifier.
# This may be replaced when dependencies are built.
