# Empty compiler generated dependencies file for pmbist_cli.
# This may be replaced when dependencies are built.
