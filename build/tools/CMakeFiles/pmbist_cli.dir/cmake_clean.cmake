file(REMOVE_RECURSE
  "CMakeFiles/pmbist_cli.dir/pmbist_cli.cpp.o"
  "CMakeFiles/pmbist_cli.dir/pmbist_cli.cpp.o.d"
  "pmbist"
  "pmbist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmbist_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
