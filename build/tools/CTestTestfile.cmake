# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/pmbist" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_assemble "/root/repo/build/tools/pmbist" "assemble" "March C")
set_tests_properties(cli_assemble PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_assemble_dsl "/root/repo/build/tools/pmbist" "assemble" "any(w0); up(r0,w1); down(r1,w0)")
set_tests_properties(cli_assemble_dsl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_qualify "/root/repo/build/tools/pmbist" "qualify" "MATS+")
set_tests_properties(cli_qualify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_pass "/root/repo/build/tools/pmbist" "run" "March C" "--addr-bits" "5" "--arch" "hardwired")
set_tests_properties(cli_run_pass PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_fail "/root/repo/build/tools/pmbist" "run" "March C" "--addr-bits" "5" "--fault" "SAF")
set_tests_properties(cli_run_fail PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_area "/root/repo/build/tools/pmbist" "area" "--addr-bits" "8")
set_tests_properties(cli_area PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_coverage "/root/repo/build/tools/pmbist" "coverage" "MATS" "--addr-bits" "4" "--samples" "8")
set_tests_properties(cli_coverage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_export "/root/repo/build/tools/pmbist" "export" "March C+")
set_tests_properties(cli_export PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_export_unit "/root/repo/build/tools/pmbist" "export" "--word-bits" "8")
set_tests_properties(cli_export_unit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_export_decoder "/root/repo/build/tools/pmbist" "export-decoder")
set_tests_properties(cli_export_decoder PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_command "/root/repo/build/tools/pmbist" "frobnicate")
set_tests_properties(cli_bad_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_algorithm "/root/repo/build/tools/pmbist" "assemble" "March Zeta")
set_tests_properties(cli_bad_algorithm PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
