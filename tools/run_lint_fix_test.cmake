# Round-trip test for `pmbist lint --fix`: copy a known-bad corpus image to a
# scratch path, let --fix rewrite it, and require the rewritten file to lint
# clean (exit 0).  Driven from tools/CMakeLists.txt (test cli_lint_fix).
configure_file(${CASE} ${WORK} COPYONLY)

execute_process(COMMAND ${PMBIST_CLI} lint ${WORK} --fix
                RESULT_VARIABLE fix_status)
if(NOT fix_status EQUAL 0)
  message(FATAL_ERROR "lint --fix exited ${fix_status} on ${CASE}")
endif()

execute_process(COMMAND ${PMBIST_CLI} lint ${WORK}
                RESULT_VARIABLE relint_status)
if(NOT relint_status EQUAL 0)
  message(FATAL_ERROR
          "lint --fix did not repair ${CASE}: re-lint exited ${relint_status}")
endif()
