# ctest driver: boot a loopback `pmbist serve --port 0`, learn the
# ephemeral port from its stderr banner, drive three `pmbist submit`
# invocations against it (clean lint, failing lint, stats), and require
# the streamed events to be byte-identical to the committed golden — the
# submit/serve transport contract.  Inputs are passed as source-relative
# paths (the script runs from ${SRC}), so the units inside the payloads
# are machine-independent.
#
# Expects: -DPMBIST_CLI=<path> -DSRC=<repo source dir> -DGOLDEN=<file>
#          -DWORK=<scratch dir>

file(MAKE_DIRECTORY ${WORK})

set(script [[
set -u
cli="$1"; work="$2"
"$cli" serve --port 0 --sessions 1 2>"$work/serve.err" &
srv=$!
port=""
for _ in $(seq 100); do
  port=$(sed -n 's/^serving on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$work/serve.err")
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "serve never printed its port banner" >&2
  kill $srv 2>/dev/null
  exit 70
fi
out="$work/submit_events.ndjson"
: > "$out"
"$cli" submit examples/handwritten_nop_stride.ucode.hex --req lint --id ok \
    --against "up(w0); up(r0)" --port "$port" >> "$out"
rc_ok=$?
"$cli" submit tests/lint_cases/dead_code.ucode.hex --req lint --id bad \
    --port "$port" >> "$out"
rc_bad=$?
"$cli" submit --req stats --id stats --port "$port" >> "$out"
rc_stats=$?
kill $srv 2>/dev/null
wait $srv 2>/dev/null
[ "$rc_ok" -eq 0 ] || { echo "clean lint submit exited $rc_ok" >&2; exit 71; }
[ "$rc_bad" -eq 1 ] || { echo "failing lint submit exited $rc_bad" >&2; exit 72; }
[ "$rc_stats" -eq 0 ] || { echo "stats submit exited $rc_stats" >&2; exit 73; }
exit 0
]])

execute_process(
  COMMAND bash -c "${script}" submit-test ${PMBIST_CLI} ${WORK}
  WORKING_DIRECTORY ${SRC}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "submit transport script exited ${rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK}/submit_events.ndjson ${GOLDEN}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR "submit events differ from golden ${GOLDEN}; "
                      "inspect ${WORK}/submit_events.ndjson")
endif()
