# Emit -> certify round trip for the schedule certificate checker: run the
# real engine (`pmbist soc` / `pmbist field`) with --certify and
# --emit-schedule, then re-certify the emitted file through `pmbist lint`
# with the same chip (and profile) context.  Driven from
# tools/CMakeLists.txt (tests cli_certify_roundtrip_*).
#
# Inputs: PMBIST_CLI, MODE (soc|field), CHIP, WORK; PROFILE for field.
if(MODE STREQUAL "field")
  set(context --chip ${CHIP} --profile ${PROFILE})
else()
  set(context --chip ${CHIP})
endif()

execute_process(COMMAND ${PMBIST_CLI} ${MODE} ${context} --jobs 2
                        --certify --emit-schedule ${WORK}
                OUTPUT_QUIET
                RESULT_VARIABLE run_status)
if(NOT run_status EQUAL 0)
  message(FATAL_ERROR "pmbist ${MODE} --certify exited ${run_status}")
endif()

execute_process(COMMAND ${PMBIST_CLI} lint ${WORK} ${context}
                OUTPUT_QUIET
                RESULT_VARIABLE lint_status)
if(NOT lint_status EQUAL 0)
  message(FATAL_ERROR
          "emitted ${MODE} schedule failed certification (${lint_status})")
endif()
