# ctest driver for the serve/CLI equivalence contract (docs/SERVE.md):
# the payload of every serve `result` must be byte-identical to the
# stdout of the equivalent one-shot CLI invocation.  Serve's pipe mode
# mirrors each payload verbatim to <payload-dir>/<id>.out, so the check
# is a plain file diff — no JSON parsing in the test driver.
#
# Expects: -DPMBIST_CLI=<path> -DCHIP=<chip file> -DPROFILE=<profile file>
#          -DWORK=<scratch directory>

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK}/payloads)

# Inline the chip and profile files into JSON string literals (escape
# order matters: backslashes first).
file(READ ${CHIP} chip_text)
file(READ ${PROFILE} profile_text)
foreach(var chip_text profile_text)
  string(REPLACE "\\" "\\\\" ${var} "${${var}}")
  string(REPLACE "\"" "\\\"" ${var} "${${var}}")
  string(REPLACE "\t" "\\t" ${var} "${${var}}")
  string(REPLACE "\n" "\\n" ${var} "${${var}}")
endforeach()

file(WRITE ${WORK}/requests.ndjson
  "{\"id\":\"cov\",\"kind\":\"campaign\",\"algorithm\":\"MATS\",\"addr_bits\":4,\"samples\":4,\"jobs\":1}\n"
  "{\"id\":\"lint\",\"kind\":\"lint\",\"input\":\"March C\"}\n"
  "{\"id\":\"soc\",\"kind\":\"soc\",\"chip\":\"${chip_text}\",\"jobs\":1}\n"
  "{\"id\":\"field\",\"kind\":\"field\",\"chip\":\"${chip_text}\",\"profile\":\"${profile_text}\",\"jobs\":1}\n")

execute_process(
  COMMAND ${PMBIST_CLI} serve --payload-dir ${WORK}/payloads
  INPUT_FILE ${WORK}/requests.ndjson
  OUTPUT_FILE ${WORK}/events.ndjson
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "pmbist serve exited ${rc}")
endif()

# The equivalent one-shot invocations (same jobs, default everything
# else).  Reports go to stdout; wall-clock chatter goes to stderr and is
# deliberately dropped — it is not part of the contract.
execute_process(
  COMMAND ${PMBIST_CLI} coverage MATS --addr-bits 4 --samples 4 --jobs 1
  OUTPUT_FILE ${WORK}/cov.cli ERROR_VARIABLE ignored RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "pmbist coverage exited ${rc}")
endif()
execute_process(
  COMMAND ${PMBIST_CLI} lint "March C"
  OUTPUT_FILE ${WORK}/lint.cli ERROR_VARIABLE ignored RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "pmbist lint exited ${rc}")
endif()
execute_process(
  COMMAND ${PMBIST_CLI} soc --chip ${CHIP} --jobs 1
  OUTPUT_FILE ${WORK}/soc.cli ERROR_VARIABLE ignored RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "pmbist soc exited ${rc}")
endif()
execute_process(
  COMMAND ${PMBIST_CLI} field --chip ${CHIP} --profile ${PROFILE} --jobs 1
  OUTPUT_FILE ${WORK}/field.cli ERROR_VARIABLE ignored RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "pmbist field exited ${rc}")
endif()

foreach(pair "cov" "lint" "soc" "field")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORK}/payloads/${pair}.out ${WORK}/${pair}.cli
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "serve '${pair}' payload differs from the one-shot CLI stdout "
            "(${WORK}/payloads/${pair}.out vs ${WORK}/${pair}.cli)")
  endif()
endforeach()
