# ctest driver: run the serve pipe transport over the committed request
# batch and require the event stream to be byte-identical to the golden
# responses.  Pipe mode executes one request at a time, so the stream is
# deterministic by construction (docs/SERVE.md); this test keeps it that
# way.
#
# Expects: -DPMBIST_CLI=<path> -DREQUESTS=<requests.ndjson>
#          -DGOLDEN=<responses.golden> -DWORK=<scratch output file>

execute_process(
  COMMAND ${PMBIST_CLI} serve
  INPUT_FILE ${REQUESTS}
  OUTPUT_FILE ${WORK}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "pmbist serve exited ${rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${WORK} ${GOLDEN}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "serve pipe responses differ from golden ${GOLDEN}; inspect ${WORK}")
endif()
