// pmbist — command-line front end to the programmable-MBIST library.
//
//   pmbist list
//       Library algorithms with complexity and qualification verdicts.
//   pmbist assemble  <algorithm|dsl> [--arch ucode|pfsm] [--flat]
//       Compile an algorithm and print the program listing.
//   pmbist qualify   <algorithm|dsl>
//       Static detection guarantees per fault class.
//   pmbist run       <algorithm|dsl> [--arch ucode|pfsm|hardwired]
//                    [--addr-bits N] [--word-bits N] [--ports N]
//                    [--fault CLASS] [--seed N]
//       Cycle-accurate BIST run; optionally inject one sampled fault.
//   pmbist area      [--addr-bits N] [--word-bits N] [--ports N]
//       Area report of all architectures for a geometry.
//   pmbist coverage  <algorithm|dsl> [--addr-bits N] [--samples N]
//       Fault-simulation campaign for one algorithm.
//   pmbist export    <algorithm|dsl> [--word-bits N] [--ports N]
//       Emit the hardwired controller FSM for the algorithm as
//       synthesizable Verilog on stdout.
//   pmbist export-decoder
//       Emit the microcode instruction decoder (minimized covers) and the
//       programmable-FSM lower controller as Verilog.
//   pmbist soc       [--chip FILE] [--jobs N] [--power-budget W]
//                    [--max-failures N] [--certify] [--emit-schedule F]
//       Whole-chip BIST: schedule and run every memory of a chip file
//       (docs/SOC.md) under power and controller-sharing constraints.
//       Without --chip, runs the built-in 9-memory demo chip.  --certify
//       re-verifies the schedule with the independent certificate checker;
//       --emit-schedule writes it as a .schedule file.
//   pmbist field     [--chip FILE] [--profile FILE] [--jobs N]
//                    [--max-failures N] [--certify] [--emit-schedule F]
//       In-field online testing: pack preemptible transparent BIST
//       sessions into the idle windows of a mission profile
//       (docs/FIELD.md).  Without --chip/--profile, runs the built-in
//       demo chip against the built-in demo profile.  --certify and
//       --emit-schedule work as in `soc` (.fieldsched file).
//   pmbist memtest   [<algorithm|dsl>] [--size BYTES[K|M|G]] [--passes N]
//                    [--backgrounds N] [--jobs N] [--backend sim|hostram]
//                    [--huge-pages] [--inject]
//       March-test a large block of host RAM (docs/BACKEND.md): expand
//       the algorithm (default March C) into a march stream and execute
//       it against an mmap'd buffer, sharded across worker threads.
//       The deterministic report (signature, op counts, verdict) goes to
//       stdout; sustained read/write GB/s go to stderr.  --inject flips
//       one bit mid-run as a self-test (the run must FAIL).
//   pmbist lint      <file|algorithm|dsl> [--json] [--storage-depth N]
//                    [--buffer-depth N] [--chip FILE] [--profile FILE]
//                    [--certify]
//       Static verifier: march algorithms, microcode hex images, pFSM hex
//       images, chip files, mission profiles and emitted schedules (kind
//       auto-detected; docs/LINT.md lists the diagnostic codes).  Exits
//       nonzero when errors are found.
//   pmbist serve     [--port N] [--sessions N] [--cache-mb N]
//       Long-running BIST service (docs/SERVE.md): newline-delimited JSON
//       requests in, JSON events out.  Without --port, reads stdin and
//       writes stdout (batch/pipe mode); with --port, serves loopback TCP
//       (0 = ephemeral, bound port printed on stderr).
//
// Exit codes are uniform across subcommands: 0 = success, 1 = the checked
// artifact failed (BIST mismatch, unhealthy chip, lint errors), 2 = usage
// or input errors.  `pmbist --help` (or `<command> --help`) prints the
// usage text on stdout and exits 0.
//
// `assemble --hex` prints a portable microcode hex image; `run --program
// <file>` loads such an image into the microcode controller instead of
// assembling an algorithm.  `--jobs N` sets the worker count for every
// fault-simulation / qualification path (0 = all cores, 1 = serial) and
// `--kernel scalar|packed` selects the campaign inner loop (default: the
// packed 64-lane PPSFP kernel, docs/KERNEL.md); results are identical for
// any combination.
//
// <algorithm|dsl> is a library name ("March C+") or an inline DSL string
// ("any(w0); up(r0,w1); ...").

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "backend/memtest.h"
#include "bist/session.h"
#include "common/json.h"
#include "lint/certify.h"
#include "lint/diagnostics.h"
#include "lint/driver.h"
#include "lint/fix.h"
#include "march/analysis.h"
#include "march/campaign.h"
#include "march/library.h"
#include "march/parser.h"
#include "mbist_hardwired/area.h"
#include "mbist_hardwired/controller.h"
#include "mbist_pfsm/area.h"
#include "mbist_pfsm/controller.h"
#include "mbist_ucode/area.h"
#include "mbist_ucode/controller.h"
#include "mbist_ucode/rtl.h"
#include "netlist/verilog.h"
#include "field/manager.h"
#include "field/profile.h"
#include "field/schedule_io.h"
#include "serve/server.h"
#include "soc/chip.h"
#include "soc/schedule_io.h"
#include "soc/scheduler.h"

namespace {

using namespace pmbist;

struct Options {
  std::string command;
  std::string algorithm;
  std::string arch = "ucode";
  int addr_bits = 8;
  int word_bits = 1;
  int ports = 1;
  int samples = 64;
  int jobs = 0;
  march::CampaignKernel kernel = march::CampaignKernel::Auto;
  std::uint64_t seed = 1;
  std::string fault_class;
  std::string program_file;
  std::string chip_file;
  std::string profile_file;
  double power_budget = -1.0;  ///< <0 = keep the chip file's budget
  std::size_t max_failures = 1024;
  bool flat = false;
  bool hex = false;
  bool json = false;
  int storage_depth = 32;
  int buffer_depth = 16;
  std::string against;  ///< march source for translation validation
  bool fix = false;     ///< apply mechanical fixes and rewrite the file
  bool certify = false;         ///< run the schedule certificate checker
  std::string emit_schedule;    ///< soc/field: write the schedule file here
  int port = -1;        ///< serve: TCP port (-1 = pipe mode, 0 = ephemeral)
  int sessions = 2;     ///< serve: concurrent session workers
  int cache_mb = 64;    ///< serve: stream-cache byte budget in MiB
  std::string payload_dir;  ///< serve pipe mode: mirror payloads here
  std::string req_kind = "lint";  ///< submit: request kind
  std::string req_id = "cli";     ///< submit: client-chosen request id
  std::string kernel_name;        ///< raw --kernel text (submit forwards it)
  std::string size_spec = "256M";  ///< memtest: buffer size text
  int passes = 1;                  ///< memtest: full sweeps of the buffer
  int backgrounds = 0;      ///< memtest: data backgrounds (0 = all standard)
  std::string backend_name;  ///< soc/field/memtest: --backend sim|hostram
  bool huge_pages = false;   ///< memtest: request huge pages (hostram)
  bool inject = false;       ///< memtest: flip one bit mid-run (self-test)
};

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: pmbist <command> [<algorithm|dsl>] [options]\n"
      "\n"
      "commands:\n"
      "  list            library algorithms, complexity, qualification\n"
      "  assemble        compile an algorithm, print the program listing\n"
      "  qualify         static detection guarantees per fault class\n"
      "  run             cycle-accurate BIST run on one memory\n"
      "  area            area report of all architectures for a geometry\n"
      "  coverage        fault-simulation campaign for one algorithm\n"
      "  export          hardwired/programmable controller as Verilog\n"
      "  export-decoder  microcode decoder + pFSM lower controller Verilog\n"
      "  soc             whole-chip scheduled BIST from a chip file\n"
      "  field           in-field transparent BIST inside idle windows\n"
      "  memtest         march-test a block of host RAM (docs/BACKEND.md)\n"
      "  lint            static verifier for march / ucode / pFSM / chip /\n"
      "                  mission-profile inputs\n"
      "  serve           long-running BIST service (JSON requests in, JSON\n"
      "                  events out; docs/SERVE.md)\n"
      "  submit          send one request to a running `pmbist serve --port`\n"
      "                  and stream its events to stdout\n"
      "\n"
      "options:\n"
      "  --arch ucode|pfsm|hardwired   controller architecture\n"
      "  --addr-bits N  --word-bits N  --ports N\n"
      "  --fault CLASS (SAF,TF,CFin,CFid,CFst,AF,SOF,DRF,IRF,WDF,RDF,DRDF)\n"
      "  --samples N   --seed N        --flat (no Repeat fold)\n"
      "  --program FILE  hex microcode image for run\n"
      "  --jobs N      worker count, soc/campaign/qualifier (0 = all cores)\n"
      "  --kernel scalar|packed  campaign inner loop (default packed: 64\n"
      "                fault instances per pass; identical results)\n"
      "\n"
      "soc options:\n"
      "  --chip FILE        chip description (docs/SOC.md; default: demo)\n"
      "  --power-budget W   override the chip file's power budget\n"
      "  --max-failures N   per-session failure-log capacity\n"
      "  --certify          re-verify the schedule with the certificate\n"
      "                     checker (report on stderr; exit 1 on errors)\n"
      "  --emit-schedule F  write the computed schedule to F (.schedule)\n"
      "  --backend sim|hostram  memory-under-test backend (default sim;\n"
      "                     hostram needs a fault-free chip)\n"
      "\n"
      "field options:\n"
      "  --chip FILE        chip description (docs/SOC.md; default: demo)\n"
      "  --profile FILE     mission profile (docs/FIELD.md; default: demo)\n"
      "  --max-failures N   per-instance failure-log capacity\n"
      "  --certify          re-verify the session table with the certificate\n"
      "                     checker (report on stderr; exit 1 on errors)\n"
      "  --emit-schedule F  write the session table to F (.fieldsched)\n"
      "  --backend sim|hostram  memory-under-test backend (default sim;\n"
      "                     hostram needs a fault-free chip)\n"
      "\n"
      "memtest options (positional algorithm defaults to March C):\n"
      "  --size BYTES       buffer size, K/M/G suffixes (default 256M);\n"
      "                     rounded down to a power-of-two word count\n"
      "  --passes N         full sweeps of the buffer (default 1)\n"
      "  --backgrounds N    data backgrounds, 0 = all 7 standard (default)\n"
      "  --backend sim|hostram  hostram (default) maps anonymous host\n"
      "                     memory; sim runs the behavioral simulator\n"
      "  --huge-pages       ask for huge pages (graceful fallback)\n"
      "  --inject           flip one bit mid-run; the run must FAIL\n"
      "  --max-failures N   mismatch-log capacity (default 1024)\n"
      "\n"
      "lint options:\n"
      "  --json             machine-readable diagnostics on stdout\n"
      "  --chip FILE        chip file a mission profile or schedule is\n"
      "                     checked against\n"
      "  --profile FILE     mission profile a field schedule is certified\n"
      "                     against\n"
      "  --storage-depth N  microcode storage words assumed (default 32)\n"
      "  --buffer-depth N   pFSM buffer rows assumed (default 16)\n"
      "  --against SRC      translation validation: prove a controller image\n"
      "                     realizes SRC (march file, library name or DSL)\n"
      "  --certify          chip/profile inputs: also compute and certify\n"
      "                     the schedule behind the input (SC codes)\n"
      "  --fix              rewrite the input file with the mechanical fixes\n"
      "                     (dead code / unused rows / no-op sweeps / dead\n"
      "                     spares / infeasible power budgets)\n"
      "\n"
      "serve options:\n"
      "  --port N           serve loopback TCP (0 = ephemeral port; default:\n"
      "                     pipe mode on stdin/stdout)\n"
      "  --sessions N       concurrent session workers (default 2)\n"
      "  --cache-mb N       op-stream cache budget in MiB (default 64)\n"
      "  --payload-dir DIR  pipe mode: mirror result payloads to DIR/<id>.out\n"
      "  --certify          certify every soc/field schedule before replying\n"
      "                     (a violation fails the request with an error)\n"
      "\n"
      "submit options (plus the flags of the mirrored command):\n"
      "  --port N           the serve loopback TCP port (required)\n"
      "  --req KIND         campaign|soc|field|memtest|lint|cancel|stats\n"
      "                     (default lint); the positional argument is the\n"
      "                     lint input, campaign/memtest algorithm, or\n"
      "                     cancel target\n"
      "  --id ID            client-chosen request id (default cli)\n"
      "                     exit code: the result event's exit field;\n"
      "                     2 on error events, 1 on cancelled\n"
      "\n"
      "exit codes: 0 success, 1 check failed, 2 usage/input error\n"
      "`pmbist --help` or `pmbist <command> --help` prints this text.\n");
}

[[noreturn]] void usage(const char* why = nullptr) {
  if (why) std::fprintf(stderr, "error: %s\n\n", why);
  print_usage(stderr);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  // `--help` anywhere (and the bare `help` command) wins over everything
  // else: print the usage text on stdout and exit 0, uniformly across
  // subcommands.
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--help") == 0 || std::strcmp(argv[a], "-h") == 0) {
      print_usage(stdout);
      std::exit(0);
    }
  }
  if (argc < 2) usage();
  opt.command = argv[1];
  if (opt.command == "help") {
    print_usage(stdout);
    std::exit(0);
  }
  int i = 2;
  if (i < argc && argv[i][0] != '-') opt.algorithm = argv[i++];
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--arch") opt.arch = value();
    else if (arg == "--addr-bits") opt.addr_bits = std::atoi(value());
    else if (arg == "--word-bits") opt.word_bits = std::atoi(value());
    else if (arg == "--ports") opt.ports = std::atoi(value());
    else if (arg == "--samples") opt.samples = std::atoi(value());
    else if (arg == "--jobs") opt.jobs = std::atoi(value());
    else if (arg == "--kernel") {
      opt.kernel_name = value();
      const auto kernel = march::parse_kernel(opt.kernel_name);
      if (!kernel) usage("--kernel expects scalar, packed or auto");
      opt.kernel = *kernel;
    }
    else if (arg == "--seed") opt.seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--fault") opt.fault_class = value();
    else if (arg == "--program") opt.program_file = value();
    else if (arg == "--chip") opt.chip_file = value();
    else if (arg == "--profile") opt.profile_file = value();
    else if (arg == "--power-budget") opt.power_budget = std::atof(value());
    else if (arg == "--max-failures")
      opt.max_failures = std::strtoull(value(), nullptr, 10);
    else if (arg == "--flat") opt.flat = true;
    else if (arg == "--hex") opt.hex = true;
    else if (arg == "--json") opt.json = true;
    else if (arg == "--storage-depth") opt.storage_depth = std::atoi(value());
    else if (arg == "--buffer-depth") opt.buffer_depth = std::atoi(value());
    else if (arg == "--against") opt.against = value();
    else if (arg == "--fix") opt.fix = true;
    else if (arg == "--certify") opt.certify = true;
    else if (arg == "--emit-schedule") opt.emit_schedule = value();
    else if (arg == "--port") opt.port = std::atoi(value());
    else if (arg == "--sessions") opt.sessions = std::atoi(value());
    else if (arg == "--cache-mb") opt.cache_mb = std::atoi(value());
    else if (arg == "--payload-dir") opt.payload_dir = value();
    else if (arg == "--req") opt.req_kind = value();
    else if (arg == "--id") opt.req_id = value();
    else if (arg == "--size") opt.size_spec = value();
    else if (arg == "--passes") opt.passes = std::atoi(value());
    else if (arg == "--backgrounds") opt.backgrounds = std::atoi(value());
    else if (arg == "--backend") opt.backend_name = value();
    else if (arg == "--huge-pages") opt.huge_pages = true;
    else if (arg == "--inject") opt.inject = true;
    else usage(("unknown option " + arg).c_str());
  }
  return opt;
}

/// Resolves a `--backend` flag; empty text keeps the command's default.
backend::BackendKind backend_of(const Options& opt,
                                backend::BackendKind fallback) {
  if (opt.backend_name.empty()) return fallback;
  const auto parsed = backend::parse_backend(opt.backend_name);
  if (!parsed)
    usage(("--backend expects sim or hostram, not " + opt.backend_name)
              .c_str());
  return *parsed;
}

march::MarchAlgorithm resolve_algorithm(const std::string& name) {
  try {
    return march::by_name(name);
  } catch (const std::out_of_range&) {
    return march::parse(name, "custom");
  }
}

memsim::MemoryGeometry geometry_of(const Options& opt) {
  return memsim::MemoryGeometry{.address_bits = opt.addr_bits,
                                .word_bits = opt.word_bits,
                                .num_ports = opt.ports};
}

int cmd_list(const Options& opt) {
  const auto algorithms = march::all_algorithms();
  std::printf("%-16s %5s %8s %8s\n", "algorithm", "ops/n", "ucode", "pFSM");
  for (const auto& alg : algorithms) {
    const auto ucode = mbist_ucode::assemble(alg);
    std::string why;
    const bool pfsm_ok = mbist_pfsm::is_mappable(alg, &why);
    std::printf("%-16s %5d %7d%c %8s\n", alg.name().c_str(),
                alg.ops_per_cell(), ucode.program.size(),
                ucode.used_repeat ? '*' : ' ', pfsm_ok ? "yes" : "no");
  }
  std::printf("\n(* = Repeat-folded symmetric encoding)\n\n");
  std::printf("static qualification (G guaranteed / p partial / - none):\n");
  const auto& classes = memsim::all_fault_classes();
  std::printf("%s",
              march::format_analysis_table(algorithms, classes, opt.jobs)
                  .c_str());
  return 0;
}

int cmd_assemble(const Options& opt) {
  const auto alg = resolve_algorithm(opt.algorithm);
  if (opt.arch == "pfsm") {
    const auto r = mbist_pfsm::compile(alg);
    std::printf("%s", opt.hex ? r.program.to_hex_text().c_str()
                              : r.program.listing().c_str());
    return 0;
  }
  const auto r = mbist_ucode::assemble(
      alg, {.symmetric_encoding = !opt.flat});
  std::printf("%s", opt.hex ? r.program.to_hex_text().c_str()
                            : r.program.listing().c_str());
  return 0;
}

int cmd_qualify(const Options& opt) {
  const auto alg = resolve_algorithm(opt.algorithm);
  std::printf("%s = %s\n\n", alg.name().c_str(), alg.to_string().c_str());
  const auto verdicts = march::analyze_all(alg, opt.jobs);
  for (auto cls : memsim::all_fault_classes()) {
    std::printf("  %-5s %s\n",
                std::string(memsim::fault_class_name(cls)).c_str(),
                std::string(march::to_string(verdicts.at(cls))).c_str());
  }
  return 0;
}

memsim::FaultClass class_by_name(const std::string& name) {
  for (auto cls : memsim::all_fault_classes())
    if (memsim::fault_class_name(cls) == name) return cls;
  usage(("unknown fault class " + name).c_str());
}

std::string read_file(const std::string& path) {
  std::ifstream is{path};
  if (!is) usage(("cannot open " + path).c_str());
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

int cmd_run(const Options& opt) {
  const bool from_image = !opt.program_file.empty();
  const auto alg = from_image ? march::march_c()  // placeholder, unused
                              : resolve_algorithm(opt.algorithm);
  const auto geometry = geometry_of(opt);

  std::unique_ptr<bist::Controller> controller;
  if (from_image) {
    auto c = std::make_unique<mbist_ucode::MicrocodeController>(
        mbist_ucode::ControllerConfig{.geometry = geometry,
                                      .storage_depth = 64});
    c->load(mbist_ucode::MicrocodeProgram::from_hex_text(
        read_file(opt.program_file)));
    std::printf("loaded image '%s' (%d instructions)\n",
                c->program().name().c_str(), c->program().size());
    controller = std::move(c);
  } else if (opt.arch == "ucode") {
    auto c = std::make_unique<mbist_ucode::MicrocodeController>(
        mbist_ucode::ControllerConfig{.geometry = geometry,
                                      .storage_depth = 64});
    c->load_algorithm(alg, {.symmetric_encoding = !opt.flat});
    controller = std::move(c);
  } else if (opt.arch == "pfsm") {
    auto c = std::make_unique<mbist_pfsm::PfsmController>(
        mbist_pfsm::PfsmConfig{.geometry = geometry, .buffer_depth = 32});
    c->load_algorithm(alg);
    controller = std::move(c);
  } else if (opt.arch == "hardwired") {
    controller = std::make_unique<mbist_hardwired::HardwiredController>(
        alg, mbist_hardwired::HardwiredConfig{.geometry = geometry});
  } else {
    usage("unknown --arch");
  }

  memsim::FaultyMemory memory{geometry, opt.seed};
  if (!opt.fault_class.empty()) {
    const auto universe = march::make_fault_universe(
        class_by_name(opt.fault_class), geometry, opt.seed, 64);
    const auto& fault = universe[opt.seed % universe.size()];
    memory.add_fault(fault);
    std::printf("injected: %s\n", memsim::describe(fault).c_str());
  }

  const auto result = bist::run_session(*controller, memory);
  const std::string label =
      from_image ? "hex image " + opt.program_file : alg.name();
  std::printf("%s on %s: %s\n", controller->name().c_str(), label.c_str(),
              result.passed() ? "PASS" : "FAIL");
  std::printf("  cycles=%llu reads=%llu writes=%llu pauses=%llu\n",
              static_cast<unsigned long long>(result.cycles),
              static_cast<unsigned long long>(result.reads),
              static_cast<unsigned long long>(result.writes),
              static_cast<unsigned long long>(result.pauses));
  for (std::size_t i = 0; i < result.failures.size() && i < 8; ++i) {
    const auto& f = result.failures[i];
    std::printf("  fail[%zu]: addr=0x%X expected=0x%llX actual=0x%llX\n", i,
                f.op.addr, static_cast<unsigned long long>(f.op.data),
                static_cast<unsigned long long>(f.actual));
  }
  return result.passed() ? 0 : 1;
}

int cmd_area(const Options& opt) {
  const auto geometry = geometry_of(opt);
  const auto lib = netlist::TechLibrary::cmos5s();

  mbist_ucode::AreaConfig uc{.geometry = geometry};
  std::printf("%s\n", mbist_ucode::microcode_area(uc).to_string(lib).c_str());
  uc.storage_cell = netlist::StorageCellClass::ScanOnly;
  std::printf("adjusted (scan-only storage): %.1f GE\n\n",
              mbist_ucode::microcode_area(uc).total_ge(lib));
  std::printf(
      "%s\n",
      mbist_pfsm::pfsm_area({.geometry = geometry}).to_string(lib).c_str());
  for (const auto& alg : march::paper_table_algorithms()) {
    const auto r = mbist_hardwired::hardwired_area(alg, {.geometry = geometry});
    std::printf("hardwired %-12s: %8.1f GE  %10.0f um^2\n",
                alg.name().c_str(), r.total_ge(lib), r.total_area_um2(lib));
  }
  return 0;
}

int cmd_coverage(const Options& opt) {
  const auto alg = resolve_algorithm(opt.algorithm);
  const auto geometry = geometry_of(opt);
  const march::CoverageOptions copts{.seed = opt.seed,
                                     .max_instances_per_class = opt.samples,
                                     .jobs = opt.jobs,
                                     .kernel = opt.kernel};
  const std::vector<march::MarchAlgorithm> algs{alg};
  const auto& classes = memsim::all_fault_classes();
  const auto rows = march::coverage_matrix(algs, classes, geometry, copts);
  std::printf("%s", march::format_coverage_table(rows, classes).c_str());
  return 0;
}

int cmd_export_decoder() {
  std::vector<netlist::SopOutput> outputs;
  for (const auto& d : mbist_ucode::decoder_covers())
    outputs.push_back({d.name, d.cover});
  std::printf("%s\n",
              netlist::emit_sop_module("ucode_decoder",
                                       mbist_ucode::decoder_input_names(),
                                       outputs)
                  .c_str());
  std::printf("%s",
              netlist::emit_fsm_module(mbist_pfsm::lower_controller_fsm(),
                                       "pfsm_lower_ctrl")
                  .c_str());
  return 0;
}

int cmd_export(const Options& opt) {
  if (opt.algorithm.empty()) {
    // No algorithm: emit the full programmable unit (storage, decoder,
    // datapath) — it runs any algorithm, so none is needed.
    std::printf("%s",
                mbist_ucode::emit_controller_rtl(
                    {.geometry = geometry_of(opt), .storage_depth = 32})
                    .c_str());
    return 0;
  }
  const auto alg = resolve_algorithm(opt.algorithm);
  const auto fsm = mbist_hardwired::generate_fsm(
      alg, mbist_hardwired::HardwiredFeatures::for_geometry(geometry_of(opt)));
  std::printf("%s", netlist::emit_fsm_module(
                        fsm, "bist_" + netlist::verilog_identifier(
                                           alg.name()) + "_ctrl")
                        .c_str());
  return 0;
}

int cmd_lint(const Options& opt) {
  // The positional argument is a path when it opens as a file, otherwise
  // inline text (a library algorithm name or DSL string).
  std::string text;
  std::string unit;
  if (std::ifstream probe{opt.algorithm}; probe) {
    std::ostringstream os;
    os << probe.rdbuf();
    text = os.str();
    unit = opt.algorithm;
  } else {
    text = opt.algorithm;
    unit = "input";
  }
  if (opt.fix) {
    if (unit == "input") {
      std::fprintf(stderr,
                   "error: --fix rewrites the input in place and needs a "
                   "file argument\n");
      return 2;
    }
    const lint::FixResult fixed = lint::fix_text(text, unit);
    std::printf("%s: %s\n", unit.c_str(), fixed.summary.c_str());
    if (fixed.changed) {
      std::ofstream out{opt.algorithm, std::ios::trunc};
      if (!out) {
        std::fprintf(stderr, "error: cannot rewrite %s\n",
                     opt.algorithm.c_str());
        return 2;
      }
      out << fixed.text;
      text = fixed.text;
    }
  }
  // --against accepts a path (e.g. a .march file) or inline text, like the
  // positional input.
  std::string against = opt.against;
  if (!against.empty()) {
    if (std::ifstream probe{against}; probe) {
      std::ostringstream os;
      os << probe.rdbuf();
      against = os.str();
    }
  }
  // --chip and --profile (for mission profiles and schedules) are always
  // paths.
  std::string chip_text;
  if (!opt.chip_file.empty()) chip_text = read_file(opt.chip_file);
  std::string profile_text;
  if (!opt.profile_file.empty()) profile_text = read_file(opt.profile_file);
  const lint::LintOptions lopts{.storage_depth = opt.storage_depth,
                                .buffer_depth = opt.buffer_depth,
                                .chip = chip_text,
                                .profile = profile_text,
                                .certify = opt.certify,
                                .against = against};
  const lint::Report report = lint::lint_text(text, unit, lopts);
  // format_cli is shared with the serve layer: serve lint payloads are
  // byte-identical to this stdout by construction.
  std::fputs(lint::format_cli(report, unit, opt.json).c_str(), stdout);
  return report.has_errors() ? 1 : 0;
}

/// Writes `text` to `path` (for --emit-schedule); exits 2 when the file
/// cannot be created.
void write_file(const std::string& path, const std::string& text) {
  std::ofstream out{path, std::ios::trunc};
  if (!out) usage(("cannot write " + path).c_str());
  out << text;
}

/// Prints a certificate report on stderr — stdout stays byte-identical to
/// the serve payloads — and reports whether the schedule failed.
bool certificate_failed(const lint::Report& report, const char* what) {
  if (report.empty()) {
    std::fprintf(stderr, "certificate: %s OK\n", what);
    return false;
  }
  std::fputs(lint::format_text(report).c_str(), stderr);
  return report.has_errors();
}

int cmd_soc(const Options& opt) {
  soc::ChipFile chip;
  if (opt.chip_file.empty()) {
    chip = {soc::demo_soc(), soc::demo_plan()};
    std::printf("no --chip given: running the built-in demo chip\n");
  } else {
    chip = soc::load_chip_file(opt.chip_file);
  }
  if (opt.power_budget >= 0.0) chip.plan.set_power_budget(opt.power_budget);

  const auto result = soc::run_soc(
      chip.description, chip.plan,
      {.jobs = opt.jobs,
       .max_failures = opt.max_failures,
       .backend = backend_of(opt, backend::BackendKind::Sim)});

  // The report body is shared with the serve layer (byte-identical serve
  // payloads); wall time is host noise, so it goes to stderr.
  std::fputs(soc::format_soc_report(chip.description, chip.plan, result)
                 .c_str(),
             stdout);
  std::fprintf(stderr, "wall %.3f s\n", result.wall_seconds);
  if (!opt.emit_schedule.empty())
    write_file(opt.emit_schedule,
               soc::to_schedule_text("soc", result.schedule));
  if (opt.certify &&
      certificate_failed(
          lint::certify_soc(chip.description, chip.plan, result.schedule),
          "soc schedule"))
    return 1;
  return result.all_healthy() ? 0 : 1;
}

int cmd_field(const Options& opt) {
  soc::ChipFile chip;
  field::MissionProfile profile;
  if (opt.chip_file.empty()) {
    chip = {soc::demo_soc(), soc::demo_plan()};
    std::printf("no --chip given: running the built-in demo chip\n");
  } else {
    chip = soc::load_chip_file(opt.chip_file);
  }
  if (opt.profile_file.empty()) {
    profile = field::demo_profile();
    std::printf("no --profile given: using the built-in demo profile\n");
  } else {
    profile = field::load_profile_file(opt.profile_file);
  }

  const auto report = field::run_field(
      chip.description, chip.plan, profile,
      {.jobs = opt.jobs,
       .max_failures = opt.max_failures,
       .backend = backend_of(opt, backend::BackendKind::Sim)});

  // Shared with the serve layer, same as cmd_soc.
  std::fputs(field::format_field_report(report).c_str(), stdout);
  std::fprintf(stderr, "wall %.3f s\n", report.wall_seconds);
  if (!opt.emit_schedule.empty())
    write_file(opt.emit_schedule,
               field::to_field_schedule_text("field", report.sessions));
  if (opt.certify &&
      certificate_failed(
          lint::certify_field(chip.description, chip.plan, profile, report),
          "field schedule"))
    return 1;
  return report.all_healthy() ? 0 : 1;
}

int cmd_memtest(const Options& opt) {
  const auto alg = resolve_algorithm(
      opt.algorithm.empty() ? "March C" : opt.algorithm);
  const auto size = backend::parse_size_bytes(opt.size_spec);
  if (!size)
    usage(("--size expects BYTES with an optional K/M/G suffix, not " +
           opt.size_spec)
              .c_str());
  backend::MemtestOptions mopts;
  mopts.size_bytes = *size;
  mopts.passes = opt.passes;
  mopts.backgrounds = opt.backgrounds;
  mopts.jobs = opt.jobs;
  mopts.backend = backend_of(opt, backend::BackendKind::HostRam);
  mopts.huge_pages = opt.huge_pages;
  mopts.max_failures = opt.max_failures;
  mopts.inject_error = opt.inject;
  const auto report = backend::run_memtest(alg, mopts);
  // The deterministic report is shared with the serve layer (byte-identical
  // payloads); throughput is host noise, so it goes to stderr like the
  // soc/field wall line.
  std::fputs(backend::format_memtest_report(report).c_str(), stdout);
  std::fputs(backend::format_memtest_throughput(report).c_str(), stderr);
  return report.passed() ? 0 : 1;
}

int cmd_serve(const Options& opt) {
  serve::ServerOptions sopts;
  sopts.sessions = opt.sessions;
  sopts.stream_cache_bytes =
      static_cast<std::size_t>(opt.cache_mb < 0 ? 0 : opt.cache_mb) << 20;
  sopts.certify = opt.certify;
  serve::Server server{sopts};

  if (opt.port >= 0) {
    std::string error;
    const int rc = server.serve_tcp(
        opt.port,
        [](int bound) {
          std::fprintf(stderr, "serving on 127.0.0.1:%d\n", bound);
        },
        &error);
    if (rc != 0) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    return 0;
  }
  server.run_pipe(std::cin, std::cout, opt.payload_dir);
  return 0;
}

/// Builds the serve request line a `pmbist submit` invocation stands for.
/// Field names and defaults mirror src/serve/protocol.cpp exactly; fields
/// a kind does not whitelist are never emitted (the server hard-errors on
/// unknown fields).
std::string submit_request_line(const Options& opt) {
  namespace json = common::json;
  const std::string& kind = opt.req_kind;
  if (kind != "campaign" && kind != "soc" && kind != "field" &&
      kind != "memtest" && kind != "lint" && kind != "cancel" &&
      kind != "stats")
    usage(("--req expects campaign, soc, field, memtest, lint, cancel or "
           "stats, not " + kind).c_str());

  // Like cmd_lint's positional: a path when it opens, else inline text.
  auto file_or_inline = [](const std::string& arg, std::string* unit) {
    if (std::ifstream probe{arg}; probe) {
      std::ostringstream os;
      os << probe.rdbuf();
      if (unit != nullptr) *unit = arg;
      return os.str();
    }
    return arg;
  };

  json::Value req = json::Value::object();
  req.set("id", json::Value::string(opt.req_id));
  req.set("kind", json::Value::string(kind));
  if (kind == "lint") {
    if (opt.algorithm.empty())
      usage("submit --req lint needs an input file or inline text");
    std::string unit = "input";
    req.set("input",
            json::Value::string(file_or_inline(opt.algorithm, &unit)));
    req.set("unit", json::Value::string(unit));
    if (opt.json) req.set("json", json::Value::boolean(true));
    req.set("storage_depth",
            json::Value::number(static_cast<std::int64_t>(opt.storage_depth)));
    req.set("buffer_depth",
            json::Value::number(static_cast<std::int64_t>(opt.buffer_depth)));
    if (!opt.against.empty())
      req.set("against",
              json::Value::string(file_or_inline(opt.against, nullptr)));
    if (!opt.chip_file.empty())
      req.set("chip", json::Value::string(read_file(opt.chip_file)));
    if (!opt.profile_file.empty())
      req.set("profile", json::Value::string(read_file(opt.profile_file)));
    if (opt.certify) req.set("certify", json::Value::boolean(true));
  } else if (kind == "campaign") {
    if (opt.algorithm.empty())
      usage("submit --req campaign needs an algorithm name or DSL string");
    req.set("algorithm", json::Value::string(opt.algorithm));
    req.set("addr_bits",
            json::Value::number(static_cast<std::int64_t>(opt.addr_bits)));
    req.set("word_bits",
            json::Value::number(static_cast<std::int64_t>(opt.word_bits)));
    req.set("ports",
            json::Value::number(static_cast<std::int64_t>(opt.ports)));
    req.set("samples",
            json::Value::number(static_cast<std::int64_t>(opt.samples)));
    req.set("seed", json::Value::number(opt.seed));
    req.set("jobs", json::Value::number(static_cast<std::int64_t>(opt.jobs)));
    if (!opt.kernel_name.empty())
      req.set("kernel", json::Value::string(opt.kernel_name));
    if (!opt.fault_class.empty()) {
      json::Value classes = json::Value::array();
      classes.push(json::Value::string(opt.fault_class));
      req.set("classes", std::move(classes));
    }
  } else if (kind == "soc" || kind == "field") {
    if (opt.chip_file.empty())
      usage(("submit --req " + kind + " needs --chip FILE").c_str());
    req.set("chip", json::Value::string(read_file(opt.chip_file)));
    if (kind == "field") {
      if (opt.profile_file.empty())
        usage("submit --req field needs --profile FILE");
      req.set("profile", json::Value::string(read_file(opt.profile_file)));
    }
    req.set("jobs", json::Value::number(static_cast<std::int64_t>(opt.jobs)));
    if (kind == "soc" && opt.power_budget >= 0.0)
      req.set("power_budget", json::Value::number(opt.power_budget));
    req.set("max_failures",
            json::Value::number(
                static_cast<std::uint64_t>(opt.max_failures)));
  } else if (kind == "memtest") {
    if (!opt.algorithm.empty())
      req.set("algorithm", json::Value::string(opt.algorithm));
    const auto size = backend::parse_size_bytes(opt.size_spec);
    if (!size)
      usage(("--size expects BYTES with an optional K/M/G suffix, not " +
             opt.size_spec)
                .c_str());
    const std::uint64_t size_mb = std::max<std::uint64_t>(1, *size >> 20);
    req.set("size_mb", json::Value::number(size_mb));
    req.set("passes",
            json::Value::number(static_cast<std::int64_t>(opt.passes)));
    req.set("backgrounds",
            json::Value::number(static_cast<std::int64_t>(opt.backgrounds)));
    req.set("jobs", json::Value::number(static_cast<std::int64_t>(opt.jobs)));
    if (!opt.backend_name.empty())
      req.set("backend", json::Value::string(opt.backend_name));
    req.set("max_failures",
            json::Value::number(
                static_cast<std::uint64_t>(opt.max_failures)));
  } else if (kind == "cancel") {
    if (opt.algorithm.empty())
      usage("submit --req cancel needs the target session id");
    req.set("target", json::Value::string(opt.algorithm));
  }
  // stats carries only id + kind.
  return req.dump();
}

int cmd_submit(const Options& opt) {
  if (opt.port < 0)
    usage("submit needs --port N (the port a `pmbist serve --port` printed)");
  const std::string line = submit_request_line(opt) + "\n";

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
    return 2;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opt.port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    std::fprintf(stderr, "error: cannot connect to 127.0.0.1:%d: %s\n",
                 opt.port, std::strerror(errno));
    ::close(fd);
    return 2;
  }
  for (std::size_t off = 0; off < line.size();) {
    const ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      std::fprintf(stderr, "error: send: %s\n", std::strerror(errno));
      ::close(fd);
      return 2;
    }
    off += static_cast<std::size_t>(n);
  }
  // Half-close: the server drains this connection's sessions before closing
  // its end, so reading to EOF is guaranteed to see every terminal event.
  ::shutdown(fd, SHUT_WR);

  int exit_code = 2;
  bool terminal = false;
  std::string pending;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = pending.find('\n')) != std::string::npos) {
      const std::string event = pending.substr(0, nl);
      pending.erase(0, nl + 1);
      std::fputs(event.c_str(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);  // events stream live, not at exit
      try {
        const auto v = common::json::Value::parse(event);
        const auto* name = v.find("event");
        if (name == nullptr || !name->is_string()) continue;
        if (name->as_string() == "result") {
          const auto* exit_field = v.find("exit");
          exit_code = exit_field != nullptr && exit_field->is_number()
                          ? static_cast<int>(exit_field->as_i64())
                          : 0;
          terminal = true;
        } else if (name->as_string() == "error") {
          exit_code = 2;
          terminal = true;
        } else if (name->as_string() == "cancelled") {
          exit_code = 1;
          terminal = true;
        }
      } catch (const common::json::JsonError&) {
        // A non-JSON line is the server's bug, not ours: pass it through
        // verbatim and keep the connection-level exit semantics.
      }
    }
  }
  ::close(fd);
  if (!terminal)
    std::fprintf(stderr,
                 "error: connection closed before a terminal event\n");
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_args(argc, argv);
    // --jobs and --kernel are threaded explicitly into every
    // campaign-backed path (qualify, coverage, soc, field, list's
    // qualification matrix) — the engines hold no process-wide defaults.
    if (opt.command == "list") return cmd_list(opt);
    if (opt.command == "export-decoder") return cmd_export_decoder();
    if (opt.command == "soc") return cmd_soc(opt);
    if (opt.command == "field") return cmd_field(opt);
    if (opt.command == "memtest") return cmd_memtest(opt);
    if (opt.command == "serve") return cmd_serve(opt);
    if (opt.command == "submit") return cmd_submit(opt);
    if (opt.algorithm.empty() && opt.command != "area" &&
        !(opt.command == "run" && !opt.program_file.empty()) &&
        opt.command != "export")
      usage("this command needs an algorithm name or DSL string");
    if (opt.command == "assemble") return cmd_assemble(opt);
    if (opt.command == "qualify") return cmd_qualify(opt);
    if (opt.command == "run") return cmd_run(opt);
    if (opt.command == "area") return cmd_area(opt);
    if (opt.command == "coverage") return cmd_coverage(opt);
    if (opt.command == "export") return cmd_export(opt);
    if (opt.command == "lint") return cmd_lint(opt);
    usage(("unknown command " + opt.command).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
