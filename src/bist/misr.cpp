#include "bist/misr.h"

#include <cassert>
#include <stdexcept>

#include "march/expand.h"

namespace pmbist::bist {

Word Misr::polynomial(int width) {
  // Galois (right-shift) tap masks; primitive for the tabulated widths.
  switch (width) {
    case 1: return 0x1;
    case 2: return 0x3;
    case 3: return 0x6;
    case 4: return 0xC;
    case 5: return 0x14;
    case 6: return 0x30;
    case 7: return 0x60;
    case 8: return 0xB8;
    case 16: return 0xB400;
    case 24: return 0xE10000;
    case 32: return 0xA3000000u;
    case 64: return 0xD800000000000000ull;
    default: break;
  }
  if (width < 1 || width > 64)
    throw std::invalid_argument("MISR width must be 1..64");
  // Two top taps: x^w + x^(w-1) + 1 — adequate compaction default.
  return (Word{0x3} << (width - 2));
}

Misr::Misr(int width, Word seed)
    : width_{width},
      poly_{polynomial(width)},
      mask_{width >= 64 ? ~Word{0} : ((Word{1} << width) - 1)} {
  reset(seed);
}

void Misr::reset(Word seed) {
  state_ = seed & mask_;
  count_ = 0;
}

void Misr::absorb(Word value) {
  const bool feedback = state_ & 1u;
  state_ >>= 1;
  if (feedback) state_ ^= poly_;
  state_ = (state_ ^ value) & mask_;
  ++count_;
}

netlist::GateInventory Misr::area(int width) {
  netlist::GateInventory inv =
      netlist::register_bank(width, netlist::RegisterKind::Scan);
  // Feedback XOR per tap, input XOR per bit, plus the final compare
  // against the golden signature.
  inv.add(netlist::Cell::Xor2, __builtin_popcountll(polynomial(width)));
  inv += netlist::xor_bank(width);
  inv += netlist::equality_comparator(width);
  return inv;
}

Word golden_signature(const march::MarchAlgorithm& alg,
                      const memsim::MemoryGeometry& geometry, int misr_width,
                      Word seed) {
  Misr misr{misr_width, seed};
  for (const auto& op : march::expand(alg, geometry))
    if (op.kind == march::MemOp::Kind::Read) misr.absorb(op.data);
  return misr.signature();
}

MisrSessionResult run_session_misr(Controller& controller,
                                   memsim::Memory& memory, int misr_width,
                                   Word golden, Word seed,
                                   const SessionOptions& options) {
  controller.reset();
  MisrSessionResult result;
  result.golden = golden;
  Misr misr{misr_width, seed};

  std::size_t op_index = 0;
  while (!controller.done()) {
    if (result.session.cycles >= options.max_cycles) return result;
    ++result.session.cycles;
    const auto op = controller.step();
    if (!op) continue;
    switch (op->kind) {
      case march::MemOp::Kind::Pause:
        memory.advance_time_ns(op->pause_ns);
        ++result.session.pauses;
        break;
      case march::MemOp::Kind::Write:
        memory.write(op->port, op->addr, op->data);
        ++result.session.writes;
        break;
      case march::MemOp::Kind::Read: {
        const Word actual = memory.read(op->port, op->addr);
        ++result.session.reads;
        misr.absorb(actual);
        if (actual != op->data) {
          ++result.session.mismatches;
          if (result.session.failures.size() < options.max_failures)
            result.session.failures.push_back(
                march::Failure{op_index, *op, actual});
        }
        break;
      }
    }
    ++op_index;
  }
  result.session.state = SessionState::Completed;
  result.signature = misr.signature();
  return result;
}

}  // namespace pmbist::bist
