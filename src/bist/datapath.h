#pragma once
// Shared BIST datapath components: address generator, data (background)
// generator, port sequencer and read comparator.  Every controller in the
// paper — microcode-based, programmable-FSM-based and hardwired — drives
// this same datapath; only the controller differs.  Each component has a
// behavioral model (used by the cycle-accurate controllers) and a
// structural area model (used by the Table 1-3 benches).

#include <optional>

#include "march/expand.h"
#include "netlist/components.h"

namespace pmbist::bist {

using march::AddressOrder;
using memsim::Address;
using memsim::MemoryGeometry;
using memsim::Word;

/// Up/down binary address generator with last-address detection.
class AddressGenerator {
 public:
  explicit AddressGenerator(int address_bits);

  /// Loads the start address for a pass in the given direction.
  void init(AddressOrder order);
  /// Advances one address in the current direction.  Precondition: not at
  /// the last address.
  void step();

  [[nodiscard]] Address current() const noexcept { return current_; }
  [[nodiscard]] bool at_last() const noexcept;
  [[nodiscard]] bool descending() const noexcept { return descending_; }

  /// Structural cost: up/down counter + last-address detection (both end
  /// values) + direction handling.
  [[nodiscard]] static netlist::GateInventory area(int address_bits);

 private:
  int address_bits_;
  Address last_up_;
  Address current_ = 0;
  bool descending_ = false;
};

/// Data background generator.  Bit-oriented memories have the single
/// background 0; word-oriented memories walk the standard backgrounds
/// (march/expand.h).  Test data for march value d is background XOR
/// replicate(d).
class DataGenerator {
 public:
  explicit DataGenerator(int word_bits);

  void reset();
  /// Advances to the next background.  Precondition: not at the last.
  void next();

  [[nodiscard]] Word background() const;
  [[nodiscard]] bool at_last() const noexcept;
  [[nodiscard]] int background_index() const noexcept { return index_; }
  [[nodiscard]] int background_count() const noexcept {
    return static_cast<int>(backgrounds_.size());
  }
  /// Test data word for march value d against the active background.
  [[nodiscard]] Word data_for(bool d) const;

  [[nodiscard]] static netlist::GateInventory area(int word_bits);

 private:
  std::vector<Word> backgrounds_;
  Word mask_;
  int index_ = 0;
};

/// Sequences through the ports of a multiport memory.
class PortSequencer {
 public:
  explicit PortSequencer(int num_ports);

  void reset() { current_ = 0; }
  void next();

  [[nodiscard]] int current() const noexcept { return current_; }
  [[nodiscard]] bool at_last() const noexcept {
    return current_ == num_ports_ - 1;
  }

  [[nodiscard]] static netlist::GateInventory area(int num_ports);

 private:
  int num_ports_;
  int current_ = 0;
};

/// Read comparator (behavioral compare is trivial; this class carries the
/// structural cost: XNOR bank + AND tree + sticky fail flag).
struct Comparator {
  [[nodiscard]] static netlist::GateInventory area(int word_bits);
};

/// Pause timer used by data-retention (Hold) phases: a free-running delay
/// counter with terminal-count detection.
struct PauseTimer {
  static constexpr int kBits = 20;
  [[nodiscard]] static netlist::GateInventory area();
};

/// The full shared datapath for a memory geometry.  `with_pause_timer`
/// includes the retention-delay timer (needed by +/++ algorithm support).
[[nodiscard]] netlist::GateInventory datapath_inventory(
    const MemoryGeometry& geometry, bool with_pause_timer);

/// Same, but broken out into named blocks for hierarchical reports.
void add_datapath_blocks(netlist::AreaReport& report,
                         const MemoryGeometry& geometry,
                         bool with_pause_timer);

}  // namespace pmbist::bist
