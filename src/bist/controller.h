#pragma once
// Common interface of all cycle-accurate BIST controllers.
//
// A controller is a clocked machine: each step() models one functional
// clock cycle and yields at most one memory operation (or a pause event).
// Controllers never branch on read data — march test flow is data
// independent; the comparator only latches pass/fail — so step() takes no
// response and a controller's op stream is a pure function of its program
// and the memory geometry.  That property is what the equivalence tests
// exploit: collect_ops(controller) must equal march::expand(algorithm).

#include <memory>
#include <optional>
#include <string>

#include "march/expand.h"

namespace pmbist::bist {

/// Cycle-accurate BIST controller.
class Controller {
 public:
  virtual ~Controller() = default;

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Human-readable designation ("microcode-based", "March C hardwired"...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Returns to the power-on state (instruction counter / FSM state reset,
  /// datapath cleared).  The loaded program is retained.
  virtual void reset() = 0;

  /// True once the test has terminated.
  [[nodiscard]] virtual bool done() const = 0;

  /// Advances one clock cycle.  Returns the memory operation issued this
  /// cycle, or nullopt for overhead cycles (state transitions, setup).
  virtual std::optional<march::MemOp> step() = 0;

 protected:
  Controller() = default;
};

/// Runs a controller to completion (bounded by `max_cycles`) and collects
/// the full op stream it issues.  Throws std::runtime_error if the bound is
/// hit — a controller that never terminates is a bug.
[[nodiscard]] march::OpStream collect_ops(Controller& controller,
                                          std::uint64_t max_cycles);

/// Cycle count of a full run (overhead cycles included), for test-time
/// benches.  Throws like collect_ops on runaway controllers.
[[nodiscard]] std::uint64_t count_cycles(Controller& controller,
                                         std::uint64_t max_cycles);

}  // namespace pmbist::bist
