#include "bist/controller.h"

#include <stdexcept>

namespace pmbist::bist {

march::OpStream collect_ops(Controller& controller, std::uint64_t max_cycles) {
  controller.reset();
  march::OpStream out;
  std::uint64_t cycles = 0;
  while (!controller.done()) {
    if (++cycles > max_cycles)
      throw std::runtime_error("controller '" + controller.name() +
                               "' exceeded the cycle bound");
    if (auto op = controller.step()) out.push_back(*op);
  }
  return out;
}

std::uint64_t count_cycles(Controller& controller, std::uint64_t max_cycles) {
  controller.reset();
  std::uint64_t cycles = 0;
  while (!controller.done()) {
    if (++cycles > max_cycles)
      throw std::runtime_error("controller '" + controller.name() +
                               "' exceeded the cycle bound");
    (void)controller.step();
  }
  return cycles;
}

}  // namespace pmbist::bist
