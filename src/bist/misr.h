#pragma once
// MISR (multiple-input signature register) response compaction.
//
// The paper's BIST datapath uses a deterministic comparator (expected data
// is regenerated on chip).  The classic alternative — standard in BIST
// practice (Bardell/McAnney/Savir, the paper's ref [1]) — compacts all
// read responses into an LFSR signature and compares one word at the end:
// cheaper observation wiring, no per-cycle expected-data distribution, at
// the cost of a 2^-w aliasing probability and the loss of per-cell failure
// data (which is why diagnostics-oriented BIST, the paper's focus, keeps
// the comparator).  Both datapaths are modeled so the trade-off can be
// measured (bench_misr_compaction).
//
// March read responses are data-independent (every algorithm starts with a
// write sweep), so the golden signature is computed by folding the
// *expected* read values of the reference expansion — exactly what a
// signature-prediction tool would emit.

#include "bist/controller.h"
#include "bist/session.h"
#include "netlist/components.h"

namespace pmbist::bist {

using memsim::Word;

/// Galois LFSR-based multiple-input signature register, 1..64 bits wide.
/// Feedback polynomials are primitive for the tabulated widths
/// (1-8, 16, 24, 32, 64); other widths use a maximal-position two-tap
/// default, which is sufficient for compaction (not necessarily
/// maximal-length).
class Misr {
 public:
  explicit Misr(int width, Word seed = 0);

  void reset(Word seed = 0);
  /// Folds one read response into the signature (one clock of the MISR).
  void absorb(Word value);

  [[nodiscard]] Word signature() const noexcept { return state_; }
  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] std::uint64_t absorbed() const noexcept { return count_; }

  /// Feedback polynomial (tap mask) used for `width`.
  [[nodiscard]] static Word polynomial(int width);
  /// Structural cost: scan flip-flops + feedback XORs + input XOR stage.
  [[nodiscard]] static netlist::GateInventory area(int width);

 private:
  int width_;
  Word poly_;
  Word mask_;
  Word state_ = 0;
  std::uint64_t count_ = 0;
};

/// Golden signature for `alg` over `geometry`: the fold of all expected
/// read values of the reference expansion, in order.
[[nodiscard]] Word golden_signature(const march::MarchAlgorithm& alg,
                                    const memsim::MemoryGeometry& geometry,
                                    int misr_width, Word seed = 0);

/// Result of a signature-compacted BIST run.  The comparator-based session
/// result is carried along so verdicts can be compared.
struct MisrSessionResult {
  SessionResult session;  ///< comparator view (failure log etc.)
  Word signature = 0;     ///< MISR state after the run
  Word golden = 0;        ///< expected signature
  [[nodiscard]] bool signature_pass() const noexcept {
    return session.completed() && signature == golden;
  }
};

/// Runs `controller` against `memory`, compacting every read into a MISR
/// of `misr_width` bits while also keeping the comparator verdict.
MisrSessionResult run_session_misr(Controller& controller,
                                   memsim::Memory& memory, int misr_width,
                                   Word golden, Word seed = 0,
                                   const SessionOptions& options = {});

}  // namespace pmbist::bist
