#include "bist/session.h"

#include "backend/sim_backend.h"

namespace pmbist::bist {

SessionResult run_session(Controller& controller,
                          backend::MemoryBackend& memory,
                          const SessionOptions& options) {
  controller.reset();
  SessionResult result;
  std::size_t op_index = 0;
  while (!controller.done()) {
    if (result.cycles >= options.max_cycles) return result;  // incomplete
    ++result.cycles;
    const auto op = controller.step();
    if (!op) continue;
    switch (op->kind) {
      case march::MemOp::Kind::Pause:
        memory.advance_time_ns(op->pause_ns);
        ++result.pauses;
        break;
      case march::MemOp::Kind::Write:
        memory.write(op->port, op->addr, op->data);
        ++result.writes;
        break;
      case march::MemOp::Kind::Read: {
        const memsim::Word actual = memory.read(op->port, op->addr);
        ++result.reads;
        if (actual != op->data) {
          ++result.mismatches;
          if (result.failures.size() < options.max_failures)
            result.failures.push_back(march::Failure{op_index, *op, actual});
        }
        break;
      }
    }
    ++op_index;
  }
  result.state = SessionState::Completed;
  return result;
}

SessionResult run_session(Controller& controller, memsim::Memory& memory,
                          const SessionOptions& options) {
  backend::SimBackend sim{memory};
  return run_session(controller, sim, options);
}

}  // namespace pmbist::bist
