#pragma once
// BistSession: drives a controller against a memory under test, applying
// each issued operation, comparing read data, and logging failures — the
// role of the BIST unit's comparator and fail-capture logic.

#include "bist/controller.h"
#include "march/coverage.h"
#include "memsim/memory.h"

namespace pmbist::backend {
class MemoryBackend;  // backend/backend.h
}

namespace pmbist::bist {

/// How a BIST run ended.  A session that hits the cycle bound — or is
/// preempted by the in-field manager before the controller terminates — is
/// Interrupted: its counters are valid but it carries no verdict (and no
/// signature; see MisrSessionResult / field::PassResult).
enum class SessionState : std::uint8_t {
  Interrupted,  ///< controller did not terminate; no verdict
  Completed,    ///< controller terminated within the cycle bound
};

/// Outcome of one BIST run.
struct SessionResult {
  SessionState state = SessionState::Interrupted;
  std::uint64_t cycles = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t pauses = 0;
  /// Every read mismatch, counted even after the failure log fills up.
  std::uint64_t mismatches = 0;
  /// Captured failures; capacity-bound by SessionOptions::max_failures, so
  /// failures.size() <= mismatches.
  std::vector<march::Failure> failures;

  [[nodiscard]] bool completed() const noexcept {
    return state == SessionState::Completed;
  }
  [[nodiscard]] bool passed() const noexcept {
    return completed() && mismatches == 0;
  }

  friend bool operator==(const SessionResult&, const SessionResult&) = default;
};

struct SessionOptions {
  std::uint64_t max_cycles = 1'000'000'000;
  std::size_t max_failures = 64;  ///< failure-log capacity (run continues)
};

/// Runs `controller` to completion against a pluggable memory backend —
/// the canonical session loop (backend/backend.h).
SessionResult run_session(Controller& controller,
                          backend::MemoryBackend& memory,
                          const SessionOptions& options = {});

/// Runs `controller` to completion against a behavioral memory.  Wraps
/// `memory` in a borrowing SimBackend, so the access sequence — and hence
/// every result — is bit-identical to driving the simulator directly.
SessionResult run_session(Controller& controller, memsim::Memory& memory,
                          const SessionOptions& options = {});

}  // namespace pmbist::bist
