#include "bist/datapath.h"

#include <bit>
#include <cassert>

namespace pmbist::bist {

using netlist::Cell;
using netlist::GateInventory;

AddressGenerator::AddressGenerator(int address_bits)
    : address_bits_{address_bits},
      last_up_{static_cast<Address>((std::uint64_t{1} << address_bits) - 1)} {
  assert(address_bits >= 1 && address_bits <= 32);
}

void AddressGenerator::init(AddressOrder order) {
  descending_ = order == AddressOrder::Down;
  current_ = descending_ ? last_up_ : 0;
}

void AddressGenerator::step() {
  assert(!at_last() && "stepping past the last address");
  current_ = descending_ ? current_ - 1 : current_ + 1;
}

bool AddressGenerator::at_last() const noexcept {
  return descending_ ? current_ == 0 : current_ == last_up_;
}

GateInventory AddressGenerator::area(int address_bits) {
  GateInventory inv = netlist::up_down_counter(address_bits);
  // Last-address detection for both directions (all-ones and all-zeros)
  // selected by the direction bit.
  inv += netlist::constant_detector(address_bits);  // all-ones
  inv += netlist::constant_detector(address_bits);  // all-zeros (via Q')
  inv.add(Cell::Mux2, 1);
  // Direction flop (loaded per element).
  inv.add(Cell::DffEn, 1);
  return inv;
}

DataGenerator::DataGenerator(int word_bits)
    : backgrounds_{march::standard_backgrounds(word_bits)},
      mask_{word_bits >= 64 ? ~Word{0} : ((Word{1} << word_bits) - 1)} {}

void DataGenerator::reset() { index_ = 0; }

void DataGenerator::next() {
  assert(!at_last() && "advancing past the last background");
  ++index_;
}

Word DataGenerator::background() const {
  return backgrounds_[static_cast<std::size_t>(index_)];
}

bool DataGenerator::at_last() const noexcept {
  return index_ == static_cast<int>(backgrounds_.size()) - 1;
}

Word DataGenerator::data_for(bool d) const {
  return march::apply_background(d, background(), mask_);
}

GateInventory DataGenerator::area(int word_bits) {
  GateInventory inv;
  const int num_bgs =
      static_cast<int>(march::standard_backgrounds(word_bits).size());
  // Polarity application: one XOR per data bit (d vs ~d).
  inv += netlist::xor_bank(word_bits);
  if (num_bgs > 1) {
    const int idx_bits = std::bit_width(unsigned(num_bgs - 1));
    inv += netlist::binary_counter(idx_bits);
    inv += netlist::constant_detector(idx_bits);  // last-background detect
    // Background pattern selection: one mux tree over the hardwired
    // background constants.
    inv += netlist::mux_tree(word_bits, num_bgs);
  }
  return inv;
}

PortSequencer::PortSequencer(int num_ports) : num_ports_{num_ports} {
  assert(num_ports >= 1);
}

void PortSequencer::next() {
  assert(!at_last() && "advancing past the last port");
  ++current_;
}

GateInventory PortSequencer::area(int num_ports) {
  GateInventory inv;
  if (num_ports <= 1) return inv;
  const int bits = std::bit_width(unsigned(num_ports - 1));
  inv += netlist::binary_counter(bits);
  inv += netlist::constant_detector(bits);  // last-port detect
  inv += netlist::decoder(bits);            // per-port enables
  return inv;
}

GateInventory Comparator::area(int word_bits) {
  GateInventory inv = netlist::equality_comparator(word_bits);
  // Expected-data polarity (compare polarity XOR) on each bit.
  inv += netlist::xor_bank(word_bits);
  // Sticky fail flag, gated by compare-enable.
  inv.add(Cell::And2, 1);
  inv.add(Cell::Or2, 1);
  inv.add(Cell::Dff, 1);
  return inv;
}

GateInventory PauseTimer::area() {
  GateInventory inv = netlist::binary_counter(kBits);
  inv += netlist::constant_detector(kBits);
  return inv;
}

GateInventory datapath_inventory(const MemoryGeometry& geometry,
                                 bool with_pause_timer) {
  GateInventory inv;
  inv += AddressGenerator::area(geometry.address_bits);
  inv += DataGenerator::area(geometry.word_bits);
  inv += Comparator::area(geometry.word_bits);
  inv += PortSequencer::area(geometry.num_ports);
  if (with_pause_timer) inv += PauseTimer::area();
  return inv;
}

void add_datapath_blocks(netlist::AreaReport& report,
                         const MemoryGeometry& geometry,
                         bool with_pause_timer) {
  report.add_block("address generator",
                   AddressGenerator::area(geometry.address_bits));
  report.add_block("data generator", DataGenerator::area(geometry.word_bits));
  report.add_block("comparator", Comparator::area(geometry.word_bits));
  if (geometry.num_ports > 1)
    report.add_block("port sequencer",
                     PortSequencer::area(geometry.num_ports));
  if (with_pause_timer) report.add_block("pause timer", PauseTimer::area());
}

}  // namespace pmbist::bist
