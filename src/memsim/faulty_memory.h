#pragma once
// FaultyMemory: a behavioral SRAM with injectable functional faults.
//
// Event semantics (single-fault assumption is typical, but multiple faults
// may be injected; coupling effects deliberately do not cascade through
// other coupling faults, the standard simplification in march-test theory):
//
//   write: address-decoder remap -> per-bit write with SOF loss, SAF
//          masking, TF-blocked transitions, CFst victim override; actual
//          bit transitions trigger CFin/CFid/CFst aggressor effects.
//   read:  remap (empty set -> constant 0 from the precharged bus;
//          multiple cells -> wired-AND), DRF lazy decay, SAF/SOF/RDF/DRDF
//          behavior; every sensed bit refreshes the column sense residue.
//   time:  advance_time_ns() ages all words; a word unwritten for longer
//          than a DRF's hold time decays.

#include <optional>
#include <unordered_map>
#include <vector>

#include "memsim/fault_model.h"
#include "memsim/memory.h"

namespace pmbist::memsim {

/// Behavioral SRAM with injected functional faults.
class FaultyMemory final : public Memory {
 public:
  explicit FaultyMemory(MemoryGeometry geometry,
                        std::uint64_t powerup_seed = 1);

  /// Constructs with explicit power-up contents (one word per address) —
  /// used by the exhaustive analysis engine.  Inject faults *after*
  /// construction.
  FaultyMemory(MemoryGeometry geometry, std::vector<Word> initial_contents);

  /// Injects one fault instance.  Throws std::invalid_argument if the fault
  /// references cells outside the geometry.
  void add_fault(const Fault& fault);

  /// Returns the memory to its just-constructed state: all faults removed,
  /// time rewound, contents re-randomized from `powerup_seed` exactly as
  /// the constructor would.  Much cheaper than reconstructing (no
  /// allocation); the campaign engine resets one memory per worker between
  /// fault instances.
  void reset(std::uint64_t powerup_seed);

  [[nodiscard]] const std::vector<Fault>& faults() const noexcept {
    return faults_;
  }

  [[nodiscard]] Word read(int port, Address addr) override;
  void write(int port, Address addr, Word data) override;
  void advance_time_ns(std::uint64_t ns) override;

  /// Backdoor inspection of the stored (physical) value.
  [[nodiscard]] Word peek(Address addr) const { return cells_.at(addr); }

 private:
  struct CellState {  // per-bit fault bookkeeping
    std::optional<bool> stuck_value;       // SAF
    bool tf_rising_blocked = false;        // TF 0->1
    bool tf_falling_blocked = false;       // TF 1->0
    bool stuck_open = false;               // SOF
    bool read_inverted = false;            // IRF
    bool write_disturb = false;            // WDF
    std::optional<DataRetentionFault> drf;
    std::optional<ReadDestructiveFault> rdf;
  };

  static std::uint64_t key(Address addr, int bit) {
    return (std::uint64_t{addr} << 8) | static_cast<unsigned>(bit);
  }

  [[nodiscard]] bool stored_bit(Address addr, int bit) const;
  void set_stored_bit(Address addr, int bit, bool v);

  /// Applies lazy DRF decay for one bit.
  void settle_bit(Address addr, int bit);

  /// Forces a victim bit (coupling effect), respecting SAF/SOF; does not
  /// trigger further coupling.
  void force_bit(const BitRef& victim, bool value);

  /// Writes one word at a physical cell with all fault semantics.  All
  /// bits are driven simultaneously; coupling disturbs from bits that
  /// transitioned are applied after the write settles (so intra-word
  /// coupling is observable), without cascading through victims.
  void write_word(Address addr, Word data);

  [[nodiscard]] bool read_bit(Address addr, int bit, bool back_to_back);

  [[nodiscard]] std::vector<Address> physical_addresses(Address logical) const;

  std::vector<Fault> faults_;
  std::vector<Word> cells_;
  std::vector<std::uint64_t> last_write_ns_;
  std::uint64_t now_ns_ = 0;
  std::vector<bool> sense_residue_;  ///< per column, last sensed value
  /// Address of the immediately preceding read, if the last operation was a
  /// read (weak-cell / DRDF excitation tracking).
  std::optional<Address> last_read_addr_;

  std::unordered_map<std::uint64_t, CellState> cell_state_;
  std::unordered_map<std::uint64_t, std::vector<InversionCouplingFault>>
      cfin_by_aggressor_;
  std::unordered_map<std::uint64_t, std::vector<IdempotentCouplingFault>>
      cfid_by_aggressor_;
  std::unordered_map<std::uint64_t, std::vector<StateCouplingFault>>
      cfst_by_aggressor_;
  std::unordered_map<std::uint64_t, std::vector<StateCouplingFault>>
      cfst_by_victim_;
  std::unordered_map<Address, std::vector<Address>> af_remap_;
  /// Per-port read-path bit-inversion masks (PortReadFault).
  std::vector<Word> port_read_invert_;
  /// Neighborhood-pattern faults, re-evaluated after every write.
  std::vector<NeighborhoodPatternFault> npsf_;
};

}  // namespace pmbist::memsim
