#pragma once
// Behavioral memory-under-test substrate.
//
// The paper's BIST controllers test embedded SRAMs; we substitute a
// behavioral model that exposes exactly the interface a BIST datapath sees:
// per-port read/write of words, plus a time-advance hook so data-retention
// (pause) test phases are meaningful.  Functional memory faults are modeled
// by the FaultyMemory wrapper (faulty_memory.h); this header defines the
// golden model and the common interface.

#include <cstdint>
#include <vector>

namespace pmbist::memsim {

/// Data word as stored/transferred; word widths up to 64 bits.
using Word = std::uint64_t;
/// Cell address.
using Address = std::uint32_t;

/// Static shape of a memory under test.
struct MemoryGeometry {
  int address_bits = 10;  ///< 2^address_bits words
  int word_bits = 1;      ///< 1 = bit-oriented, >1 = word-oriented
  int num_ports = 1;      ///< >1 = multiport

  [[nodiscard]] std::size_t num_words() const noexcept {
    return std::size_t{1} << address_bits;
  }
  [[nodiscard]] Word word_mask() const noexcept {
    return word_bits >= 64 ? ~Word{0} : ((Word{1} << word_bits) - 1);
  }
  [[nodiscard]] bool bit_oriented() const noexcept { return word_bits == 1; }
  [[nodiscard]] bool multiport() const noexcept { return num_ports > 1; }

  friend bool operator==(const MemoryGeometry&,
                         const MemoryGeometry&) = default;
};

/// Abstract memory-under-test.  Ports are sequentially exercised by the
/// BIST controllers (the paper's multiport support activates one port at a
/// time via "Inc. Port"), so no same-cycle port contention is modeled.
class Memory {
 public:
  explicit Memory(MemoryGeometry geometry) : geometry_{geometry} {}
  virtual ~Memory() = default;

  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  [[nodiscard]] const MemoryGeometry& geometry() const noexcept {
    return geometry_;
  }

  /// Reads the word at `addr` through `port`.
  [[nodiscard]] virtual Word read(int port, Address addr) = 0;

  /// Writes `data` (masked to word width) at `addr` through `port`.
  virtual void write(int port, Address addr, Word data) = 0;

  /// Advances simulated wall-clock time (used by pause/data-retention test
  /// phases; a fault-free memory ignores it).
  virtual void advance_time_ns(std::uint64_t ns) { (void)ns; }

 protected:
  void check_access(int port, Address addr) const;

 private:
  MemoryGeometry geometry_;
};

/// Fault-free SRAM model.  Power-up contents are pseudo-random unless a
/// fill value is given (real SRAM powers up undefined; march algorithms
/// must not depend on initial state, and tests exploit that).
class SramModel final : public Memory {
 public:
  explicit SramModel(MemoryGeometry geometry, std::uint64_t powerup_seed = 1);
  SramModel(MemoryGeometry geometry, Word fill_value, bool /*tag*/);

  [[nodiscard]] Word read(int port, Address addr) override;
  void write(int port, Address addr, Word data) override;

  /// Direct backdoor access (test/diagnosis support; no fault semantics).
  [[nodiscard]] Word peek(Address addr) const { return cells_.at(addr); }
  void poke(Address addr, Word data);

 private:
  std::vector<Word> cells_;
};

}  // namespace pmbist::memsim
