#pragma once
// Physical array topology and address scrambling.
//
// Embedded SRAMs do not lay logical addresses out linearly: row/column
// decoders permute and fold address bits for floorplan reasons, so
// logically adjacent addresses are usually *not* physically adjacent.
// Coupling defects live between physically adjacent cells; a fault list
// for a real device must therefore be generated against the physical
// topology.  March tests are immune to the mapping (every cell pair is
// exercised in both orders regardless of traversal), which this module
// lets tests demonstrate — and it is the foundation any
// neighborhood-pattern-sensitive extension would build on.

#include <vector>

#include "memsim/fault_model.h"

namespace pmbist::memsim {

/// Bijective logical->physical address mapping: a bit permutation plus an
/// XOR folding mask (the common hardware scrambling structure).
class AddressScrambler {
 public:
  /// The identity mapping.
  static AddressScrambler identity(int address_bits);
  /// A deterministic pseudo-random permutation + fold, from `seed`.
  static AddressScrambler scrambled(int address_bits, std::uint64_t seed);

  [[nodiscard]] Address to_physical(Address logical) const;
  [[nodiscard]] Address to_logical(Address physical) const;
  [[nodiscard]] int address_bits() const noexcept { return address_bits_; }
  [[nodiscard]] bool is_identity() const noexcept;

 private:
  AddressScrambler(int address_bits, std::vector<int> bit_perm,
                   Address xor_mask);

  int address_bits_;
  std::vector<int> bit_perm_;      ///< logical bit i drives physical bit_perm_[i]
  std::vector<int> inverse_perm_;
  Address xor_mask_;
};

/// Row/column organization of the physical array.
class ArrayTopology {
 public:
  /// `row_bits` of the physical address select the row; the remaining
  /// low-order bits select the column.
  ArrayTopology(int address_bits, int row_bits, AddressScrambler scrambler);

  [[nodiscard]] int rows() const noexcept { return 1 << row_bits_; }
  [[nodiscard]] int cols() const noexcept {
    return 1 << (address_bits_ - row_bits_);
  }
  [[nodiscard]] const AddressScrambler& scrambler() const noexcept {
    return scrambler_;
  }

  struct RowCol {
    std::uint32_t row = 0;
    std::uint32_t col = 0;
    friend bool operator==(const RowCol&, const RowCol&) = default;
  };
  /// Physical grid location of a logical address.
  [[nodiscard]] RowCol location(Address logical) const;
  /// Logical address at a physical grid location.
  [[nodiscard]] Address at(RowCol rc) const;

  /// The logical addresses of the (up to 4) physically adjacent cells
  /// (von Neumann neighborhood) of `logical`.
  [[nodiscard]] std::vector<Address> neighbors(Address logical) const;

 private:
  int address_bits_;
  int row_bits_;
  AddressScrambler scrambler_;
};

/// Generates inversion-coupling faults between physically adjacent cells —
/// the realistic coupling fault population for this topology.
[[nodiscard]] std::vector<Fault> adjacent_coupling_faults(
    const ArrayTopology& topology, int bit, std::uint64_t seed, int count);

/// Generates static neighborhood-pattern-sensitive faults: random base
/// cells with their physical von Neumann neighborhood, a random required
/// pattern and forced value.
[[nodiscard]] std::vector<Fault> npsf_faults(const ArrayTopology& topology,
                                             int bit, std::uint64_t seed,
                                             int count);

}  // namespace pmbist::memsim
