#include "memsim/faulty_memory.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pmbist::memsim {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FaultyMemory::FaultyMemory(MemoryGeometry geometry, std::uint64_t powerup_seed)
    : Memory{geometry} {
  cells_.resize(geometry.num_words());
  std::uint64_t s = powerup_seed;
  for (auto& w : cells_) w = splitmix64(s) & geometry.word_mask();
  last_write_ns_.assign(geometry.num_words(), 0);
  sense_residue_.assign(static_cast<std::size_t>(geometry.word_bits), false);
}

FaultyMemory::FaultyMemory(MemoryGeometry geometry,
                           std::vector<Word> initial_contents)
    : Memory{geometry}, cells_{std::move(initial_contents)} {
  assert(cells_.size() == geometry.num_words());
  for (auto& w : cells_) w &= geometry.word_mask();
  last_write_ns_.assign(geometry.num_words(), 0);
  sense_residue_.assign(static_cast<std::size_t>(geometry.word_bits), false);
}

void FaultyMemory::reset(std::uint64_t powerup_seed) {
  faults_.clear();
  cell_state_.clear();
  cfin_by_aggressor_.clear();
  cfid_by_aggressor_.clear();
  cfst_by_aggressor_.clear();
  cfst_by_victim_.clear();
  af_remap_.clear();
  port_read_invert_.clear();
  npsf_.clear();
  now_ns_ = 0;
  last_read_addr_.reset();
  std::fill(last_write_ns_.begin(), last_write_ns_.end(), 0);
  std::fill(sense_residue_.begin(), sense_residue_.end(), false);
  std::uint64_t s = powerup_seed;
  for (auto& w : cells_) w = splitmix64(s) & geometry().word_mask();
}

void FaultyMemory::add_fault(const Fault& fault) {
  const auto& g = geometry();
  auto check_bitref = [&](const BitRef& b) {
    if (b.addr >= g.num_words() || b.bit < 0 || b.bit >= g.word_bits)
      throw std::invalid_argument("fault references cell outside geometry: " +
                                  describe(fault));
  };

  std::visit(
      [&](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, StuckAtFault>) {
          check_bitref(f.cell);
          cell_state_[key(f.cell.addr, f.cell.bit)].stuck_value = f.value;
          set_stored_bit(f.cell.addr, f.cell.bit, f.value);
        } else if constexpr (std::is_same_v<T, TransitionFault>) {
          check_bitref(f.cell);
          auto& cs = cell_state_[key(f.cell.addr, f.cell.bit)];
          (f.rising ? cs.tf_rising_blocked : cs.tf_falling_blocked) = true;
        } else if constexpr (std::is_same_v<T, InversionCouplingFault>) {
          check_bitref(f.aggressor);
          check_bitref(f.victim);
          if (f.aggressor == f.victim)
            throw std::invalid_argument("coupling aggressor == victim");
          cfin_by_aggressor_[key(f.aggressor.addr, f.aggressor.bit)]
              .push_back(f);
        } else if constexpr (std::is_same_v<T, IdempotentCouplingFault>) {
          check_bitref(f.aggressor);
          check_bitref(f.victim);
          if (f.aggressor == f.victim)
            throw std::invalid_argument("coupling aggressor == victim");
          cfid_by_aggressor_[key(f.aggressor.addr, f.aggressor.bit)]
              .push_back(f);
        } else if constexpr (std::is_same_v<T, StateCouplingFault>) {
          check_bitref(f.aggressor);
          check_bitref(f.victim);
          if (f.aggressor == f.victim)
            throw std::invalid_argument("coupling aggressor == victim");
          cfst_by_aggressor_[key(f.aggressor.addr, f.aggressor.bit)]
              .push_back(f);
          cfst_by_victim_[key(f.victim.addr, f.victim.bit)].push_back(f);
        } else if constexpr (std::is_same_v<T, AddressDecoderFault>) {
          if (f.logical >= g.num_words())
            throw std::invalid_argument("AF logical address out of range");
          for (Address p : f.physical)
            if (p >= g.num_words())
              throw std::invalid_argument("AF physical address out of range");
          af_remap_[f.logical] = f.physical;
        } else if constexpr (std::is_same_v<T, StuckOpenFault>) {
          check_bitref(f.cell);
          cell_state_[key(f.cell.addr, f.cell.bit)].stuck_open = true;
        } else if constexpr (std::is_same_v<T, DataRetentionFault>) {
          check_bitref(f.cell);
          cell_state_[key(f.cell.addr, f.cell.bit)].drf = f;
        } else if constexpr (std::is_same_v<T, IncorrectReadFault>) {
          check_bitref(f.cell);
          cell_state_[key(f.cell.addr, f.cell.bit)].read_inverted = true;
        } else if constexpr (std::is_same_v<T, WriteDisturbFault>) {
          check_bitref(f.cell);
          cell_state_[key(f.cell.addr, f.cell.bit)].write_disturb = true;
        } else if constexpr (std::is_same_v<T, ReadDestructiveFault>) {
          check_bitref(f.cell);
          cell_state_[key(f.cell.addr, f.cell.bit)].rdf = f;
        } else if constexpr (std::is_same_v<T, NeighborhoodPatternFault>) {
          check_bitref(f.base);
          if (f.neighbors.empty() || f.neighbors.size() > 16)
            throw std::invalid_argument("NPSF needs 1..16 neighbors");
          for (const auto& n : f.neighbors) {
            check_bitref(n);
            if (n == f.base)
              throw std::invalid_argument("NPSF base among its neighbors");
          }
          npsf_.push_back(f);
        } else if constexpr (std::is_same_v<T, PortReadFault>) {
          if (f.port < 0 || f.port >= g.num_ports || f.bit < 0 ||
              f.bit >= g.word_bits)
            throw std::invalid_argument("port fault outside geometry: " +
                                        describe(fault));
          if (port_read_invert_.empty())
            port_read_invert_.assign(
                static_cast<std::size_t>(g.num_ports), 0);
          port_read_invert_[static_cast<std::size_t>(f.port)] |=
              Word{1} << f.bit;
        }
      },
      fault);
  faults_.push_back(fault);
}

bool FaultyMemory::stored_bit(Address addr, int bit) const {
  return (cells_[addr] >> bit) & 1u;
}

void FaultyMemory::set_stored_bit(Address addr, int bit, bool v) {
  if (v)
    cells_[addr] |= Word{1} << bit;
  else
    cells_[addr] &= ~(Word{1} << bit);
}

void FaultyMemory::settle_bit(Address addr, int bit) {
  auto it = cell_state_.find(key(addr, bit));
  if (it == cell_state_.end() || !it->second.drf) return;
  const auto& drf = *it->second.drf;
  if (now_ns_ - last_write_ns_[addr] > drf.hold_time_ns)
    set_stored_bit(addr, bit, drf.leak_to);
}

void FaultyMemory::force_bit(const BitRef& victim, bool value) {
  auto it = cell_state_.find(key(victim.addr, victim.bit));
  if (it != cell_state_.end()) {
    if (it->second.stuck_value) return;  // stuck cells cannot be disturbed
    if (it->second.stuck_open) return;   // open cells cannot be disturbed
  }
  set_stored_bit(victim.addr, victim.bit, value);
}

void FaultyMemory::write_word(Address addr, Word data) {
  // Phase 1: all bits of the word are driven simultaneously.  Compute and
  // commit the raw per-bit results (SAF/SOF/TF semantics), remembering
  // which bits actually transitioned.
  struct Transition {
    int bit;
    bool rising;
  };
  std::vector<Transition> transitions;
  for (int bit = 0; bit < geometry().word_bits; ++bit) {
    settle_bit(addr, bit);
    const bool old = stored_bit(addr, bit);
    const bool desired = (data >> bit) & 1u;
    bool next = desired;
    if (auto it = cell_state_.find(key(addr, bit)); it != cell_state_.end()) {
      const CellState& cs = it->second;
      if (cs.stuck_open) continue;  // write never reaches the cell
      if (cs.stuck_value) continue; // cell holds the stuck value
      if (old != desired) {
        if (desired && cs.tf_rising_blocked) next = old;
        if (!desired && cs.tf_falling_blocked) next = old;
      } else if (cs.write_disturb) {
        next = !old;  // non-transition write flips the cell
      }
    }
    if (next == old) continue;
    set_stored_bit(addr, bit, next);
    transitions.push_back(Transition{bit, next});
  }

  // Phase 2a: state-coupling enforcement — a victim written while its
  // aggressor (possibly just updated in the same word) holds the forcing
  // state does not keep the written value.
  for (int bit = 0; bit < geometry().word_bits; ++bit) {
    if (auto vit = cfst_by_victim_.find(key(addr, bit));
        vit != cfst_by_victim_.end()) {
      for (const auto& f : vit->second) {
        settle_bit(f.aggressor.addr, f.aggressor.bit);
        if (stored_bit(f.aggressor.addr, f.aggressor.bit) ==
            f.aggressor_state)
          force_bit(f.victim, f.forced_value);
      }
    }
  }

  // Phase 2b: aggressor transition effects.  The coupling disturb settles
  // after the write drivers release, so it wins over a simultaneous write
  // to the victim (this is what makes intra-word coupling detectable with
  // data backgrounds).  No cascading through victims.
  for (const auto& tr : transitions) {
    const std::uint64_t k = key(addr, tr.bit);
    if (auto fit = cfin_by_aggressor_.find(k);
        fit != cfin_by_aggressor_.end())
      for (const auto& f : fit->second)
        if (f.on_rising == tr.rising)
          force_bit(f.victim, !stored_bit(f.victim.addr, f.victim.bit));
    if (auto fit = cfid_by_aggressor_.find(k);
        fit != cfid_by_aggressor_.end())
      for (const auto& f : fit->second)
        if (f.on_rising == tr.rising) force_bit(f.victim, f.forced_value);
    if (auto fit = cfst_by_aggressor_.find(k);
        fit != cfst_by_aggressor_.end())
      for (const auto& f : fit->second)
        if (tr.rising == f.aggressor_state)
          force_bit(f.victim, f.forced_value);
  }
}

bool FaultyMemory::read_bit(Address addr, int bit, bool back_to_back) {
  settle_bit(addr, bit);
  bool sensed;
  auto it = cell_state_.find(key(addr, bit));
  if (it == cell_state_.end()) {
    sensed = stored_bit(addr, bit);
  } else {
    const CellState& cs = it->second;
    if (cs.stuck_open) {
      // Open cell: the sense amplifier keeps the previous column value.
      return sense_residue_[static_cast<std::size_t>(bit)];
    }
    if (cs.stuck_value) {
      sensed = *cs.stuck_value;
    } else if (cs.read_inverted) {
      sensed = !stored_bit(addr, bit);  // cell undisturbed
    } else if (cs.rdf && !cs.rdf->deceptive) {
      // RDF: every read flips the cell and senses the flipped value.
      const bool stored = stored_bit(addr, bit);
      sensed = !stored;
      set_stored_bit(addr, bit, !stored);
    } else if (cs.rdf && cs.rdf->deceptive) {
      // Weak cell: a back-to-back read of the same cell misreads (the
      // broken pull-up/down cannot restore the bitline in time); the cell
      // recovers on any other operation.
      sensed = back_to_back ? !stored_bit(addr, bit) : stored_bit(addr, bit);
    } else {
      sensed = stored_bit(addr, bit);
    }
  }
  sense_residue_[static_cast<std::size_t>(bit)] = sensed;
  return sensed;
}

std::vector<Address> FaultyMemory::physical_addresses(Address logical) const {
  if (auto it = af_remap_.find(logical); it != af_remap_.end())
    return it->second;
  return {logical};
}

Word FaultyMemory::read(int port, Address addr) {
  check_access(port, addr);
  const auto physical = physical_addresses(addr);
  if (physical.empty()) {
    // No cell selected: the precharged-and-equalized bitlines resolve to a
    // constant at the sense amplifier (modeled as all-zeros).
    return 0;
  }
  // Multiple selected cells short their bitlines: wired-AND.
  const bool back_to_back = last_read_addr_ && *last_read_addr_ == addr;
  Word result = geometry().word_mask();
  for (Address pa : physical) {
    Word w = 0;
    for (int b = 0; b < geometry().word_bits; ++b)
      if (read_bit(pa, b, back_to_back)) w |= Word{1} << b;
    result &= w;
  }
  last_read_addr_ = addr;
  // Defective port read path inverts its bits after the array access.
  if (!port_read_invert_.empty())
    result ^= port_read_invert_[static_cast<std::size_t>(port)];
  return result;
}

void FaultyMemory::write(int port, Address addr, Word data) {
  check_access(port, addr);
  last_read_addr_.reset();  // any write lets weak cells recover
  data &= geometry().word_mask();
  for (Address pa : physical_addresses(addr)) {
    write_word(pa, data);
    last_write_ns_[pa] = now_ns_;
  }
  // Neighborhood-pattern forcing: static NPSFs hold the base cell at the
  // forced value for as long as the neighborhood pattern is present, so
  // re-evaluate after every write (including writes to the base itself).
  for (const auto& f : npsf_) {
    bool match = true;
    for (std::size_t i = 0; i < f.neighbors.size() && match; ++i) {
      const bool want = (f.pattern >> i) & 1u;
      if (stored_bit(f.neighbors[i].addr, f.neighbors[i].bit) != want)
        match = false;
    }
    if (match) force_bit(f.base, f.forced_value);
  }
}

void FaultyMemory::advance_time_ns(std::uint64_t ns) {
  now_ns_ += ns;
  last_read_addr_.reset();  // pauses let weak cells recover
}

}  // namespace pmbist::memsim
