#include "memsim/fault_model.h"

#include <sstream>

namespace pmbist::memsim {
namespace {

struct ClassVisitor {
  FaultClass operator()(const StuckAtFault&) const { return FaultClass::SAF; }
  FaultClass operator()(const TransitionFault&) const { return FaultClass::TF; }
  FaultClass operator()(const InversionCouplingFault&) const {
    return FaultClass::CFin;
  }
  FaultClass operator()(const IdempotentCouplingFault&) const {
    return FaultClass::CFid;
  }
  FaultClass operator()(const StateCouplingFault&) const {
    return FaultClass::CFst;
  }
  FaultClass operator()(const AddressDecoderFault&) const {
    return FaultClass::AF;
  }
  FaultClass operator()(const StuckOpenFault&) const { return FaultClass::SOF; }
  FaultClass operator()(const DataRetentionFault&) const {
    return FaultClass::DRF;
  }
  FaultClass operator()(const IncorrectReadFault&) const {
    return FaultClass::IRF;
  }
  FaultClass operator()(const WriteDisturbFault&) const {
    return FaultClass::WDF;
  }
  FaultClass operator()(const ReadDestructiveFault& f) const {
    return f.deceptive ? FaultClass::DRDF : FaultClass::RDF;
  }
  FaultClass operator()(const NeighborhoodPatternFault&) const {
    return FaultClass::NPSF;
  }
  FaultClass operator()(const PortReadFault&) const { return FaultClass::PF; }
};

std::ostream& operator<<(std::ostream& os, const BitRef& b) {
  return os << "[" << b.addr << "." << b.bit << "]";
}

}  // namespace

FaultClass fault_class(const Fault& f) { return std::visit(ClassVisitor{}, f); }

std::string_view fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::SAF: return "SAF";
    case FaultClass::TF: return "TF";
    case FaultClass::CFin: return "CFin";
    case FaultClass::CFid: return "CFid";
    case FaultClass::CFst: return "CFst";
    case FaultClass::AF: return "AF";
    case FaultClass::SOF: return "SOF";
    case FaultClass::DRF: return "DRF";
    case FaultClass::IRF: return "IRF";
    case FaultClass::WDF: return "WDF";
    case FaultClass::RDF: return "RDF";
    case FaultClass::DRDF: return "DRDF";
    case FaultClass::NPSF: return "NPSF";
    case FaultClass::PF: return "PF";
    case FaultClass::LF: return "LF";
  }
  return "?";
}

const std::vector<FaultClass>& all_fault_classes() {
  static const std::vector<FaultClass> kAll{
      FaultClass::SAF, FaultClass::TF,   FaultClass::CFin, FaultClass::CFid,
      FaultClass::CFst, FaultClass::AF,  FaultClass::SOF,  FaultClass::DRF,
      FaultClass::IRF, FaultClass::WDF, FaultClass::RDF,  FaultClass::DRDF};
  return kAll;
}

std::string describe(const Fault& f) {
  std::ostringstream os;
  os << fault_class_name(fault_class(f)) << " ";
  std::visit(
      [&os](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, StuckAtFault>) {
          os << v.cell << " stuck-at-" << (v.value ? 1 : 0);
        } else if constexpr (std::is_same_v<T, TransitionFault>) {
          os << v.cell << (v.rising ? " 0->1 blocked" : " 1->0 blocked");
        } else if constexpr (std::is_same_v<T, InversionCouplingFault>) {
          os << "agg" << v.aggressor << (v.on_rising ? " rise" : " fall")
             << " inverts victim" << v.victim;
        } else if constexpr (std::is_same_v<T, IdempotentCouplingFault>) {
          os << "agg" << v.aggressor << (v.on_rising ? " rise" : " fall")
             << " forces victim" << v.victim << "=" << (v.forced_value ? 1 : 0);
        } else if constexpr (std::is_same_v<T, StateCouplingFault>) {
          os << "agg" << v.aggressor << "==" << (v.aggressor_state ? 1 : 0)
             << " forces victim" << v.victim << "=" << (v.forced_value ? 1 : 0);
        } else if constexpr (std::is_same_v<T, AddressDecoderFault>) {
          os << "addr " << v.logical << " -> {";
          for (std::size_t i = 0; i < v.physical.size(); ++i)
            os << (i ? "," : "") << v.physical[i];
          os << "}";
        } else if constexpr (std::is_same_v<T, StuckOpenFault>) {
          os << v.cell << " open";
        } else if constexpr (std::is_same_v<T, DataRetentionFault>) {
          os << v.cell << " leaks to " << (v.leak_to ? 1 : 0) << " after "
             << v.hold_time_ns << "ns";
        } else if constexpr (std::is_same_v<T, IncorrectReadFault>) {
          os << v.cell << " reads inverted";
        } else if constexpr (std::is_same_v<T, WriteDisturbFault>) {
          os << v.cell << " flips on non-transition writes";
        } else if constexpr (std::is_same_v<T, ReadDestructiveFault>) {
          os << v.cell << (v.deceptive ? " deceptive" : "")
             << " read-destructive";
        } else if constexpr (std::is_same_v<T, NeighborhoodPatternFault>) {
          os << "base" << v.base << " forced " << (v.forced_value ? 1 : 0)
             << " by pattern 0x" << std::hex << v.pattern << std::dec
             << " on {";
          for (std::size_t i = 0; i < v.neighbors.size(); ++i)
            os << (i ? "," : "") << v.neighbors[i];
          os << "}";
        } else if constexpr (std::is_same_v<T, PortReadFault>) {
          os << "port " << v.port << " reads bit " << v.bit << " inverted";
        }
      },
      f);
  return os.str();
}

}  // namespace pmbist::memsim
