#include "memsim/packed_memory.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pmbist::memsim {
namespace {

// Same generator as FaultyMemory's power-up fill: lane L of every packed
// cell must start from the identical pseudo-random word.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

PackedFaultyMemory::PackedFaultyMemory(MemoryGeometry geometry,
                                       std::uint64_t powerup_seed)
    : geometry_{geometry} {
  const std::size_t bits =
      geometry_.num_words() * static_cast<std::size_t>(geometry_.word_bits);
  cells_.resize(bits);
  state_index_.assign(bits, -1);
  addr_flags_.assign(geometry_.num_words(), 0);
  sense_residue_.assign(static_cast<std::size_t>(geometry_.word_bits), 0);
  rising_.resize(static_cast<std::size_t>(geometry_.word_bits));
  falling_.resize(static_cast<std::size_t>(geometry_.word_bits));
  sensed_.resize(static_cast<std::size_t>(geometry_.word_bits));
  reset(powerup_seed);
}

void PackedFaultyMemory::reset(std::uint64_t powerup_seed) {
  for (const std::size_t ci : touched_cells_) state_index_[ci] = -1;
  touched_cells_.clear();
  states_.clear();
  std::fill(addr_flags_.begin(), addr_flags_.end(), 0);
  af_.clear();
  npsf_.clear();
  pf_invert_.clear();
  has_pf_ = false;
  std::fill(sense_residue_.begin(), sense_residue_.end(), 0);
  now_ns_ = 0;
  ops_begun_ = false;
  last_read_valid_ = false;
  divergent_lanes_ = 0;
  divergent_last_read_.clear();
  // Broadcast the scalar power-up word across all 64 lanes.
  std::uint64_t s = powerup_seed;
  const int width = geometry_.word_bits;
  for (std::size_t a = 0; a < geometry_.num_words(); ++a) {
    const Word w = splitmix64(s) & geometry_.word_mask();
    for (int bit = 0; bit < width; ++bit)
      cells_[a * static_cast<std::size_t>(width) +
             static_cast<std::size_t>(bit)] =
          ((w >> bit) & 1u) != 0 ? ~std::uint64_t{0} : 0;
  }
}

PackedFaultyMemory::CellState& PackedFaultyMemory::ensure_state(Address addr,
                                                                int bit) {
  const std::size_t ci = cell_index(addr, bit);
  if (state_index_[ci] < 0) {
    state_index_[ci] = static_cast<std::int32_t>(states_.size());
    states_.emplace_back();
    touched_cells_.push_back(ci);
  }
  return states_[static_cast<std::size_t>(state_index_[ci])];
}

PackedFaultyMemory::CellState* PackedFaultyMemory::state_of(
    Address addr, int bit) noexcept {
  const std::int32_t idx = state_index_[cell_index(addr, bit)];
  return idx < 0 ? nullptr : &states_[static_cast<std::size_t>(idx)];
}

void PackedFaultyMemory::add_fault(int lane, const Fault& fault) {
  if (lane < 0 || lane >= kLanes)
    throw std::invalid_argument("packed fault lane out of range");
  if (ops_begun_)
    throw std::logic_error(
        "PackedFaultyMemory: faults must be injected before operations");
  const std::uint64_t lane_bit = std::uint64_t{1} << lane;
  const auto& g = geometry_;
  auto check_bitref = [&](const BitRef& b) {
    if (b.addr >= g.num_words() || b.bit < 0 || b.bit >= g.word_bits)
      throw std::invalid_argument("fault references cell outside geometry: " +
                                  describe(fault));
  };

  std::visit(
      [&](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, StuckAtFault>) {
          check_bitref(f.cell);
          auto& cs = ensure_state(f.cell.addr, f.cell.bit);
          cs.stuck_mask |= lane_bit;
          cs.stuck_value =
              f.value ? cs.stuck_value | lane_bit : cs.stuck_value & ~lane_bit;
          const std::size_t ci = cell_index(f.cell.addr, f.cell.bit);
          cells_[ci] = f.value ? cells_[ci] | lane_bit : cells_[ci] & ~lane_bit;
        } else if constexpr (std::is_same_v<T, TransitionFault>) {
          check_bitref(f.cell);
          auto& cs = ensure_state(f.cell.addr, f.cell.bit);
          (f.rising ? cs.tf_rising : cs.tf_falling) |= lane_bit;
        } else if constexpr (std::is_same_v<T, InversionCouplingFault>) {
          check_bitref(f.aggressor);
          check_bitref(f.victim);
          if (f.aggressor == f.victim)
            throw std::invalid_argument("coupling aggressor == victim");
          ensure_state(f.aggressor.addr, f.aggressor.bit)
              .cfin.push_back({lane_bit, f.victim, f.on_rising});
          addr_flags_[f.aggressor.addr] |= kHasAggressor;
        } else if constexpr (std::is_same_v<T, IdempotentCouplingFault>) {
          check_bitref(f.aggressor);
          check_bitref(f.victim);
          if (f.aggressor == f.victim)
            throw std::invalid_argument("coupling aggressor == victim");
          ensure_state(f.aggressor.addr, f.aggressor.bit)
              .cfid.push_back({lane_bit, f.victim, f.on_rising,
                               f.forced_value});
          addr_flags_[f.aggressor.addr] |= kHasAggressor;
        } else if constexpr (std::is_same_v<T, StateCouplingFault>) {
          check_bitref(f.aggressor);
          check_bitref(f.victim);
          if (f.aggressor == f.victim)
            throw std::invalid_argument("coupling aggressor == victim");
          const CfstEntry entry{lane_bit, f.aggressor, f.victim,
                                f.aggressor_state, f.forced_value};
          ensure_state(f.aggressor.addr, f.aggressor.bit)
              .cfst_aggressor.push_back(entry);
          ensure_state(f.victim.addr, f.victim.bit)
              .cfst_victim.push_back(entry);
          addr_flags_[f.aggressor.addr] |= kHasAggressor;
          addr_flags_[f.victim.addr] |= kHasCfstVictim;
        } else if constexpr (std::is_same_v<T, AddressDecoderFault>) {
          if (f.logical >= g.num_words())
            throw std::invalid_argument("AF logical address out of range");
          for (Address p : f.physical)
            if (p >= g.num_words())
              throw std::invalid_argument("AF physical address out of range");
          auto& entries = af_[f.logical];
          bool replaced = false;
          for (auto& e : entries)
            if (e.lane == lane_bit) {  // last wins, like the scalar remap
              e.physical = f.physical;
              replaced = true;
            }
          if (!replaced) entries.push_back({lane_bit, f.physical});
          addr_flags_[f.logical] |= kHasAf;
          if (f.physical.empty() && (divergent_lanes_ & lane_bit) == 0) {
            divergent_lanes_ |= lane_bit;
            divergent_last_read_.push_back(
                {lane, last_read_valid_, last_read_addr_});
          }
        } else if constexpr (std::is_same_v<T, StuckOpenFault>) {
          check_bitref(f.cell);
          ensure_state(f.cell.addr, f.cell.bit).stuck_open |= lane_bit;
        } else if constexpr (std::is_same_v<T, DataRetentionFault>) {
          check_bitref(f.cell);
          auto& cs = ensure_state(f.cell.addr, f.cell.bit);
          cs.drf_mask |= lane_bit;
          bool replaced = false;
          for (auto& e : cs.drf)
            if (e.lane == lane_bit) {  // last wins, like the scalar optional
              e.leak_to = f.leak_to;
              e.hold_time_ns = f.hold_time_ns;
              replaced = true;
            }
          if (!replaced)
            cs.drf.push_back({lane_bit, f.leak_to, f.hold_time_ns, 0});
          addr_flags_[f.cell.addr] |= kHasDrf;
        } else if constexpr (std::is_same_v<T, IncorrectReadFault>) {
          check_bitref(f.cell);
          ensure_state(f.cell.addr, f.cell.bit).read_invert |= lane_bit;
        } else if constexpr (std::is_same_v<T, WriteDisturbFault>) {
          check_bitref(f.cell);
          ensure_state(f.cell.addr, f.cell.bit).write_disturb |= lane_bit;
        } else if constexpr (std::is_same_v<T, ReadDestructiveFault>) {
          check_bitref(f.cell);
          auto& cs = ensure_state(f.cell.addr, f.cell.bit);
          cs.rdf_mask |= lane_bit;
          cs.rdf_deceptive = f.deceptive ? cs.rdf_deceptive | lane_bit
                                         : cs.rdf_deceptive & ~lane_bit;
        } else if constexpr (std::is_same_v<T, NeighborhoodPatternFault>) {
          check_bitref(f.base);
          if (f.neighbors.empty() || f.neighbors.size() > 16)
            throw std::invalid_argument("NPSF needs 1..16 neighbors");
          for (const auto& n : f.neighbors) {
            check_bitref(n);
            if (n == f.base)
              throw std::invalid_argument("NPSF base among its neighbors");
          }
          npsf_.push_back({lane_bit, f});
        } else if constexpr (std::is_same_v<T, PortReadFault>) {
          if (f.port < 0 || f.port >= g.num_ports || f.bit < 0 ||
              f.bit >= g.word_bits)
            throw std::invalid_argument("port fault outside geometry: " +
                                        describe(fault));
          if (pf_invert_.empty())
            pf_invert_.assign(static_cast<std::size_t>(g.num_ports) *
                                  static_cast<std::size_t>(g.word_bits),
                              0);
          pf_invert_[static_cast<std::size_t>(f.port) *
                         static_cast<std::size_t>(g.word_bits) +
                     static_cast<std::size_t>(f.bit)] |= lane_bit;
          has_pf_ = true;
        }
      },
      fault);
}

void PackedFaultyMemory::settle(Address addr, int bit, CellState& st,
                                std::uint64_t mask) {
  const std::uint64_t candidates = st.drf_mask & mask;
  if (candidates == 0) return;
  const std::size_t ci = cell_index(addr, bit);
  for (const auto& e : st.drf) {
    if ((e.lane & candidates) == 0) continue;
    if (now_ns_ - e.last_write_ns > e.hold_time_ns)
      cells_[ci] = e.leak_to ? cells_[ci] | e.lane : cells_[ci] & ~e.lane;
  }
}

void PackedFaultyMemory::settle_ref(const BitRef& ref, std::uint64_t mask) {
  if (CellState* st = state_of(ref.addr, ref.bit); st != nullptr)
    settle(ref.addr, ref.bit, *st, mask);
}

void PackedFaultyMemory::force_lanes(const BitRef& victim, std::uint64_t lanes,
                                     bool value) {
  if (CellState* st = state_of(victim.addr, victim.bit); st != nullptr) {
    lanes &= ~(st->stuck_mask | st->stuck_open);  // undisturbable lanes
    if (lanes == 0) return;
  }
  const std::size_t ci = cell_index(victim.addr, victim.bit);
  cells_[ci] = value ? cells_[ci] | lanes : cells_[ci] & ~lanes;
}

void PackedFaultyMemory::write_word(Address addr, Word data,
                                    std::uint64_t mask) {
  const int width = geometry_.word_bits;
  std::uint64_t any_transition = 0;

  // Phase 1: all bits driven simultaneously; per lane, SAF/SOF hold,
  // TF blocks the attempted transition, WDF flips non-transition writes.
  for (int bit = 0; bit < width; ++bit) {
    const std::size_t ci = cell_index(addr, bit);
    const bool desired = ((data >> bit) & 1u) != 0;
    const std::int32_t idx = state_index_[ci];
    std::uint64_t rise = 0;
    std::uint64_t fall = 0;
    if (idx < 0) {
      const std::uint64_t old = cells_[ci];
      const std::uint64_t changed =
          (desired ? ~old : old) & mask;
      rise = desired ? changed : 0;
      fall = desired ? 0 : changed;
      cells_[ci] = old ^ changed;
    } else {
      CellState& st = states_[static_cast<std::size_t>(idx)];
      settle(addr, bit, st, mask);
      const std::uint64_t old = cells_[ci];
      const std::uint64_t effective =
          mask & ~(st.stuck_open | st.stuck_mask);
      if (desired) {
        rise = effective & ~old & ~st.tf_rising;
        fall = effective & old & st.write_disturb;
      } else {
        fall = effective & old & ~st.tf_falling;
        rise = effective & ~old & st.write_disturb;
      }
      cells_[ci] = old ^ rise ^ fall;
    }
    rising_[static_cast<std::size_t>(bit)] = rise;
    falling_[static_cast<std::size_t>(bit)] = fall;
    any_transition |= rise | fall;
  }

  const std::uint8_t flags = addr_flags_[addr];

  // Phase 2a: CFst enforcement on every written victim bit — a victim
  // written while its aggressor (possibly updated in the same word) holds
  // the forcing state does not keep the written value.
  if ((flags & kHasCfstVictim) != 0) {
    for (int bit = 0; bit < width; ++bit) {
      CellState* st = state_of(addr, bit);
      if (st == nullptr || st->cfst_victim.empty()) continue;
      for (const auto& f : st->cfst_victim) {
        const std::uint64_t lane = f.lane & mask;
        if (lane == 0) continue;
        settle_ref(f.aggressor, lane);
        const bool aggressor_set =
            (cells_[cell_index(f.aggressor.addr, f.aggressor.bit)] & lane) !=
            0;
        if (aggressor_set == f.aggressor_state)
          force_lanes(f.victim, lane, f.forced_value);
      }
    }
  }

  // Phase 2b: aggressor-transition effects (CFin / CFid / CFst), applied
  // after the write drivers release, in bit order then injection order —
  // exactly the scalar transition walk.  No cascading through victims.
  if ((flags & kHasAggressor) != 0 && any_transition != 0) {
    for (int bit = 0; bit < width; ++bit) {
      const std::uint64_t rise = rising_[static_cast<std::size_t>(bit)];
      const std::uint64_t fall = falling_[static_cast<std::size_t>(bit)];
      if ((rise | fall) == 0) continue;
      CellState* st = state_of(addr, bit);
      if (st == nullptr) continue;
      for (const auto& f : st->cfin) {
        const std::uint64_t lane = (f.on_rising ? rise : fall) & f.lane;
        if (lane == 0) continue;
        const bool current =
            (cells_[cell_index(f.victim.addr, f.victim.bit)] & lane) != 0;
        force_lanes(f.victim, lane, !current);
      }
      for (const auto& f : st->cfid) {
        const std::uint64_t lane = (f.on_rising ? rise : fall) & f.lane;
        if (lane != 0) force_lanes(f.victim, lane, f.forced_value);
      }
      for (const auto& f : st->cfst_aggressor) {
        const std::uint64_t lane = (f.aggressor_state ? rise : fall) & f.lane;
        if (lane != 0) force_lanes(f.victim, lane, f.forced_value);
      }
    }
  }
}

void PackedFaultyMemory::write_and_stamp(Address addr, Word data,
                                         std::uint64_t mask) {
  write_word(addr, data, mask);
  if ((addr_flags_[addr] & kHasDrf) == 0) return;
  // The scalar model stamps last_write_ns_[addr] after the word settles;
  // per lane that is exactly the retention entries of the lanes whose
  // write reached this physical address.
  for (int bit = 0; bit < geometry_.word_bits; ++bit) {
    CellState* st = state_of(addr, bit);
    if (st == nullptr || (st->drf_mask & mask) == 0) continue;
    for (auto& e : st->drf)
      if ((e.lane & mask) != 0) e.last_write_ns = now_ns_;
  }
}

void PackedFaultyMemory::read_cell(Address addr, std::uint64_t mask,
                                   std::uint64_t b2b) {
  const int width = geometry_.word_bits;
  for (int bit = 0; bit < width; ++bit) {
    const std::size_t ci = cell_index(addr, bit);
    const std::size_t col = static_cast<std::size_t>(bit);
    const std::int32_t idx = state_index_[ci];
    if (idx < 0) {
      const std::uint64_t stored = cells_[ci];
      sensed_[col] = stored;
      sense_residue_[col] = (sense_residue_[col] & ~mask) | (stored & mask);
      continue;
    }
    CellState& st = states_[static_cast<std::size_t>(idx)];
    settle(addr, bit, st, mask);
    const std::uint64_t stored = cells_[ci];
    // Mutually exclusive per-lane behaviors in scalar precedence order:
    // SOF > SAF > IRF > RDF/DRDF > plain.
    const std::uint64_t m_open = st.stuck_open & mask;
    std::uint64_t rest = mask & ~st.stuck_open;
    const std::uint64_t m_stuck = st.stuck_mask & rest;
    rest &= ~st.stuck_mask;
    const std::uint64_t m_irf = st.read_invert & rest;
    rest &= ~st.read_invert;
    const std::uint64_t m_flip = st.rdf_mask & ~st.rdf_deceptive & rest;
    const std::uint64_t m_weak = st.rdf_mask & st.rdf_deceptive & rest;
    const std::uint64_t m_plain = rest & ~st.rdf_mask;
    const std::uint64_t sensed =
        (stored & m_plain) | (st.stuck_value & m_stuck) |
        (~stored & (m_irf | m_flip)) |
        (m_weak & ((stored & ~b2b) | (~stored & b2b))) |
        (sense_residue_[col] & m_open);
    cells_[ci] = stored ^ m_flip;  // RDF: the read flips the cell
    // Open lanes keep the previous column residue (the scalar early
    // return); every other sensed lane refreshes it.
    const std::uint64_t refresh = mask & ~m_open;
    sense_residue_[col] =
        (sense_residue_[col] & ~refresh) | (sensed & refresh);
    sensed_[col] = sensed;
  }
}

bool PackedFaultyMemory::lane_maps_empty(std::uint64_t lane,
                                         Address logical) const {
  const auto it = af_.find(logical);
  if (it == af_.end()) return false;
  for (const auto& e : it->second)
    if (e.lane == lane) return e.physical.empty();
  return false;
}

void PackedFaultyMemory::invalidate_last_read() {
  last_read_valid_ = false;
  for (auto& e : divergent_last_read_) e.valid = false;
}

std::uint64_t PackedFaultyMemory::read(int port, Address addr, Word expected) {
  assert(port >= 0 && port < geometry_.num_ports);
  assert(addr < geometry_.num_words());
  ops_begun_ = true;
  expected &= geometry_.word_mask();

  // Weak-cell (DRDF) excitation: lanes whose immediately preceding
  // operation was a read of this same address.
  std::uint64_t b2b = 0;
  if (last_read_valid_ && last_read_addr_ == addr) b2b = ~divergent_lanes_;
  for (const auto& e : divergent_last_read_)
    if (e.valid && e.addr == addr) b2b |= std::uint64_t{1} << e.lane;

  const int width = geometry_.word_bits;
  std::uint64_t mismatch = 0;
  std::uint64_t base_mask = ~std::uint64_t{0};
  const std::vector<AfEntry>* af_entries = nullptr;
  if ((addr_flags_[addr] & kHasAf) != 0) {
    af_entries = &af_.find(addr)->second;
    for (const auto& e : *af_entries) base_mask &= ~e.lane;
  }

  // Lanes whose decoder is healthy at this address read the one cell.
  if (base_mask != 0) {
    read_cell(addr, base_mask, b2b);
    for (int bit = 0; bit < width; ++bit) {
      std::uint64_t sensed = sensed_[static_cast<std::size_t>(bit)];
      if (has_pf_)
        sensed ^= pf_invert_[static_cast<std::size_t>(port) *
                                 static_cast<std::size_t>(width) +
                             static_cast<std::size_t>(bit)];
      const std::uint64_t want =
          ((expected >> bit) & 1u) != 0 ? ~std::uint64_t{0} : 0;
      mismatch |= (sensed ^ want) & base_mask;
    }
  }

  // AF lanes walk their physical cell set: empty set reads the precharged
  // bitlines (constant 0, no side effects); multiple cells wired-AND.
  if (af_entries != nullptr) {
    for (const auto& e : *af_entries) {
      if (e.physical.empty()) {
        if (expected != 0) mismatch |= e.lane;
        continue;
      }
      Word word = geometry_.word_mask();
      for (const Address pa : e.physical) {
        read_cell(pa, e.lane, b2b);
        Word w = 0;
        for (int bit = 0; bit < width; ++bit)
          if ((sensed_[static_cast<std::size_t>(bit)] & e.lane) != 0)
            w |= Word{1} << bit;
        word &= w;
      }
      if (has_pf_) {
        for (int bit = 0; bit < width; ++bit)
          if ((pf_invert_[static_cast<std::size_t>(port) *
                              static_cast<std::size_t>(width) +
                          static_cast<std::size_t>(bit)] &
               e.lane) != 0)
            word ^= Word{1} << bit;
      }
      if (word != expected) mismatch |= e.lane;
    }
  }

  // Completed reads remember their address; a lane whose decoder selected
  // no cell keeps its previous state (the scalar early return).
  last_read_valid_ = true;
  last_read_addr_ = addr;
  for (auto& e : divergent_last_read_) {
    if (!lane_maps_empty(std::uint64_t{1} << e.lane, addr)) {
      e.valid = true;
      e.addr = addr;
    }
  }
  return mismatch;
}

void PackedFaultyMemory::write(int port, Address addr, Word data) {
  assert(port >= 0 && port < geometry_.num_ports);
  assert(addr < geometry_.num_words());
  (void)port;  // the array write path is port-independent
  ops_begun_ = true;
  invalidate_last_read();  // any write lets weak cells recover
  data &= geometry_.word_mask();

  if ((addr_flags_[addr] & kHasAf) == 0) {
    write_and_stamp(addr, data, ~std::uint64_t{0});
  } else {
    const auto& entries = af_.find(addr)->second;
    std::uint64_t base_mask = ~std::uint64_t{0};
    for (const auto& e : entries) base_mask &= ~e.lane;
    if (base_mask != 0) write_and_stamp(addr, data, base_mask);
    for (const auto& e : entries)
      for (const Address pa : e.physical) write_and_stamp(pa, data, e.lane);
  }

  // Neighborhood-pattern forcing, re-evaluated per lane after every write
  // (including writes to the base itself), like the scalar model.
  for (const auto& n : npsf_) {
    bool match = true;
    for (std::size_t i = 0; i < n.fault.neighbors.size() && match; ++i) {
      const bool want = ((n.fault.pattern >> i) & 1u) != 0;
      const bool held =
          (cells_[cell_index(n.fault.neighbors[i].addr,
                             n.fault.neighbors[i].bit)] &
           n.lane) != 0;
      if (held != want) match = false;
    }
    if (match) force_lanes(n.fault.base, n.lane, n.fault.forced_value);
  }
}

void PackedFaultyMemory::advance_time_ns(std::uint64_t ns) {
  ops_begun_ = true;
  now_ns_ += ns;
  invalidate_last_read();  // pauses let weak cells recover
}

Word PackedFaultyMemory::peek(Address addr, int lane) const {
  const std::uint64_t lane_bit = std::uint64_t{1} << lane;
  Word w = 0;
  for (int bit = 0; bit < geometry_.word_bits; ++bit)
    if ((cells_[cell_index(addr, bit)] & lane_bit) != 0) w |= Word{1} << bit;
  return w;
}

}  // namespace pmbist::memsim
