#include "memsim/memory.h"

#include <cassert>

namespace pmbist::memsim {
namespace {

// splitmix64: cheap deterministic power-up pattern generator.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void Memory::check_access(int port, Address addr) const {
  assert(port >= 0 && port < geometry_.num_ports && "port out of range");
  assert(addr < geometry_.num_words() && "address out of range");
  (void)port;
  (void)addr;
}

SramModel::SramModel(MemoryGeometry geometry, std::uint64_t powerup_seed)
    : Memory{geometry} {
  cells_.resize(geometry.num_words());
  std::uint64_t s = powerup_seed;
  for (auto& w : cells_) w = splitmix64(s) & geometry.word_mask();
}

SramModel::SramModel(MemoryGeometry geometry, Word fill_value, bool /*tag*/)
    : Memory{geometry} {
  cells_.assign(geometry.num_words(), fill_value & geometry.word_mask());
}

Word SramModel::read(int port, Address addr) {
  check_access(port, addr);
  return cells_[addr];
}

void SramModel::write(int port, Address addr, Word data) {
  check_access(port, addr);
  cells_[addr] = data & geometry().word_mask();
}

void SramModel::poke(Address addr, Word data) {
  cells_.at(addr) = data & geometry().word_mask();
}

}  // namespace pmbist::memsim
