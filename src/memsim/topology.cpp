#include "memsim/topology.h"

#include <cassert>
#include <numeric>

namespace pmbist::memsim {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

AddressScrambler::AddressScrambler(int address_bits,
                                   std::vector<int> bit_perm,
                                   Address xor_mask)
    : address_bits_{address_bits},
      bit_perm_{std::move(bit_perm)},
      inverse_perm_(static_cast<std::size_t>(address_bits)),
      xor_mask_{xor_mask} {
  assert(static_cast<int>(bit_perm_.size()) == address_bits);
  for (int i = 0; i < address_bits; ++i)
    inverse_perm_[static_cast<std::size_t>(
        bit_perm_[static_cast<std::size_t>(i)])] = i;
}

AddressScrambler AddressScrambler::identity(int address_bits) {
  std::vector<int> perm(static_cast<std::size_t>(address_bits));
  std::iota(perm.begin(), perm.end(), 0);
  return AddressScrambler{address_bits, std::move(perm), 0};
}

AddressScrambler AddressScrambler::scrambled(int address_bits,
                                             std::uint64_t seed) {
  std::vector<int> perm(static_cast<std::size_t>(address_bits));
  std::iota(perm.begin(), perm.end(), 0);
  std::uint64_t s = seed * 2 + 1;
  for (int i = address_bits - 1; i > 0; --i) {
    const auto j = static_cast<int>(splitmix64(s) %
                                    static_cast<std::uint64_t>(i + 1));
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  const Address mask =
      static_cast<Address>(splitmix64(s)) &
      static_cast<Address>((std::uint64_t{1} << address_bits) - 1);
  return AddressScrambler{address_bits, std::move(perm), mask};
}

Address AddressScrambler::to_physical(Address logical) const {
  Address out = 0;
  for (int i = 0; i < address_bits_; ++i)
    if ((logical >> i) & 1u)
      out |= Address{1} << bit_perm_[static_cast<std::size_t>(i)];
  return out ^ xor_mask_;
}

Address AddressScrambler::to_logical(Address physical) const {
  const Address p = physical ^ xor_mask_;
  Address out = 0;
  for (int i = 0; i < address_bits_; ++i)
    if ((p >> i) & 1u)
      out |= Address{1} << inverse_perm_[static_cast<std::size_t>(i)];
  return out;
}

bool AddressScrambler::is_identity() const noexcept {
  if (xor_mask_ != 0) return false;
  for (int i = 0; i < address_bits_; ++i)
    if (bit_perm_[static_cast<std::size_t>(i)] != i) return false;
  return true;
}

ArrayTopology::ArrayTopology(int address_bits, int row_bits,
                             AddressScrambler scrambler)
    : address_bits_{address_bits},
      row_bits_{row_bits},
      scrambler_{std::move(scrambler)} {
  assert(row_bits >= 0 && row_bits <= address_bits);
  assert(scrambler_.address_bits() == address_bits);
}

ArrayTopology::RowCol ArrayTopology::location(Address logical) const {
  const Address p = scrambler_.to_physical(logical);
  const int col_bits = address_bits_ - row_bits_;
  return RowCol{p >> col_bits, p & ((Address{1} << col_bits) - 1)};
}

Address ArrayTopology::at(RowCol rc) const {
  const int col_bits = address_bits_ - row_bits_;
  return scrambler_.to_logical((rc.row << col_bits) | rc.col);
}

std::vector<Address> ArrayTopology::neighbors(Address logical) const {
  const RowCol rc = location(logical);
  std::vector<Address> out;
  out.reserve(4);
  if (rc.row > 0) out.push_back(at({rc.row - 1, rc.col}));
  if (rc.row + 1 < static_cast<std::uint32_t>(rows()))
    out.push_back(at({rc.row + 1, rc.col}));
  if (rc.col > 0) out.push_back(at({rc.row, rc.col - 1}));
  if (rc.col + 1 < static_cast<std::uint32_t>(cols()))
    out.push_back(at({rc.row, rc.col + 1}));
  return out;
}

std::vector<Fault> adjacent_coupling_faults(const ArrayTopology& topology,
                                            int bit, std::uint64_t seed,
                                            int count) {
  std::vector<Fault> out;
  out.reserve(static_cast<std::size_t>(count));
  std::uint64_t s = seed * 2 + 1;
  const auto num_words =
      std::uint64_t{1} << topology.scrambler().address_bits();
  while (static_cast<int>(out.size()) < count) {
    const auto aggressor = static_cast<Address>(splitmix64(s) % num_words);
    const auto nbrs = topology.neighbors(aggressor);
    if (nbrs.empty()) continue;
    const Address victim = nbrs[splitmix64(s) % nbrs.size()];
    out.push_back(InversionCouplingFault{
        {aggressor, bit}, {victim, bit}, (splitmix64(s) & 1) != 0});
  }
  return out;
}

std::vector<Fault> npsf_faults(const ArrayTopology& topology, int bit,
                               std::uint64_t seed, int count) {
  std::vector<Fault> out;
  out.reserve(static_cast<std::size_t>(count));
  std::uint64_t s = seed * 2 + 1;
  const auto num_words =
      std::uint64_t{1} << topology.scrambler().address_bits();
  while (static_cast<int>(out.size()) < count) {
    const auto base = static_cast<Address>(splitmix64(s) % num_words);
    const auto nbrs = topology.neighbors(base);
    if (nbrs.empty()) continue;
    NeighborhoodPatternFault f;
    f.base = BitRef{base, bit};
    for (Address n : nbrs) f.neighbors.push_back(BitRef{n, bit});
    f.pattern = static_cast<std::uint32_t>(splitmix64(s)) &
                ((1u << nbrs.size()) - 1u);
    f.forced_value = (splitmix64(s) & 1) != 0;
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace pmbist::memsim
