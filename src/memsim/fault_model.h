#pragma once
// Functional memory fault models (van de Goor taxonomy).
//
// March tests are defined against *functional* fault models — abstractions
// of shorts/opens in cells, address decoders and read/write logic.  This is
// the level at which the paper's algorithms (March C/A families and their
// +/++ derivatives) are specified, so a behavioral memory with these fault
// models is a faithful substitute for silicon when evaluating detection.
//
// Implemented models:
//   SAF   stuck-at fault: cell bit permanently 0 or 1
//   TF    transition fault: cell bit cannot make a 0->1 (or 1->0) transition
//   CFin  inversion coupling: a transition of the aggressor bit inverts the
//         victim bit
//   CFid  idempotent coupling: a directed transition of the aggressor
//         forces the victim to a fixed value
//   CFst  state coupling: while the aggressor holds state s, the victim is
//         forced to value v
//   AF    address-decoder faults (4 classic types, expressed as an
//         address -> physical-cell-set remap)
//   SOF   stuck-open cell: inaccessible; reads return the sense-amplifier
//         residue of the column, writes are lost
//   DRF   data-retention fault: the bit leaks to a fixed value if the word
//         is not written for longer than a hold time
//   IRF   incorrect read fault: a read returns the complement of the
//         stored value; the cell itself is undisturbed
//   WDF   write disturb fault: a *non-transition* write (writing the value
//         the cell already holds) flips the cell
//   RDF   read-destructive fault: a read returns the *flipped* value and
//         flips the cell
//   DRDF  deceptive/weak-cell read fault (disconnected pull-up/pull-down
//         device): the first read of the cell is correct, but a read
//         *immediately following* a read of the same cell returns the
//         complement (the bitline is no longer restored).  Detectable only
//         by consecutive same-cell reads — the reason for the paper's "++"
//         triple-read algorithm variants.  Any intervening operation or
//         pause lets the cell recover.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "memsim/memory.h"

namespace pmbist::memsim {

/// Identifies one physical bit: word address + bit position in the word.
struct BitRef {
  Address addr = 0;
  int bit = 0;
  friend bool operator==(const BitRef&, const BitRef&) = default;
  friend auto operator<=>(const BitRef&, const BitRef&) = default;
};

struct StuckAtFault {
  BitRef cell;
  bool value = false;  ///< the stuck value
  friend bool operator==(const StuckAtFault&, const StuckAtFault&) = default;
};

struct TransitionFault {
  BitRef cell;
  bool rising = true;  ///< true: 0->1 fails; false: 1->0 fails
  friend bool operator==(const TransitionFault&, const TransitionFault&) = default;
};

struct InversionCouplingFault {  // CFin
  BitRef aggressor;
  BitRef victim;
  bool on_rising = true;  ///< which aggressor transition triggers
  friend bool operator==(const InversionCouplingFault&, const InversionCouplingFault&) = default;
};

struct IdempotentCouplingFault {  // CFid
  BitRef aggressor;
  BitRef victim;
  bool on_rising = true;
  bool forced_value = false;  ///< value the victim is forced to
  friend bool operator==(const IdempotentCouplingFault&, const IdempotentCouplingFault&) = default;
};

struct StateCouplingFault {  // CFst
  BitRef aggressor;
  BitRef victim;
  bool aggressor_state = true;  ///< while aggressor == this ...
  bool forced_value = false;    ///< ... victim is forced to this
  friend bool operator==(const StateCouplingFault&, const StateCouplingFault&) = default;
};

/// Address-decoder fault, modeled as a remap of one logical address to a
/// set of physical word addresses (empty = no cell accessed; two = two
/// cells accessed; classic AF types are all expressible this way).
struct AddressDecoderFault {
  Address logical = 0;
  std::vector<Address> physical;  ///< cells actually accessed
  friend bool operator==(const AddressDecoderFault&, const AddressDecoderFault&) = default;
};

struct StuckOpenFault {  // SOF
  BitRef cell;
  friend bool operator==(const StuckOpenFault&, const StuckOpenFault&) = default;
};

struct DataRetentionFault {  // DRF
  BitRef cell;
  bool leak_to = false;
  std::uint64_t hold_time_ns = 100'000;  ///< decays if unwritten longer
  friend bool operator==(const DataRetentionFault&, const DataRetentionFault&) = default;
};

struct IncorrectReadFault {  // IRF
  BitRef cell;
  friend bool operator==(const IncorrectReadFault&,
                         const IncorrectReadFault&) = default;
};

struct WriteDisturbFault {  // WDF
  BitRef cell;
  friend bool operator==(const WriteDisturbFault&,
                         const WriteDisturbFault&) = default;
};

struct ReadDestructiveFault {  // RDF / DRDF
  BitRef cell;
  /// false: RDF (every read flips the cell and returns the wrong value);
  /// true: DRDF weak cell (only back-to-back reads of the cell misread).
  bool deceptive = false;
  friend bool operator==(const ReadDestructiveFault&, const ReadDestructiveFault&) = default;
};

/// Static neighborhood-pattern-sensitive fault (SNPSF): the base cell is
/// forced to `forced_value` whenever its (physically adjacent) neighbor
/// cells hold `pattern` (bit i = required value of neighbors[i]).  The
/// neighbor list comes from an ArrayTopology (memsim/topology.h), so the
/// fault population respects address scrambling.  Excluded from
/// all_fault_classes(): march tests cannot guarantee NPSF detection (see
/// diag/npsf.h for the exhaustive pattern screen that can).
struct NeighborhoodPatternFault {
  BitRef base;
  std::vector<BitRef> neighbors;
  std::uint32_t pattern = 0;
  bool forced_value = false;
  friend bool operator==(const NeighborhoodPatternFault&,
                         const NeighborhoodPatternFault&) = default;
};

/// Port-circuitry fault of a multiport memory: reads *through one specific
/// port* return the named data bit inverted (a defective port mux/sense
/// path); the array itself is healthy.  This is why the paper's
/// controllers repeat the whole test per port (the Inc. Port loop):
/// testing only port 0 can never see it.  Not part of all_fault_classes()
/// — the campaign's fault classes are array faults; port faults are a
/// multiport-specific experiment.
struct PortReadFault {
  int port = 1;
  int bit = 0;
  friend bool operator==(const PortReadFault&, const PortReadFault&) = default;
};

/// Any single fault instance.
using Fault =
    std::variant<StuckAtFault, TransitionFault, InversionCouplingFault,
                 IdempotentCouplingFault, StateCouplingFault,
                 AddressDecoderFault, StuckOpenFault, DataRetentionFault,
                 IncorrectReadFault, WriteDisturbFault,
                 ReadDestructiveFault, NeighborhoodPatternFault,
                 PortReadFault>;

/// Coarse class of a fault (for coverage tables and classification).
enum class FaultClass : std::uint8_t {
  SAF,
  TF,
  CFin,
  CFid,
  CFst,
  AF,
  SOF,
  DRF,
  IRF,
  WDF,
  RDF,
  DRDF,
  NPSF,  ///< neighborhood pattern sensitive (excluded, topology-specific)
  PF,    ///< port-circuitry fault (excluded from all_fault_classes())
  LF,    ///< linked faults: two idempotent coupling faults sharing a victim
         ///< (opposite forced values, distinct aggressors), where the
         ///< second can mask the first's corruption before a read sees it.
         ///< A composite class — instances are *pairs* of the single-fault
         ///< models above — so it is excluded from all_fault_classes()
         ///< (campaign universes enumerate single faults); the qualifier
         ///< (march::analyze) and the static prover decide it exhaustively.
};

[[nodiscard]] FaultClass fault_class(const Fault& f);
[[nodiscard]] std::string_view fault_class_name(FaultClass c);
[[nodiscard]] std::string describe(const Fault& f);

/// All fault classes, in display order.
[[nodiscard]] const std::vector<FaultClass>& all_fault_classes();

}  // namespace pmbist::memsim
