#pragma once
// PackedFaultyMemory: 64 independent faulty-memory instances simulated at
// once, one bit-lane per instance (the PPSFP idiom — parallel-pattern
// single-fault propagation — applied across *fault instances* instead of
// patterns).
//
// Where FaultyMemory stores one bool per cell bit, this model stores a
// 64-wide lane vector: bit L of `cells_[addr * word_bits + bit]` is the
// stored value of (addr, bit) in lane L.  Because a march campaign replays
// the *same* op stream against every instance, a write broadcasts its data
// bit across all lanes in one machine-word operation, and a read compares
// all 64 lanes against the expected value at once, returning a mismatch
// lane-mask.  Fault semantics become per-cell lane masks (stuck lanes, TF
// lanes, ...) applied with bitwise algebra, so the inner loop costs
// roughly one FaultyMemory step for 64 instances.
//
// The contract (enforced by tests/test_campaign.cpp, test_fuzz.cpp and
// bench_campaign): each lane is bit-identical to a scalar FaultyMemory
// with the same power-up seed and the same injected fault group — same
// sensed words, same detecting op positions.  Every fault model of
// fault_model.h is supported, so the campaign engine never needs a
// per-class fallback.  Lanes are fully independent: no fault may couple
// across lanes, and all cross-cell effects (coupling, AF aliasing, NPSF)
// are masked to the lane that owns the fault.
//
// Faults must be injected before the first operation (the campaign
// injects into a fresh/reset memory); this keeps per-lane write-timestamp
// tracking (DRF) exact without a per-address per-lane history.
//
// docs/KERNEL.md documents the lane encoding, the per-class automata and
// the scalar-fallback contract.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "memsim/fault_model.h"
#include "memsim/memory.h"

namespace pmbist::memsim {

class PackedFaultyMemory {
 public:
  /// Lanes per pack == bits per machine word.
  static constexpr int kLanes = 64;

  explicit PackedFaultyMemory(MemoryGeometry geometry,
                              std::uint64_t powerup_seed = 1);

  /// Returns every lane to the just-constructed state: faults removed,
  /// time rewound, contents re-randomized from `powerup_seed` exactly as
  /// the constructor (and FaultyMemory) would.  No allocation in the
  /// steady state — the campaign engine resets one packed memory per
  /// worker between lane-packs.
  void reset(std::uint64_t powerup_seed);

  /// Injects one fault instance into lane `lane` (0..63).  Validates
  /// exactly like FaultyMemory::add_fault (same exception messages).
  /// Multiple faults may share a lane (linked / multi-fault groups).
  void add_fault(int lane, const Fault& fault);

  /// Writes `data` (masked to word width) at `addr` in every lane.
  void write(int port, Address addr, Word data);

  /// Reads the word at `addr` in every lane and compares against
  /// `expected`; returns the mask of lanes whose sensed word differs.
  /// Read side effects (RDF flips, sense residue, weak-cell tracking)
  /// are applied per lane exactly as FaultyMemory::read would.
  [[nodiscard]] std::uint64_t read(int port, Address addr, Word expected);

  /// Advances simulated time in every lane (DRF decay, weak-cell reset).
  void advance_time_ns(std::uint64_t ns);

  [[nodiscard]] const MemoryGeometry& geometry() const noexcept {
    return geometry_;
  }

  /// Backdoor: the stored word of one lane (test support).
  [[nodiscard]] Word peek(Address addr, int lane) const;

 private:
  // Per-(cell,bit) lane masks; allocated only for cells some fault
  // touches.  A default-constructed state is behaviorally fault-free.
  struct DrfEntry {
    std::uint64_t lane = 0;  // single lane bit
    bool leak_to = false;
    std::uint64_t hold_time_ns = 0;
    std::uint64_t last_write_ns = 0;
  };
  struct CfinEntry {
    std::uint64_t lane = 0;
    BitRef victim;
    bool on_rising = true;
  };
  struct CfidEntry {
    std::uint64_t lane = 0;
    BitRef victim;
    bool on_rising = true;
    bool forced_value = false;
  };
  struct CfstEntry {
    std::uint64_t lane = 0;
    BitRef aggressor;
    BitRef victim;
    bool aggressor_state = true;
    bool forced_value = false;
  };
  struct CellState {
    std::uint64_t stuck_mask = 0;     // SAF lanes
    std::uint64_t stuck_value = 0;    // stuck value per SAF lane
    std::uint64_t tf_rising = 0;      // TF 0->1 blocked lanes
    std::uint64_t tf_falling = 0;     // TF 1->0 blocked lanes
    std::uint64_t stuck_open = 0;     // SOF lanes
    std::uint64_t read_invert = 0;    // IRF lanes
    std::uint64_t write_disturb = 0;  // WDF lanes
    std::uint64_t rdf_mask = 0;       // RDF/DRDF lanes
    std::uint64_t rdf_deceptive = 0;  // of those, the weak-cell (DRDF) ones
    std::uint64_t drf_mask = 0;       // lanes with a retention fault
    std::vector<DrfEntry> drf;
    // Coupling faults whose *aggressor* is this cell, in injection order.
    std::vector<CfinEntry> cfin;
    std::vector<CfidEntry> cfid;
    std::vector<CfstEntry> cfst_aggressor;
    // CFst entries whose *victim* is this cell (write-enforcement scan).
    std::vector<CfstEntry> cfst_victim;
  };
  struct AfEntry {
    std::uint64_t lane = 0;
    std::vector<Address> physical;
  };
  struct NpsfEntry {
    std::uint64_t lane = 0;
    NeighborhoodPatternFault fault;
  };
  // Per-lane last-read address, kept only for lanes owning an AF that can
  // remap to the empty set: such a lane's read may complete nowhere,
  // leaving its weak-cell (DRDF) tracking behind the other lanes'.
  struct DivergentLastRead {
    int lane = 0;
    bool valid = false;
    Address addr = 0;
  };

  // addr_flags_ bits: cheap per-address dispatch in the hot loops.
  static constexpr std::uint8_t kHasAf = 1;           // some lane remaps addr
  static constexpr std::uint8_t kHasCfstVictim = 2;   // CFst victim in word
  static constexpr std::uint8_t kHasAggressor = 4;    // coupling aggressor
  static constexpr std::uint8_t kHasDrf = 8;          // retention cell

  [[nodiscard]] std::size_t cell_index(Address addr, int bit) const noexcept {
    return static_cast<std::size_t>(addr) *
               static_cast<std::size_t>(geometry_.word_bits) +
           static_cast<std::size_t>(bit);
  }
  CellState& ensure_state(Address addr, int bit);
  [[nodiscard]] CellState* state_of(Address addr, int bit) noexcept;

  /// Lazy DRF decay for lanes in `mask` (FaultyMemory::settle_bit).
  void settle(Address addr, int bit, CellState& st, std::uint64_t mask);
  void settle_ref(const BitRef& ref, std::uint64_t mask);

  /// Coupling/NPSF forcing of a victim bit in the given lanes; refuses
  /// stuck and open lanes, never cascades (FaultyMemory::force_bit).
  void force_lanes(const BitRef& victim, std::uint64_t lanes, bool value);

  /// One physical-word write restricted to `mask` lanes, with all fault
  /// semantics (FaultyMemory::write_word, vectorized per bit).
  void write_word(Address addr, Word data, std::uint64_t mask);
  void write_and_stamp(Address addr, Word data, std::uint64_t mask);

  /// Senses every bit of one physical cell for `mask` lanes (with read
  /// side effects); `sensed_[bit]` holds the lane vector afterwards.
  void read_cell(Address addr, std::uint64_t mask, std::uint64_t b2b);

  /// True when `lane`'s decoder maps `logical` to the empty cell set.
  [[nodiscard]] bool lane_maps_empty(std::uint64_t lane,
                                     Address logical) const;
  void invalidate_last_read();

  MemoryGeometry geometry_;
  std::vector<std::uint64_t> cells_;   // lane vectors, [addr * W + bit]
  std::vector<std::int32_t> state_index_;  // -1 = no fault touches the cell
  std::vector<CellState> states_;
  std::vector<std::size_t> touched_cells_;  // indices to clear on reset
  std::vector<std::uint8_t> addr_flags_;
  std::unordered_map<Address, std::vector<AfEntry>> af_;
  std::vector<NpsfEntry> npsf_;
  std::vector<std::uint64_t> pf_invert_;  // [port * W + bit] lane masks
  bool has_pf_ = false;
  std::vector<std::uint64_t> sense_residue_;  // per column, lane vector
  std::uint64_t now_ns_ = 0;
  bool ops_begun_ = false;

  // Uniform last-read tracking for non-divergent lanes plus per-lane
  // overrides for divergent ones (see DivergentLastRead).
  bool last_read_valid_ = false;
  Address last_read_addr_ = 0;
  std::uint64_t divergent_lanes_ = 0;
  std::vector<DivergentLastRead> divergent_last_read_;

  // Per-bit scratch, sized word_bits (avoids per-op allocation).
  std::vector<std::uint64_t> rising_;
  std::vector<std::uint64_t> falling_;
  std::vector<std::uint64_t> sensed_;
};

}  // namespace pmbist::memsim
