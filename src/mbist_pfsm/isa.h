#pragma once
// Instruction format of the programmable FSM-based controller's upper-level
// 2-dimensional circular buffer (paper Fig. 3-5).  Each instruction is 9
// bits:
//
//   [0]   hold_after  hold the lower controller in Done after this
//                     component completes — the data-retention pause
//   [1]   addr_down   reference address order for the component
//   [2]   data_inv    test-data parameter d (true/inverted background)
//   [3]   cmp_inv     compare polarity (reference value; the lower FSM
//                     XORs the component's internal ~d onto it)
//   [6:4] mode        which SM component the lower FSM realizes
//   [7]   ctrl        1 = loop-control instruction (no component is run)
//   [8]   ctrl_op     for ctrl=1: 0 = data-background loop (path A),
//                     1 = port loop / test end (path B)

#include <cstdint>
#include <string>
#include <vector>

namespace pmbist::mbist_pfsm {

inline constexpr int kPfsmInstructionBits = 9;

struct PfsmInstruction {
  bool hold_after = false;
  bool addr_down = false;
  bool data_inv = false;
  bool cmp_inv = false;
  std::uint8_t mode = 0;  ///< SM component id (0..7)
  bool ctrl = false;
  bool ctrl_op = false;

  [[nodiscard]] std::uint16_t encode() const;
  [[nodiscard]] static PfsmInstruction decode(std::uint16_t bits);
  [[nodiscard]] std::string disassemble() const;

  friend bool operator==(const PfsmInstruction&,
                         const PfsmInstruction&) = default;
};

/// Contents of the upper-level circular buffer.
class PfsmProgram {
 public:
  PfsmProgram() = default;
  PfsmProgram(std::string name, std::vector<PfsmInstruction> instructions)
      : name_{std::move(name)}, instructions_{std::move(instructions)} {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<PfsmInstruction>& instructions()
      const noexcept {
    return instructions_;
  }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(instructions_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return instructions_.empty(); }

  [[nodiscard]] std::vector<std::uint16_t> image() const;
  /// Decodes a raw image.  Throws std::invalid_argument naming the
  /// offending instruction index on out-of-range words.
  [[nodiscard]] static PfsmProgram from_image(
      std::string name, const std::vector<std::uint16_t>& image);
  [[nodiscard]] std::string listing() const;

  /// Portable hex-image text mirroring MicrocodeProgram::to_hex_text():
  /// a `; pmbist pfsm image v1` header, the program name, then one 3-digit
  /// hex word per line with a disassembly comment.  Round-trips through
  /// from_hex_text(); the on-disk format of `pmbist assemble --arch pfsm
  /// --hex`.
  [[nodiscard]] std::string to_hex_text() const;

  /// Parses hex-image text.  Throws std::invalid_argument naming the
  /// offending line / instruction index on malformed input.
  [[nodiscard]] static PfsmProgram from_hex_text(std::string_view text);

 private:
  std::string name_;
  std::vector<PfsmInstruction> instructions_;
};

}  // namespace pmbist::mbist_pfsm
