#include "mbist_pfsm/area.h"

#include <bit>
#include <cassert>

#include "bist/datapath.h"
#include "mbist_pfsm/components.h"
#include "mbist_pfsm/isa.h"
#include "netlist/qm.h"

namespace pmbist::mbist_pfsm {

using netlist::Cell;
using netlist::Cube;
using netlist::GateInventory;
using netlist::MooreFsm;

namespace {

// Lower-controller inputs, low bit first.
enum : std::uint32_t {
  kStart = 1u << 0,
  kLastOp = 1u << 1,
  kLastAddr = 1u << 2,
  kHold = 1u << 3,
  kPauseDone = 1u << 4,
};

// Lower-controller Moore outputs.
enum : std::uint32_t {
  kOpActive = 1u << 0,
  kOpIdx0 = 1u << 1,
  kOpIdx1 = 1u << 2,
  kAddrInit = 1u << 3,
  kNextInstr = 1u << 4,
  kDoneOut = 1u << 5,
};

}  // namespace

MooreFsm lower_controller_fsm() {
  MooreFsm fsm{"pfsm-lower",
               {"start", "last_op", "last_addr", "hold", "pause_done"},
               {"op_active", "op_idx0", "op_idx1", "addr_init", "next_instr",
                "done"}};
  const int idle = fsm.add_state("Idle", 0);
  const int rst = fsm.add_state("Reset", kAddrInit);
  const int rw1 = fsm.add_state("RW1", kOpActive);
  const int rw2 = fsm.add_state("RW2", kOpActive | kOpIdx0);
  const int rw3 = fsm.add_state("RW3", kOpActive | kOpIdx1);
  const int rw4 = fsm.add_state("RW4", kOpActive | kOpIdx0 | kOpIdx1);
  const int done = fsm.add_state("Done", kNextInstr | kDoneOut);

  fsm.add_arc(idle, Cube{kStart, kStart}, rst);
  fsm.set_default_next(rst, rw1);

  const int rw[] = {rw1, rw2, rw3, rw4};
  for (int k = 0; k < 4; ++k) {
    // On the component's last op: Done at the last address, else loop back
    // to RW1 for the next cell.
    fsm.add_arc(rw[k], Cube{kLastOp | kLastAddr, kLastOp | kLastAddr}, done);
    fsm.add_arc(rw[k], Cube{kLastOp, kLastOp | kLastAddr}, rw1);
    // Otherwise the next op state (RW4 is always a last op; default self).
    if (k < 3) fsm.set_default_next(rw[k], rw[k + 1]);
  }

  // Hold in Done while a pause is pending; otherwise run the next
  // instruction.
  fsm.add_arc(done, Cube{kHold, kHold | kPauseDone}, done);
  fsm.set_default_next(done, rst);
  return fsm;
}

const GateInventory& lower_fsm_inventory() {
  static const GateInventory cached = [] {
    const MooreFsm fsm = lower_controller_fsm();
    assert(fsm.validate().empty());
    return netlist::synthesize(fsm).inventory;
  }();
  return cached;
}

const GateInventory& component_decoder_inventory() {
  static const GateInventory cached = [] {
    // Inputs: mode[0..2], op index[3..4].  Outputs: is_read, is_write,
    // inverted-operand, last_op.
    constexpr int kVars = 5;
    GateInventory inv;
    for (int out_bit = 0; out_bit < 4; ++out_bit) {
      netlist::TruthTable table{kVars};
      for (std::uint32_t m = 0; m < table.size(); ++m) {
        const auto mode = static_cast<std::size_t>(m & 0x7);
        const auto idx = static_cast<std::size_t>((m >> 3) & 0x3);
        const auto& comp = component_set()[mode];
        if (idx >= comp.ops.size()) {
          table.set(m, netlist::Tri::DontCare);
          continue;
        }
        const ComponentOp& op = comp.ops[idx];
        const bool last = idx == comp.ops.size() - 1;
        const bool bits[4] = {op.is_read, !op.is_read, op.inverted, last};
        table.set(m, bits[out_bit] ? netlist::Tri::One : netlist::Tri::Zero);
      }
      const auto minimized = netlist::minimize(table);
      assert(table.is_implemented_by(minimized.cover));
      inv += netlist::sop_inventory(minimized.cover);
    }
    return inv;
  }();
  return cached;
}

netlist::AreaReport pfsm_area(const AreaConfig& config) {
  assert(config.buffer_depth >= 2);
  const int depth = config.buffer_depth;
  const int cells = depth * kPfsmInstructionBits;

  netlist::AreaReport report{"programmable FSM-based BIST unit"};

  // The buffer rotates at the functional rate (one rotation per march
  // component), so the cells are full mux-scan flip-flops with a
  // hold/rotate select on each D input.
  {
    GateInventory buffer =
        netlist::register_bank(cells, netlist::RegisterKind::Scan);
    buffer += netlist::mux_bank(cells);  // hold vs rotate
    report.add_block("circular buffer", std::move(buffer));
  }
  {
    // Rotation bookkeeping: position counter + wrap detection for the
    // path A/B loop-backs.
    const int pos_bits = std::bit_width(unsigned(depth - 1));
    GateInventory ctrl = netlist::binary_counter(pos_bits);
    ctrl += netlist::constant_detector(pos_bits);
    // Loop-back steering (paths A and B) and ctrl-instruction decode.
    ctrl.add(Cell::And2, 4);
    ctrl.add(Cell::Or2, 2);
    ctrl.add(Cell::Inv, 2);
    report.add_block("loop-back control", std::move(ctrl));
  }
  report.add_block("lower controller (7-state FSM)", lower_fsm_inventory());
  report.add_block("SM component decoder", component_decoder_inventory());
  {
    // Glue: op-index register feeding the decoder, addr-step gating,
    // test-end flag.
    GateInventory misc = netlist::register_bank(2, netlist::RegisterKind::Plain);
    misc.add(Cell::HalfAdder, 1);
    misc.add(Cell::And2, 3);
    misc.add(Cell::Dff, 1);
    misc.add(Cell::Or2, 1);
    report.add_block("op sequencing / test-end", std::move(misc));
  }

  if (config.include_datapath)
    bist::add_datapath_blocks(report, config.geometry,
                              config.include_pause_timer);
  return report;
}

}  // namespace pmbist::mbist_pfsm
