#pragma once
// Cycle-accurate behavioral model of the programmable FSM-based memory
// BIST controller (paper Figs. 3-4): an upper-level circular instruction
// buffer feeding a parameterized 7-state lower controller (Idle, Reset,
// four R/W states, Done).
//
// Cycle model: each component instruction costs one Reset cycle, one cycle
// per memory operation, and one Done cycle (plus the pause when hold_after
// is set); loop-control instructions cost one cycle.  This overhead is what
// makes the pFSM slightly slower than the microcode controller on the same
// algorithm — see bench_test_time.

#include "bist/controller.h"
#include "bist/datapath.h"
#include "march/library.h"
#include "mbist_pfsm/compiler.h"
#include "mbist_pfsm/components.h"

namespace pmbist::mbist_pfsm {

struct PfsmConfig {
  memsim::MemoryGeometry geometry{};
  /// Circular-buffer depth; load() rejects larger programs.
  int buffer_depth = 16;
  /// Pause duration while held in Done (simulated ns).
  std::uint64_t pause_ns = march::kDefaultPauseNs;
};

class PfsmController final : public bist::Controller {
 public:
  explicit PfsmController(const PfsmConfig& config);

  /// Loads the circular buffer.  Throws CompileError if the program does
  /// not fit.
  void load(PfsmProgram program);
  /// Convenience: compile + configure pause + load.  Throws CompileError if
  /// the algorithm does not map onto SM0..SM7.
  void load_algorithm(const march::MarchAlgorithm& alg);

  [[nodiscard]] std::string name() const override {
    return "programmable FSM-based";
  }
  void reset() override;
  [[nodiscard]] bool done() const override { return phase_ == Phase::TestEnd; }
  std::optional<march::MemOp> step() override;

  [[nodiscard]] const PfsmProgram& program() const noexcept {
    return program_;
  }
  [[nodiscard]] const PfsmConfig& config() const noexcept { return config_; }

  /// Shift cycles a serial load of the current buffer contents costs — the
  /// per-memory re-program price a shared controller pays (soc scheduler).
  [[nodiscard]] std::uint64_t program_load_cycles() const noexcept {
    return program_.instructions().size() *
           static_cast<std::uint64_t>(kPfsmInstructionBits);
  }

  // Introspection for white-box tests.
  enum class Phase : std::uint8_t { Idle, Reset, Op, Done, TestEnd };
  [[nodiscard]] Phase phase() const noexcept { return phase_; }
  [[nodiscard]] int instruction_index() const noexcept { return pc_; }

 private:
  [[nodiscard]] const PfsmInstruction& current() const {
    return program_.instructions()[static_cast<std::size_t>(pc_)];
  }
  void advance_instruction();

  PfsmConfig config_;
  PfsmProgram program_;

  bist::AddressGenerator addr_;
  bist::DataGenerator data_;
  bist::PortSequencer port_;

  Phase phase_ = Phase::Idle;
  int pc_ = 0;       ///< rotation position of the circular buffer
  int op_idx_ = 0;   ///< which R/W state of the lower controller is active
  bool pause_emitted_ = false;
};

}  // namespace pmbist::mbist_pfsm
