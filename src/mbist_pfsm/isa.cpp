#include "mbist_pfsm/isa.h"

#include <cctype>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "mbist_pfsm/components.h"

namespace pmbist::mbist_pfsm {

std::uint16_t PfsmInstruction::encode() const {
  std::uint16_t bits = 0;
  bits |= static_cast<std::uint16_t>(hold_after) << 0;
  bits |= static_cast<std::uint16_t>(addr_down) << 1;
  bits |= static_cast<std::uint16_t>(data_inv) << 2;
  bits |= static_cast<std::uint16_t>(cmp_inv) << 3;
  bits |= static_cast<std::uint16_t>(mode & 0x7) << 4;
  bits |= static_cast<std::uint16_t>(ctrl) << 7;
  bits |= static_cast<std::uint16_t>(ctrl_op) << 8;
  return bits;
}

PfsmInstruction PfsmInstruction::decode(std::uint16_t bits) {
  if (bits >= (1u << kPfsmInstructionBits))
    throw std::invalid_argument("pFSM instruction exceeds 9 bits");
  PfsmInstruction i;
  i.hold_after = bits & 0x1;
  i.addr_down = bits & 0x2;
  i.data_inv = bits & 0x4;
  i.cmp_inv = bits & 0x8;
  i.mode = static_cast<std::uint8_t>((bits >> 4) & 0x7);
  i.ctrl = bits & 0x80;
  i.ctrl_op = bits & 0x100;
  return i;
}

std::string PfsmInstruction::disassemble() const {
  std::ostringstream os;
  if (ctrl) {
    os << (ctrl_op ? "PORT_LOOP" : "DATA_LOOP");
  } else {
    os << "SM" << static_cast<int>(mode) << " "
       << (addr_down ? "down" : "up  ") << " d=" << (data_inv ? 1 : 0)
       << " cmp=" << (cmp_inv ? 1 : 0);
    if (hold_after) os << " HOLD";
  }
  return os.str();
}

std::vector<std::uint16_t> PfsmProgram::image() const {
  std::vector<std::uint16_t> out;
  out.reserve(instructions_.size());
  for (const auto& i : instructions_) out.push_back(i.encode());
  return out;
}

PfsmProgram PfsmProgram::from_image(std::string name,
                                    const std::vector<std::uint16_t>& image) {
  std::vector<PfsmInstruction> instructions;
  instructions.reserve(image.size());
  for (std::size_t i = 0; i < image.size(); ++i) {
    try {
      instructions.push_back(PfsmInstruction::decode(image[i]));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument{"instruction " + std::to_string(i) + ": " +
                                  e.what()};
    }
  }
  return PfsmProgram{std::move(name), std::move(instructions)};
}

std::string PfsmProgram::to_hex_text() const {
  std::ostringstream os;
  os << "; pmbist pfsm image v1\n";
  os << "; name: " << name_ << "\n";
  for (const auto& i : instructions_) {
    os << std::hex << std::setw(3) << std::setfill('0') << i.encode()
       << std::dec << std::setfill(' ') << "  ; " << i.disassemble() << "\n";
  }
  return os.str();
}

PfsmProgram PfsmProgram::from_hex_text(std::string_view text) {
  std::istringstream is{std::string{text}};
  std::string line;
  std::string name = "image";
  std::vector<PfsmInstruction> code;
  bool saw_header = false;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (const auto semi = line.find(';'); semi != std::string::npos) {
      const std::string comment = line.substr(semi + 1);
      if (comment.find("pmbist pfsm image v1") != std::string::npos)
        saw_header = true;
      if (const auto tag = comment.find("name:"); tag != std::string::npos) {
        std::string n = comment.substr(tag + 5);
        while (!n.empty() && n.front() == ' ') n.erase(n.begin());
        while (!n.empty() && (n.back() == ' ' || n.back() == '\r'))
          n.pop_back();
        if (!n.empty()) name = n;
      }
      line.erase(semi);
    }
    std::string word;
    for (char c : line)
      if (!std::isspace(static_cast<unsigned char>(c))) word += c;
    if (word.empty()) continue;
    std::size_t pos = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(word, &pos, 16);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != word.size() || value > 0xffff)
      throw std::invalid_argument{"line " + std::to_string(lineno) +
                                  ": malformed hex word '" + word + "'"};
    try {
      code.push_back(PfsmInstruction::decode(static_cast<std::uint16_t>(
          value)));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument{"instruction " + std::to_string(code.size()) +
                                  " (line " + std::to_string(lineno) + "): " +
                                  e.what()};
    }
  }
  // Same wording as the microcode loader (modulo the architecture token),
  // including on truncated input — pinned by ErrorLocations tests.
  if (!saw_header)
    throw std::invalid_argument{"missing 'pmbist pfsm image v1' header "
                                "(scanned " + std::to_string(lineno) +
                                " line(s))"};
  if (code.empty())
    throw std::invalid_argument{"image has no instructions (" +
                                std::to_string(lineno) + " line(s) scanned)"};
  return PfsmProgram{std::move(name), std::move(code)};
}

std::string PfsmProgram::listing() const {
  std::ostringstream os;
  os << "; pFSM program: " << name_ << " (" << instructions_.size()
     << " instructions)\n";
  for (std::size_t i = 0; i < instructions_.size(); ++i) {
    os << std::setw(3) << i << ": 0x" << std::hex << std::setw(3)
       << std::setfill('0') << instructions_[i].encode() << std::dec
       << std::setfill(' ') << "  " << instructions_[i].disassemble() << "\n";
  }
  return os.str();
}

}  // namespace pmbist::mbist_pfsm
