#include "mbist_pfsm/isa.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "mbist_pfsm/components.h"

namespace pmbist::mbist_pfsm {

std::uint16_t PfsmInstruction::encode() const {
  std::uint16_t bits = 0;
  bits |= static_cast<std::uint16_t>(hold_after) << 0;
  bits |= static_cast<std::uint16_t>(addr_down) << 1;
  bits |= static_cast<std::uint16_t>(data_inv) << 2;
  bits |= static_cast<std::uint16_t>(cmp_inv) << 3;
  bits |= static_cast<std::uint16_t>(mode & 0x7) << 4;
  bits |= static_cast<std::uint16_t>(ctrl) << 7;
  bits |= static_cast<std::uint16_t>(ctrl_op) << 8;
  return bits;
}

PfsmInstruction PfsmInstruction::decode(std::uint16_t bits) {
  if (bits >= (1u << kPfsmInstructionBits))
    throw std::invalid_argument("pFSM instruction exceeds 9 bits");
  PfsmInstruction i;
  i.hold_after = bits & 0x1;
  i.addr_down = bits & 0x2;
  i.data_inv = bits & 0x4;
  i.cmp_inv = bits & 0x8;
  i.mode = static_cast<std::uint8_t>((bits >> 4) & 0x7);
  i.ctrl = bits & 0x80;
  i.ctrl_op = bits & 0x100;
  return i;
}

std::string PfsmInstruction::disassemble() const {
  std::ostringstream os;
  if (ctrl) {
    os << (ctrl_op ? "PORT_LOOP" : "DATA_LOOP");
  } else {
    os << "SM" << static_cast<int>(mode) << " "
       << (addr_down ? "down" : "up  ") << " d=" << (data_inv ? 1 : 0)
       << " cmp=" << (cmp_inv ? 1 : 0);
    if (hold_after) os << " HOLD";
  }
  return os.str();
}

std::vector<std::uint16_t> PfsmProgram::image() const {
  std::vector<std::uint16_t> out;
  out.reserve(instructions_.size());
  for (const auto& i : instructions_) out.push_back(i.encode());
  return out;
}

PfsmProgram PfsmProgram::from_image(std::string name,
                                    const std::vector<std::uint16_t>& image) {
  std::vector<PfsmInstruction> instructions;
  instructions.reserve(image.size());
  for (auto word : image)
    instructions.push_back(PfsmInstruction::decode(word));
  return PfsmProgram{std::move(name), std::move(instructions)};
}

std::string PfsmProgram::listing() const {
  std::ostringstream os;
  os << "; pFSM program: " << name_ << " (" << instructions_.size()
     << " instructions)\n";
  for (std::size_t i = 0; i < instructions_.size(); ++i) {
    os << std::setw(3) << i << ": 0x" << std::hex << std::setw(3)
       << std::setfill('0') << instructions_[i].encode() << std::dec
       << std::setfill(' ') << "  " << instructions_[i].disassemble() << "\n";
  }
  return os.str();
}

}  // namespace pmbist::mbist_pfsm
