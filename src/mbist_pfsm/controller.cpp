#include "mbist_pfsm/controller.h"

namespace pmbist::mbist_pfsm {

PfsmController::PfsmController(const PfsmConfig& config)
    : config_{config},
      addr_{config.geometry.address_bits},
      data_{config.geometry.word_bits},
      port_{config.geometry.num_ports} {
  reset();
}

void PfsmController::load(PfsmProgram program) {
  if (program.size() > config_.buffer_depth)
    throw CompileError("program '" + program.name() + "' needs " +
                       std::to_string(program.size()) +
                       " instructions but the buffer holds " +
                       std::to_string(config_.buffer_depth));
  program_ = std::move(program);
  reset();
}

void PfsmController::load_algorithm(const march::MarchAlgorithm& alg) {
  CompileResult r = compile(alg);
  if (r.pause_ns != 0) config_.pause_ns = r.pause_ns;
  load(std::move(r.program));
}

void PfsmController::reset() {
  pc_ = 0;
  op_idx_ = 0;
  pause_emitted_ = false;
  addr_.init(march::AddressOrder::Up);
  data_.reset();
  port_.reset();
  phase_ = program_.empty() ? Phase::TestEnd : Phase::Idle;
}

void PfsmController::advance_instruction() {
  pause_emitted_ = false;
  ++pc_;
  if (pc_ >= program_.size()) {
    // Circular buffer wrapped without a port-loop terminating the test —
    // treat as test end (defensive; compiled programs always end with the
    // port-loop instruction).
    phase_ = Phase::TestEnd;
    return;
  }
  phase_ = Phase::Reset;
}

std::optional<march::MemOp> PfsmController::step() {
  switch (phase_) {
    case Phase::TestEnd:
      return std::nullopt;

    case Phase::Idle:
      phase_ = Phase::Reset;
      return std::nullopt;

    case Phase::Reset: {
      const PfsmInstruction& instr = current();
      if (instr.ctrl) {
        // Loop-control instructions bypass the lower controller.
        if (!instr.ctrl_op) {  // data-background loop (path A)
          if (!data_.at_last()) {
            data_.next();
            pc_ = 0;
            pause_emitted_ = false;
            phase_ = Phase::Reset;
          } else {
            data_.reset();
            advance_instruction();
          }
        } else {  // port loop / test end (path B)
          if (!port_.at_last()) {
            port_.next();
            data_.reset();
            pc_ = 0;
            pause_emitted_ = false;
            phase_ = Phase::Reset;
          } else {
            phase_ = Phase::TestEnd;
          }
        }
        return std::nullopt;
      }
      addr_.init(instr.addr_down ? march::AddressOrder::Down
                                 : march::AddressOrder::Up);
      op_idx_ = 0;
      phase_ = Phase::Op;
      return std::nullopt;
    }

    case Phase::Op: {
      const PfsmInstruction& instr = current();
      const auto& comp =
          component_set()[static_cast<std::size_t>(instr.mode)];
      const ComponentOp& cop =
          comp.ops[static_cast<std::size_t>(op_idx_)];

      std::optional<march::MemOp> op;
      if (cop.is_read) {
        op = march::MemOp::read(port_.current(), addr_.current(),
                                data_.data_for(instr.cmp_inv != cop.inverted));
      } else {
        op = march::MemOp::write(
            port_.current(), addr_.current(),
            data_.data_for(instr.data_inv != cop.inverted));
      }

      const bool last_op = op_idx_ == static_cast<int>(comp.ops.size()) - 1;
      if (!last_op) {
        ++op_idx_;
      } else if (!addr_.at_last()) {
        addr_.step();
        op_idx_ = 0;
      } else {
        phase_ = Phase::Done;
      }
      return op;
    }

    case Phase::Done: {
      const PfsmInstruction& instr = current();
      if (instr.hold_after && !pause_emitted_) {
        pause_emitted_ = true;
        return march::MemOp::pause(config_.pause_ns);
      }
      advance_instruction();
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace pmbist::mbist_pfsm
