#include "mbist_pfsm/components.h"

namespace pmbist::mbist_pfsm {
namespace {

constexpr ComponentOp R{true, false};    // r d
constexpr ComponentOp Rn{true, true};    // r ~d
constexpr ComponentOp W{false, false};   // w d
constexpr ComponentOp Wn{false, true};   // w ~d

}  // namespace

const std::vector<MarchComponent>& component_set() {
  static const std::vector<MarchComponent> kSet{
      {0, {W}},                // SM0 = (w d)
      {1, {R, Wn}},            // SM1 = (r d, w ~d)
      {2, {R, Wn, Rn, W}},     // SM2 = (r d, w ~d, r ~d, w d)
      {3, {R, Wn, W}},         // SM3 = (r d, w ~d, w d)
      {4, {R, R, R}},          // SM4 = (r d, r d, r d)
      {5, {R}},                // SM5 = (r d)
      {6, {R, Wn, W, Wn}},     // SM6 = (r d, w ~d, w d, w ~d)
      {7, {R, Wn, Rn}},        // SM7 = (r d, w ~d, r ~d)
  };
  return kSet;
}

std::vector<march::MarchOp> realize(int mode, bool d) {
  const auto& comp = component_set().at(static_cast<std::size_t>(mode));
  std::vector<march::MarchOp> out;
  out.reserve(comp.ops.size());
  for (const auto& op : comp.ops) {
    out.push_back(march::MarchOp{op.is_read ? march::MarchOp::Kind::Read
                                            : march::MarchOp::Kind::Write,
                                 d != op.inverted});
  }
  return out;
}

std::optional<ComponentMatch> match_element(
    const march::MarchElement& element) {
  if (element.is_pause || element.ops.empty()) return std::nullopt;
  for (const auto& comp : component_set()) {
    for (bool d : {false, true}) {
      if (realize(comp.id, d) == element.ops)
        return ComponentMatch{comp.id, d};
    }
  }
  return std::nullopt;
}

}  // namespace pmbist::mbist_pfsm
