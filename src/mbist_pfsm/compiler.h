#pragma once
// Compiler: march algorithm -> programmable-FSM instruction sequence.
//
// Each non-pause element must match one SM component (components.h); a
// pause element sets the hold_after bit of the preceding instruction (the
// paper's "hold the low level controller in its Done state").  The tail is
// always the data-background loop and the port loop (paths A and B of
// Fig. 4b).  Algorithms with elements outside the SM set do not compile —
// the MEDIUM-flexibility limitation the paper contrasts against the
// microcode architecture.

#include <stdexcept>

#include "march/march.h"
#include "mbist_pfsm/isa.h"

namespace pmbist::mbist_pfsm {

/// Raised when an algorithm is not realizable on this architecture; the
/// message names the offending element.
class CompileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CompileResult {
  PfsmProgram program;
  /// Uniform pause duration of the algorithm's pause elements (0 if none).
  std::uint64_t pause_ns = 0;
};

[[nodiscard]] CompileResult compile(const march::MarchAlgorithm& alg);

/// True if every element of `alg` maps onto an SM component (and pause
/// placement is representable).  On failure `why`, if non-null, receives
/// the reason.
[[nodiscard]] bool is_mappable(const march::MarchAlgorithm& alg,
                               std::string* why = nullptr);

}  // namespace pmbist::mbist_pfsm
