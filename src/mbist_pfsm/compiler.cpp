#include "mbist_pfsm/compiler.h"

#include "mbist_pfsm/components.h"

namespace pmbist::mbist_pfsm {
namespace {

struct Compiled {
  std::vector<PfsmInstruction> code;
  std::uint64_t pause_ns = 0;
  std::string error;  // empty on success
};

Compiled try_compile(const march::MarchAlgorithm& alg) {
  Compiled out;
  if (const std::string err = alg.validate(); !err.empty()) {
    out.error = "invalid algorithm '" + alg.name() + "': " + err;
    return out;
  }
  for (std::size_t idx = 0; idx < alg.elements().size(); ++idx) {
    const auto& e = alg.elements()[idx];
    if (e.is_pause) {
      if (out.code.empty()) {
        out.error = "element " + std::to_string(idx) +
                    ": a leading pause element is not representable";
        return out;
      }
      if (out.code.back().hold_after) {
        out.error = "element " + std::to_string(idx) +
                    ": consecutive pause elements are not representable";
        return out;
      }
      if (out.pause_ns != 0 && out.pause_ns != e.pause_ns) {
        out.error = "element " + std::to_string(idx) + ": pause duration " +
                    std::to_string(e.pause_ns) +
                    "ns differs from the earlier " +
                    std::to_string(out.pause_ns) + "ns";
        return out;
      }
      out.pause_ns = e.pause_ns;
      out.code.back().hold_after = true;
      continue;
    }
    const auto m = match_element(e);
    if (!m) {
      out.error = "element " + std::to_string(idx) + " '" + e.to_string() +
                  "' of '" + alg.name() +
                  "' matches no SM component (SM0..SM7)";
      return out;
    }
    PfsmInstruction i;
    i.addr_down = e.order == march::AddressOrder::Down;
    i.data_inv = m->d;
    i.cmp_inv = m->d;
    i.mode = static_cast<std::uint8_t>(m->mode);
    out.code.push_back(i);
  }

  PfsmInstruction data_loop;
  data_loop.ctrl = true;
  data_loop.ctrl_op = false;
  out.code.push_back(data_loop);
  PfsmInstruction port_loop;
  port_loop.ctrl = true;
  port_loop.ctrl_op = true;
  out.code.push_back(port_loop);
  return out;
}

}  // namespace

CompileResult compile(const march::MarchAlgorithm& alg) {
  Compiled c = try_compile(alg);
  if (!c.error.empty()) throw CompileError(c.error);
  return CompileResult{PfsmProgram{alg.name(), std::move(c.code)},
                       c.pause_ns};
}

bool is_mappable(const march::MarchAlgorithm& alg, std::string* why) {
  Compiled c = try_compile(alg);
  if (!c.error.empty()) {
    if (why) *why = c.error;
    return false;
  }
  return true;
}

}  // namespace pmbist::mbist_pfsm
