#pragma once
// Structural area model of the programmable FSM-based BIST controller
// (Fig. 3): the upper circular buffer (full-rate scan flip-flops — the
// cells shift for each march component, so slow scan-only cells are NOT
// usable here, unlike the microcode storage unit: this is the paper's
// Sec. 3 argument), the synthesized 7-state lower controller, the
// synthesized SM component decoder, and the loop-back (path A/B) control.

#include "memsim/memory.h"
#include "netlist/fsm_synth.h"
#include "netlist/gate_inventory.h"

namespace pmbist::mbist_pfsm {

struct AreaConfig {
  memsim::MemoryGeometry geometry{};
  int buffer_depth = 16;
  bool include_datapath = true;
  bool include_pause_timer = true;
};

/// Hierarchical area report of the full programmable-FSM BIST unit.
[[nodiscard]] netlist::AreaReport pfsm_area(const AreaConfig& config);

/// The symbolic 7-state lower controller (Fig. 4a), exposed so tests can
/// check its structure and synthesize it directly.
[[nodiscard]] netlist::MooreFsm lower_controller_fsm();

/// Synthesized inventory of the lower controller (cached).
[[nodiscard]] const netlist::GateInventory& lower_fsm_inventory();

/// Synthesized inventory of the SM component decoder: (mode, op index) ->
/// {read, write, operand inversion, last-op} (cached).
[[nodiscard]] const netlist::GateInventory& component_decoder_inventory();

}  // namespace pmbist::mbist_pfsm
