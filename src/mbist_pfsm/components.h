#pragma once
// The eight canned march test components SM0..SM7 of the paper's Eq. 2.
// The programmable FSM-based controller realizes exactly these patterns
// (parameterized by address order and data value d); any march element
// outside this set — e.g. the triple-read elements of the ++ algorithm
// variants, or March B's 6-op element — is NOT realizable, which is why
// the paper rates this architecture's flexibility MEDIUM.
//
//   SM0 = (w d)                 SM4 = (r d, r d, r d)
//   SM1 = (r d, w ~d)           SM5 = (r d)
//   SM2 = (r d, w ~d, r ~d, w d)
//   SM3 = (r d, w ~d, w d)      SM6 = (r d, w ~d, w d, w ~d)
//   SM7 = (r d, w ~d, r ~d)

#include <optional>
#include <vector>

#include "march/march.h"

namespace pmbist::mbist_pfsm {

/// Maximum operations per component — fixed by the lower controller's four
/// R/W states (Fig. 4a).
inline constexpr int kMaxComponentOps = 4;
inline constexpr int kNumComponents = 8;

/// One operation of a component, relative to the data parameter d.
struct ComponentOp {
  bool is_read = false;
  bool inverted = false;  ///< true: operates on ~d instead of d
  friend bool operator==(const ComponentOp&, const ComponentOp&) = default;
};

/// A march component SMi.
struct MarchComponent {
  int id = 0;
  std::vector<ComponentOp> ops;
};

/// The SM0..SM7 set, indexed by id.
[[nodiscard]] const std::vector<MarchComponent>& component_set();

/// Instantiates component `mode` with data value `d` as concrete march ops.
[[nodiscard]] std::vector<march::MarchOp> realize(int mode, bool d);

/// A successful element-to-component match.
struct ComponentMatch {
  int mode = 0;
  bool d = false;
};

/// Finds the (component, d) pair realizing the element's op sequence, if
/// any.  Pause elements never match.
[[nodiscard]] std::optional<ComponentMatch> match_element(
    const march::MarchElement& element);

}  // namespace pmbist::mbist_pfsm
