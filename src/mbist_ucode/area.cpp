#include "mbist_ucode/area.h"

#include <bit>
#include <cassert>

#include "bist/datapath.h"
#include "netlist/components.h"
#include "netlist/qm.h"

namespace pmbist::mbist_ucode {

using netlist::Cell;
using netlist::GateInventory;

const std::vector<std::string>& decoder_input_names() {
  static const std::vector<std::string> kNames{
      "flow0",     "flow1",     "flow2",      "addr_inc_f", "last_addr",
      "last_data", "last_port", "repeat_bit", "pause_done"};
  return kNames;
}

const std::vector<DecoderOutput>& decoder_covers() {
  static const std::vector<DecoderOutput> cached = [] {
    // Decoder inputs, low bit first: flow[0..2], addr_inc, last_addr,
    // last_data, last_port, repeat, pause_done = 9 variables.
    constexpr int kVars = 9;
    static const char* kOutputNames[kDecodeOutputCount] = {
        "ic_inc",      "ic_reset0",   "ic_reset1", "ic_load_branch",
        "branch_save", "ref_load",    "repeat_set", "repeat_clear",
        "addr_step",   "addr_init",   "data_inc",   "data_reset",
        "port_inc",    "pause_start", "terminate"};
    std::vector<DecoderOutput> out;
    for (int out_bit = 0; out_bit < kDecodeOutputCount; ++out_bit) {
      netlist::TruthTable table{kVars};
      for (std::uint32_t m = 0; m < table.size(); ++m) {
        const auto flow = static_cast<Flow>(m & 0x7);
        const DecodeInputs in{
            .addr_inc = ((m >> 3) & 1) != 0,
            .last_addr = ((m >> 4) & 1) != 0,
            .last_data = ((m >> 5) & 1) != 0,
            .last_port = ((m >> 6) & 1) != 0,
            .repeat_bit = ((m >> 7) & 1) != 0,
            .pause_done = ((m >> 8) & 1) != 0,
        };
        const bool bit = (pack(decode(flow, in)) >> out_bit) & 1u;
        table.set(m, bit ? netlist::Tri::One : netlist::Tri::Zero);
      }
      const auto minimized = netlist::minimize(table);
      assert(table.is_implemented_by(minimized.cover));
      out.push_back(DecoderOutput{kOutputNames[out_bit], minimized.cover});
    }
    return out;
  }();
  return cached;
}

const GateInventory& decoder_inventory() {
  static const GateInventory cached = [] {
    GateInventory inv;
    for (const auto& output : decoder_covers())
      inv += netlist::sop_inventory(output.cover);
    return inv;
  }();
  return cached;
}

netlist::AreaReport microcode_area(const AreaConfig& config) {
  assert(config.storage_depth >= 2);
  const int z = config.storage_depth;
  const int ic_bits = std::bit_width(unsigned(z - 1)) + 1;  // +1: end flag
  const int branch_bits = std::bit_width(unsigned(z - 1));

  netlist::AreaReport report{"microcode-based BIST unit"};

  const auto storage_kind =
      config.storage_cell == netlist::StorageCellClass::ScanOnly
          ? netlist::RegisterKind::ScanOnly
          : netlist::RegisterKind::Scan;
  report.add_block("storage unit (ZxY)",
                   netlist::register_bank(z * kInstructionBits, storage_kind));
  report.add_block("instruction selector",
                   netlist::mux_tree(kInstructionBits, z));
  report.add_block("instruction counter", netlist::binary_counter(ic_bits));
  report.add_block("branch register",
                   netlist::register_bank(branch_bits,
                                          netlist::RegisterKind::Enable));
  {
    // Repeat bit + 3 auxiliary bits, plus the XORs applying the auxiliary
    // order/data/compare values to the instruction fields.
    GateInventory ref = netlist::register_bank(4, netlist::RegisterKind::Enable);
    ref += netlist::xor_bank(3);
    report.add_block("reference register", std::move(ref));
  }
  report.add_block("instruction decoder", decoder_inventory());
  {
    // Read/write field decode, done flag, start/terminate glue.
    GateInventory misc = netlist::and_bank(2);
    misc.add(Cell::Inv, 2);
    misc.add(Cell::Dff, 1);
    misc.add(Cell::Or2, 1);
    report.add_block("rw decode / test-end", std::move(misc));
  }

  if (config.include_datapath)
    bist::add_datapath_blocks(report, config.geometry,
                              config.include_pause_timer);
  return report;
}

}  // namespace pmbist::mbist_ucode
