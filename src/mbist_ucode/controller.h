#pragma once
// Cycle-accurate behavioral model of the microcode-based memory BIST
// controller (paper Fig. 1): storage unit, instruction counter, instruction
// selector, branch register, instruction decoder and reference register,
// driving the shared BIST datapath.  Every control decision goes through
// isa.h's decode() — the same function the synthesized decoder area model
// is built from.

#include "bist/controller.h"
#include "bist/datapath.h"
#include "march/library.h"
#include "mbist_ucode/assembler.h"

namespace pmbist::mbist_ucode {

struct ControllerConfig {
  memsim::MemoryGeometry geometry{};
  /// Storage-unit depth Z; load() rejects larger programs.
  int storage_depth = 32;
  /// Pause-timer duration for Pause instructions (simulated ns).
  std::uint64_t pause_ns = march::kDefaultPauseNs;
};

/// The paper's 2-bit initialization signal: hold the storage contents,
/// preset the built-in default microcodes, or accept a custom image.
enum class InitSelect : std::uint8_t {
  Hold = 0,
  DefaultProgram = 1,
  CustomProgram = 2,
};

class MicrocodeController final : public bist::Controller {
 public:
  explicit MicrocodeController(const ControllerConfig& config);

  /// Loads a program into the storage unit (the paper's custom-microcode
  /// initialization).  Throws AssembleError if it exceeds the storage
  /// depth.  Resets the controller.
  void load(MicrocodeProgram program);

  /// Convenience: assemble + configure pause timer + load.
  void load_algorithm(const march::MarchAlgorithm& alg,
                      const AssembleOptions& options = {});

  /// The built-in default program the initialization signal can preset
  /// (March C, the paper's running example).
  [[nodiscard]] static MicrocodeProgram default_program();

  /// Drives the 2-bit initialization signal.  CustomProgram requires a
  /// `custom` image; Hold keeps the current contents.
  void initialize(InitSelect select,
                  const MicrocodeProgram* custom = nullptr);

  /// Serial scan-load of the storage unit image, one bit per shift clock
  /// (the scan-only cells' load path).  Returns the number of shift
  /// cycles; divide by the cell clock fraction for functional-clock
  /// cycles.  Throws AssembleError on oversized/overwide images.
  std::uint64_t load_scan(const std::vector<std::uint16_t>& image,
                          std::string name = "scan-loaded");

  /// Reads the storage-unit image back through the scan path (the paper's
  /// observation that the scan path doubles as a test access mechanism for
  /// the BIST unit itself).
  [[nodiscard]] std::vector<std::uint16_t> scan_dump() const {
    return program_.image();
  }

  [[nodiscard]] std::string name() const override {
    return "microcode-based";
  }
  void reset() override;
  [[nodiscard]] bool done() const override { return done_; }
  std::optional<march::MemOp> step() override;

  [[nodiscard]] const MicrocodeProgram& program() const noexcept {
    return program_;
  }
  [[nodiscard]] const ControllerConfig& config() const noexcept {
    return config_;
  }

  /// Shift cycles a serial scan-load of the current program costs — the
  /// per-memory re-program price a shared controller pays (soc scheduler).
  [[nodiscard]] std::uint64_t program_load_cycles() const noexcept {
    return program_.image().size() *
           static_cast<std::uint64_t>(kInstructionBits);
  }

  // Introspection for white-box tests.
  [[nodiscard]] int instruction_counter() const noexcept { return ic_; }
  [[nodiscard]] int branch_register() const noexcept { return branch_; }
  [[nodiscard]] bool repeat_bit() const noexcept { return repeat_; }
  [[nodiscard]] bool aux_order() const noexcept { return aux_order_; }
  [[nodiscard]] bool aux_data() const noexcept { return aux_data_; }
  [[nodiscard]] bool aux_cmp() const noexcept { return aux_cmp_; }

 private:
  ControllerConfig config_;
  MicrocodeProgram program_;

  bist::AddressGenerator addr_;
  bist::DataGenerator data_;
  bist::PortSequencer port_;

  int ic_ = 0;
  int branch_ = 0;
  bool repeat_ = false;
  bool aux_order_ = false;
  bool aux_data_ = false;
  bool aux_cmp_ = false;
  bool fresh_element_ = true;  ///< address generator needs element init
  bool pause_done_ = false;    ///< pause timer expired for the current Pause
  bool done_ = false;
};

}  // namespace pmbist::mbist_ucode
