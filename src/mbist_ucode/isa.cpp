#include "mbist_ucode/isa.h"

#include <cctype>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace pmbist::mbist_ucode {

std::string_view to_string(Flow f) {
  switch (f) {
    case Flow::Next: return "NEXT";
    case Flow::LoopCell: return "LOOP_CELL";
    case Flow::LoopSelf: return "LOOP_SELF";
    case Flow::Repeat: return "REPEAT";
    case Flow::Pause: return "PAUSE";
    case Flow::LoopData: return "LOOP_DATA";
    case Flow::LoopPort: return "LOOP_PORT";
    case Flow::Terminate: return "TERMINATE";
  }
  return "?";
}

std::uint16_t Instruction::encode() const {
  std::uint16_t bits = 0;
  bits |= static_cast<std::uint16_t>(addr_inc) << 0;
  bits |= static_cast<std::uint16_t>(addr_down) << 1;
  bits |= static_cast<std::uint16_t>(data_inc) << 2;
  bits |= static_cast<std::uint16_t>(data_inv) << 3;
  bits |= static_cast<std::uint16_t>(cmp_inv) << 4;
  bits |= static_cast<std::uint16_t>(rw) << 5;
  bits |= static_cast<std::uint16_t>(flow) << 7;
  return bits;
}

Instruction Instruction::decode(std::uint16_t bits) {
  if (bits >= (1u << kInstructionBits))
    throw std::invalid_argument("microcode word exceeds 10 bits");
  const auto rw_bits = static_cast<std::uint8_t>((bits >> 5) & 0x3);
  if (rw_bits == 3)
    throw std::invalid_argument("microcode rw field 11 is reserved");
  Instruction i;
  i.addr_inc = bits & 0x1;
  i.addr_down = bits & 0x2;
  i.data_inc = bits & 0x4;
  i.data_inv = bits & 0x8;
  i.cmp_inv = bits & 0x10;
  i.rw = static_cast<Rw>(rw_bits);
  i.flow = static_cast<Flow>((bits >> 7) & 0x7);
  return i;
}

std::string Instruction::disassemble() const {
  std::ostringstream os;
  switch (rw) {
    case Rw::Nop: os << "--      "; break;
    case Rw::Read: os << "r cmp=" << (cmp_inv ? 1 : 0) << " "; break;
    case Rw::Write: os << "w dat=" << (data_inv ? 1 : 0) << " "; break;
  }
  os << (addr_down ? "down" : "up  ") << " "
     << (addr_inc ? "inc " : "hold") << " ";
  if (data_inc) os << "bg+ ";
  os << to_string(flow);
  return os.str();
}

std::vector<std::uint16_t> MicrocodeProgram::image() const {
  std::vector<std::uint16_t> out;
  out.reserve(instructions_.size());
  for (const auto& i : instructions_) out.push_back(i.encode());
  return out;
}

MicrocodeProgram MicrocodeProgram::from_image(
    std::string name, const std::vector<std::uint16_t>& image) {
  std::vector<Instruction> instructions;
  instructions.reserve(image.size());
  for (std::size_t i = 0; i < image.size(); ++i) {
    try {
      instructions.push_back(Instruction::decode(image[i]));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument{"instruction " + std::to_string(i) + ": " +
                                  e.what()};
    }
  }
  return MicrocodeProgram{std::move(name), std::move(instructions)};
}

std::string MicrocodeProgram::listing() const {
  std::ostringstream os;
  os << "; microcode program: " << name_ << " (" << instructions_.size()
     << " instructions)\n";
  for (std::size_t i = 0; i < instructions_.size(); ++i) {
    os << std::setw(3) << i << ": 0x" << std::hex << std::setw(3)
       << std::setfill('0') << instructions_[i].encode() << std::dec
       << std::setfill(' ') << "  " << instructions_[i].disassemble() << "\n";
  }
  return os.str();
}

std::string MicrocodeProgram::to_hex_text() const {
  std::ostringstream os;
  os << "; pmbist microcode image v1\n";
  os << "; name: " << name_ << "\n";
  for (const auto& i : instructions_) {
    os << std::hex << std::setw(3) << std::setfill('0') << i.encode()
       << std::dec << std::setfill(' ') << "  ; " << i.disassemble()
       << "\n";
  }
  return os.str();
}

MicrocodeProgram MicrocodeProgram::from_hex_text(std::string_view text) {
  std::istringstream is{std::string{text}};
  std::string line;
  std::string name = "image";
  std::vector<Instruction> code;
  bool saw_header = false;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments and whitespace.
    if (const auto semi = line.find(';'); semi != std::string::npos) {
      const std::string comment = line.substr(semi + 1);
      if (comment.find("pmbist microcode image v1") != std::string::npos)
        saw_header = true;
      if (const auto tag = comment.find("name:"); tag != std::string::npos) {
        std::string n = comment.substr(tag + 5);
        while (!n.empty() && n.front() == ' ') n.erase(n.begin());
        while (!n.empty() && (n.back() == ' ' || n.back() == '\r'))
          n.pop_back();
        if (!n.empty()) name = n;
      }
      line.erase(semi);
    }
    std::string word;
    for (char c : line)
      if (!std::isspace(static_cast<unsigned char>(c))) word += c;
    if (word.empty()) continue;
    std::size_t pos = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(word, &pos, 16);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != word.size() || value > 0xffff)
      throw std::invalid_argument("line " + std::to_string(lineno) +
                                  ": malformed hex word '" + word + "'");
    try {
      code.push_back(Instruction::decode(static_cast<std::uint16_t>(value)));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument{"instruction " + std::to_string(code.size()) +
                                  " (line " + std::to_string(lineno) + "): " +
                                  e.what()};
    }
  }
  // Truncated input reports the same scan detail as malformed input: the
  // pFSM loader words these identically (modulo the architecture token) so
  // tooling can treat both formats uniformly.
  if (!saw_header)
    throw std::invalid_argument("missing 'pmbist microcode image v1' header "
                                "(scanned " + std::to_string(lineno) +
                                " line(s))");
  if (code.empty())
    throw std::invalid_argument("image has no instructions (" +
                                std::to_string(lineno) + " line(s) scanned)");
  return MicrocodeProgram{std::move(name), std::move(code)};
}

DecodeOutputs decode(Flow flow, const DecodeInputs& in) {
  DecodeOutputs out;
  switch (flow) {
    case Flow::Next:
      out.ic_inc = true;
      out.addr_step = in.addr_inc && !in.last_addr;
      break;
    case Flow::LoopSelf:
      if (!in.last_addr) {
        out.addr_step = true;  // IC holds
      } else {
        out.ic_inc = true;
        out.branch_save = true;
        out.addr_init = true;
      }
      break;
    case Flow::LoopCell:
      if (!in.last_addr) {
        out.addr_step = true;
        out.ic_load_branch = true;
      } else {
        out.ic_inc = true;
        out.branch_save = true;
        out.addr_init = true;
      }
      break;
    case Flow::Repeat:
      if (!in.repeat_bit) {
        out.repeat_set = true;
        out.ref_load = true;
        out.ic_reset1 = true;
        out.addr_init = true;
      } else {
        out.repeat_clear = true;
        out.ic_inc = true;
        out.branch_save = true;  // next element group starts at IC+1
        out.addr_init = true;
      }
      break;
    case Flow::Pause:
      if (in.pause_done) {
        out.ic_inc = true;
        out.branch_save = true;  // a pause ends an element group
      } else {
        out.pause_start = true;
      }
      break;
    case Flow::LoopData:
      if (!in.last_data) {
        out.data_inc = true;
        out.ic_reset0 = true;
        out.addr_init = true;
      } else {
        out.data_reset = true;
        out.ic_inc = true;
      }
      break;
    case Flow::LoopPort:
      if (!in.last_port) {
        out.port_inc = true;
        out.data_reset = true;
        out.ic_reset0 = true;
        out.addr_init = true;
      } else {
        out.terminate = true;
      }
      break;
    case Flow::Terminate:
      out.terminate = true;
      break;
  }
  return out;
}

std::uint32_t pack(const DecodeOutputs& o) {
  std::uint32_t bits = 0;
  int idx = 0;
  for (bool b : {o.ic_inc, o.ic_reset0, o.ic_reset1, o.ic_load_branch,
                 o.branch_save, o.ref_load, o.repeat_set, o.repeat_clear,
                 o.addr_step, o.addr_init, o.data_inc, o.data_reset,
                 o.port_inc, o.pause_start, o.terminate}) {
    if (b) bits |= 1u << idx;
    ++idx;
  }
  return bits;
}

}  // namespace pmbist::mbist_ucode
