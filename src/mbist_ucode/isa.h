#pragma once
// Microcode ISA of the paper's microcode-based memory BIST controller
// (Fig. 1 / Fig. 2).
//
// A microcode instruction is 10 bits wide:
//
//   [0]   addr_inc   hold(0)/increment(1) the address generator after the op
//   [1]   addr_down  element address order: up(0)/down(1) — XORed with the
//                    reference register's auxiliary order bit
//   [2]   data_inc   hold(0)/increment(1) the data background generator
//                    (used by the data-loop instruction)
//   [3]   data_inv   test data: true(0)/inverted(1) background — XORed with
//                    the auxiliary data bit
//   [4]   cmp_inv    compare polarity — XORed with the auxiliary compare bit
//   [6:5] rw         00 no-op, 01 read, 10 write
//   [9:7] flow       condition / flow-control field (see Flow)
//
// Flow semantics (the behavioral controller and the synthesized
// instruction decoder both derive from decode() below):
//
//   Next       perform op; advance to the next instruction.
//   LoopCell   perform op; if not at the last address, step the address and
//              branch to the branch register (re-running the element's op
//              group on the next cell); else save IC+1 into the branch
//              register (the paper's Save-Address-Condition configured to
//              Last Address) and fall through.
//   LoopSelf   single-op element: perform op; step the address holding the
//              instruction counter; on the last address, save IC+1 to the
//              branch register and fall through.
//   Repeat     symmetric-algorithm support: first encounter loads the
//              reference register's auxiliary order/data/compare bits from
//              this instruction's fields, sets the repeat bit, and resets
//              the instruction counter to 1 (the paper's dedicated
//              "Reset to 1" path); second encounter clears both and falls
//              through.
//   Pause      data-retention Hold: starts the pause timer; falls through
//              when the timer expires.
//   LoopData   word-oriented support: if not at the last background,
//              increment the data generator and reset IC to 0; else reset
//              the data generator and fall through.
//   LoopPort   multiport support: if not at the last port, increment the
//              port, reset the data generator and reset IC to 0; else
//              terminate.
//   Terminate  unconditional end of test.

#include <cstdint>
#include <string>
#include <vector>

namespace pmbist::mbist_ucode {

inline constexpr int kInstructionBits = 10;

/// Read/write field values.
enum class Rw : std::uint8_t { Nop = 0, Read = 1, Write = 2 };

/// Flow-control field values.
enum class Flow : std::uint8_t {
  Next = 0,
  LoopCell = 1,
  LoopSelf = 2,
  Repeat = 3,
  Pause = 4,
  LoopData = 5,
  LoopPort = 6,
  Terminate = 7,
};

[[nodiscard]] std::string_view to_string(Flow f);

/// One decoded microcode instruction.
struct Instruction {
  bool addr_inc = false;
  bool addr_down = false;
  bool data_inc = false;
  bool data_inv = false;
  bool cmp_inv = false;
  Rw rw = Rw::Nop;
  Flow flow = Flow::Next;

  [[nodiscard]] std::uint16_t encode() const;
  [[nodiscard]] static Instruction decode(std::uint16_t bits);

  /// One-line human-readable form, e.g. "r cmp=1 hold  LOOP_CELL".
  [[nodiscard]] std::string disassemble() const;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// A microcode program: the contents of the storage unit.
class MicrocodeProgram {
 public:
  MicrocodeProgram() = default;
  MicrocodeProgram(std::string name, std::vector<Instruction> instructions)
      : name_{std::move(name)}, instructions_{std::move(instructions)} {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Instruction>& instructions() const noexcept {
    return instructions_;
  }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(instructions_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return instructions_.empty(); }

  /// Raw storage-unit image (one 10-bit word per instruction).
  [[nodiscard]] std::vector<std::uint16_t> image() const;
  [[nodiscard]] static MicrocodeProgram from_image(
      std::string name, const std::vector<std::uint16_t>& image);

  /// Formatted listing (one instruction per line with index and encoding).
  [[nodiscard]] std::string listing() const;

  /// Portable hex-image text: a header line, the program name, then one
  /// 3-digit hex word per line with a disassembly comment.  Round-trips
  /// through from_hex_text(); the on-disk format of `pmbist assemble
  /// --hex` and `pmbist run --program <file>`.
  [[nodiscard]] std::string to_hex_text() const;

  /// Parses hex-image text.  Throws std::invalid_argument on malformed
  /// input (bad header, non-hex words, reserved encodings).
  [[nodiscard]] static MicrocodeProgram from_hex_text(std::string_view text);

 private:
  std::string name_;
  std::vector<Instruction> instructions_;
};

/// Combinational outputs of the instruction decoder module — the signals of
/// the paper's Fig. 1 (Inc. Address, Reset-to-0/1, Reset-to-branch-register,
/// Save Current Address, Inc. Port, Terminate, ...).  Both the behavioral
/// controller and the synthesized decoder derive from this one function.
struct DecodeOutputs {
  bool ic_inc = false;          ///< advance the instruction counter
  bool ic_reset0 = false;       ///< reset IC to 0
  bool ic_reset1 = false;       ///< reset IC to 1 (Repeat path)
  bool ic_load_branch = false;  ///< load IC from the branch register
  bool branch_save = false;     ///< branch register := IC + 1
  bool ref_load = false;        ///< load aux order/data/compare from fields
  bool repeat_set = false;
  bool repeat_clear = false;
  bool addr_step = false;
  bool addr_init = false;       ///< (re)initialize address gen for an element
  bool data_inc = false;
  bool data_reset = false;
  bool port_inc = false;
  bool pause_start = false;
  bool terminate = false;

  friend bool operator==(const DecodeOutputs&,
                         const DecodeOutputs&) = default;
};

inline constexpr int kDecodeOutputCount = 15;

/// Condition inputs sampled by the decoder.
struct DecodeInputs {
  bool addr_inc = false;   ///< instruction field
  bool last_addr = false;
  bool last_data = false;  ///< last background
  bool last_port = false;
  bool repeat_bit = false;
  bool pause_done = false;
};

/// The instruction decoder as a pure function (Flow x fields x conditions
/// -> control signals).
[[nodiscard]] DecodeOutputs decode(Flow flow, const DecodeInputs& in);

/// Packs DecodeOutputs into a bit vector in a fixed order (for synthesis).
[[nodiscard]] std::uint32_t pack(const DecodeOutputs& out);

}  // namespace pmbist::mbist_ucode
