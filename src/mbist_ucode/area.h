#pragma once
// Structural area model of the microcode-based BIST controller (Fig. 1).
//
// Every block of the paper's figure is elaborated into standard cells:
// the ZxY storage unit (full-scan or — for the Table 3 "adjusted" design —
// small scan-only cells), the ZxY:Y instruction selector, the log2(Z)+1-bit
// instruction counter, the branch register, the 4-bit reference register,
// and the instruction decoder, which is synthesized (Quine-McCluskey over
// the real decode() function) rather than guessed.

#include <string>
#include <vector>

#include "memsim/memory.h"
#include "netlist/gate_inventory.h"
#include "netlist/logic.h"
#include "mbist_ucode/isa.h"

namespace pmbist::mbist_ucode {

struct AreaConfig {
  memsim::MemoryGeometry geometry{};
  int storage_depth = 32;  ///< Z
  netlist::StorageCellClass storage_cell =
      netlist::StorageCellClass::FullScan;
  bool include_datapath = true;
  bool include_pause_timer = true;
};

/// Hierarchical area report of the full microcode-based BIST unit.
[[nodiscard]] netlist::AreaReport microcode_area(const AreaConfig& config);

/// One synthesized decoder output: control-signal name + minimized cover
/// over the decoder inputs (flow[0..2], addr_inc, last_addr, last_data,
/// last_port, repeat_bit, pause_done).
struct DecoderOutput {
  std::string name;
  netlist::Cover cover;
};

/// The instruction decoder's minimized covers, one per control signal
/// (cached; each cover is assertion-checked against decode()).
[[nodiscard]] const std::vector<DecoderOutput>& decoder_covers();

/// The decoder input names, in cover variable order.
[[nodiscard]] const std::vector<std::string>& decoder_input_names();

/// Synthesized inventory of the instruction decoder alone (cached).
[[nodiscard]] const netlist::GateInventory& decoder_inventory();

}  // namespace pmbist::mbist_ucode
