#pragma once
// Synthesizable RTL emission of the complete microcode-based BIST unit
// (paper Fig. 1): the Z x 10 storage unit with its serial scan-load path,
// instruction counter, branch register, reference register, the minimized
// instruction decoder (instantiated from the same verified covers the area
// model prices), and the shared datapath (up/down address counter, data
// background generator, comparator, port sequencer, pause timer).
//
// The emitted module is a faithful transcription of the cycle-accurate
// behavioral model in controller.cpp — one memory operation per cycle,
// identical register-update rules — and assumes a combinational-read SRAM
// (rdata valid in the issuing cycle).  The C++ model is the golden
// reference; simulate the RTL against it with your simulator of choice
// when integrating (none is bundled here).

#include <string>

#include "memsim/memory.h"

namespace pmbist::mbist_ucode {

struct RtlConfig {
  memsim::MemoryGeometry geometry{};
  int storage_depth = 32;        ///< Z
  int pause_cycles = 1 << 16;    ///< retention hold, in clock cycles
  std::string module_name = "ucode_bist_top";
};

/// Emits the decoder module (`ucode_decoder`) followed by the top-level
/// controller module.
[[nodiscard]] std::string emit_controller_rtl(const RtlConfig& config);

}  // namespace pmbist::mbist_ucode
