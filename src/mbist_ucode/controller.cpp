#include "mbist_ucode/controller.h"

namespace pmbist::mbist_ucode {

MicrocodeController::MicrocodeController(const ControllerConfig& config)
    : config_{config},
      addr_{config.geometry.address_bits},
      data_{config.geometry.word_bits},
      port_{config.geometry.num_ports} {
  reset();
}

void MicrocodeController::load(MicrocodeProgram program) {
  if (program.size() > config_.storage_depth)
    throw AssembleError("program '" + program.name() + "' needs " +
                        std::to_string(program.size()) +
                        " instructions but the storage unit holds " +
                        std::to_string(config_.storage_depth));
  program_ = std::move(program);
  reset();
}

void MicrocodeController::load_algorithm(const march::MarchAlgorithm& alg,
                                         const AssembleOptions& options) {
  AssembleResult r = assemble(alg, options);
  if (r.pause_ns != 0) config_.pause_ns = r.pause_ns;
  load(std::move(r.program));
}

MicrocodeProgram MicrocodeController::default_program() {
  return assemble(march::march_c()).program;
}

void MicrocodeController::initialize(InitSelect select,
                                     const MicrocodeProgram* custom) {
  switch (select) {
    case InitSelect::Hold:
      reset();
      break;
    case InitSelect::DefaultProgram:
      load(default_program());
      break;
    case InitSelect::CustomProgram:
      if (custom == nullptr)
        throw AssembleError(
            "CustomProgram initialization requires a program image");
      load(*custom);
      break;
  }
}

std::uint64_t MicrocodeController::load_scan(
    const std::vector<std::uint16_t>& image, std::string name) {
  load(MicrocodeProgram::from_image(std::move(name), image));
  return static_cast<std::uint64_t>(image.size()) * kInstructionBits;
}

void MicrocodeController::reset() {
  ic_ = 0;
  branch_ = 0;
  repeat_ = false;
  aux_order_ = aux_data_ = aux_cmp_ = false;
  fresh_element_ = true;
  pause_done_ = false;
  addr_.init(march::AddressOrder::Up);
  data_.reset();
  port_.reset();
  done_ = program_.empty();
}

std::optional<march::MemOp> MicrocodeController::step() {
  if (done_) return std::nullopt;
  if (ic_ >= program_.size()) {
    // Instruction-address exhaustion ends the test (paper, Sec. 2.1).
    done_ = true;
    return std::nullopt;
  }

  const Instruction& instr = program_.instructions()[
      static_cast<std::size_t>(ic_)];

  // Element entry: (re)initialize the address generator in the effective
  // direction before the first operation of the element.
  const bool effective_down = instr.addr_down ^ aux_order_;
  const bool is_op_flow = instr.flow == Flow::Next ||
                          instr.flow == Flow::LoopCell ||
                          instr.flow == Flow::LoopSelf;
  if (is_op_flow && fresh_element_) {
    addr_.init(effective_down ? march::AddressOrder::Down
                              : march::AddressOrder::Up);
    fresh_element_ = false;
  }

  const DecodeInputs in{
      .addr_inc = instr.addr_inc,
      .last_addr = addr_.at_last(),
      .last_data = data_.at_last(),
      .last_port = port_.at_last(),
      .repeat_bit = repeat_,
      .pause_done = pause_done_,
  };
  const DecodeOutputs out = decode(instr.flow, in);

  // Memory operation issued this cycle.
  std::optional<march::MemOp> op;
  if (is_op_flow) {
    if (instr.rw == Rw::Read) {
      op = march::MemOp::read(port_.current(), addr_.current(),
                              data_.data_for(instr.cmp_inv ^ aux_cmp_));
    } else if (instr.rw == Rw::Write) {
      op = march::MemOp::write(port_.current(), addr_.current(),
                               data_.data_for(instr.data_inv ^ aux_data_));
    }
  } else if (out.pause_start) {
    op = march::MemOp::pause(config_.pause_ns);
    pause_done_ = true;  // timer modeled as expiring before the next cycle
  }

  // Register updates at the clock edge.
  if (out.ref_load) {
    aux_order_ = instr.addr_down;
    aux_data_ = instr.data_inv;
    aux_cmp_ = instr.cmp_inv;
  }
  if (out.repeat_set) repeat_ = true;
  if (out.repeat_clear) {
    repeat_ = false;
    aux_order_ = aux_data_ = aux_cmp_ = false;  // reference register cleared
  }
  if (out.branch_save) branch_ = ic_ + 1;
  if (out.addr_step) addr_.step();
  if (out.addr_init) fresh_element_ = true;
  if (out.data_inc) data_.next();
  if (out.data_reset) data_.reset();
  if (out.port_inc) port_.next();

  if (out.terminate) {
    done_ = true;
  } else if (out.ic_load_branch) {
    ic_ = branch_;
  } else if (out.ic_reset0) {
    // Forced IC loads also load the branch register, so the first element
    // of the restarted pass loops correctly.
    ic_ = 0;
    branch_ = 0;
  } else if (out.ic_reset1) {
    ic_ = 1;
    branch_ = 1;
  } else if (out.ic_inc) {
    ++ic_;
    if (instr.flow == Flow::Pause) pause_done_ = false;  // re-arm the timer
  }

  return op;
}

}  // namespace pmbist::mbist_ucode
