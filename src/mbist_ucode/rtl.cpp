#include "mbist_ucode/rtl.h"

#include <bit>
#include <cassert>
#include <sstream>

#include "march/expand.h"
#include "mbist_ucode/area.h"
#include "netlist/verilog.h"

namespace pmbist::mbist_ucode {
namespace {

int clog2(int n) { return n <= 1 ? 1 : std::bit_width(unsigned(n - 1)); }

}  // namespace

std::string emit_controller_rtl(const RtlConfig& config) {
  const auto& g = config.geometry;
  assert(g.word_bits >= 1 && g.word_bits <= 64);
  const int z = config.storage_depth;
  const int a = g.address_bits;
  const int w = g.word_bits;
  const int icw = clog2(z) + 1;  // +1: instruction-address exhaustion flag
  const int brw = clog2(z);
  const auto backgrounds = march::standard_backgrounds(w);
  const int nbg = static_cast<int>(backgrounds.size());
  const int bgw = clog2(nbg);
  const int pw = clog2(g.num_ports);
  const int tmw = clog2(config.pause_cycles + 1);

  std::ostringstream os;

  // --- decoder module (the verified minimized covers) ---------------------
  std::vector<netlist::SopOutput> outs;
  for (const auto& d : decoder_covers()) outs.push_back({d.name, d.cover});
  os << netlist::emit_sop_module("ucode_decoder", decoder_input_names(),
                                 outs);
  os << "\n";

  // --- top level ------------------------------------------------------------
  os << "// Microcode-based memory BIST unit (Zarrineh/Upadhyaya Fig. 1)\n";
  os << "// Z=" << z << " Y=" << kInstructionBits << "  memory: " << a
     << "-bit addresses x " << w << "-bit words x " << g.num_ports
     << " port(s)\n";
  os << "// Golden reference: pmbist mbist_ucode::MicrocodeController.\n";
  os << "module " << netlist::verilog_identifier(config.module_name)
     << " (\n"
     << "  input  wire clk,\n"
     << "  input  wire rst,\n"
     << "  // serial storage-unit load (scan-only cells)\n"
     << "  input  wire scan_en,\n"
     << "  input  wire scan_in,\n"
     << "  output wire scan_out,\n"
     << "  // memory under test (combinational read assumed)\n"
     << "  output wire [" << a - 1 << ":0] mem_addr,\n"
     << "  output wire [" << w - 1 << ":0] mem_wdata,\n"
     << "  input  wire [" << w - 1 << ":0] mem_rdata,\n"
     << "  output wire mem_read,\n"
     << "  output wire mem_write,\n"
     << "  output wire [" << pw - 1 << ":0] port_sel,\n"
     << "  output reg  done,\n"
     << "  output reg  fail\n"
     << ");\n\n";

  os << "  localparam Z = " << z << ";\n";
  os << "  localparam PAUSE_CYCLES = " << config.pause_cycles << ";\n\n";

  os << "  // storage unit: Z x " << kInstructionBits
     << " scan-only cells, serial load\n";
  os << "  reg [" << kInstructionBits - 1 << ":0] storage [0:Z-1];\n";
  os << "  integer k;\n";
  os << "  always @(posedge clk) begin\n"
     << "    if (scan_en) begin\n"
     << "      for (k = Z - 1; k > 0; k = k - 1)\n"
     << "        storage[k] <= {storage[k][" << kInstructionBits - 2
     << ":0], storage[k-1][" << kInstructionBits - 1 << "]};\n"
     << "      storage[0] <= {storage[0][" << kInstructionBits - 2
     << ":0], scan_in};\n"
     << "    end\n"
     << "  end\n";
  os << "  assign scan_out = storage[Z-1][" << kInstructionBits - 1
     << "];\n\n";

  os << "  // architectural registers (Fig. 1)\n";
  os << "  reg [" << icw - 1 << ":0] ic;          // instruction counter\n";
  os << "  reg [" << brw - 1 << ":0] branch_reg;\n";
  os << "  reg repeat_bit, aux_order, aux_data, aux_cmp;  // reference reg\n";
  os << "  reg fresh;                   // element-entry address (re)init\n";
  os << "  reg [" << a - 1 << ":0] addr_q;\n";
  os << "  reg [" << bgw - 1 << ":0] bg_idx;\n";
  os << "  reg [" << pw - 1 << ":0] port_q;\n";
  os << "  reg [" << tmw - 1 << ":0] pause_cnt;\n\n";

  os << "  // instruction selector + field aliases\n";
  os << "  wire [" << kInstructionBits - 1 << ":0] instr = storage[ic["
     << brw - 1 << ":0]];\n";
  os << "  wire f_addr_inc  = instr[0];\n"
     << "  wire f_addr_down = instr[1];\n"
     << "  wire f_data_inv  = instr[3];\n"
     << "  wire f_cmp_inv   = instr[4];\n"
     << "  wire [1:0] f_rw  = instr[6:5];\n"
     << "  wire [2:0] f_flow = instr[9:7];\n";
  os << "  wire is_op_flow = (f_flow == 3'd0) || (f_flow == 3'd1) || "
        "(f_flow == 3'd2);\n\n";

  os << "  // effective element direction (reference register XOR)\n";
  os << "  wire eff_down = f_addr_down ^ aux_order;\n";
  os << "  wire [" << a - 1 << ":0] addr_eff = fresh ? (eff_down ? {" << a
     << "{1'b1}} : {" << a << "{1'b0}}) : addr_q;\n";
  os << "  assign mem_addr = addr_eff;\n";
  os << "  wire last_addr = eff_down ? (addr_eff == {" << a
     << "{1'b0}}) : (addr_eff == {" << a << "{1'b1}});\n\n";

  os << "  // data background generator\n";
  os << "  reg [" << w - 1 << ":0] bg;\n";
  os << "  always @* begin\n    case (bg_idx)\n";
  for (int i = 0; i < nbg; ++i)
    os << "      " << bgw << "'d" << i << ": bg = " << w << "'h" << std::hex
       << backgrounds[static_cast<std::size_t>(i)] << std::dec << ";\n";
  os << "      default: bg = " << w << "'h0;\n    endcase\n  end\n";
  os << "  wire last_data = (bg_idx == " << bgw << "'d" << nbg - 1 << ");\n";
  os << "  assign mem_wdata = (f_data_inv ^ aux_data) ? ~bg : bg;\n";
  os << "  wire [" << w - 1
     << ":0] expected = (f_cmp_inv ^ aux_cmp) ? ~bg : bg;\n\n";

  os << "  // port sequencer\n";
  os << "  assign port_sel = port_q;\n";
  os << "  wire last_port = (port_q == " << pw << "'d" << g.num_ports - 1
     << ");\n\n";

  os << "  // pause timer (data-retention Hold)\n";
  os << "  wire pause_done = (pause_cnt == PAUSE_CYCLES);\n\n";

  os << "  // instruction decoder (two-level minimized logic)\n";
  os << "  wire d_ic_inc, d_ic_reset0, d_ic_reset1, d_ic_load_branch;\n"
     << "  wire d_branch_save, d_ref_load, d_repeat_set, d_repeat_clear;\n"
     << "  wire d_addr_step, d_addr_init, d_data_inc, d_data_reset;\n"
     << "  wire d_port_inc, d_pause_start, d_terminate;\n";
  os << "  ucode_decoder u_dec (\n"
     << "    .flow0(f_flow[0]), .flow1(f_flow[1]), .flow2(f_flow[2]),\n"
     << "    .addr_inc_f(f_addr_inc), .last_addr(last_addr),\n"
     << "    .last_data(last_data), .last_port(last_port),\n"
     << "    .repeat_bit(repeat_bit), .pause_done(pause_done),\n"
     << "    .ic_inc(d_ic_inc), .ic_reset0(d_ic_reset0),\n"
     << "    .ic_reset1(d_ic_reset1), .ic_load_branch(d_ic_load_branch),\n"
     << "    .branch_save(d_branch_save), .ref_load(d_ref_load),\n"
     << "    .repeat_set(d_repeat_set), .repeat_clear(d_repeat_clear),\n"
     << "    .addr_step(d_addr_step), .addr_init(d_addr_init),\n"
     << "    .data_inc(d_data_inc), .data_reset(d_data_reset),\n"
     << "    .port_inc(d_port_inc), .pause_start(d_pause_start),\n"
     << "    .terminate(d_terminate)\n  );\n\n";

  os << "  wire run = !scan_en && !done && (ic < Z);\n";
  os << "  assign mem_read  = run && is_op_flow && (f_rw == 2'd1);\n";
  os << "  assign mem_write = run && is_op_flow && (f_rw == 2'd2);\n\n";

  os << "  // read comparator: sticky fail flag\n";
  os << "  always @(posedge clk) begin\n"
     << "    if (rst) fail <= 1'b0;\n"
     << "    else if (mem_read && (mem_rdata != expected)) fail <= 1'b1;\n"
     << "  end\n\n";

  os << "  // register updates — mirrors MicrocodeController::step()\n";
  os << "  always @(posedge clk) begin\n"
     << "    if (rst) begin\n"
     << "      ic <= 0; branch_reg <= 0; repeat_bit <= 1'b0;\n"
     << "      aux_order <= 1'b0; aux_data <= 1'b0; aux_cmp <= 1'b0;\n"
     << "      fresh <= 1'b1; addr_q <= 0; bg_idx <= 0; port_q <= 0;\n"
     << "      pause_cnt <= 0; done <= 1'b0;\n"
     << "    end else if (run) begin\n"
     << "      if (ic >= Z) done <= 1'b1;  // address exhaustion\n"
     << "      // reference register / repeat bit\n"
     << "      if (d_ref_load) begin\n"
     << "        aux_order <= f_addr_down; aux_data <= f_data_inv;\n"
     << "        aux_cmp <= f_cmp_inv;\n"
     << "      end\n"
     << "      if (d_repeat_set) repeat_bit <= 1'b1;\n"
     << "      if (d_repeat_clear) begin\n"
     << "        repeat_bit <= 1'b0;\n"
     << "        aux_order <= 1'b0; aux_data <= 1'b0; aux_cmp <= 1'b0;\n"
     << "      end\n"
     << "      // branch register (forced IC loads mirror into it)\n"
     << "      if (d_branch_save) branch_reg <= ic[" << brw - 1
     << ":0] + 1'b1;\n"
     << "      if (d_ic_reset0) branch_reg <= 0;\n"
     << "      if (d_ic_reset1) branch_reg <= 1;\n"
     << "      // address generator\n"
     << "      if (d_addr_step) addr_q <= eff_down ? addr_eff - 1'b1 : "
        "addr_eff + 1'b1;\n"
     << "      else addr_q <= addr_eff;\n"
     << "      fresh <= d_addr_init ? 1'b1 : (is_op_flow ? 1'b0 : fresh);\n"
     << "      // data background / port sequencing\n"
     << "      if (d_data_inc) bg_idx <= bg_idx + 1'b1;\n"
     << "      if (d_data_reset) bg_idx <= 0;\n"
     << "      if (d_port_inc) port_q <= port_q + 1'b1;\n"
     << "      // pause timer\n"
     << "      if (d_pause_start) pause_cnt <= pause_cnt + 1'b1;\n"
     << "      if (d_ic_inc && (f_flow == 3'd4)) pause_cnt <= 0;\n"
     << "      // instruction counter\n"
     << "      if (d_terminate) done <= 1'b1;\n"
     << "      else if (d_ic_load_branch) ic <= {1'b0, branch_reg};\n"
     << "      else if (d_ic_reset0) ic <= 0;\n"
     << "      else if (d_ic_reset1) ic <= 1;\n"
     << "      else if (d_ic_inc) ic <= ic + 1'b1;\n"
     << "    end\n"
     << "  end\n\nendmodule\n";

  return os.str();
}

}  // namespace pmbist::mbist_ucode
