#include "mbist_ucode/assembler.h"

namespace pmbist::mbist_ucode {
namespace {

using march::AddressOrder;
using march::MarchElement;
using march::MarchOp;

struct AuxMask {
  bool order = false;
  bool data = false;
  bool cmp = false;
};

// Controllers traverse don't-care ("any") elements in up order; canonicalize
// before fold matching and emission so the Repeat complement is exact.
std::vector<MarchElement> canonicalize(
    const std::vector<MarchElement>& elements) {
  std::vector<MarchElement> out = elements;
  for (auto& e : out)
    if (!e.is_pause && e.order == AddressOrder::Any)
      e.order = AddressOrder::Up;
  return out;
}

// The element as re-executed under the reference-register complement mask.
MarchElement transform(const MarchElement& e, const AuxMask& aux) {
  MarchElement out = e;
  if (aux.order) out.order = march::complement(e.order);
  for (auto& op : out.ops) {
    if (op.is_read()) {
      if (aux.cmp) op.data = !op.data;
    } else {
      if (aux.data) op.data = !op.data;
    }
  }
  return out;
}

// Finds the largest k such that elements [1..k] reappear at [k+1..2k] under
// a single complement mask.  Returns k=0 when no fold exists.
struct Fold {
  int k = 0;
  AuxMask aux;
};

Fold find_fold(const std::vector<MarchElement>& elements) {
  Fold best;
  const int n = static_cast<int>(elements.size());
  for (int k = (n - 1) / 2; k >= 1; --k) {
    // Window [1 .. 2k] must be in range and pause-free.
    if (1 + 2 * k > n) continue;
    bool window_ok = true;
    for (int i = 1; i <= 2 * k && window_ok; ++i)
      if (elements[static_cast<std::size_t>(i)].is_pause) window_ok = false;
    if (!window_ok) continue;

    for (int mask = 1; mask < 8; ++mask) {
      const AuxMask aux{(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0};
      bool match = true;
      for (int i = 0; i < k && match; ++i) {
        const auto& first = elements[static_cast<std::size_t>(1 + i)];
        const auto& second = elements[static_cast<std::size_t>(1 + k + i)];
        if (transform(first, aux) != second) match = false;
      }
      if (match) {
        best.k = k;
        best.aux = aux;
        return best;
      }
    }
  }
  return best;
}

void emit_element(const MarchElement& e, std::vector<Instruction>& out) {
  if (e.is_pause) {
    Instruction i;
    i.flow = Flow::Pause;
    out.push_back(i);
    return;
  }
  const int n = static_cast<int>(e.ops.size());
  for (int j = 0; j < n; ++j) {
    const MarchOp& op = e.ops[static_cast<std::size_t>(j)];
    Instruction i;
    i.addr_down = e.order == AddressOrder::Down;
    i.addr_inc = j == n - 1;
    if (op.is_read()) {
      i.rw = Rw::Read;
      i.cmp_inv = op.data;
    } else {
      i.rw = Rw::Write;
      i.data_inv = op.data;
    }
    i.flow = n == 1 ? Flow::LoopSelf
                    : (j == n - 1 ? Flow::LoopCell : Flow::Next);
    out.push_back(i);
  }
}

}  // namespace

AssembleResult assemble(const march::MarchAlgorithm& alg,
                        const AssembleOptions& options) {
  if (const std::string err = alg.validate(); !err.empty())
    throw AssembleError("cannot assemble '" + alg.name() + "': " + err);

  // All pause elements must agree on duration (single pause-timer config).
  std::uint64_t pause_ns = 0;
  for (std::size_t idx = 0; idx < alg.elements().size(); ++idx) {
    const auto& e = alg.elements()[idx];
    if (!e.is_pause) continue;
    if (pause_ns == 0)
      pause_ns = e.pause_ns;
    else if (pause_ns != e.pause_ns)
      throw AssembleError(
          "'" + alg.name() + "' element " + std::to_string(idx) +
          ": pause duration " + std::to_string(e.pause_ns) +
          "ns differs from the earlier " + std::to_string(pause_ns) +
          "ns (one pause-timer config per program)");
  }

  const std::vector<MarchElement> elements = canonicalize(alg.elements());
  AssembleResult result;
  result.pause_ns = pause_ns;
  std::vector<Instruction> code;

  Fold fold;
  // The Repeat hardware re-executes from instruction index 1, so the fold
  // is only usable when the prefix (element 0) is a single instruction.
  const bool prefix_is_one_instruction =
      !elements.empty() && !elements.front().is_pause &&
      elements.front().ops.size() == 1;
  if (options.symmetric_encoding && prefix_is_one_instruction)
    fold = find_fold(elements);

  std::size_t next_element = 0;
  if (fold.k > 0) {
    emit_element(elements[0], code);
    for (int i = 1; i <= fold.k; ++i)
      emit_element(elements[static_cast<std::size_t>(i)], code);
    Instruction repeat;
    repeat.flow = Flow::Repeat;
    repeat.addr_down = fold.aux.order;
    repeat.data_inv = fold.aux.data;
    repeat.cmp_inv = fold.aux.cmp;
    code.push_back(repeat);
    result.used_repeat = true;
    next_element = static_cast<std::size_t>(1 + 2 * fold.k);
  }
  for (; next_element < elements.size(); ++next_element)
    emit_element(elements[next_element], code);

  if (options.emit_loop_tail) {
    Instruction data_loop;
    data_loop.flow = Flow::LoopData;
    data_loop.data_inc = true;
    code.push_back(data_loop);
    Instruction port_loop;
    port_loop.flow = Flow::LoopPort;
    code.push_back(port_loop);
  } else {
    Instruction term;
    term.flow = Flow::Terminate;
    code.push_back(term);
  }

  result.program = MicrocodeProgram{alg.name(), std::move(code)};
  return result;
}

}  // namespace pmbist::mbist_ucode
