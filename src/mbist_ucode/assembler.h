#pragma once
// Assembler: march algorithm -> microcode program.
//
// Encoding rules (matching the paper's Fig. 2 program for March C):
//   * a single-op element becomes one LoopSelf instruction;
//   * an n-op element becomes n-1 Next instructions (address held) plus a
//     final LoopCell instruction (address incremented, branch back to the
//     element's first instruction via the branch register);
//   * a pause element becomes a Pause instruction;
//   * symmetric algorithms are folded: when elements [1..k] reappear as
//     [k+1..2k] under a uniform complement of address order / test data /
//     compare polarity, the second half is replaced by one Repeat
//     instruction whose fields carry the complement mask (the hardware's
//     Reset-to-1 path re-executes instructions from index 1).  This is what
//     makes March C cost 9 instructions instead of 13.
//   * the tail is a LoopData then a LoopPort instruction (the paper's
//     instructions 8 and 9) unless disabled, in which case an unconditional
//     Terminate is emitted.

#include <stdexcept>

#include "march/march.h"
#include "mbist_ucode/isa.h"

namespace pmbist::mbist_ucode {

class AssembleError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct AssembleOptions {
  bool symmetric_encoding = true;  ///< fold symmetric halves via Repeat
  bool emit_loop_tail = true;      ///< append LoopData + LoopPort
};

struct AssembleResult {
  MicrocodeProgram program;
  bool used_repeat = false;
  /// Uniform pause duration of the algorithm's pause elements (0 if none);
  /// the controller's pause timer must be configured to this value.
  std::uint64_t pause_ns = 0;
};

/// Assembles `alg`.  Throws AssembleError if the algorithm is invalid or
/// uses pause elements with differing durations (the controller has a
/// single pause-timer configuration).
[[nodiscard]] AssembleResult assemble(const march::MarchAlgorithm& alg,
                                      const AssembleOptions& options = {});

}  // namespace pmbist::mbist_ucode
