#pragma once
// Redundancy allocation (BIRA — built-in redundancy analysis).
//
// The paper justifies the programmable controller's area by "using the
// memory BIST to reduce the cost of diagnostics"; in production the
// diagnostic output (the fail bitmap) feeds redundancy allocation: spare
// rows/columns replace defective ones, turning yield loss into repair.
// This module implements the classic two-phase allocator over the
// physical array topology:
//
//   1. must-repair: a row with more failing cells than the remaining
//      spare columns can only be fixed by a spare row (and vice versa);
//      iterate to fixpoint;
//   2. final analysis: the residue is small (bounded by spares^2), so an
//      exhaustive branch over "repair this fail by row or by column"
//      decides repairability optimally.
//
// Bit-oriented arrays (word_bits == 1): spare rows/columns are grid-level
// resources, so the analysis runs on the physical row/column grid.

#include <vector>

#include "diag/bitmap.h"
#include "memsim/topology.h"

namespace pmbist::repair {

struct RedundancyConfig {
  int spare_rows = 1;
  int spare_cols = 1;
};

struct RepairSolution {
  bool repairable = false;
  std::vector<std::uint32_t> rows_replaced;  ///< physical row indices
  std::vector<std::uint32_t> cols_replaced;  ///< physical column indices

  [[nodiscard]] int spares_used() const noexcept {
    return static_cast<int>(rows_replaced.size() + cols_replaced.size());
  }
};

/// Allocates spares to cover every failing cell of `bitmap` (interpreted
/// through `topology`).  Returns repairable=false when no assignment
/// within the config covers all failures.  The returned solution is
/// spare-count minimal.  Requires a bit-oriented geometry.
[[nodiscard]] RepairSolution allocate_redundancy(
    const diag::FailBitmap& bitmap, const memsim::ArrayTopology& topology,
    const RedundancyConfig& config);

/// True if `solution` covers every failing cell of `bitmap`.
[[nodiscard]] bool covers_all_failures(const RepairSolution& solution,
                                       const diag::FailBitmap& bitmap,
                                       const memsim::ArrayTopology& topology);

}  // namespace pmbist::repair
