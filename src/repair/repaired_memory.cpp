#include "repair/repaired_memory.h"

#include <algorithm>
#include <stdexcept>

namespace pmbist::repair {

RepairedMemory::RepairedMemory(memsim::Memory& inner,
                               const memsim::ArrayTopology& topology,
                               const RepairSolution& solution)
    : Memory{inner.geometry()},
      inner_{inner},
      topology_{topology},
      rows_{solution.rows_replaced},
      cols_{solution.cols_replaced} {
  if (!solution.repairable)
    throw std::invalid_argument("cannot build a repaired view from an "
                                "unrepairable solution");
  if (geometry().word_bits != 1)
    throw std::invalid_argument("repair view requires bit-oriented memory");
}

bool RepairedMemory::is_replaced(memsim::Address addr,
                                 std::uint64_t* key) const {
  const auto rc = topology_.location(addr);
  const bool hit =
      std::find(rows_.begin(), rows_.end(), rc.row) != rows_.end() ||
      std::find(cols_.begin(), cols_.end(), rc.col) != cols_.end();
  if (hit && key) *key = (std::uint64_t{rc.row} << 32) | rc.col;
  return hit;
}

memsim::Word RepairedMemory::read(int port, memsim::Address addr) {
  check_access(port, addr);
  std::uint64_t key = 0;
  if (is_replaced(addr, &key)) {
    const auto it = spare_cells_.find(key);
    // Spare cells power up undefined like any SRAM; model as 0.
    return it == spare_cells_.end() ? 0 : it->second;
  }
  return inner_.read(port, addr);
}

void RepairedMemory::write(int port, memsim::Address addr,
                           memsim::Word data) {
  check_access(port, addr);
  std::uint64_t key = 0;
  if (is_replaced(addr, &key)) {
    spare_cells_[key] = data & geometry().word_mask();
    return;
  }
  inner_.write(port, addr, data);
}

void RepairedMemory::advance_time_ns(std::uint64_t ns) {
  inner_.advance_time_ns(ns);
}

}  // namespace pmbist::repair
