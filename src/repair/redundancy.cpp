#include "repair/redundancy.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <stdexcept>

namespace pmbist::repair {
namespace {

using memsim::ArrayTopology;
using RowCol = ArrayTopology::RowCol;

struct Grid {
  std::vector<RowCol> fails;  ///< distinct failing grid positions
};

Grid to_grid(const diag::FailBitmap& bitmap, const ArrayTopology& topology) {
  if (bitmap.geometry().word_bits != 1)
    throw std::invalid_argument(
        "redundancy analysis requires a bit-oriented geometry");
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  Grid grid;
  for (const auto& cell : bitmap.failing_cells()) {
    const RowCol rc = topology.location(cell.addr);
    if (seen.insert({rc.row, rc.col}).second) grid.fails.push_back(rc);
  }
  return grid;
}

struct Assignment {
  std::set<std::uint32_t> rows;
  std::set<std::uint32_t> cols;
};

bool covered(const RowCol& rc, const Assignment& a) {
  return a.rows.contains(rc.row) || a.cols.contains(rc.col);
}

// Exhaustive final analysis: branch on the first uncovered fail.
// Residue sizes are bounded by (spare_rows+1)*(spare_cols+1) after
// must-repair, so the recursion is tiny.  Returns the minimal-spare
// solution found, if any.
bool solve(const std::vector<RowCol>& fails, int spare_rows, int spare_cols,
           Assignment& a, Assignment& best, bool& found) {
  const RowCol* first = nullptr;
  for (const auto& rc : fails) {
    if (!covered(rc, a)) {
      first = &rc;
      break;
    }
  }
  if (first == nullptr) {
    if (!found || a.rows.size() + a.cols.size() <
                      best.rows.size() + best.cols.size()) {
      best = a;
      found = true;
    }
    return true;
  }
  bool ok = false;
  if (spare_rows > 0) {
    a.rows.insert(first->row);
    ok |= solve(fails, spare_rows - 1, spare_cols, a, best, found);
    a.rows.erase(first->row);
  }
  if (spare_cols > 0) {
    a.cols.insert(first->col);
    ok |= solve(fails, spare_rows, spare_cols - 1, a, best, found);
    a.cols.erase(first->col);
  }
  return ok;
}

}  // namespace

RepairSolution allocate_redundancy(const diag::FailBitmap& bitmap,
                                   const ArrayTopology& topology,
                                   const RedundancyConfig& config) {
  const Grid grid = to_grid(bitmap, topology);
  RepairSolution solution;
  if (grid.fails.empty()) {
    solution.repairable = true;
    return solution;
  }

  Assignment assigned;
  int rows_left = config.spare_rows;
  int cols_left = config.spare_cols;

  // Phase 1: iterated must-repair.
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<std::uint32_t, int> per_row;
    std::map<std::uint32_t, int> per_col;
    for (const auto& rc : grid.fails) {
      if (covered(rc, assigned)) continue;
      ++per_row[rc.row];
      ++per_col[rc.col];
    }
    for (const auto& [row, n] : per_row) {
      if (n > cols_left) {
        if (rows_left == 0) {
          solution.repairable = false;
          return solution;  // a row needs a spare row none is left for
        }
        assigned.rows.insert(row);
        --rows_left;
        changed = true;
        break;  // recompute counts
      }
    }
    if (changed) continue;
    for (const auto& [col, n] : per_col) {
      if (n > rows_left) {
        if (cols_left == 0) {
          solution.repairable = false;
          return solution;
        }
        assigned.cols.insert(col);
        --cols_left;
        changed = true;
        break;
      }
    }
  }

  // Phase 2: exhaustive branch over the residue.
  Assignment best;
  bool found = false;
  solve(grid.fails, rows_left, cols_left, assigned, best, found);
  if (!found) {
    solution.repairable = false;
    return solution;
  }
  solution.repairable = true;
  solution.rows_replaced.assign(best.rows.begin(), best.rows.end());
  solution.cols_replaced.assign(best.cols.begin(), best.cols.end());
  return solution;
}

bool covers_all_failures(const RepairSolution& solution,
                         const diag::FailBitmap& bitmap,
                         const ArrayTopology& topology) {
  if (!solution.repairable) return false;
  const std::set<std::uint32_t> rows(solution.rows_replaced.begin(),
                                     solution.rows_replaced.end());
  const std::set<std::uint32_t> cols(solution.cols_replaced.begin(),
                                     solution.cols_replaced.end());
  for (const auto& cell : bitmap.failing_cells()) {
    const auto rc = topology.location(cell.addr);
    if (!rows.contains(rc.row) && !cols.contains(rc.col)) return false;
  }
  return true;
}

}  // namespace pmbist::repair
