#pragma once
// RepairedMemory: a memory view with spare rows/columns switched in.
//
// Accesses whose physical row (column) was replaced are steered to healthy
// spare storage instead of the defective array, exactly like the laser/
// eFuse-programmed remap in silicon.  Wrapping the defective FaultyMemory
// lets the same BIST controller re-run the original test and verify the
// repair end-to-end (inject -> test -> bitmap -> allocate -> repair ->
// retest).

#include <map>

#include "memsim/memory.h"
#include "memsim/topology.h"
#include "repair/redundancy.h"

namespace pmbist::repair {

class RepairedMemory final : public memsim::Memory {
 public:
  /// `inner` must outlive this view.  Requires a bit-oriented geometry and
  /// a repairable solution.
  RepairedMemory(memsim::Memory& inner,
                 const memsim::ArrayTopology& topology,
                 const RepairSolution& solution);

  [[nodiscard]] memsim::Word read(int port, memsim::Address addr) override;
  void write(int port, memsim::Address addr, memsim::Word data) override;
  void advance_time_ns(std::uint64_t ns) override;

 private:
  /// Spare storage for a replaced cell, keyed by (row, col).
  [[nodiscard]] bool is_replaced(memsim::Address addr,
                                 std::uint64_t* key) const;

  memsim::Memory& inner_;
  const memsim::ArrayTopology& topology_;
  std::vector<std::uint32_t> rows_;
  std::vector<std::uint32_t> cols_;
  std::map<std::uint64_t, memsim::Word> spare_cells_;
};

}  // namespace pmbist::repair
