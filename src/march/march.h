#pragma once
// March test algorithm representation.
//
// A march algorithm is a sequence of march elements; each element applies
// the same short sequence of read/write operations to every cell, walking
// the address space up, down, or in either order.  Example (the paper's
// Eq. 1, March C):
//
//   { any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); any(r0) }
//
// Data-retention variants insert `pause` elements (a delay with no memory
// operations) — the "Hold" components the paper adds for March C+/A+.

#include <cstdint>
#include <string>
#include <vector>

namespace pmbist::march {

/// Address traversal order of one march element.
enum class AddressOrder : std::uint8_t {
  Up,    ///< 0 .. n-1
  Down,  ///< n-1 .. 0
  Any,   ///< order irrelevant (controllers use Up)
};

[[nodiscard]] std::string_view to_string(AddressOrder o);

/// Complements Up<->Down; Any stays Any.  Used by the symmetric-encoding
/// machinery (the microcode Repeat instruction XORs the address order).
[[nodiscard]] AddressOrder complement(AddressOrder o);

/// One read or write operation inside a march element.  `data` is the
/// march data value d in {0,1}; word-oriented memories expand d against a
/// background pattern (d=0 -> background, d=1 -> complemented background).
struct MarchOp {
  enum class Kind : std::uint8_t { Write, Read } kind = Kind::Write;
  bool data = false;

  [[nodiscard]] bool is_read() const noexcept { return kind == Kind::Read; }
  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const MarchOp&, const MarchOp&) = default;
};

/// Shorthand constructors: w0, w1, r0, r1.
[[nodiscard]] constexpr MarchOp w0() { return {MarchOp::Kind::Write, false}; }
[[nodiscard]] constexpr MarchOp w1() { return {MarchOp::Kind::Write, true}; }
[[nodiscard]] constexpr MarchOp r0() { return {MarchOp::Kind::Read, false}; }
[[nodiscard]] constexpr MarchOp r1() { return {MarchOp::Kind::Read, true}; }

/// One march element: an address order plus an op sequence applied to each
/// cell — or a pause (delay) element used by data-retention tests.
struct MarchElement {
  AddressOrder order = AddressOrder::Up;
  std::vector<MarchOp> ops;
  bool is_pause = false;
  std::uint64_t pause_ns = 0;

  [[nodiscard]] static MarchElement pause(std::uint64_t ns);
  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const MarchElement&, const MarchElement&) = default;
};

/// Convenience element builders.
[[nodiscard]] MarchElement up(std::vector<MarchOp> ops);
[[nodiscard]] MarchElement down(std::vector<MarchOp> ops);
[[nodiscard]] MarchElement any(std::vector<MarchOp> ops);

/// A complete, named march algorithm.
class MarchAlgorithm {
 public:
  MarchAlgorithm() = default;
  MarchAlgorithm(std::string name, std::vector<MarchElement> elements);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<MarchElement>& elements() const noexcept {
    return elements_;
  }
  [[nodiscard]] bool empty() const noexcept { return elements_.empty(); }

  /// Total reads+writes applied per cell per pass (the "nN" complexity
  /// coefficient; pause elements contribute 0).
  [[nodiscard]] int ops_per_cell() const noexcept;
  /// Number of read operations per cell per pass.
  [[nodiscard]] int reads_per_cell() const noexcept;
  /// Number of non-pause elements.
  [[nodiscard]] int march_element_count() const noexcept;

  /// Canonical text form, re-parseable by march::parse().
  [[nodiscard]] std::string to_string() const;

  /// Structural sanity: non-empty non-pause elements, first op of the first
  /// element is a write (required for a deterministic expected value after
  /// undefined power-up).  Empty string when valid.
  [[nodiscard]] std::string validate() const;

  friend bool operator==(const MarchAlgorithm&,
                         const MarchAlgorithm&) = default;

 private:
  std::string name_;
  std::vector<MarchElement> elements_;
};

/// Transform: appends the paper's data-retention tail
/// [pause; any(rD,w!D,r!D); pause; any(r!D)] where D is the data value the
/// algorithm leaves in every cell.  Requires the algorithm to leave a
/// uniform final value (true of all library algorithms).
[[nodiscard]] MarchAlgorithm with_retention(const MarchAlgorithm& alg,
                                            std::uint64_t pause_ns,
                                            std::string new_name);

/// Transform: replaces every read by three consecutive identical reads
/// (the paper's "++" variants, targeting disconnected pull-up/down devices,
/// modeled as deceptive read-destructive faults).
[[nodiscard]] MarchAlgorithm with_triple_reads(const MarchAlgorithm& alg,
                                               std::string new_name);

/// The march data value left in every cell after a full pass, or -1 if the
/// final state is not uniform/deterministic.
[[nodiscard]] int final_data_value(const MarchAlgorithm& alg);

}  // namespace pmbist::march
