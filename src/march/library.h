#pragma once
// Library of standard march test algorithms (van de Goor) plus the paper's
// enhanced derivatives:
//
//   March C+ / A+  : base algorithm + two "Hold" (pause) components that
//                    detect data-retention faults (paper, Sec. 3).
//   March C++ / A++: each read replaced by three reads, to excite and
//                    detect disconnected pull-up/pull-down devices
//                    (modeled as deceptive read-destructive faults).
//
// march_c() follows the paper's Eq. 1 (the six-element form, i.e. what the
// broader literature calls March C-); march_c_orig() is Marinescu's
// original seven-element March C with the mid-test read pass.

#include "march/march.h"

namespace pmbist::march {

/// Default pause used by retention variants (simulated nanoseconds).
inline constexpr std::uint64_t kDefaultPauseNs = 100'000'000;

[[nodiscard]] MarchAlgorithm mats();            //  4n
[[nodiscard]] MarchAlgorithm mats_plus();       //  5n
[[nodiscard]] MarchAlgorithm mats_plus_plus();  //  6n
[[nodiscard]] MarchAlgorithm march_x();         //  6n
[[nodiscard]] MarchAlgorithm march_y();         //  8n
[[nodiscard]] MarchAlgorithm march_c();         // 10n (paper Eq. 1)
[[nodiscard]] MarchAlgorithm march_c_orig();    // 11n (Marinescu)
[[nodiscard]] MarchAlgorithm march_u();         // 13n (van de Goor)
[[nodiscard]] MarchAlgorithm march_lr();        // 14n (linked faults)
[[nodiscard]] MarchAlgorithm march_a();         // 15n
[[nodiscard]] MarchAlgorithm march_b();         // 17n
[[nodiscard]] MarchAlgorithm march_ss();        // 22n (simple static faults)
[[nodiscard]] MarchAlgorithm march_g();         // 23n + pauses

[[nodiscard]] MarchAlgorithm march_c_plus();        // C + retention tail
[[nodiscard]] MarchAlgorithm march_c_plus_plus();   // C+ with triple reads
[[nodiscard]] MarchAlgorithm march_a_plus();        // A + retention tail
[[nodiscard]] MarchAlgorithm march_a_plus_plus();   // A+ with triple reads

/// Looks an algorithm up by name ("March C", "March A++", "MATS+", ...).
/// Throws std::out_of_range for unknown names.
[[nodiscard]] MarchAlgorithm by_name(std::string_view name);

/// All library algorithms, in complexity order.
[[nodiscard]] std::vector<MarchAlgorithm> all_algorithms();

/// The six algorithms of the paper's Tables 1-2, in table row order:
/// March C, C+, C++, A, A+, A++.
[[nodiscard]] std::vector<MarchAlgorithm> paper_table_algorithms();

}  // namespace pmbist::march
