#include "march/march.h"

#include <sstream>
#include <stdexcept>

namespace pmbist::march {

std::string_view to_string(AddressOrder o) {
  switch (o) {
    case AddressOrder::Up: return "up";
    case AddressOrder::Down: return "down";
    case AddressOrder::Any: return "any";
  }
  return "?";
}

AddressOrder complement(AddressOrder o) {
  switch (o) {
    case AddressOrder::Up: return AddressOrder::Down;
    case AddressOrder::Down: return AddressOrder::Up;
    case AddressOrder::Any: return AddressOrder::Any;
  }
  return o;
}

std::string MarchOp::to_string() const {
  std::string s(is_read() ? "r" : "w");
  s += data ? "1" : "0";
  return s;
}

MarchElement MarchElement::pause(std::uint64_t ns) {
  MarchElement e;
  e.is_pause = true;
  e.pause_ns = ns;
  return e;
}

std::string MarchElement::to_string() const {
  if (is_pause) {
    std::ostringstream os;
    os << "pause(" << pause_ns << "ns)";
    return os.str();
  }
  std::ostringstream os;
  os << march::to_string(order) << "(";
  for (std::size_t i = 0; i < ops.size(); ++i)
    os << (i ? "," : "") << ops[i].to_string();
  os << ")";
  return os.str();
}

MarchElement up(std::vector<MarchOp> ops) {
  return MarchElement{AddressOrder::Up, std::move(ops), false, 0};
}
MarchElement down(std::vector<MarchOp> ops) {
  return MarchElement{AddressOrder::Down, std::move(ops), false, 0};
}
MarchElement any(std::vector<MarchOp> ops) {
  return MarchElement{AddressOrder::Any, std::move(ops), false, 0};
}

MarchAlgorithm::MarchAlgorithm(std::string name,
                               std::vector<MarchElement> elements)
    : name_{std::move(name)}, elements_{std::move(elements)} {}

int MarchAlgorithm::ops_per_cell() const noexcept {
  int n = 0;
  for (const auto& e : elements_)
    if (!e.is_pause) n += static_cast<int>(e.ops.size());
  return n;
}

int MarchAlgorithm::reads_per_cell() const noexcept {
  int n = 0;
  for (const auto& e : elements_)
    for (const auto& op : e.ops)
      if (op.is_read()) ++n;
  return n;
}

int MarchAlgorithm::march_element_count() const noexcept {
  int n = 0;
  for (const auto& e : elements_)
    if (!e.is_pause) ++n;
  return n;
}

std::string MarchAlgorithm::to_string() const {
  std::ostringstream os;
  os << "{ ";
  for (std::size_t i = 0; i < elements_.size(); ++i)
    os << (i ? "; " : "") << elements_[i].to_string();
  os << " }";
  return os.str();
}

std::string MarchAlgorithm::validate() const {
  if (elements_.empty()) return "algorithm has no elements";
  for (const auto& e : elements_) {
    if (e.is_pause) {
      if (!e.ops.empty()) return "pause element must have no operations";
      continue;
    }
    if (e.ops.empty()) return "march element has no operations";
  }
  for (const auto& e : elements_) {
    if (e.is_pause) continue;
    if (e.ops.front().is_read())
      return "first march element must start with a write "
             "(power-up contents are undefined)";
    break;
  }
  return {};
}

int final_data_value(const MarchAlgorithm& alg) {
  // Every element applies to all cells, so the last write op in the last
  // element containing a write determines the uniform final value.
  for (auto eit = alg.elements().rbegin(); eit != alg.elements().rend();
       ++eit) {
    if (eit->is_pause) continue;
    for (auto oit = eit->ops.rbegin(); oit != eit->ops.rend(); ++oit)
      if (!oit->is_read()) return oit->data ? 1 : 0;
  }
  return -1;
}

MarchAlgorithm with_retention(const MarchAlgorithm& alg,
                              std::uint64_t pause_ns, std::string new_name) {
  const int d = final_data_value(alg);
  if (d < 0)
    throw std::logic_error("with_retention: algorithm '" + alg.name() +
                           "' leaves no deterministic uniform value");
  const MarchOp read_d{MarchOp::Kind::Read, d == 1};
  const MarchOp write_nd{MarchOp::Kind::Write, d != 1};
  const MarchOp read_nd{MarchOp::Kind::Read, d != 1};

  std::vector<MarchElement> elements = alg.elements();
  elements.push_back(MarchElement::pause(pause_ns));
  elements.push_back(any({read_d, write_nd, read_nd}));
  elements.push_back(MarchElement::pause(pause_ns));
  elements.push_back(any({read_nd}));
  return MarchAlgorithm{std::move(new_name), std::move(elements)};
}

MarchAlgorithm with_triple_reads(const MarchAlgorithm& alg,
                                 std::string new_name) {
  std::vector<MarchElement> elements;
  elements.reserve(alg.elements().size());
  for (const auto& e : alg.elements()) {
    if (e.is_pause) {
      elements.push_back(e);
      continue;
    }
    MarchElement out;
    out.order = e.order;
    for (const auto& op : e.ops) {
      if (op.is_read()) {
        out.ops.insert(out.ops.end(), 3, op);
      } else {
        out.ops.push_back(op);
      }
    }
    elements.push_back(std::move(out));
  }
  return MarchAlgorithm{std::move(new_name), std::move(elements)};
}

}  // namespace pmbist::march
