#include "march/parser.h"

#include <cctype>

namespace pmbist::march {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  MarchAlgorithm run(std::string name) {
    skip_ws();
    const bool braced = consume_if('{');
    std::vector<MarchElement> elements;
    while (true) {
      skip_ws();
      if (at_end() || peek() == '}') break;
      elements.push_back(parse_element());
      skip_ws();
      if (!consume_if(';')) break;
    }
    skip_ws();
    if (braced && !consume_if('}')) fail("expected '}'");
    skip_ws();
    if (!at_end()) fail("unexpected trailing input");
    if (elements.empty()) fail("no march elements");
    return MarchAlgorithm{std::move(name), std::move(elements)};
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError{msg, pos_};
  }
  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return at_end() ? '\0' : text_[pos_]; }
  char get() {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_++];
  }
  bool consume_if(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!consume_if(c)) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (!at_end() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  std::string parse_word() {
    skip_ws();
    const std::size_t start = pos_;
    while (!at_end() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ == start) fail("expected a keyword");
    return std::string{text_.substr(start, pos_ - start)};
  }

  std::uint64_t parse_number() {
    skip_ws();
    if (!std::isdigit(static_cast<unsigned char>(peek())))
      fail("expected a number");
    std::uint64_t v = 0;
    while (!at_end() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      v = v * 10 + static_cast<std::uint64_t>(text_[pos_++] - '0');
    return v;
  }

  MarchOp parse_op() {
    skip_ws();
    const char kind = get();
    if (kind != 'r' && kind != 'w') fail("expected 'r' or 'w'");
    const char d = get();
    if (d != '0' && d != '1') fail("expected '0' or '1'");
    return MarchOp{kind == 'r' ? MarchOp::Kind::Read : MarchOp::Kind::Write,
                   d == '1'};
  }

  MarchElement parse_element() {
    const std::size_t word_pos = pos_;
    const std::string word = parse_word();
    if (word == "pause") {
      std::uint64_t ns = 100'000'000;  // default pause: 100 ms
      skip_ws();
      if (consume_if('(')) {
        const std::uint64_t n = parse_number();
        const std::string unit = parse_word();
        if (unit == "ns")
          ns = n;
        else if (unit == "us")
          ns = n * 1'000;
        else if (unit == "ms")
          ns = n * 1'000'000;
        else
          fail("expected time unit ns/us/ms");
        skip_ws();
        expect(')');
      }
      return MarchElement::pause(ns);
    }

    AddressOrder order;
    if (word == "up")
      order = AddressOrder::Up;
    else if (word == "down")
      order = AddressOrder::Down;
    else if (word == "any")
      order = AddressOrder::Any;
    else {
      pos_ = word_pos;
      fail("expected 'up', 'down', 'any' or 'pause', got '" + word + "'");
    }

    skip_ws();
    expect('(');
    std::vector<MarchOp> ops;
    ops.push_back(parse_op());
    skip_ws();
    while (consume_if(',')) {
      ops.push_back(parse_op());
      skip_ws();
    }
    expect(')');
    return MarchElement{order, std::move(ops), false, 0};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

MarchAlgorithm parse(std::string_view text, std::string name) {
  return Parser{text}.run(std::move(name));
}

}  // namespace pmbist::march
