#include "march/library.h"

#include <stdexcept>

namespace pmbist::march {

MarchAlgorithm mats() {
  return MarchAlgorithm{"MATS",
                        {any({w0()}), any({r0(), w1()}), any({r1()})}};
}

MarchAlgorithm mats_plus() {
  return MarchAlgorithm{"MATS+",
                        {any({w0()}), up({r0(), w1()}), down({r1(), w0()})}};
}

MarchAlgorithm march_x() {
  return MarchAlgorithm{
      "March X",
      {any({w0()}), up({r0(), w1()}), down({r1(), w0()}), any({r0()})}};
}

MarchAlgorithm march_y() {
  return MarchAlgorithm{"March Y",
                        {any({w0()}), up({r0(), w1(), r1()}),
                         down({r1(), w0(), r0()}), any({r0()})}};
}

MarchAlgorithm march_c() {
  // Paper Eq. 1: {any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0);
  // any(r0)} — note the symmetric structure (elements 2-3 repeat as 4-5
  // with complemented address order / data / compare), which the microcode
  // Repeat instruction exploits.
  return MarchAlgorithm{"March C",
                        {any({w0()}), up({r0(), w1()}), up({r1(), w0()}),
                         down({r0(), w1()}), down({r1(), w0()}),
                         any({r0()})}};
}

MarchAlgorithm march_c_orig() {
  return MarchAlgorithm{"March C (orig)",
                        {any({w0()}), up({r0(), w1()}), up({r1(), w0()}),
                         any({r0()}), down({r0(), w1()}), down({r1(), w0()}),
                         any({r0()})}};
}

MarchAlgorithm march_a() {
  // {any(w0); up(r0,w1,w0,w1); up(r1,w0,w1); down(r1,w0,w1,w0);
  //  down(r0,w1,w0)} — symmetric in the same pairwise sense as March C.
  return MarchAlgorithm{
      "March A",
      {any({w0()}), up({r0(), w1(), w0(), w1()}), up({r1(), w0(), w1()}),
       down({r1(), w0(), w1(), w0()}), down({r0(), w1(), w0()})}};
}

MarchAlgorithm mats_plus_plus() {
  return MarchAlgorithm{
      "MATS++",
      {any({w0()}), up({r0(), w1()}), down({r1(), w0(), r0()})}};
}

MarchAlgorithm march_u() {
  // {any(w0); up(r0,w1,r1,w0); up(r0,w1); down(r1,w0,r0,w1); down(r1,w0)}
  // — symmetric pairs (elements 2-3 mirror 4-5 under full complement).
  return MarchAlgorithm{
      "March U",
      {any({w0()}), up({r0(), w1(), r1(), w0()}), up({r0(), w1()}),
       down({r1(), w0(), r0(), w1()}), down({r1(), w0()})}};
}

MarchAlgorithm march_lr() {
  // van de Goor & Gaydadjiev: detects realistic linked faults.
  return MarchAlgorithm{
      "March LR",
      {any({w0()}), down({r0(), w1()}), up({r1(), w0(), r0(), w1()}),
       up({r1(), w0()}), up({r0(), w1(), r1(), w0()}), up({r0()})}};
}

MarchAlgorithm march_ss() {
  // Hamdioui/Al-Ars/van de Goor: detects all simple static faults —
  // the non-transition writes catch WDFs, the back-to-back reads catch
  // deceptive/weak-cell read faults.
  return MarchAlgorithm{
      "March SS",
      {any({w0()}), up({r0(), r0(), w0(), r0(), w1()}),
       up({r1(), r1(), w1(), r1(), w0()}),
       down({r0(), r0(), w0(), r0(), w1()}),
       down({r1(), r1(), w1(), r1(), w0()}), any({r0()})}};
}

MarchAlgorithm march_g() {
  // van de Goor's March G: March B's element structure plus the two
  // pause/read components for data-retention and recovery faults.
  return MarchAlgorithm{
      "March G",
      {any({w0()}), up({r0(), w1(), r1(), w0(), r0(), w1()}),
       up({r1(), w0(), w1()}), down({r1(), w0(), w1(), w0()}),
       down({r0(), w1(), w0()}), MarchElement::pause(kDefaultPauseNs),
       any({r0(), w1(), r1()}), MarchElement::pause(kDefaultPauseNs),
       any({r1(), w0(), r0()})}};
}

MarchAlgorithm march_b() {
  return MarchAlgorithm{
      "March B",
      {any({w0()}), up({r0(), w1(), r1(), w0(), r0(), w1()}),
       up({r1(), w0(), w1()}), down({r1(), w0(), w1(), w0()}),
       down({r0(), w1(), w0()})}};
}

MarchAlgorithm march_c_plus() {
  return with_retention(march_c(), kDefaultPauseNs, "March C+");
}

MarchAlgorithm march_c_plus_plus() {
  return with_triple_reads(march_c_plus(), "March C++");
}

MarchAlgorithm march_a_plus() {
  return with_retention(march_a(), kDefaultPauseNs, "March A+");
}

MarchAlgorithm march_a_plus_plus() {
  return with_triple_reads(march_a_plus(), "March A++");
}

std::vector<MarchAlgorithm> all_algorithms() {
  return {mats(),         mats_plus(),       mats_plus_plus(),
          march_x(),      march_y(),         march_c(),
          march_c_orig(), march_u(),         march_lr(),
          march_c_plus(), march_c_plus_plus(),
          march_a(),      march_b(),         march_a_plus(),
          march_a_plus_plus(),
          march_ss(),     march_g()};
}

std::vector<MarchAlgorithm> paper_table_algorithms() {
  return {march_c(), march_c_plus(), march_c_plus_plus(),
          march_a(), march_a_plus(), march_a_plus_plus()};
}

MarchAlgorithm by_name(std::string_view name) {
  for (auto& alg : all_algorithms())
    if (alg.name() == name) return alg;
  throw std::out_of_range("unknown march algorithm: " + std::string{name});
}

}  // namespace pmbist::march
