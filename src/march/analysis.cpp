#include "march/analysis.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/thread_pool.h"
#include "march/campaign.h"
#include "march/library.h"

namespace pmbist::march {
namespace {

using memsim::Address;
using memsim::BitRef;
using memsim::Fault;
using memsim::FaultClass;

// Canonical qualification array: 4 bit-oriented words.  Fault instances
// are placed on every cell position — interior cells expose misses that
// element-boundary sense-residue effects would hide, boundary cells expose
// the residue corner cases — so Guaranteed really means "every position,
// every power-up".  The power-up sweep toggles the two cells named by the
// instance (kCellA/kCellB by default; the actual participants for
// coupling/decoder instances).
constexpr MemoryGeometry kCanon{.address_bits = 2, .word_bits = 1,
                                .num_ports = 1};
constexpr Address kCellA = 1;
constexpr Address kCellB = 2;

std::uint64_t min_pause_ns(const MarchAlgorithm& alg) {
  std::uint64_t ns = 0;
  for (const auto& e : alg.elements())
    if (e.is_pause && (ns == 0 || e.pause_ns < ns)) ns = e.pause_ns;
  return ns;
}

// One qualification instance: the fault plus the (up to two) cells whose
// power-up values the sweep must toggle.
struct Instance {
  Fault fault;
  Address a = kCellA;
  Address b = kCellB;
};

std::vector<Instance> instances(FaultClass cls, const MarchAlgorithm& alg) {
  std::vector<Instance> out;
  const Address cells[] = {0, kCellA, kCellB, 3};
  const std::pair<Address, Address> pairs[] = {
      {kCellA, kCellB}, {kCellB, kCellA}, {0, 3}, {3, 0}};
  auto other = [](Address c) { return c == kCellA ? kCellB : kCellA; };
  switch (cls) {
    case FaultClass::SAF:
      for (Address c : cells)
        for (bool v : {false, true})
          out.push_back({memsim::StuckAtFault{{c, 0}, v}, c, other(c)});
      break;
    case FaultClass::TF:
      for (Address c : cells)
        for (bool rising : {false, true})
          out.push_back({memsim::TransitionFault{{c, 0}, rising}, c,
                         other(c)});
      break;
    case FaultClass::CFin:
      for (auto [a, v] : pairs)
        for (bool rising : {false, true})
          out.push_back(
              {memsim::InversionCouplingFault{{a, 0}, {v, 0}, rising}, a, v});
      break;
    case FaultClass::CFid:
      for (auto [a, v] : pairs)
        for (bool rising : {false, true})
          for (bool forced : {false, true})
            out.push_back({memsim::IdempotentCouplingFault{
                               {a, 0}, {v, 0}, rising, forced},
                           a, v});
      break;
    case FaultClass::CFst:
      for (auto [a, v] : pairs)
        for (bool state : {false, true})
          for (bool forced : {false, true})
            out.push_back({memsim::StateCouplingFault{
                               {a, 0}, {v, 0}, state, forced},
                           a, v});
      break;
    case FaultClass::AF:
      for (auto [x, y] : pairs) {
        out.push_back({memsim::AddressDecoderFault{x, {}}, x, y});
        out.push_back({memsim::AddressDecoderFault{x, {y}}, x, y});
        out.push_back({memsim::AddressDecoderFault{x, {x, y}}, x, y});
      }
      break;
    case FaultClass::SOF:
      for (Address c : cells)
        out.push_back({memsim::StuckOpenFault{{c, 0}}, c, other(c)});
      break;
    case FaultClass::DRF: {
      // Detectable only if the algorithm pauses at all; size the hold time
      // below the shortest pause, mirroring the campaign's convention.
      const std::uint64_t pause = min_pause_ns(alg);
      const std::uint64_t hold =
          pause > 0 ? pause / 2 : kDefaultPauseNs / 2;
      for (Address c : cells)
        for (bool leak : {false, true})
          out.push_back(
              {memsim::DataRetentionFault{{c, 0}, leak, hold}, c, other(c)});
      break;
    }
    case FaultClass::IRF:
      for (Address c : cells)
        out.push_back({memsim::IncorrectReadFault{{c, 0}}, c, other(c)});
      break;
    case FaultClass::WDF:
      for (Address c : cells)
        out.push_back({memsim::WriteDisturbFault{{c, 0}}, c, other(c)});
      break;
    case FaultClass::RDF:
      for (Address c : cells)
        out.push_back(
            {memsim::ReadDestructiveFault{{c, 0}, false}, c, other(c)});
      break;
    case FaultClass::DRDF:
      for (Address c : cells)
        out.push_back(
            {memsim::ReadDestructiveFault{{c, 0}, true}, c, other(c)});
      break;
    case FaultClass::NPSF:
    case FaultClass::PF:
      // Not qualifiable on the canonical single-port array; these classes
      // have dedicated topology-/port-aware experiments.
      break;
  }
  return out;
}

}  // namespace

std::string_view to_string(Detection d) {
  switch (d) {
    case Detection::None: return "none";
    case Detection::Partial: return "partial";
    case Detection::Guaranteed: return "guaranteed";
  }
  return "?";
}

Detection analyze(const MarchAlgorithm& alg, FaultClass cls) {
  const OpStream stream = expand(alg, kCanon);
  int detected = 0;
  int total = 0;
  for (const auto& inst : instances(cls, alg)) {
    // Every power-up assignment of the two participating cells.
    for (unsigned combo = 0; combo < 4; ++combo) {
      std::vector<Word> contents(kCanon.num_words(), 0);
      contents[inst.a] = combo & 1u;
      contents[inst.b] = (combo >> 1) & 1u;
      memsim::FaultyMemory mem{kCanon, std::move(contents)};
      mem.add_fault(inst.fault);
      ++total;
      if (!run_stream(stream, mem, /*max_failures=*/1).passed()) ++detected;
    }
  }
  if (detected == 0) return Detection::None;
  if (detected == total) return Detection::Guaranteed;
  return Detection::Partial;
}

std::map<FaultClass, Detection> analyze_all(const MarchAlgorithm& alg,
                                            int jobs) {
  if (jobs == 0) jobs = default_campaign_jobs();
  const auto& classes = memsim::all_fault_classes();
  std::vector<Detection> verdicts(classes.size());
  common::parallel_shards(jobs, static_cast<int>(classes.size()),
                          [&](int i) {
                            verdicts[static_cast<std::size_t>(i)] = analyze(
                                alg, classes[static_cast<std::size_t>(i)]);
                          });
  std::map<FaultClass, Detection> out;
  for (std::size_t i = 0; i < classes.size(); ++i)
    out[classes[i]] = verdicts[i];
  return out;
}

std::string format_analysis_table(
    std::span<const MarchAlgorithm> algorithms,
    std::span<const FaultClass> classes, int jobs) {
  // Sweep every (algorithm, class) pair in parallel, then format from the
  // dense verdict grid — the table text is order-independent of jobs.
  if (jobs == 0) jobs = default_campaign_jobs();
  std::vector<Detection> grid(algorithms.size() * classes.size());
  common::parallel_shards(
      jobs, static_cast<int>(grid.size()), [&](int i) {
        const auto a = static_cast<std::size_t>(i) / classes.size();
        const auto c = static_cast<std::size_t>(i) % classes.size();
        grid[static_cast<std::size_t>(i)] = analyze(algorithms[a], classes[c]);
      });

  std::ostringstream os;
  os << std::left << std::setw(16) << "algorithm";
  for (FaultClass c : classes)
    os << std::right << std::setw(6) << memsim::fault_class_name(c);
  os << "\n";
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    os << std::left << std::setw(16) << algorithms[a].name();
    for (std::size_t c = 0; c < classes.size(); ++c) {
      const Detection d = grid[a * classes.size() + c];
      const char mark = d == Detection::Guaranteed ? 'G'
                        : d == Detection::Partial  ? 'p'
                                                   : '-';
      os << std::right << std::setw(6) << mark;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace pmbist::march
