#include "march/analysis.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/thread_pool.h"
#include "march/campaign.h"
#include "march/library.h"

namespace pmbist::march {
namespace {

using memsim::Address;
using memsim::BitRef;
using memsim::Fault;
using memsim::FaultClass;

// Canonical qualification array: 4 bit-oriented words.  Fault instances
// are placed on every cell position — interior cells expose misses that
// element-boundary sense-residue effects would hide, boundary cells expose
// the residue corner cases — so Guaranteed really means "every position,
// every power-up".  The power-up sweep toggles the two cells named by the
// instance (kCellA/kCellB by default; the actual participants for
// coupling/decoder instances).
constexpr MemoryGeometry kCanon{.address_bits = 2, .word_bits = 1,
                                .num_ports = 1};
constexpr Address kCellA = 1;
constexpr Address kCellB = 2;

std::uint64_t min_pause_ns(const MarchAlgorithm& alg) {
  std::uint64_t ns = 0;
  for (const auto& e : alg.elements())
    if (e.is_pause && (ns == 0 || e.pause_ns < ns)) ns = e.pause_ns;
  return ns;
}

// One qualification instance: the fault set (a single fault for the simple
// classes, a linked pair for LF) plus the cells whose power-up values the
// sweep must toggle.
struct Instance {
  std::vector<Fault> faults;
  std::vector<Address> cells;
};

std::vector<Instance> instances(FaultClass cls, const MarchAlgorithm& alg) {
  std::vector<Instance> out;
  const Address cells[] = {0, kCellA, kCellB, 3};
  const std::pair<Address, Address> pairs[] = {
      {kCellA, kCellB}, {kCellB, kCellA}, {0, 3}, {3, 0}};
  auto other = [](Address c) { return c == kCellA ? kCellB : kCellA; };
  auto add = [&out](Fault f, Address a, Address b) {
    out.push_back({{std::move(f)}, {a, b}});
  };
  switch (cls) {
    case FaultClass::SAF:
      for (Address c : cells)
        for (bool v : {false, true})
          add(memsim::StuckAtFault{{c, 0}, v}, c, other(c));
      break;
    case FaultClass::TF:
      for (Address c : cells)
        for (bool rising : {false, true})
          add(memsim::TransitionFault{{c, 0}, rising}, c, other(c));
      break;
    case FaultClass::CFin:
      for (auto [a, v] : pairs)
        for (bool rising : {false, true})
          add(memsim::InversionCouplingFault{{a, 0}, {v, 0}, rising}, a, v);
      break;
    case FaultClass::CFid:
      for (auto [a, v] : pairs)
        for (bool rising : {false, true})
          for (bool forced : {false, true})
            add(memsim::IdempotentCouplingFault{{a, 0}, {v, 0}, rising,
                                                forced},
                a, v);
      break;
    case FaultClass::CFst:
      for (auto [a, v] : pairs)
        for (bool state : {false, true})
          for (bool forced : {false, true})
            add(memsim::StateCouplingFault{{a, 0}, {v, 0}, state, forced}, a,
                v);
      break;
    case FaultClass::AF:
      for (auto [x, y] : pairs) {
        add(memsim::AddressDecoderFault{x, {}}, x, y);
        add(memsim::AddressDecoderFault{x, {y}}, x, y);
        add(memsim::AddressDecoderFault{x, {x, y}}, x, y);
      }
      break;
    case FaultClass::SOF:
      for (Address c : cells)
        add(memsim::StuckOpenFault{{c, 0}}, c, other(c));
      break;
    case FaultClass::DRF: {
      // Detectable only if the algorithm pauses at all; size the hold time
      // below the shortest pause, mirroring the campaign's convention.
      const std::uint64_t pause = min_pause_ns(alg);
      const std::uint64_t hold =
          pause > 0 ? pause / 2 : kDefaultPauseNs / 2;
      for (Address c : cells)
        for (bool leak : {false, true})
          add(memsim::DataRetentionFault{{c, 0}, leak, hold}, c, other(c));
      break;
    }
    case FaultClass::IRF:
      for (Address c : cells)
        add(memsim::IncorrectReadFault{{c, 0}}, c, other(c));
      break;
    case FaultClass::WDF:
      for (Address c : cells)
        add(memsim::WriteDisturbFault{{c, 0}}, c, other(c));
      break;
    case FaultClass::RDF:
      for (Address c : cells)
        add(memsim::ReadDestructiveFault{{c, 0}, false}, c, other(c));
      break;
    case FaultClass::DRDF:
      for (Address c : cells)
        add(memsim::ReadDestructiveFault{{c, 0}, true}, c, other(c));
      break;
    case FaultClass::LF:
      // Linked faults: two idempotent coupling faults sharing a victim
      // with distinct aggressors and opposite forced values, so the second
      // forcing can mask the first's corruption before a read observes it
      // (the same linked-pair shape as make_linked_cfid_universe).
      // Inversion pairs are deliberately excluded: with both aggressors on
      // the same side of the victim and equal triggers the two inversions
      // cancel inside *every* march element, so no march algorithm can
      // guarantee them and the class would be vacuously unprovable.
      for (Address a1 : cells)
        for (Address a2 : cells)
          for (Address v : cells) {
            if (a1 == a2 || a1 == v || a2 == v) continue;
            for (bool r1 : {false, true})
              for (bool r2 : {false, true})
                for (bool f1 : {false, true})
                  out.push_back(
                      {{memsim::IdempotentCouplingFault{
                            {a1, 0}, {v, 0}, r1, f1},
                        memsim::IdempotentCouplingFault{
                            {a2, 0}, {v, 0}, r2, !f1}},
                       {a1, a2, v}});
          }
      break;
    case FaultClass::NPSF:
    case FaultClass::PF:
      // Not qualifiable on the canonical single-port array; these classes
      // have dedicated topology-/port-aware experiments.
      break;
  }
  return out;
}

}  // namespace

std::string_view to_string(Detection d) {
  switch (d) {
    case Detection::None: return "none";
    case Detection::Partial: return "partial";
    case Detection::Guaranteed: return "guaranteed";
  }
  return "?";
}

Detection analyze(const MarchAlgorithm& alg, FaultClass cls) {
  const OpStream stream = expand(alg, kCanon);
  int detected = 0;
  int total = 0;
  for (const auto& inst : instances(cls, alg)) {
    // Every power-up assignment of the participating cells.
    const unsigned combos = 1u << inst.cells.size();
    for (unsigned combo = 0; combo < combos; ++combo) {
      std::vector<Word> contents(kCanon.num_words(), 0);
      for (std::size_t i = 0; i < inst.cells.size(); ++i)
        contents[inst.cells[i]] = (combo >> i) & 1u;
      memsim::FaultyMemory mem{kCanon, std::move(contents)};
      for (const auto& fault : inst.faults) mem.add_fault(fault);
      ++total;
      if (!run_stream(stream, mem, /*max_failures=*/1).passed()) ++detected;
    }
  }
  if (detected == 0) return Detection::None;
  if (detected == total) return Detection::Guaranteed;
  return Detection::Partial;
}

std::map<FaultClass, Detection> analyze_all(const MarchAlgorithm& alg,
                                            int jobs) {
  const auto& classes = memsim::all_fault_classes();
  std::vector<Detection> verdicts(classes.size());
  common::parallel_shards(jobs, static_cast<int>(classes.size()),
                          [&](int i) {
                            verdicts[static_cast<std::size_t>(i)] = analyze(
                                alg, classes[static_cast<std::size_t>(i)]);
                          });
  std::map<FaultClass, Detection> out;
  for (std::size_t i = 0; i < classes.size(); ++i)
    out[classes[i]] = verdicts[i];
  return out;
}

std::string format_analysis_table(
    std::span<const MarchAlgorithm> algorithms,
    std::span<const FaultClass> classes, int jobs) {
  // Sweep every (algorithm, class) pair in parallel, then format from the
  // dense verdict grid — the table text is order-independent of jobs.
  std::vector<Detection> grid(algorithms.size() * classes.size());
  common::parallel_shards(
      jobs, static_cast<int>(grid.size()), [&](int i) {
        const auto a = static_cast<std::size_t>(i) / classes.size();
        const auto c = static_cast<std::size_t>(i) % classes.size();
        grid[static_cast<std::size_t>(i)] = analyze(algorithms[a], classes[c]);
      });

  std::ostringstream os;
  os << std::left << std::setw(16) << "algorithm";
  for (FaultClass c : classes)
    os << std::right << std::setw(6) << memsim::fault_class_name(c);
  os << "\n";
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    os << std::left << std::setw(16) << algorithms[a].name();
    for (std::size_t c = 0; c < classes.size(); ++c) {
      const Detection d = grid[a * classes.size() + c];
      const char mark = d == Detection::Guaranteed ? 'G'
                        : d == Detection::Partial  ? 'p'
                                                   : '-';
      os << std::right << std::setw(6) << mark;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace pmbist::march
