#pragma once
// Campaign kernel selection.
//
// The campaign engine has two interchangeable inner loops:
//
//   Scalar  one FaultyMemory per fault instance, replayed serially per
//           instance — the reference implementation every other path is
//           pinned against.
//   Packed  the PPSFP bit-parallel kernel (memsim/packed_memory.h): up to
//           64 fault instances per PackedFaultyMemory, one bit-lane each,
//           stepped through the stream simultaneously.  Bit-identical to
//           Scalar by contract (same verdicts, same detecting-op
//           positions) and roughly an order of magnitude faster.
//
// Selection is orthogonal to the worker count (--jobs): either kernel runs
// under any jobs value and produces byte-identical records.  The choice is
// always carried explicitly (CampaignConfig::kernel, CoverageOptions::
// kernel, the CLI's --kernel flag) — there is no process-wide default, so
// concurrent callers cannot affect each other; Auto simply resolves to
// Packed.  docs/KERNEL.md documents the lane encoding and the equivalence
// contract.

#include <optional>
#include <string_view>

namespace pmbist::march {

enum class CampaignKernel : std::uint8_t {
  Auto,    ///< resolves to Packed (the fast path)
  Scalar,  ///< one memory per fault instance (reference path)
  Packed,  ///< 64 fault instances per lane-packed memory (PPSFP)
};

/// Display name: "auto", "scalar" or "packed".
[[nodiscard]] std::string_view kernel_name(CampaignKernel kernel);

/// Parses "scalar" / "packed" / "auto"; nullopt on anything else.
[[nodiscard]] std::optional<CampaignKernel> parse_kernel(
    std::string_view name);

/// Resolves Auto to Packed; never returns Auto.
[[nodiscard]] CampaignKernel resolve_kernel(CampaignKernel kernel);

}  // namespace pmbist::march
