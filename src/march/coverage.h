#pragma once
// Fault-simulation campaign engine.
//
// For each (algorithm, fault class) pair, a deterministic universe of fault
// instances is generated, each instance is injected into a fresh behavioral
// memory, the algorithm's reference op stream is applied, and detection
// (any read mismatch) is recorded.  This substantiates the coverage claims
// behind the paper's algorithm family: the + variants add DRF detection,
// the ++ variants add deceptive-read (disconnected pull-up/down) detection.
//
// The evaluate_* front ends below run on the parallel campaign engine
// (campaign.h): streams are expanded once per (algorithm x geometry) and
// fault instances are sharded across workers, with results guaranteed
// identical to the serial path for any worker count.

#include <atomic>
#include <map>
#include <span>

#include "march/expand.h"
#include "march/kernel.h"
#include "memsim/faulty_memory.h"

namespace pmbist::backend {
class MemoryBackend;  // backend/backend.h
}

namespace pmbist::march {

class StreamCache;  // campaign.h

/// One observed read mismatch.
struct Failure {
  std::size_t op_index = 0;  ///< index into the applied stream
  MemOp op;                  ///< the read that failed (expected in op.data)
  Word actual = 0;

  friend bool operator==(const Failure&, const Failure&) = default;
};

/// Result of applying an op stream to a memory.
struct RunResult {
  std::vector<Failure> failures;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  [[nodiscard]] bool passed() const noexcept { return failures.empty(); }
};

/// Applies a stream to a pluggable memory backend, recording up to
/// `max_failures` mismatches (the run always completes; capping only
/// bounds the log).  The canonical stream loop (backend/backend.h).
RunResult run_stream(std::span<const MemOp> stream,
                     backend::MemoryBackend& memory,
                     std::size_t max_failures = 64);

/// Applies a stream to a behavioral memory.  Wraps `memory` in a borrowing
/// SimBackend; the access sequence is bit-identical to the direct path.
RunResult run_stream(std::span<const MemOp> stream, memsim::Memory& memory,
                     std::size_t max_failures = 64);

/// Deterministically samples up to `max_instances` fault instances of one
/// class over the geometry.  Small geometries enumerate exhaustively where
/// feasible (SAF/TF/SOF/RDF/DRDF/DRF across all cells; coupling and AF
/// instances are sampled).
[[nodiscard]] std::vector<memsim::Fault> make_fault_universe(
    memsim::FaultClass cls, const MemoryGeometry& geometry,
    std::uint64_t seed, int max_instances);

/// Deterministically samples *linked* idempotent-coupling fault pairs: two
/// CFids sharing a victim with opposite forced values, the classic masking
/// configuration (the second coupling can undo the first before any read
/// observes it).  March LR was designed for exactly these; March C-class
/// algorithms miss a fraction.  Each entry is injected as a pair.
[[nodiscard]] std::vector<std::pair<memsim::Fault, memsim::Fault>>
make_linked_cfid_universe(const MemoryGeometry& geometry, std::uint64_t seed,
                          int count);

/// Deterministically samples *intra-word* coupling faults (aggressor and
/// victim bits inside the same word) — the population the data-background
/// sweep exists for.  Requires word_bits >= 2.
[[nodiscard]] std::vector<memsim::Fault> make_intra_word_cf_universe(
    const MemoryGeometry& geometry, std::uint64_t seed, int count);

/// detected/total for one (algorithm, class) cell.
struct CoverageCell {
  int detected = 0;
  int total = 0;
  [[nodiscard]] double ratio() const noexcept {
    return total == 0 ? 0.0 : static_cast<double>(detected) / total;
  }
};

struct CoverageRow {
  std::string algorithm;
  std::map<memsim::FaultClass, CoverageCell> cells;
};

struct CoverageOptions {
  std::uint64_t seed = 42;
  int max_instances_per_class = 64;
  /// Campaign worker count: 0 = hardware concurrency, 1 = serial.  Results
  /// are identical for every value — see campaign.h for the contract.
  int jobs = 0;
  /// Campaign inner loop (Auto resolves to Packed); results are identical
  /// for either kernel.
  CampaignKernel kernel = CampaignKernel::Auto;
  /// Optional expansion cache shared across evaluations; nullptr expands
  /// uncached (coverage_matrix supplies a local cache in that case so the
  /// per-class evaluations of one matrix still reuse each expansion).
  StreamCache* cache = nullptr;
  /// Optional cooperative cancellation flag — see campaign.h.
  const std::atomic<bool>* cancel = nullptr;
};

/// Evaluates detection of `alg` against one fault class.
[[nodiscard]] CoverageCell evaluate_coverage(const MarchAlgorithm& alg,
                                             memsim::FaultClass cls,
                                             const MemoryGeometry& geometry,
                                             const CoverageOptions& opts = {});

/// Evaluates detection of `alg` against the linked-CFid universe.
[[nodiscard]] CoverageCell evaluate_linked_coverage(
    const MarchAlgorithm& alg, const MemoryGeometry& geometry,
    const CoverageOptions& opts = {});

/// Runs `alg` expanded with only the first `num_backgrounds` data
/// backgrounds (1 = all-zeros only) against each fault of `faults`;
/// returns the detection cell.  Ports are swept as usual.  `jobs` is the
/// campaign worker count (0 = process default).
[[nodiscard]] CoverageCell evaluate_with_backgrounds(
    const MarchAlgorithm& alg, const MemoryGeometry& geometry,
    std::span<const memsim::Fault> faults, int num_backgrounds,
    std::uint64_t powerup_seed = 1, int jobs = 0);

/// Full matrix over algorithms x fault classes.
[[nodiscard]] std::vector<CoverageRow> coverage_matrix(
    std::span<const MarchAlgorithm> algorithms,
    std::span<const memsim::FaultClass> classes,
    const MemoryGeometry& geometry, const CoverageOptions& opts = {});

/// Renders a coverage matrix as a fixed-width text table.
[[nodiscard]] std::string format_coverage_table(
    std::span<const CoverageRow> rows,
    std::span<const memsim::FaultClass> classes);

}  // namespace pmbist::march
