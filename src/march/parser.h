#pragma once
// Text DSL for march algorithms.
//
// Grammar (whitespace-insensitive; ';' separates elements; a surrounding
// '{ }' is optional):
//
//   algorithm := [ '{' ] element ( ';' element )* [ ';' ] [ '}' ]
//   element   := order '(' op ( ',' op )* ')'
//              | 'pause' [ '(' number unit ')' ]
//   order     := 'up' | 'down' | 'any'
//   op        := ('r' | 'w') ('0' | '1')
//   unit      := 'ns' | 'us' | 'ms'
//
// Examples:
//   "any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); any(r0)"
//   "{ any(w0); pause(100us); any(r0) }"
//
// parse() throws march::ParseError with position information on malformed
// input, making the DSL safe to expose to interactive tooling.

#include <stdexcept>

#include "march/march.h"

namespace pmbist::march {

/// Error thrown on malformed DSL input; message includes offset context.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t offset)
      : std::runtime_error{message + " (at offset " +
                           std::to_string(offset) + ")"},
        offset_{offset} {}
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Parses the DSL into an algorithm named `name`.
[[nodiscard]] MarchAlgorithm parse(std::string_view text,
                                   std::string name = "custom");

}  // namespace pmbist::march
