#include "march/kernel.h"

#include <atomic>

namespace pmbist::march {
namespace {

std::atomic<CampaignKernel> g_default_kernel{CampaignKernel::Packed};

}  // namespace

std::string_view kernel_name(CampaignKernel kernel) {
  switch (kernel) {
    case CampaignKernel::Auto:
      return "auto";
    case CampaignKernel::Scalar:
      return "scalar";
    case CampaignKernel::Packed:
      return "packed";
  }
  return "?";
}

std::optional<CampaignKernel> parse_kernel(std::string_view name) {
  if (name == "auto") return CampaignKernel::Auto;
  if (name == "scalar") return CampaignKernel::Scalar;
  if (name == "packed") return CampaignKernel::Packed;
  return std::nullopt;
}

void set_default_campaign_kernel(CampaignKernel kernel) {
  g_default_kernel.store(kernel);
}

CampaignKernel default_campaign_kernel() { return g_default_kernel.load(); }

CampaignKernel resolve_kernel(CampaignKernel kernel) {
  if (kernel != CampaignKernel::Auto) return kernel;
  const CampaignKernel def = default_campaign_kernel();
  return def == CampaignKernel::Auto ? CampaignKernel::Packed : def;
}

}  // namespace pmbist::march
