#include "march/kernel.h"

namespace pmbist::march {

std::string_view kernel_name(CampaignKernel kernel) {
  switch (kernel) {
    case CampaignKernel::Auto:
      return "auto";
    case CampaignKernel::Scalar:
      return "scalar";
    case CampaignKernel::Packed:
      return "packed";
  }
  return "?";
}

std::optional<CampaignKernel> parse_kernel(std::string_view name) {
  if (name == "auto") return CampaignKernel::Auto;
  if (name == "scalar") return CampaignKernel::Scalar;
  if (name == "packed") return CampaignKernel::Packed;
  return std::nullopt;
}

CampaignKernel resolve_kernel(CampaignKernel kernel) {
  return kernel == CampaignKernel::Auto ? CampaignKernel::Packed : kernel;
}

}  // namespace pmbist::march
