#pragma once
// Reference expansion of a march algorithm into the exact operation stream
// a correct BIST controller must apply to the memory under test.  This is
// the semantic ground truth of the project: the microcode-based,
// programmable-FSM-based and hardwired controllers are all tested for
// op-stream equivalence against expand().
//
// Loop nesting follows the paper's microcode program for March C (Fig. 2):
// the whole algorithm repeats for each data background (word-oriented
// memories), and that in turn repeats for each port (multiport memories):
//
//   for port: for background: for element: for address: for op
//
// March data d expands against the active background B as d=0 -> B,
// d=1 -> ~B (masked to the word width).

#include <span>
#include <vector>

#include "march/march.h"
#include "memsim/memory.h"

namespace pmbist::march {

using memsim::Address;
using memsim::MemoryGeometry;
using memsim::Word;

/// One expanded memory operation (or pause) as applied by a controller.
struct MemOp {
  enum class Kind : std::uint8_t { Write, Read, Pause } kind = Kind::Write;
  int port = 0;
  Address addr = 0;
  Word data = 0;  ///< written value, or expected value for reads
  std::uint64_t pause_ns = 0;

  [[nodiscard]] static MemOp write(int port, Address a, Word d) {
    return {Kind::Write, port, a, d, 0};
  }
  [[nodiscard]] static MemOp read(int port, Address a, Word expected) {
    return {Kind::Read, port, a, expected, 0};
  }
  [[nodiscard]] static MemOp pause(std::uint64_t ns) {
    return {Kind::Pause, 0, 0, 0, ns};
  }

  friend bool operator==(const MemOp&, const MemOp&) = default;
};

using OpStream = std::vector<MemOp>;

/// The standard data backgrounds for a word width: all-zeros plus the
/// log2(W) alternating-block patterns (0101.., 0011.., 00001111.., ...).
/// Bit-oriented memories get the single background {0}.
[[nodiscard]] std::vector<Word> standard_backgrounds(int word_bits);

/// Applies march data value d against background `bg`: d=0 -> bg,
/// d=1 -> ~bg, masked to the word width.
[[nodiscard]] Word apply_background(bool d, Word bg, Word mask);

/// Expands `alg` over `geometry` into the reference operation stream.
[[nodiscard]] OpStream expand(const MarchAlgorithm& alg,
                              const MemoryGeometry& geometry);

/// Expansion restricted to one (port, background) pass — the unit the
/// controllers' inner loops produce.
[[nodiscard]] OpStream expand_single_pass(const MarchAlgorithm& alg,
                                          const MemoryGeometry& geometry,
                                          int port, Word background);

/// Number of memory operations (excluding pauses) in the full expansion,
/// computed without materializing the stream.
[[nodiscard]] std::uint64_t expanded_op_count(const MarchAlgorithm& alg,
                                              const MemoryGeometry& geometry);

}  // namespace pmbist::march
