#pragma once
// Static march-algorithm qualification: which fault classes does an
// algorithm *guarantee* to detect?
//
// Fault-simulation campaigns (coverage.h) measure detection over sampled
// instances and random power-up states, so lucky detections inflate the
// ratio above the guaranteed floor (e.g. MATS catches some falling
// transition faults only when power-up leaves the cell at 1).  A test
// engineer choosing an algorithm needs the guarantee, not the luck.
//
// The qualifier decides the guarantee *exactly* for this library's fault
// models by exhausting a canonical small configuration: a 4-word
// bit-oriented array, every fault instance of the class placed on interior
// cells (so element-boundary sense-residue effects cannot mask a miss),
// and every relevant power-up assignment of the participating cells.
// Detection of single-cell and pairwise faults depends only on the
// per-cell operation sequences and the relative traversal order of the
// participating cells — both of which the canonical array preserves — so:
//
//   Guaranteed  = every (instance x power-up) combination is detected
//   None        = no combination is detected
//   Partial     = anything in between (detection depends on fault
//                 parameters, cell position or power-up luck)
//
// tests/test_analysis.cpp cross-validates these verdicts against the
// sampled fault-simulation campaign for the whole algorithm library.

#include <map>

#include "march/coverage.h"

namespace pmbist::march {

enum class Detection : std::uint8_t { None, Partial, Guaranteed };

[[nodiscard]] std::string_view to_string(Detection d);

/// Qualifies `alg` against one fault class.
[[nodiscard]] Detection analyze(const MarchAlgorithm& alg,
                                memsim::FaultClass cls);

/// Qualifies `alg` against every fault class.  `jobs` spreads the
/// per-class exhaustive sweeps across workers (0 = process default, 1 =
/// serial); verdicts are identical for any value.
[[nodiscard]] std::map<memsim::FaultClass, Detection> analyze_all(
    const MarchAlgorithm& alg, int jobs = 0);

/// Fixed-width text table over a set of algorithms (G / p / - cells).
/// The (algorithm x class) sweeps run on up to `jobs` workers.
[[nodiscard]] std::string format_analysis_table(
    std::span<const MarchAlgorithm> algorithms,
    std::span<const memsim::FaultClass> classes, int jobs = 0);

}  // namespace pmbist::march
