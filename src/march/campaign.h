#pragma once
// Parallel fault-simulation campaign engine.
//
// A campaign replays one immutable reference op stream against thousands
// of independently injected fault instances — the hottest loop in the
// project (it dominates the coverage, qualifier, background-sweep and
// NPSF benches).  This engine makes that loop scale with cores while
// keeping results bit-identical to the serial path:
//
//   * the stream is expanded ONCE per (algorithm x geometry) and cached
//     (StreamCache); every worker replays the same shared, read-only
//     vector;
//   * the inner loop is the PPSFP bit-parallel kernel by default
//     (memsim/packed_memory.h): up to 64 fault instances ride one packed
//     memory, one bit-lane each, so a shard steps 64 simulations per op;
//     the scalar one-memory-per-fault path is kept as the pinned
//     reference (CampaignConfig::kernel / the --kernel flag);
//   * the fault universe is sharded dynamically across workers — by
//     lane-pack for the packed kernel, by instance for the scalar one;
//     each worker owns one thread-local memory that is cheaply reset()
//     between shards instead of reconstructed;
//   * every fault writes its DetectionRecord into its own pre-sized slot,
//     so the merged result is ordered by fault index and independent of
//     the worker count AND the kernel — jobs=8/packed is byte-identical
//     to jobs=1/scalar by construction (each simulation depends only on
//     stream, geometry, power-up seed and the injected fault, never on
//     scheduling or lane placement).
//
// Reentrancy contract: the engine holds NO mutable process-wide state.
// Worker count, kernel, cancellation and the stream cache all arrive
// through CampaignConfig / explicit arguments, so independent callers
// (e.g. two serve::Server instances in one process) cannot observe each
// other.  docs/CAMPAIGNS.md documents the determinism contract and how to
// plug in a new fault universe; docs/KERNEL.md documents the packed
// kernel.

#include <atomic>
#include <memory>
#include <span>

#include "march/expand.h"
#include "march/kernel.h"
#include "memsim/faulty_memory.h"

namespace pmbist::march {

/// A set of faults injected together into one memory instance (size 1 for
/// plain universes; 2 for linked-fault pairs).
using FaultGroup = std::vector<memsim::Fault>;

/// Outcome of simulating one fault group against the stream.
struct DetectionRecord {
  static constexpr std::size_t kNoFailure = static_cast<std::size_t>(-1);

  std::uint32_t fault_index = 0;        ///< index into the input universe
  bool detected = false;                ///< any read mismatch observed
  std::size_t first_failure_op = kNoFailure;  ///< op index of first mismatch

  friend bool operator==(const DetectionRecord&,
                         const DetectionRecord&) = default;
};

/// Merged campaign outcome; `records` is always ordered by fault index and
/// invariant under the worker count.
struct CampaignResult {
  std::vector<DetectionRecord> records;

  [[nodiscard]] int total() const noexcept {
    return static_cast<int>(records.size());
  }
  [[nodiscard]] int detected() const noexcept;
};

struct CampaignConfig {
  /// Worker count; <= 0 means hardware concurrency, 1 forces the serial
  /// reference path.  Results are identical for every value.
  int jobs = 0;
  /// Power-up seed for every simulated memory instance (same convention as
  /// CoverageOptions::seed / the FaultyMemory constructor).
  std::uint64_t powerup_seed = 1;
  /// Inner-loop implementation; Auto resolves to the packed PPSFP kernel.
  /// Either kernel yields byte-identical records.
  CampaignKernel kernel = CampaignKernel::Auto;
  /// Optional cooperative cancellation flag (common/cancel.h).  Workers
  /// poll it before claiming each shard; when observed set, the campaign
  /// throws common::Cancelled after in-flight shards drain.
  const std::atomic<bool>* cancel = nullptr;
};

/// Replays `stream` against each fault (group) of a universe, one fresh
/// memory per instance, in parallel.
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config = {}) : config_{config} {}

  /// Single-fault universe (the common case).
  [[nodiscard]] CampaignResult run(std::span<const MemOp> stream,
                                   const MemoryGeometry& geometry,
                                   std::span<const memsim::Fault> universe)
      const;

  /// Multi-fault-per-instance universe (linked faults and the like).
  [[nodiscard]] CampaignResult run_groups(
      std::span<const MemOp> stream, const MemoryGeometry& geometry,
      std::span<const FaultGroup> universe) const;

  [[nodiscard]] const CampaignConfig& config() const noexcept {
    return config_;
  }

 private:
  CampaignConfig config_;
};

/// Content-hash cache of reference expansions, keyed by FNV-1a of the
/// canonical algorithm text and the geometry, with LRU eviction under an
/// optional byte budget.  Thread-safe; entries are shared immutable
/// streams, so an evicted entry stays valid for whoever still holds it.
///
/// There is deliberately no process-wide instance: each owner (a CLI
/// command, a serve::Server, a bench) constructs its own, which is what
/// gives the serve layer cross-request reuse without cross-server
/// interference.
class StreamCache {
 public:
  /// `max_bytes` bounds the summed op-stream payload; 0 = unbounded.
  explicit StreamCache(std::size_t max_bytes = 0);
  ~StreamCache();
  StreamCache(const StreamCache&) = delete;
  StreamCache& operator=(const StreamCache&) = delete;

  /// Returns the cached expansion, expanding on first use; refreshes the
  /// entry's LRU position and evicts least-recently-used entries while the
  /// byte budget is exceeded.
  [[nodiscard]] std::shared_ptr<const OpStream> get(
      const MarchAlgorithm& alg, const MemoryGeometry& geometry);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;  ///< currently cached op-stream payload
  };
  [[nodiscard]] Stats stats() const;

  /// Drops all entries (hit/miss counters are kept); exposed for tests.
  void clear();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-call front end: expands `alg` over `geometry` — through `cache`
/// when one is supplied, uncached otherwise — and runs the campaign under
/// `config`.
[[nodiscard]] CampaignResult run_campaign(
    const MarchAlgorithm& alg, const MemoryGeometry& geometry,
    std::span<const memsim::Fault> universe, const CampaignConfig& config = {},
    StreamCache* cache = nullptr);

}  // namespace pmbist::march
