#pragma once
// Parallel fault-simulation campaign engine.
//
// A campaign replays one immutable reference op stream against thousands
// of independently injected fault instances — the hottest loop in the
// project (it dominates the coverage, qualifier, background-sweep and
// NPSF benches).  This engine makes that loop scale with cores while
// keeping results bit-identical to the serial path:
//
//   * the stream is expanded ONCE per (algorithm x geometry) and cached
//     (stream_cache()); every worker replays the same shared, read-only
//     vector;
//   * the inner loop is the PPSFP bit-parallel kernel by default
//     (memsim/packed_memory.h): up to 64 fault instances ride one packed
//     memory, one bit-lane each, so a shard steps 64 simulations per op;
//     the scalar one-memory-per-fault path is kept as the pinned
//     reference (CampaignConfig::kernel / the --kernel flag);
//   * the fault universe is sharded dynamically across workers — by
//     lane-pack for the packed kernel, by instance for the scalar one;
//     each worker owns one thread-local memory that is cheaply reset()
//     between shards instead of reconstructed;
//   * every fault writes its DetectionRecord into its own pre-sized slot,
//     so the merged result is ordered by fault index and independent of
//     the worker count AND the kernel — jobs=8/packed is byte-identical
//     to jobs=1/scalar by construction (each simulation depends only on
//     stream, geometry, power-up seed and the injected fault, never on
//     scheduling or lane placement).
//
// docs/CAMPAIGNS.md documents the determinism contract and how to plug in
// a new fault universe; docs/KERNEL.md documents the packed kernel.

#include <memory>
#include <span>

#include "march/expand.h"
#include "march/kernel.h"
#include "memsim/faulty_memory.h"

namespace pmbist::march {

/// A set of faults injected together into one memory instance (size 1 for
/// plain universes; 2 for linked-fault pairs).
using FaultGroup = std::vector<memsim::Fault>;

/// Outcome of simulating one fault group against the stream.
struct DetectionRecord {
  static constexpr std::size_t kNoFailure = static_cast<std::size_t>(-1);

  std::uint32_t fault_index = 0;        ///< index into the input universe
  bool detected = false;                ///< any read mismatch observed
  std::size_t first_failure_op = kNoFailure;  ///< op index of first mismatch

  friend bool operator==(const DetectionRecord&,
                         const DetectionRecord&) = default;
};

/// Merged campaign outcome; `records` is always ordered by fault index and
/// invariant under the worker count.
struct CampaignResult {
  std::vector<DetectionRecord> records;

  [[nodiscard]] int total() const noexcept {
    return static_cast<int>(records.size());
  }
  [[nodiscard]] int detected() const noexcept;
};

struct CampaignConfig {
  /// Worker count; 0 defers to default_campaign_jobs() (itself defaulting
  /// to hardware concurrency).  1 forces the serial reference path.
  int jobs = 0;
  /// Power-up seed for every simulated memory instance (same convention as
  /// CoverageOptions::seed / the FaultyMemory constructor).
  std::uint64_t powerup_seed = 1;
  /// Inner-loop implementation; Auto defers to default_campaign_kernel()
  /// (itself defaulting to the packed PPSFP kernel).  Either kernel yields
  /// byte-identical records.
  CampaignKernel kernel = CampaignKernel::Auto;
};

/// Process-wide default used when CampaignConfig::jobs == 0; the CLI's
/// --jobs flag sets it.  0 (the initial value) means hardware concurrency.
void set_default_campaign_jobs(int jobs);
[[nodiscard]] int default_campaign_jobs();

/// Replays `stream` against each fault (group) of a universe, one fresh
/// memory per instance, in parallel.
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config = {}) : config_{config} {}

  /// Single-fault universe (the common case).
  [[nodiscard]] CampaignResult run(std::span<const MemOp> stream,
                                   const MemoryGeometry& geometry,
                                   std::span<const memsim::Fault> universe)
      const;

  /// Multi-fault-per-instance universe (linked faults and the like).
  [[nodiscard]] CampaignResult run_groups(
      std::span<const MemOp> stream, const MemoryGeometry& geometry,
      std::span<const FaultGroup> universe) const;

  [[nodiscard]] const CampaignConfig& config() const noexcept {
    return config_;
  }

 private:
  CampaignConfig config_;
};

/// Keyed cache of reference expansions (canonical algorithm text x
/// geometry), so repeated campaigns over the same pair expand once.
/// Thread-safe; entries are shared immutable streams.
class StreamCache {
 public:
  StreamCache();
  ~StreamCache();
  StreamCache(const StreamCache&) = delete;
  StreamCache& operator=(const StreamCache&) = delete;

  /// Returns the cached expansion, expanding on first use.
  [[nodiscard]] std::shared_ptr<const OpStream> get(
      const MarchAlgorithm& alg, const MemoryGeometry& geometry);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Drops all entries (stats are kept); exposed for tests.
  void clear();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide expansion cache used by run_campaign() and the
/// coverage front ends.
[[nodiscard]] StreamCache& stream_cache();

/// One-call front end: expands `alg` over `geometry` through the shared
/// cache and runs the campaign under `config`.
[[nodiscard]] CampaignResult run_campaign(
    const MarchAlgorithm& alg, const MemoryGeometry& geometry,
    std::span<const memsim::Fault> universe, const CampaignConfig& config = {});

}  // namespace pmbist::march
