#include "march/campaign.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>

#include "common/thread_pool.h"

namespace pmbist::march {
namespace {

// Replays the stream against one injected memory, stopping at the first
// mismatch: detection and first_failure_op are exactly what the serial
// run_stream(..., max_failures=1) path observes, and the memory is
// discarded afterwards, so nothing downstream sees the truncated state.
DetectionRecord replay(std::span<const MemOp> stream, memsim::Memory& memory,
                       std::uint32_t fault_index) {
  DetectionRecord record;
  record.fault_index = fault_index;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const MemOp& op = stream[i];
    switch (op.kind) {
      case MemOp::Kind::Pause:
        memory.advance_time_ns(op.pause_ns);
        break;
      case MemOp::Kind::Write:
        memory.write(op.port, op.addr, op.data);
        break;
      case MemOp::Kind::Read:
        if (memory.read(op.port, op.addr) != op.data) {
          record.detected = true;
          record.first_failure_op = i;
          return record;
        }
        break;
    }
  }
  return record;
}

std::atomic<int> g_default_jobs{0};

// Shared universe driver: one thread-local memory per worker, reset
// between instances; each instance writes only its own record slot, so
// the merged result is ordered by fault index and invariant under jobs.
template <typename InjectFn>
CampaignResult run_universe(const CampaignConfig& config,
                            std::span<const MemOp> stream,
                            const MemoryGeometry& geometry, int count,
                            const InjectFn& inject) {
  CampaignResult result;
  result.records.resize(static_cast<std::size_t>(count));
  if (count == 0) return result;

  int jobs = config.jobs != 0 ? config.jobs : default_campaign_jobs();
  jobs = std::min(common::resolve_jobs(jobs), count);

  std::atomic<int> next{0};
  common::parallel_shards(jobs, jobs, [&](int) {
    memsim::FaultyMemory memory{geometry, config.powerup_seed};
    bool fresh = true;
    for (int i; (i = next.fetch_add(1)) < count;) {
      if (!fresh) memory.reset(config.powerup_seed);
      fresh = false;
      inject(i, memory);
      result.records[static_cast<std::size_t>(i)] =
          replay(stream, memory, static_cast<std::uint32_t>(i));
    }
  });
  return result;
}

}  // namespace

int CampaignResult::detected() const noexcept {
  int n = 0;
  for (const auto& r : records) n += r.detected ? 1 : 0;
  return n;
}

void set_default_campaign_jobs(int jobs) { g_default_jobs.store(jobs); }
int default_campaign_jobs() { return g_default_jobs.load(); }

CampaignResult CampaignRunner::run(std::span<const MemOp> stream,
                                   const MemoryGeometry& geometry,
                                   std::span<const memsim::Fault> universe)
    const {
  return run_universe(config_, stream, geometry,
                      static_cast<int>(universe.size()),
                      [&](int i, memsim::FaultyMemory& memory) {
                        memory.add_fault(
                            universe[static_cast<std::size_t>(i)]);
                      });
}

CampaignResult CampaignRunner::run_groups(
    std::span<const MemOp> stream, const MemoryGeometry& geometry,
    std::span<const FaultGroup> universe) const {
  return run_universe(config_, stream, geometry,
                      static_cast<int>(universe.size()),
                      [&](int i, memsim::FaultyMemory& memory) {
                        for (const auto& fault :
                             universe[static_cast<std::size_t>(i)])
                          memory.add_fault(fault);
                      });
}

struct StreamCache::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::shared_ptr<const OpStream>> entries;
  Stats counters;
};

StreamCache::StreamCache() : impl_{std::make_unique<Impl>()} {}
StreamCache::~StreamCache() = default;

std::shared_ptr<const OpStream> StreamCache::get(
    const MarchAlgorithm& alg, const MemoryGeometry& geometry) {
  // Canonical text is the identity of an algorithm (name is presentation);
  // two differently named but textually equal algorithms share an entry.
  std::string key = std::to_string(geometry.address_bits) + "x" +
                    std::to_string(geometry.word_bits) + "x" +
                    std::to_string(geometry.num_ports) + "|" +
                    alg.to_string();
  {
    std::lock_guard lock{impl_->mu};
    if (auto it = impl_->entries.find(key); it != impl_->entries.end()) {
      ++impl_->counters.hits;
      return it->second;
    }
  }
  // Expand outside the lock (expansion is the expensive part); a racing
  // duplicate expansion is harmless and the first insert wins.
  auto stream = std::make_shared<const OpStream>(expand(alg, geometry));
  std::lock_guard lock{impl_->mu};
  if (auto it = impl_->entries.find(key); it != impl_->entries.end()) {
    ++impl_->counters.hits;
    return it->second;
  }
  ++impl_->counters.misses;
  if (impl_->entries.size() >= 256) impl_->entries.clear();  // runaway guard
  impl_->entries.emplace(std::move(key), stream);
  return stream;
}

StreamCache::Stats StreamCache::stats() const {
  std::lock_guard lock{impl_->mu};
  return impl_->counters;
}

void StreamCache::clear() {
  std::lock_guard lock{impl_->mu};
  impl_->entries.clear();
}

StreamCache& stream_cache() {
  static StreamCache cache;
  return cache;
}

CampaignResult run_campaign(const MarchAlgorithm& alg,
                            const MemoryGeometry& geometry,
                            std::span<const memsim::Fault> universe,
                            const CampaignConfig& config) {
  const auto stream = stream_cache().get(alg, geometry);
  return CampaignRunner{config}.run(*stream, geometry, universe);
}

}  // namespace pmbist::march
