#include "march/campaign.h"

#include <algorithm>
#include <atomic>
#include <list>
#include <mutex>
#include <unordered_map>

#include <bit>

#include "common/cancel.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "memsim/packed_memory.h"

namespace pmbist::march {
namespace {

// Replays the stream against one injected memory, stopping at the first
// mismatch: detection and first_failure_op are exactly what the serial
// run_stream(..., max_failures=1) path observes, and the memory is
// discarded afterwards, so nothing downstream sees the truncated state.
DetectionRecord replay(std::span<const MemOp> stream, memsim::Memory& memory,
                       std::uint32_t fault_index) {
  DetectionRecord record;
  record.fault_index = fault_index;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const MemOp& op = stream[i];
    switch (op.kind) {
      case MemOp::Kind::Pause:
        memory.advance_time_ns(op.pause_ns);
        break;
      case MemOp::Kind::Write:
        memory.write(op.port, op.addr, op.data);
        break;
      case MemOp::Kind::Read:
        if (memory.read(op.port, op.addr) != op.data) {
          record.detected = true;
          record.first_failure_op = i;
          return record;
        }
        break;
    }
  }
  return record;
}

// Replays the stream against one lane-packed memory holding `lanes` live
// fault instances (base..base+lanes-1), filling the records of all of
// them in one pass.  A lane that has detected stops being compared (its
// remaining mismatches are masked off), which matches the scalar replay's
// early return: lanes are independent, so dropping a detected lane's
// later results cannot affect any other lane.  The whole pack early-exits
// once every lane has detected.
void replay_pack(std::span<const MemOp> stream,
                 memsim::PackedFaultyMemory& memory, std::uint32_t base,
                 int lanes, std::span<DetectionRecord> records) {
  for (int l = 0; l < lanes; ++l) {
    records[static_cast<std::size_t>(l)] = DetectionRecord{};
    records[static_cast<std::size_t>(l)].fault_index =
        base + static_cast<std::uint32_t>(l);
  }
  std::uint64_t undetected =
      lanes >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const MemOp& op = stream[i];
    switch (op.kind) {
      case MemOp::Kind::Pause:
        memory.advance_time_ns(op.pause_ns);
        break;
      case MemOp::Kind::Write:
        memory.write(op.port, op.addr, op.data);
        break;
      case MemOp::Kind::Read: {
        std::uint64_t hits =
            memory.read(op.port, op.addr, op.data) & undetected;
        undetected &= ~hits;
        while (hits != 0) {
          const int l = std::countr_zero(hits);
          hits &= hits - 1;
          auto& record = records[static_cast<std::size_t>(l)];
          record.detected = true;
          record.first_failure_op = i;
        }
        break;
      }
    }
    if (undetected == 0) break;
  }
}

// Shared scalar universe driver: one thread-local memory per worker, reset
// between instances; each instance writes only its own record slot, so
// the merged result is ordered by fault index and invariant under jobs.
// Cancellation is polled before each shard claim, so a cancelled campaign
// quiesces within one instance per worker.
template <typename InjectFn>
CampaignResult run_scalar(const CampaignConfig& config,
                          std::span<const MemOp> stream,
                          const MemoryGeometry& geometry, int count,
                          const InjectFn& inject) {
  CampaignResult result;
  result.records.resize(static_cast<std::size_t>(count));

  const int jobs = std::min(common::resolve_jobs(config.jobs), count);

  std::atomic<int> next{0};
  common::parallel_shards(jobs, jobs, [&](int) {
    memsim::FaultyMemory memory{geometry, config.powerup_seed};
    bool fresh = true;
    for (int i; (i = next.fetch_add(1)) < count;) {
      common::throw_if_cancelled(config.cancel);
      if (!fresh) memory.reset(config.powerup_seed);
      fresh = false;
      inject(i, memory);
      result.records[static_cast<std::size_t>(i)] =
          replay(stream, memory, static_cast<std::uint32_t>(i));
    }
  });
  return result;
}

// Packed universe driver: the shard unit is a lane-pack of up to 64 fault
// instances, so each task replays the stream once for 64 simulations.
// Record slots are still disjoint and indexed by fault index, so the
// result is invariant under jobs AND identical to the scalar driver.
template <typename InjectFn>
CampaignResult run_packed(const CampaignConfig& config,
                          std::span<const MemOp> stream,
                          const MemoryGeometry& geometry, int count,
                          const InjectFn& inject) {
  CampaignResult result;
  result.records.resize(static_cast<std::size_t>(count));

  constexpr int kLanes = memsim::PackedFaultyMemory::kLanes;
  const int packs = (count + kLanes - 1) / kLanes;
  const int jobs = std::min(common::resolve_jobs(config.jobs), packs);

  std::atomic<int> next{0};
  common::parallel_shards(jobs, jobs, [&](int) {
    memsim::PackedFaultyMemory memory{geometry, config.powerup_seed};
    bool fresh = true;
    for (int p; (p = next.fetch_add(1)) < packs;) {
      common::throw_if_cancelled(config.cancel);
      if (!fresh) memory.reset(config.powerup_seed);
      fresh = false;
      const int base = p * kLanes;
      const int lanes = std::min(kLanes, count - base);
      for (int l = 0; l < lanes; ++l) inject(base + l, l, memory);
      replay_pack(stream, memory, static_cast<std::uint32_t>(base), lanes,
                  std::span<DetectionRecord>{result.records}.subspan(
                      static_cast<std::size_t>(base),
                      static_cast<std::size_t>(lanes)));
    }
  });
  return result;
}

// Kernel dispatch shared by run() / run_groups(): `inject_one` injects
// fault group i into a scalar memory, `inject_lane` injects it into lane
// l of a packed memory.
template <typename InjectOneFn, typename InjectLaneFn>
CampaignResult run_universe(const CampaignConfig& config,
                            std::span<const MemOp> stream,
                            const MemoryGeometry& geometry, int count,
                            const InjectOneFn& inject_one,
                            const InjectLaneFn& inject_lane) {
  if (count == 0) {
    return CampaignResult{};
  }
  if (resolve_kernel(config.kernel) == CampaignKernel::Scalar)
    return run_scalar(config, stream, geometry, count, inject_one);
  return run_packed(config, stream, geometry, count, inject_lane);
}

}  // namespace

int CampaignResult::detected() const noexcept {
  int n = 0;
  for (const auto& r : records) n += r.detected ? 1 : 0;
  return n;
}

CampaignResult CampaignRunner::run(std::span<const MemOp> stream,
                                   const MemoryGeometry& geometry,
                                   std::span<const memsim::Fault> universe)
    const {
  return run_universe(
      config_, stream, geometry, static_cast<int>(universe.size()),
      [&](int i, memsim::FaultyMemory& memory) {
        memory.add_fault(universe[static_cast<std::size_t>(i)]);
      },
      [&](int i, int lane, memsim::PackedFaultyMemory& memory) {
        memory.add_fault(lane, universe[static_cast<std::size_t>(i)]);
      });
}

CampaignResult CampaignRunner::run_groups(
    std::span<const MemOp> stream, const MemoryGeometry& geometry,
    std::span<const FaultGroup> universe) const {
  return run_universe(
      config_, stream, geometry, static_cast<int>(universe.size()),
      [&](int i, memsim::FaultyMemory& memory) {
        for (const auto& fault : universe[static_cast<std::size_t>(i)])
          memory.add_fault(fault);
      },
      [&](int i, int lane, memsim::PackedFaultyMemory& memory) {
        for (const auto& fault : universe[static_cast<std::size_t>(i)])
          memory.add_fault(lane, fault);
      });
}

struct StreamCache::Impl {
  struct Entry {
    std::uint64_t key;
    std::shared_ptr<const OpStream> stream;
    std::uint64_t bytes;
  };

  mutable std::mutex mu;
  std::list<Entry> lru;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
  std::size_t max_bytes;
  Stats counters;

  // Evicts from the LRU tail while over budget (never evicts the sole
  // entry: a stream larger than the whole budget still has to be served).
  void enforce_budget() {
    if (max_bytes == 0) return;
    while (counters.bytes > max_bytes && lru.size() > 1) {
      const Entry& victim = lru.back();
      counters.bytes -= victim.bytes;
      ++counters.evictions;
      index.erase(victim.key);
      lru.pop_back();
    }
  }
};

StreamCache::StreamCache(std::size_t max_bytes)
    : impl_{std::make_unique<Impl>()} {
  impl_->max_bytes = max_bytes;
}
StreamCache::~StreamCache() = default;

std::shared_ptr<const OpStream> StreamCache::get(
    const MarchAlgorithm& alg, const MemoryGeometry& geometry) {
  // Canonical text is the identity of an algorithm (name is presentation);
  // two differently named but textually equal algorithms share an entry.
  const std::string canonical = std::to_string(geometry.address_bits) + "x" +
                                std::to_string(geometry.word_bits) + "x" +
                                std::to_string(geometry.num_ports) + "|" +
                                alg.to_string();
  const std::uint64_t key = common::fnv1a64(canonical);
  {
    std::lock_guard lock{impl_->mu};
    if (auto it = impl_->index.find(key); it != impl_->index.end()) {
      ++impl_->counters.hits;
      impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
      return it->second->stream;
    }
  }
  // Expand outside the lock (expansion is the expensive part); a racing
  // duplicate expansion is harmless and the first insert wins.
  auto stream = std::make_shared<const OpStream>(expand(alg, geometry));
  const std::uint64_t bytes = stream->size() * sizeof(MemOp);
  std::lock_guard lock{impl_->mu};
  if (auto it = impl_->index.find(key); it != impl_->index.end()) {
    ++impl_->counters.hits;
    impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
    return it->second->stream;
  }
  ++impl_->counters.misses;
  impl_->counters.bytes += bytes;
  impl_->lru.push_front(Impl::Entry{key, stream, bytes});
  impl_->index.emplace(key, impl_->lru.begin());
  impl_->enforce_budget();
  return stream;
}

StreamCache::Stats StreamCache::stats() const {
  std::lock_guard lock{impl_->mu};
  return impl_->counters;
}

void StreamCache::clear() {
  std::lock_guard lock{impl_->mu};
  impl_->lru.clear();
  impl_->index.clear();
  impl_->counters.bytes = 0;
}

CampaignResult run_campaign(const MarchAlgorithm& alg,
                            const MemoryGeometry& geometry,
                            std::span<const memsim::Fault> universe,
                            const CampaignConfig& config, StreamCache* cache) {
  std::shared_ptr<const OpStream> stream =
      cache != nullptr
          ? cache->get(alg, geometry)
          : std::make_shared<const OpStream>(expand(alg, geometry));
  return CampaignRunner{config}.run(*stream, geometry, universe);
}

}  // namespace pmbist::march
