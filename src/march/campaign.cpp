#include "march/campaign.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>

#include <bit>

#include "common/thread_pool.h"
#include "memsim/packed_memory.h"

namespace pmbist::march {
namespace {

// Replays the stream against one injected memory, stopping at the first
// mismatch: detection and first_failure_op are exactly what the serial
// run_stream(..., max_failures=1) path observes, and the memory is
// discarded afterwards, so nothing downstream sees the truncated state.
DetectionRecord replay(std::span<const MemOp> stream, memsim::Memory& memory,
                       std::uint32_t fault_index) {
  DetectionRecord record;
  record.fault_index = fault_index;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const MemOp& op = stream[i];
    switch (op.kind) {
      case MemOp::Kind::Pause:
        memory.advance_time_ns(op.pause_ns);
        break;
      case MemOp::Kind::Write:
        memory.write(op.port, op.addr, op.data);
        break;
      case MemOp::Kind::Read:
        if (memory.read(op.port, op.addr) != op.data) {
          record.detected = true;
          record.first_failure_op = i;
          return record;
        }
        break;
    }
  }
  return record;
}

// Replays the stream against one lane-packed memory holding `lanes` live
// fault instances (base..base+lanes-1), filling the records of all of
// them in one pass.  A lane that has detected stops being compared (its
// remaining mismatches are masked off), which matches the scalar replay's
// early return: lanes are independent, so dropping a detected lane's
// later results cannot affect any other lane.  The whole pack early-exits
// once every lane has detected.
void replay_pack(std::span<const MemOp> stream,
                 memsim::PackedFaultyMemory& memory, std::uint32_t base,
                 int lanes, std::span<DetectionRecord> records) {
  for (int l = 0; l < lanes; ++l) {
    records[static_cast<std::size_t>(l)] = DetectionRecord{};
    records[static_cast<std::size_t>(l)].fault_index =
        base + static_cast<std::uint32_t>(l);
  }
  std::uint64_t undetected =
      lanes >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const MemOp& op = stream[i];
    switch (op.kind) {
      case MemOp::Kind::Pause:
        memory.advance_time_ns(op.pause_ns);
        break;
      case MemOp::Kind::Write:
        memory.write(op.port, op.addr, op.data);
        break;
      case MemOp::Kind::Read: {
        std::uint64_t hits =
            memory.read(op.port, op.addr, op.data) & undetected;
        undetected &= ~hits;
        while (hits != 0) {
          const int l = std::countr_zero(hits);
          hits &= hits - 1;
          auto& record = records[static_cast<std::size_t>(l)];
          record.detected = true;
          record.first_failure_op = i;
        }
        break;
      }
    }
    if (undetected == 0) break;
  }
}

std::atomic<int> g_default_jobs{0};

// Shared scalar universe driver: one thread-local memory per worker, reset
// between instances; each instance writes only its own record slot, so
// the merged result is ordered by fault index and invariant under jobs.
template <typename InjectFn>
CampaignResult run_scalar(const CampaignConfig& config,
                          std::span<const MemOp> stream,
                          const MemoryGeometry& geometry, int count,
                          const InjectFn& inject) {
  CampaignResult result;
  result.records.resize(static_cast<std::size_t>(count));

  int jobs = config.jobs != 0 ? config.jobs : default_campaign_jobs();
  jobs = std::min(common::resolve_jobs(jobs), count);

  std::atomic<int> next{0};
  common::parallel_shards(jobs, jobs, [&](int) {
    memsim::FaultyMemory memory{geometry, config.powerup_seed};
    bool fresh = true;
    for (int i; (i = next.fetch_add(1)) < count;) {
      if (!fresh) memory.reset(config.powerup_seed);
      fresh = false;
      inject(i, memory);
      result.records[static_cast<std::size_t>(i)] =
          replay(stream, memory, static_cast<std::uint32_t>(i));
    }
  });
  return result;
}

// Packed universe driver: the shard unit is a lane-pack of up to 64 fault
// instances, so each task replays the stream once for 64 simulations.
// Record slots are still disjoint and indexed by fault index, so the
// result is invariant under jobs AND identical to the scalar driver.
template <typename InjectFn>
CampaignResult run_packed(const CampaignConfig& config,
                          std::span<const MemOp> stream,
                          const MemoryGeometry& geometry, int count,
                          const InjectFn& inject) {
  CampaignResult result;
  result.records.resize(static_cast<std::size_t>(count));

  constexpr int kLanes = memsim::PackedFaultyMemory::kLanes;
  const int packs = (count + kLanes - 1) / kLanes;
  int jobs = config.jobs != 0 ? config.jobs : default_campaign_jobs();
  jobs = std::min(common::resolve_jobs(jobs), packs);

  std::atomic<int> next{0};
  common::parallel_shards(jobs, jobs, [&](int) {
    memsim::PackedFaultyMemory memory{geometry, config.powerup_seed};
    bool fresh = true;
    for (int p; (p = next.fetch_add(1)) < packs;) {
      if (!fresh) memory.reset(config.powerup_seed);
      fresh = false;
      const int base = p * kLanes;
      const int lanes = std::min(kLanes, count - base);
      for (int l = 0; l < lanes; ++l) inject(base + l, l, memory);
      replay_pack(stream, memory, static_cast<std::uint32_t>(base), lanes,
                  std::span<DetectionRecord>{result.records}.subspan(
                      static_cast<std::size_t>(base),
                      static_cast<std::size_t>(lanes)));
    }
  });
  return result;
}

// Kernel dispatch shared by run() / run_groups(): `inject_one` injects
// fault group i into a scalar memory, `inject_lane` injects it into lane
// l of a packed memory.
template <typename InjectOneFn, typename InjectLaneFn>
CampaignResult run_universe(const CampaignConfig& config,
                            std::span<const MemOp> stream,
                            const MemoryGeometry& geometry, int count,
                            const InjectOneFn& inject_one,
                            const InjectLaneFn& inject_lane) {
  if (count == 0) {
    return CampaignResult{};
  }
  if (resolve_kernel(config.kernel) == CampaignKernel::Scalar)
    return run_scalar(config, stream, geometry, count, inject_one);
  return run_packed(config, stream, geometry, count, inject_lane);
}

}  // namespace

int CampaignResult::detected() const noexcept {
  int n = 0;
  for (const auto& r : records) n += r.detected ? 1 : 0;
  return n;
}

void set_default_campaign_jobs(int jobs) { g_default_jobs.store(jobs); }
int default_campaign_jobs() { return g_default_jobs.load(); }

CampaignResult CampaignRunner::run(std::span<const MemOp> stream,
                                   const MemoryGeometry& geometry,
                                   std::span<const memsim::Fault> universe)
    const {
  return run_universe(
      config_, stream, geometry, static_cast<int>(universe.size()),
      [&](int i, memsim::FaultyMemory& memory) {
        memory.add_fault(universe[static_cast<std::size_t>(i)]);
      },
      [&](int i, int lane, memsim::PackedFaultyMemory& memory) {
        memory.add_fault(lane, universe[static_cast<std::size_t>(i)]);
      });
}

CampaignResult CampaignRunner::run_groups(
    std::span<const MemOp> stream, const MemoryGeometry& geometry,
    std::span<const FaultGroup> universe) const {
  return run_universe(
      config_, stream, geometry, static_cast<int>(universe.size()),
      [&](int i, memsim::FaultyMemory& memory) {
        for (const auto& fault : universe[static_cast<std::size_t>(i)])
          memory.add_fault(fault);
      },
      [&](int i, int lane, memsim::PackedFaultyMemory& memory) {
        for (const auto& fault : universe[static_cast<std::size_t>(i)])
          memory.add_fault(lane, fault);
      });
}

struct StreamCache::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::shared_ptr<const OpStream>> entries;
  Stats counters;
};

StreamCache::StreamCache() : impl_{std::make_unique<Impl>()} {}
StreamCache::~StreamCache() = default;

std::shared_ptr<const OpStream> StreamCache::get(
    const MarchAlgorithm& alg, const MemoryGeometry& geometry) {
  // Canonical text is the identity of an algorithm (name is presentation);
  // two differently named but textually equal algorithms share an entry.
  std::string key = std::to_string(geometry.address_bits) + "x" +
                    std::to_string(geometry.word_bits) + "x" +
                    std::to_string(geometry.num_ports) + "|" +
                    alg.to_string();
  {
    std::lock_guard lock{impl_->mu};
    if (auto it = impl_->entries.find(key); it != impl_->entries.end()) {
      ++impl_->counters.hits;
      return it->second;
    }
  }
  // Expand outside the lock (expansion is the expensive part); a racing
  // duplicate expansion is harmless and the first insert wins.
  auto stream = std::make_shared<const OpStream>(expand(alg, geometry));
  std::lock_guard lock{impl_->mu};
  if (auto it = impl_->entries.find(key); it != impl_->entries.end()) {
    ++impl_->counters.hits;
    return it->second;
  }
  ++impl_->counters.misses;
  if (impl_->entries.size() >= 256) impl_->entries.clear();  // runaway guard
  impl_->entries.emplace(std::move(key), stream);
  return stream;
}

StreamCache::Stats StreamCache::stats() const {
  std::lock_guard lock{impl_->mu};
  return impl_->counters;
}

void StreamCache::clear() {
  std::lock_guard lock{impl_->mu};
  impl_->entries.clear();
}

StreamCache& stream_cache() {
  static StreamCache cache;
  return cache;
}

CampaignResult run_campaign(const MarchAlgorithm& alg,
                            const MemoryGeometry& geometry,
                            std::span<const memsim::Fault> universe,
                            const CampaignConfig& config) {
  const auto stream = stream_cache().get(alg, geometry);
  return CampaignRunner{config}.run(*stream, geometry, universe);
}

}  // namespace pmbist::march
