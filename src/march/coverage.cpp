#include "march/coverage.h"

#include <cassert>
#include <iomanip>
#include <sstream>

#include "backend/sim_backend.h"
#include "march/campaign.h"
#include "march/library.h"

namespace pmbist::march {
namespace {

using memsim::Address;
using memsim::BitRef;
using memsim::Fault;
using memsim::FaultClass;

// Deterministic sampling source for fault universes.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_{seed * 2 + 1} {}
  std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>(next() % n);
  }
  bool flip() { return next() & 1; }

 private:
  std::uint64_t state_;
};

BitRef random_bit(Rng& rng, const MemoryGeometry& g) {
  return BitRef{rng.below(static_cast<std::uint32_t>(g.num_words())),
                static_cast<int>(rng.below(static_cast<std::uint32_t>(
                    g.word_bits)))};
}

// DRF hold time is half the default pause so retention variants see decay.
constexpr std::uint64_t kDrfHoldNs = kDefaultPauseNs / 2;

}  // namespace

RunResult run_stream(std::span<const MemOp> stream,
                     backend::MemoryBackend& memory,
                     std::size_t max_failures) {
  RunResult result;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const MemOp& op = stream[i];
    switch (op.kind) {
      case MemOp::Kind::Pause:
        memory.advance_time_ns(op.pause_ns);
        break;
      case MemOp::Kind::Write:
        memory.write(op.port, op.addr, op.data);
        ++result.writes;
        break;
      case MemOp::Kind::Read: {
        const Word actual = memory.read(op.port, op.addr);
        ++result.reads;
        if (actual != op.data && result.failures.size() < max_failures)
          result.failures.push_back(Failure{i, op, actual});
        break;
      }
    }
  }
  return result;
}

RunResult run_stream(std::span<const MemOp> stream, memsim::Memory& memory,
                     std::size_t max_failures) {
  backend::SimBackend sim{memory};
  return run_stream(stream, sim, max_failures);
}

std::vector<Fault> make_fault_universe(FaultClass cls,
                                       const MemoryGeometry& g,
                                       std::uint64_t seed,
                                       int max_instances) {
  assert(max_instances > 0);
  std::vector<Fault> out;
  Rng rng{seed ^ (static_cast<std::uint64_t>(cls) << 32)};
  const auto n = static_cast<std::uint32_t>(g.num_words());

  // Exhaustive per-cell enumeration when it fits, else deterministic
  // sampling.  `emit_per_cell` builds `variants` faults for a given bit.
  auto enumerate_cells = [&](int variants, auto&& make) {
    const std::uint64_t total =
        std::uint64_t{n} * static_cast<std::uint64_t>(g.word_bits) * variants;
    if (total <= static_cast<std::uint64_t>(max_instances)) {
      for (Address a = 0; a < n; ++a)
        for (int b = 0; b < g.word_bits; ++b)
          for (int v = 0; v < variants; ++v)
            out.push_back(make(BitRef{a, b}, v));
    } else {
      for (int i = 0; i < max_instances; ++i)
        out.push_back(
            make(random_bit(rng, g), static_cast<int>(rng.below(
                                         static_cast<std::uint32_t>(variants)))));
    }
  };

  auto distinct_pair = [&](BitRef& agg, BitRef& vic) {
    do {
      agg = random_bit(rng, g);
      vic = random_bit(rng, g);
    } while (agg == vic);
  };

  switch (cls) {
    case FaultClass::SAF:
      enumerate_cells(2, [](BitRef c, int v) {
        return Fault{memsim::StuckAtFault{c, v == 1}};
      });
      break;
    case FaultClass::TF:
      enumerate_cells(2, [](BitRef c, int v) {
        return Fault{memsim::TransitionFault{c, v == 1}};
      });
      break;
    case FaultClass::SOF:
      enumerate_cells(1, [](BitRef c, int) {
        return Fault{memsim::StuckOpenFault{c}};
      });
      break;
    case FaultClass::DRF:
      enumerate_cells(2, [](BitRef c, int v) {
        return Fault{memsim::DataRetentionFault{c, v == 1, kDrfHoldNs}};
      });
      break;
    case FaultClass::IRF:
      enumerate_cells(1, [](BitRef c, int) {
        return Fault{memsim::IncorrectReadFault{c}};
      });
      break;
    case FaultClass::WDF:
      enumerate_cells(1, [](BitRef c, int) {
        return Fault{memsim::WriteDisturbFault{c}};
      });
      break;
    case FaultClass::RDF:
      enumerate_cells(1, [](BitRef c, int) {
        return Fault{memsim::ReadDestructiveFault{c, false}};
      });
      break;
    case FaultClass::DRDF:
      enumerate_cells(1, [](BitRef c, int) {
        return Fault{memsim::ReadDestructiveFault{c, true}};
      });
      break;
    case FaultClass::CFin:
      for (int i = 0; i < max_instances; ++i) {
        BitRef agg, vic;
        distinct_pair(agg, vic);
        out.push_back(Fault{memsim::InversionCouplingFault{agg, vic,
                                                           rng.flip()}});
      }
      break;
    case FaultClass::CFid:
      for (int i = 0; i < max_instances; ++i) {
        BitRef agg, vic;
        distinct_pair(agg, vic);
        out.push_back(Fault{
            memsim::IdempotentCouplingFault{agg, vic, rng.flip(), rng.flip()}});
      }
      break;
    case FaultClass::CFst:
      for (int i = 0; i < max_instances; ++i) {
        BitRef agg, vic;
        distinct_pair(agg, vic);
        out.push_back(Fault{
            memsim::StateCouplingFault{agg, vic, rng.flip(), rng.flip()}});
      }
      break;
    case FaultClass::AF:
      for (int i = 0; i < max_instances; ++i) {
        const Address x = rng.below(n);
        Address y = rng.below(n);
        while (y == x) y = rng.below(n);
        switch (i % 4) {
          case 0:  // no cell accessed
            out.push_back(Fault{memsim::AddressDecoderFault{x, {}}});
            break;
          case 1:  // wrong cell accessed
            out.push_back(Fault{memsim::AddressDecoderFault{x, {y}}});
            break;
          case 2:  // two cells accessed
            out.push_back(Fault{memsim::AddressDecoderFault{x, {x, y}}});
            break;
          default:  // two addresses hit one cell (y's own cell orphaned)
            out.push_back(Fault{memsim::AddressDecoderFault{y, {x}}});
            break;
        }
      }
      break;
    case FaultClass::NPSF:
    case FaultClass::PF:
    case FaultClass::LF:
      // Topology-/port-specific and composite populations have dedicated
      // generators (memsim::npsf_faults, explicit PortReadFault
      // construction, make_linked_cfid_universe).
      break;
  }
  return out;
}

std::vector<std::pair<Fault, Fault>> make_linked_cfid_universe(
    const MemoryGeometry& g, std::uint64_t seed, int count) {
  std::vector<std::pair<Fault, Fault>> out;
  out.reserve(static_cast<std::size_t>(count));
  Rng rng{seed ^ 0x11CCDDull};
  const auto n = static_cast<std::uint32_t>(g.num_words());
  while (static_cast<int>(out.size()) < count) {
    const BitRef victim = random_bit(rng, g);
    BitRef agg1 = random_bit(rng, g);
    BitRef agg2 = random_bit(rng, g);
    if (agg1 == victim || agg2 == victim || agg1 == agg2) continue;
    (void)n;
    out.emplace_back(
        memsim::IdempotentCouplingFault{agg1, victim, rng.flip(), true},
        memsim::IdempotentCouplingFault{agg2, victim, rng.flip(), false});
  }
  return out;
}

std::vector<Fault> make_intra_word_cf_universe(const MemoryGeometry& g,
                                               std::uint64_t seed,
                                               int count) {
  assert(g.word_bits >= 2);
  std::vector<Fault> out;
  out.reserve(static_cast<std::size_t>(count));
  Rng rng{seed ^ 0xAB1DEull};
  while (static_cast<int>(out.size()) < count) {
    const Address addr = rng.below(static_cast<std::uint32_t>(g.num_words()));
    const int a = static_cast<int>(
        rng.below(static_cast<std::uint32_t>(g.word_bits)));
    int v = static_cast<int>(
        rng.below(static_cast<std::uint32_t>(g.word_bits)));
    while (v == a)
      v = static_cast<int>(
          rng.below(static_cast<std::uint32_t>(g.word_bits)));
    switch (rng.below(3)) {
      case 0:
        out.push_back(memsim::InversionCouplingFault{
            {addr, a}, {addr, v}, rng.flip()});
        break;
      case 1:
        out.push_back(memsim::IdempotentCouplingFault{
            {addr, a}, {addr, v}, rng.flip(), rng.flip()});
        break;
      default:
        out.push_back(memsim::StateCouplingFault{
            {addr, a}, {addr, v}, rng.flip(), rng.flip()});
        break;
    }
  }
  return out;
}

CoverageCell evaluate_with_backgrounds(const MarchAlgorithm& alg,
                                       const MemoryGeometry& geometry,
                                       std::span<const memsim::Fault> faults,
                                       int num_backgrounds,
                                       std::uint64_t powerup_seed, int jobs) {
  const auto all_bgs = standard_backgrounds(geometry.word_bits);
  assert(num_backgrounds >= 1 &&
         num_backgrounds <= static_cast<int>(all_bgs.size()));
  // Truncated-background expansions are not the canonical stream, so they
  // bypass the shared cache and feed the runner directly.
  OpStream stream;
  for (int port = 0; port < geometry.num_ports; ++port) {
    for (int b = 0; b < num_backgrounds; ++b) {
      const OpStream pass =
          expand_single_pass(alg, geometry, port,
                             all_bgs[static_cast<std::size_t>(b)]);
      stream.insert(stream.end(), pass.begin(), pass.end());
    }
  }
  const CampaignRunner runner{{.jobs = jobs, .powerup_seed = powerup_seed}};
  const auto result = runner.run(stream, geometry, faults);
  return CoverageCell{result.detected(), result.total()};
}

CoverageCell evaluate_linked_coverage(const MarchAlgorithm& alg,
                                      const MemoryGeometry& geometry,
                                      const CoverageOptions& opts) {
  const std::shared_ptr<const OpStream> stream =
      opts.cache != nullptr
          ? opts.cache->get(alg, geometry)
          : std::make_shared<const OpStream>(expand(alg, geometry));
  const auto universe = make_linked_cfid_universe(
      geometry, opts.seed, opts.max_instances_per_class);
  std::vector<FaultGroup> groups;
  groups.reserve(universe.size());
  for (const auto& [first, second] : universe)
    groups.push_back(FaultGroup{first, second});
  const CampaignRunner runner{{.jobs = opts.jobs,
                               .powerup_seed = opts.seed,
                               .kernel = opts.kernel,
                               .cancel = opts.cancel}};
  const auto result = runner.run_groups(*stream, geometry, groups);
  return CoverageCell{result.detected(), result.total()};
}

CoverageCell evaluate_coverage(const MarchAlgorithm& alg, FaultClass cls,
                               const MemoryGeometry& geometry,
                               const CoverageOptions& opts) {
  const auto universe = make_fault_universe(cls, geometry, opts.seed,
                                            opts.max_instances_per_class);
  const auto result = run_campaign(alg, geometry, universe,
                                   {.jobs = opts.jobs,
                                    .powerup_seed = opts.seed,
                                    .kernel = opts.kernel,
                                    .cancel = opts.cancel},
                                   opts.cache);
  return CoverageCell{result.detected(), result.total()};
}

std::vector<CoverageRow> coverage_matrix(
    std::span<const MarchAlgorithm> algorithms,
    std::span<const FaultClass> classes, const MemoryGeometry& geometry,
    const CoverageOptions& opts) {
  // Every class of one row replays the same expansion, so a matrix without
  // a caller-supplied cache still wants one for its own lifetime.
  StreamCache local_cache;
  CoverageOptions effective = opts;
  if (effective.cache == nullptr) effective.cache = &local_cache;

  std::vector<CoverageRow> rows;
  rows.reserve(algorithms.size());
  for (const auto& alg : algorithms) {
    CoverageRow row;
    row.algorithm = alg.name();
    for (FaultClass cls : classes)
      row.cells[cls] = evaluate_coverage(alg, cls, geometry, effective);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string format_coverage_table(std::span<const CoverageRow> rows,
                                  std::span<const FaultClass> classes) {
  std::ostringstream os;
  os << std::left << std::setw(14) << "algorithm";
  for (FaultClass c : classes)
    os << std::right << std::setw(7) << memsim::fault_class_name(c);
  os << "\n";
  os << std::fixed << std::setprecision(0);
  for (const auto& row : rows) {
    os << std::left << std::setw(14) << row.algorithm;
    for (FaultClass c : classes) {
      const auto it = row.cells.find(c);
      if (it == row.cells.end()) {
        os << std::right << std::setw(7) << "-";
      } else {
        os << std::right << std::setw(6) << it->second.ratio() * 100.0 << "%";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace pmbist::march
