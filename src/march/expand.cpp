#include "march/expand.h"

#include <cassert>

namespace pmbist::march {

std::vector<Word> standard_backgrounds(int word_bits) {
  assert(word_bits >= 1 && word_bits <= 64);
  std::vector<Word> bgs{0};
  // Background k (k >= 1): bit j set iff (j >> (k-1)) & 1 — alternating
  // blocks of width 2^(k-1): 0101.., 0011.., 00001111.., ...
  for (int k = 1; (1 << (k - 1)) < word_bits; ++k) {
    Word bg = 0;
    for (int j = 0; j < word_bits; ++j)
      if ((j >> (k - 1)) & 1) bg |= Word{1} << j;
    bgs.push_back(bg);
  }
  return bgs;
}

Word apply_background(bool d, Word bg, Word mask) {
  return (d ? ~bg : bg) & mask;
}

namespace {

void expand_pass_into(const MarchAlgorithm& alg,
                      const MemoryGeometry& geometry, int port, Word bg,
                      OpStream& out) {
  const Word mask = geometry.word_mask();
  const auto n = static_cast<std::uint32_t>(geometry.num_words());
  for (const auto& element : alg.elements()) {
    if (element.is_pause) {
      out.push_back(MemOp::pause(element.pause_ns));
      continue;
    }
    const bool descending = element.order == AddressOrder::Down;
    for (std::uint32_t i = 0; i < n; ++i) {
      const Address addr = descending ? (n - 1 - i) : i;
      for (const auto& op : element.ops) {
        const Word value = apply_background(op.data, bg, mask);
        out.push_back(op.is_read() ? MemOp::read(port, addr, value)
                                   : MemOp::write(port, addr, value));
      }
    }
  }
}

}  // namespace

OpStream expand_single_pass(const MarchAlgorithm& alg,
                            const MemoryGeometry& geometry, int port,
                            Word background) {
  OpStream out;
  expand_pass_into(alg, geometry, port, background, out);
  return out;
}

OpStream expand(const MarchAlgorithm& alg, const MemoryGeometry& geometry) {
  assert(alg.validate().empty());
  const auto backgrounds = standard_backgrounds(geometry.word_bits);
  OpStream out;
  out.reserve(expanded_op_count(alg, geometry));
  for (int port = 0; port < geometry.num_ports; ++port)
    for (Word bg : backgrounds) expand_pass_into(alg, geometry, port, bg, out);
  return out;
}

std::uint64_t expanded_op_count(const MarchAlgorithm& alg,
                                const MemoryGeometry& geometry) {
  const auto backgrounds = standard_backgrounds(geometry.word_bits);
  return static_cast<std::uint64_t>(alg.ops_per_cell()) *
         geometry.num_words() * backgrounds.size() *
         static_cast<std::uint64_t>(geometry.num_ports);
}

}  // namespace pmbist::march
