#pragma once
// Pluggable memory-under-test backends.
//
// Every engine in this repo drives a memory through the same five verbs a
// BIST datapath needs — open, read, write, fence, close — plus a
// time-advance hook for data-retention phases.  MemoryBackend abstracts
// that surface so the march semantics (march/expand.h) stay decoupled from
// what actually stores the bits:
//
//   SimBackend      (sim_backend.h)      the behavioral fault simulator —
//                                        bit-identical to the pre-backend
//                                        direct-simulator path;
//   HostRamBackend  (hostram_backend.h)  a large mmap'd anonymous buffer in
//                                        host RAM — the software-memtest
//                                        substrate (backend/memtest.h).
//
// bist::run_session and march::run_stream execute through this interface;
// their memsim::Memory& overloads wrap the memory in a borrowing
// SimBackend, so every historical call site is byte-identical by
// construction.  The inverse adapter (BackendMemory below) lets machinery
// written against memsim::Memory — repair views, transparent streams —
// run over any backend.  docs/BACKEND.md documents the contract.

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string_view>

#include "memsim/memory.h"

namespace pmbist::backend {

using memsim::Address;
using memsim::MemoryGeometry;
using memsim::Word;

/// Raised for backend construction/usage errors (bad geometry, size
/// bounds, fault injection on a non-behavioral backend).
class BackendError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which backend implementation a CLI/serve request selects.
enum class BackendKind : std::uint8_t {
  Sim,      ///< behavioral simulator (fault injection, retention modeling)
  HostRam,  ///< mmap'd anonymous host-RAM buffer (real memory, real speed)
};

[[nodiscard]] std::string_view to_string(BackendKind kind);
/// Parses "sim" / "hostram"; nullopt otherwise.
[[nodiscard]] std::optional<BackendKind> parse_backend(std::string_view name);

/// Static capability descriptor: what a backend can and cannot model.
struct Capabilities {
  bool behavioral = false;       ///< fault injection / retention modeling
  bool direct_map = false;       ///< mapped_words() exposes the storage
  bool huge_pages = false;       ///< backing actually uses huge pages
  std::size_t page_bytes = 0;    ///< backing page size (0 = not paged)

  friend bool operator==(const Capabilities&, const Capabilities&) = default;
};

/// Abstract memory-under-test backend.  Same access contract as
/// memsim::Memory (ports exercised sequentially, words masked to the
/// geometry's width) plus explicit open/close lifecycle and an ordering
/// fence.  Implementations open themselves on construction; close() is
/// idempotent and runs again from the destructor.
class MemoryBackend {
 public:
  explicit MemoryBackend(MemoryGeometry geometry) : geometry_{geometry} {}
  virtual ~MemoryBackend() = default;

  MemoryBackend(const MemoryBackend&) = delete;
  MemoryBackend& operator=(const MemoryBackend&) = delete;

  [[nodiscard]] const MemoryGeometry& geometry() const noexcept {
    return geometry_;
  }

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual Capabilities capabilities() const = 0;

  /// (Re)acquires the backing storage.  Idempotent.
  virtual void open() {}
  /// Releases the backing storage.  Idempotent; read/write after close()
  /// is undefined.
  virtual void close() {}
  [[nodiscard]] virtual bool is_open() const { return true; }

  [[nodiscard]] virtual Word read(int port, Address addr) = 0;
  virtual void write(int port, Address addr, Word data) = 0;

  /// Orders all prior accesses before all later ones (a no-op for the
  /// single-threaded simulator; a hardware fence for real memory).
  virtual void fence() {}

  /// Advances simulated wall-clock time (pause / data-retention phases).
  virtual void advance_time_ns(std::uint64_t ns) { (void)ns; }

  /// Direct word-array view of the storage when the backend is plainly
  /// mapped (Capabilities::direct_map) — the word-width batched fast path
  /// of the memtest engine.  Empty for behavioral backends, which must see
  /// every access to model faults.
  [[nodiscard]] virtual std::span<Word> mapped_words() { return {}; }

 private:
  MemoryGeometry geometry_;
};

/// Inverse adapter: presents a MemoryBackend as a memsim::Memory, so
/// machinery written against the simulator interface (repair::
/// RepairedMemory, diag transparent streams, the field manager's views)
/// runs over any backend.  Borrows; `backend` must outlive the adapter.
class BackendMemory final : public memsim::Memory {
 public:
  explicit BackendMemory(MemoryBackend& backend)
      : Memory{backend.geometry()}, backend_{&backend} {}

  [[nodiscard]] Word read(int port, Address addr) override {
    return backend_->read(port, addr);
  }
  void write(int port, Address addr, Word data) override {
    backend_->write(port, addr, data);
  }
  void advance_time_ns(std::uint64_t ns) override {
    backend_->advance_time_ns(ns);
  }

 private:
  MemoryBackend* backend_;
};

}  // namespace pmbist::backend
