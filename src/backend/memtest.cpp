#include "backend/memtest.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>

#include "backend/hostram_backend.h"
#include "backend/sim_backend.h"
#include "bist/misr.h"
#include "common/thread_pool.h"
#include "march/expand.h"

namespace pmbist::backend {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::unique_ptr<MemoryBackend> make_backend(BackendKind kind,
                                            const MemoryGeometry& geometry,
                                            bool huge_pages) {
  switch (kind) {
    case BackendKind::Sim:
      // Zero fill matches the kernel's zero-filled anonymous mapping, so
      // the two backends see identical pre-test contents (and the first
      // march element is required to be a write anyway).
      return std::make_unique<SimBackend>(geometry, Word{0});
    case BackendKind::HostRam:
      return std::make_unique<HostRamBackend>(
          geometry, HostRamOptions{.request_huge_pages = huge_pages});
  }
  throw BackendError{"unknown backend kind"};
}

/// Per-shard march state, persistent across elements/backgrounds/passes so
/// op indices and the MISR fold the shard's whole access history.
struct ShardState {
  bist::Misr misr;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t op_index = 0;  ///< index into the shard's own op stream
  std::vector<march::Failure> failures;

  explicit ShardState(int misr_width) : misr{misr_width, 0} {}
};

}  // namespace

MemoryGeometry memtest_geometry(std::uint64_t size_bytes) {
  const std::uint64_t words = size_bytes / sizeof(Word);
  int bits = 6;  // >= 64 words (512 B) so every size yields a usable run
  while (bits < 31 && (std::uint64_t{2} << bits) <= words) ++bits;
  return MemoryGeometry{.address_bits = bits, .word_bits = 64, .num_ports = 1};
}

int memtest_shards(const MemoryGeometry& geometry) {
  const std::size_t words = geometry.num_words();
  int shards = 1;
  while (shards < 64 &&
         words / (static_cast<std::size_t>(shards) * 2) >= 4096) {
    shards *= 2;
  }
  return shards;
}

std::optional<std::uint64_t> parse_size_bytes(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  std::size_t i = 0;
  for (; i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]));
       ++i) {
    const std::uint64_t digit = static_cast<std::uint64_t>(text[i] - '0');
    if (value > (~std::uint64_t{0} - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  if (i == 0) return std::nullopt;
  std::uint64_t scale = 1;
  if (i < text.size()) {
    switch (text[i]) {
      case 'K': case 'k': scale = 1ull << 10; ++i; break;
      case 'M': case 'm': scale = 1ull << 20; ++i; break;
      case 'G': case 'g': scale = 1ull << 30; ++i; break;
      default: return std::nullopt;
    }
    // Accept "64M", "64MB", "64MiB".
    if (i < text.size() && (text[i] == 'i' || text[i] == 'I')) ++i;
    if (i < text.size() && (text[i] == 'b' || text[i] == 'B')) ++i;
  }
  if (i != text.size()) return std::nullopt;
  if (scale != 1 && value > ~std::uint64_t{0} / scale) return std::nullopt;
  return value * scale;
}

MemtestReport run_memtest(const march::MarchAlgorithm& alg,
                          const MemtestOptions& options) {
  if (const std::string err = alg.validate(); !err.empty()) {
    throw BackendError{"invalid algorithm: " + err};
  }
  if (options.passes < 1) throw BackendError{"passes must be >= 1"};
  if (options.misr_width < 1 || options.misr_width > 64) {
    throw BackendError{"misr width must be in [1, 64]"};
  }

  const MemoryGeometry geometry = memtest_geometry(options.size_bytes);
  const auto backend =
      make_backend(options.backend, geometry, options.huge_pages);

  std::vector<Word> backgrounds = march::standard_backgrounds(64);
  if (options.backgrounds > 0 &&
      static_cast<std::size_t>(options.backgrounds) < backgrounds.size()) {
    backgrounds.resize(static_cast<std::size_t>(options.backgrounds));
  }

  const int shards = memtest_shards(geometry);
  const std::size_t words_per_shard =
      geometry.num_words() / static_cast<std::size_t>(shards);
  const Word mask = geometry.word_mask();

  std::vector<ShardState> states;
  states.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) states.emplace_back(options.misr_width);

  MemtestReport report;
  report.algorithm = alg.name();
  report.backend_name = std::string{backend->name()};
  report.geometry = geometry;
  report.buffer_bytes = geometry.num_words() * sizeof(Word);
  report.shards = shards;
  report.passes = options.passes;
  report.backgrounds = static_cast<int>(backgrounds.size());
  report.huge_pages = backend->capabilities().huge_pages;
  report.misr_width = options.misr_width;
  for (const march::MarchElement& el : alg.elements()) {
    MemtestPhase phase;
    phase.element = el.to_string();
    phase.is_pause = el.is_pause;
    report.phases.push_back(std::move(phase));
  }

  // Word-width batched fast path when the backend maps its storage
  // directly; the behavioral path goes through the virtual interface so
  // the simulator observes every access.  Both walk the same addresses in
  // the same order and absorb the same values, so signatures agree.
  const std::span<Word> direct = backend->mapped_words();

  const auto run_element_on_shard = [&](int shard,
                                        const march::MarchElement& el,
                                        Word bg) {
    ShardState& st = states[static_cast<std::size_t>(shard)];
    const std::size_t base =
        static_cast<std::size_t>(shard) * words_per_shard;
    const bool descending = el.order == march::AddressOrder::Down;
    for (std::size_t i = 0; i < words_per_shard; ++i) {
      const auto addr = static_cast<Address>(
          base + (descending ? words_per_shard - 1 - i : i));
      for (const march::MarchOp& op : el.ops) {
        const Word value = march::apply_background(op.data, bg, mask);
        if (op.kind == march::MarchOp::Kind::Write) {
          if (!direct.empty()) {
            direct[addr] = value;
          } else {
            backend->write(0, addr, value);
          }
          ++st.writes;
        } else {
          const Word actual =
              !direct.empty() ? direct[addr] : backend->read(0, addr);
          st.misr.absorb(actual);
          ++st.reads;
          if (actual != value) {
            ++st.mismatches;
            if (st.failures.size() < options.max_failures) {
              st.failures.push_back(march::Failure{
                  st.op_index, march::MemOp::read(0, addr, value), actual});
            }
          }
        }
        ++st.op_index;
      }
    }
  };

  // Injection flips a bit immediately before the first element whose
  // leading op is a read, so no intervening write can mask it and that
  // element's read sweep must report the mismatch.
  std::size_t inject_before = alg.elements().size();
  if (options.inject_error) {
    for (std::size_t e = 0; e < alg.elements().size(); ++e) {
      const march::MarchElement& el = alg.elements()[e];
      if (!el.is_pause && !el.ops.empty() && el.ops.front().is_read()) {
        inject_before = e;
        break;
      }
    }
    if (inject_before == alg.elements().size()) {
      throw BackendError{
          "error injection requires an algorithm with a read-led march "
          "element"};
    }
  }

  const auto wall_start = Clock::now();
  const std::uint64_t progress_total =
      static_cast<std::uint64_t>(options.passes) * backgrounds.size();
  std::uint64_t progress_done = 0;
  bool pending_inject = options.inject_error;

  for (int pass = 0; pass < options.passes && report.completed; ++pass) {
    for (const Word bg : backgrounds) {
      for (std::size_t e = 0; e < alg.elements().size(); ++e) {
        if (options.cancel != nullptr &&
            options.cancel->load(std::memory_order_relaxed)) {
          report.completed = false;
          break;
        }
        const march::MarchElement& el = alg.elements()[e];
        MemtestPhase& phase = report.phases[e];
        if (el.is_pause) {
          backend->advance_time_ns(el.pause_ns);
          ++report.pauses;
          continue;
        }
        if (pending_inject && e == inject_before) {
          pending_inject = false;
          report.injected = true;
          const auto target = static_cast<Address>(words_per_shard / 2);
          const Word current = !direct.empty() ? direct[target]
                                               : backend->read(0, target);
          const Word flipped = (current ^ Word{1}) & mask;
          if (!direct.empty()) {
            direct[target] = flipped;
          } else {
            backend->write(0, target, flipped);
          }
        }
        const auto phase_start = Clock::now();
        common::parallel_shards(options.jobs, shards, [&](int shard) {
          run_element_on_shard(shard, el, bg);
        });
        backend->fence();
        phase.seconds += seconds_since(phase_start);
        std::uint64_t phase_reads = 0;
        std::uint64_t phase_writes = 0;
        for (const march::MarchOp& op : el.ops) {
          (op.is_read() ? phase_reads : phase_writes) += 1;
        }
        phase.reads += phase_reads * geometry.num_words();
        phase.writes += phase_writes * geometry.num_words();
      }
      if (!report.completed) break;
      ++progress_done;
      if (options.progress) options.progress(progress_done, progress_total);
    }
    if (!report.completed) break;
  }

  bist::Misr total{options.misr_width, 0};
  for (ShardState& st : states) {
    total.absorb(st.misr.signature());
    report.reads += st.reads;
    report.writes += st.writes;
    report.mismatches += st.mismatches;
    for (march::Failure& f : st.failures) {
      if (report.failures.size() < options.max_failures) {
        report.failures.push_back(std::move(f));
      }
    }
  }
  report.signature = total.signature();
  report.wall_seconds = seconds_since(wall_start);
  return report;
}

std::string format_memtest_report(const MemtestReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "memtest \"%s\" on %s\n",
                report.algorithm.c_str(), report.backend_name.c_str());
  out += line;
  std::snprintf(line, sizeof line,
                "buffer: %" PRIu64 " bytes (%zu words x %d bits), %d shards\n",
                report.buffer_bytes, report.geometry.num_words(),
                report.geometry.word_bits, report.shards);
  out += line;
  std::snprintf(line, sizeof line,
                "plan: passes %d, backgrounds %d, elements %zu%s\n",
                report.passes, report.backgrounds, report.phases.size(),
                report.injected ? ", injected error" : "");
  out += line;
  std::snprintf(line, sizeof line,
                "ops: reads %" PRIu64 " writes %" PRIu64 " pauses %" PRIu64
                " mismatches %" PRIu64 "\n",
                report.reads, report.writes, report.pauses,
                report.mismatches);
  out += line;
  std::snprintf(line, sizeof line, "signature: 0x%016llX (misr width %d)\n",
                static_cast<unsigned long long>(report.signature),
                report.misr_width);
  out += line;
  const std::size_t shown = std::min<std::size_t>(report.failures.size(), 8);
  for (std::size_t i = 0; i < shown; ++i) {
    const march::Failure& f = report.failures[i];
    std::snprintf(line, sizeof line,
                  "fail[%zu]: addr=0x%X expected=0x%llX actual=0x%llX\n", i,
                  f.op.addr, static_cast<unsigned long long>(f.op.data),
                  static_cast<unsigned long long>(f.actual));
    out += line;
  }
  if (report.failures.size() > shown) {
    std::snprintf(line, sizeof line, "... %zu more failures\n",
                  report.failures.size() - shown);
    out += line;
  }
  out += report.completed ? (report.passed() ? "PASS\n" : "FAIL\n")
                          : "INTERRUPTED\n";
  return out;
}

std::string format_memtest_throughput(const MemtestReport& report) {
  std::string out;
  char line[256];
  constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
  double read_bytes_total = 0.0;
  double write_bytes_total = 0.0;
  double read_seconds = 0.0;
  double write_seconds = 0.0;
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    const MemtestPhase& p = report.phases[i];
    if (p.is_pause) {
      std::snprintf(line, sizeof line, "phase[%zu] %s: pause\n", i,
                    p.element.c_str());
      out += line;
      continue;
    }
    const double rb = static_cast<double>(p.reads) * sizeof(Word);
    const double wb = static_cast<double>(p.writes) * sizeof(Word);
    const double gbps =
        p.seconds > 0.0 ? (rb + wb) / kGiB / p.seconds : 0.0;
    std::snprintf(line, sizeof line,
                  "phase[%zu] %s: %.3f GiB touched, %.3f s, %.2f GB/s\n", i,
                  p.element.c_str(), (rb + wb) / kGiB, p.seconds, gbps);
    out += line;
    // Attribute a mixed phase's wall time to reads and writes in
    // proportion to bytes moved; pure phases attribute exactly.
    if (rb + wb > 0.0) {
      const double tr = p.seconds * rb / (rb + wb);
      read_seconds += tr;
      write_seconds += p.seconds - tr;
      read_bytes_total += rb;
      write_bytes_total += wb;
    }
  }
  const double sustained_read =
      read_seconds > 0.0 ? read_bytes_total / kGiB / read_seconds : 0.0;
  const double sustained_write =
      write_seconds > 0.0 ? write_bytes_total / kGiB / write_seconds : 0.0;
  std::snprintf(line, sizeof line,
                "sustained: read %.2f GB/s, write %.2f GB/s%s\n",
                sustained_read, sustained_write,
                report.huge_pages ? " (huge pages)" : "");
  out += line;
  std::snprintf(line, sizeof line, "wall %.3f s\n", report.wall_seconds);
  out += line;
  return out;
}

}  // namespace pmbist::backend
