#include "backend/sim_backend.h"

// SimBackend is header-only today; this translation unit anchors the
// target so the library always has an object to archive.
namespace pmbist::backend {}
