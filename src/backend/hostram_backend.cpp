#include "backend/hostram_backend.h"

#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <string>

namespace pmbist::backend {
namespace {

constexpr std::size_t kHugePageBytes = 2ull << 20;  // 2 MiB, the common size

std::size_t round_up(std::size_t bytes, std::size_t unit) {
  return (bytes + unit - 1) / unit * unit;
}

}  // namespace

HostRamBackend::HostRamBackend(MemoryGeometry geometry, HostRamOptions options)
    : MemoryBackend{geometry}, options_{options} {
  if (geometry.num_ports != 1) {
    throw BackendError{
        "hostram backend models a single port (got " +
        std::to_string(geometry.num_ports) +
        "); multi-port semantics need the sim backend"};
  }
  open();
}

HostRamBackend::~HostRamBackend() { close(); }

void HostRamBackend::open() {
  if (words_ != nullptr) return;
  const std::size_t bytes = geometry().num_words() * sizeof(Word);

  void* mapping = MAP_FAILED;
  huge_pages_ = false;
  page_bytes_ = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  std::size_t mapped = round_up(bytes, page_bytes_);

#ifdef MAP_HUGETLB
  if (options_.request_huge_pages) {
    const std::size_t huge = round_up(bytes, kHugePageBytes);
    mapping = mmap(nullptr, huge, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (mapping != MAP_FAILED) {
      huge_pages_ = true;
      page_bytes_ = kHugePageBytes;
      mapped = huge;
    }
  }
#endif
  if (mapping == MAP_FAILED) {
    mapping = mmap(nullptr, mapped, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mapping == MAP_FAILED) {
      throw BackendError{"hostram mmap of " + std::to_string(mapped) +
                         " bytes failed: " + std::strerror(errno)};
    }
#ifdef MADV_HUGEPAGE
    if (options_.request_huge_pages) {
      // Best effort: let transparent huge pages coalesce the region.
      (void)madvise(mapping, mapped, MADV_HUGEPAGE);
    }
#endif
  }
  words_ = static_cast<Word*>(mapping);
  mapped_bytes_ = mapped;
}

void HostRamBackend::close() {
  if (words_ == nullptr) return;
  (void)munmap(words_, mapped_bytes_);
  words_ = nullptr;
  mapped_bytes_ = 0;
}

Capabilities HostRamBackend::capabilities() const {
  return Capabilities{.behavioral = false,
                      .direct_map = true,
                      .huge_pages = huge_pages_,
                      .page_bytes = page_bytes_};
}

Word HostRamBackend::read(int port, Address addr) {
  assert(port == 0 && addr < geometry().num_words());
  (void)port;
  return words_[addr] & geometry().word_mask();
}

void HostRamBackend::write(int port, Address addr, Word data) {
  assert(port == 0 && addr < geometry().num_words());
  (void)port;
  words_[addr] = data & geometry().word_mask();
}

void HostRamBackend::fence() {
#if defined(__SANITIZE_THREAD__)
  // TSan does not model free-standing fences (gcc -Wtsan); a seq-cst RMW
  // on a private atomic has the same ordering strength and is visible to
  // the race detector.
  static std::atomic<int> sync{0};
  sync.fetch_add(1, std::memory_order_seq_cst);
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

std::span<Word> HostRamBackend::mapped_words() {
  if (words_ == nullptr) return {};
  return {words_, geometry().num_words()};
}

}  // namespace pmbist::backend
