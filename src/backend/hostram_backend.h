#pragma once
// HostRamBackend: march streams against real host memory.
//
// The backing store is a large mmap'd anonymous buffer — one 64-bit host
// word per memory cell, zero-filled by the kernel.  Reads mask to the
// geometry's word width; writes store the masked value, so the backend
// honors the same access contract as the simulator (and produces the same
// values the march expansion expects).
//
// Huge pages are a request, not a requirement: when
// HostRamOptions::request_huge_pages is set the backend first tries
// MAP_HUGETLB and, if the kernel refuses (no hugetlb pool configured),
// falls back to a normal mapping plus madvise(MADV_HUGEPAGE) so
// transparent huge pages can still coalesce it.  capabilities().huge_pages
// reports what actually happened.
//
// fence() is a sequentially-consistent std::atomic_thread_fence — the
// memtest engine issues one at every shard barrier so each march element's
// stores are globally visible before the next element's loads.

#include <cstddef>

#include "backend/backend.h"

namespace pmbist::backend {

struct HostRamOptions {
  /// Try MAP_HUGETLB first; fall back gracefully when unavailable.
  bool request_huge_pages = false;
};

class HostRamBackend final : public MemoryBackend {
 public:
  /// Maps geometry.num_words() host words.  Throws BackendError when the
  /// geometry needs more than one port (host RAM has no port semantics to
  /// model) or the mapping fails outright.
  explicit HostRamBackend(MemoryGeometry geometry, HostRamOptions options = {});
  ~HostRamBackend() override;

  [[nodiscard]] std::string_view name() const override { return "hostram"; }
  [[nodiscard]] Capabilities capabilities() const override;

  void open() override;
  void close() override;
  [[nodiscard]] bool is_open() const override { return words_ != nullptr; }

  [[nodiscard]] Word read(int port, Address addr) override;
  void write(int port, Address addr, Word data) override;
  void fence() override;
  void advance_time_ns(std::uint64_t ns) override { elapsed_ns_ += ns; }

  [[nodiscard]] std::span<Word> mapped_words() override;

  /// Simulated-time accumulator (pause phases advance it; nothing decays).
  [[nodiscard]] std::uint64_t elapsed_ns() const { return elapsed_ns_; }

 private:
  HostRamOptions options_;
  Word* words_ = nullptr;
  std::size_t mapped_bytes_ = 0;
  bool huge_pages_ = false;
  std::size_t page_bytes_ = 0;
  std::uint64_t elapsed_ns_ = 0;
};

}  // namespace pmbist::backend
