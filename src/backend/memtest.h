#pragma once
// Host-RAM memtest engine: march algorithms against real memory.
//
// The engine expands a march algorithm over a large buffer exposed by a
// MemoryBackend and reports per-phase sustained throughput plus a MISR
// signature of every read response.  Semantics mirror the BIST controllers
// with one deliberate deviation, chosen for parallel speed and
// jobs-invariance:
//
//   The buffer is partitioned into `shards` equal contiguous sub-memories
//   and each shard is marched as an independent memory.  Within a shard,
//   Up walks ascending, Down descending, Any ascends (matching the
//   controllers).  The shard count is a pure function of the buffer size —
//   never of --jobs — so signatures, failure logs and verdicts are
//   bit-identical for every worker count and both backends.
//
// March elements are barriers: all shards finish element k (with a
// backend fence) before any shard starts element k+1.  Per-element wall
// time across those barriers is what the GB/s report measures.
//
// docs/BACKEND.md documents the engine; ```memtest-check fences there are
// executed by test_docs.

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "march/coverage.h"
#include "march/march.h"

namespace pmbist::backend {

struct MemtestOptions {
  /// Requested buffer size; rounded down to a power-of-two word count
  /// (min 512 B, max 16 GiB).  The report shows the actual size.
  std::uint64_t size_bytes = 256ull << 20;
  int passes = 1;
  /// Number of data backgrounds to sweep (0 = all 7 standard 64-bit
  /// backgrounds; 1 = all-zeros only).
  int backgrounds = 0;
  /// Worker threads (0 = process default, 1 = serial).  Results are
  /// identical for every value.
  int jobs = 0;
  BackendKind backend = BackendKind::HostRam;
  /// Ask the hostram backend for huge pages (graceful fallback).
  bool huge_pages = false;
  int misr_width = 32;
  std::size_t max_failures = 64;
  /// Flip one bit after the first march element of the first pass; the
  /// run must then FAIL (self-test of the mismatch path).
  bool inject_error = false;
  /// Cooperative cancellation, polled between march elements.
  const std::atomic<bool>* cancel = nullptr;
  /// Progress callback: done/total (pass x background) units.
  std::function<void(std::uint64_t, std::uint64_t)> progress;
};

/// Per-march-element statistics, summed over all passes and backgrounds.
struct MemtestPhase {
  std::string element;  ///< canonical element text (march syntax)
  bool is_pause = false;
  std::uint64_t reads = 0;   ///< read ops executed in this phase
  std::uint64_t writes = 0;  ///< write ops executed in this phase
  double seconds = 0.0;      ///< wall time across the shard barriers
};

struct MemtestReport {
  std::string algorithm;
  std::string backend_name;
  MemoryGeometry geometry;
  std::uint64_t buffer_bytes = 0;  ///< actual marched bytes
  int shards = 0;
  int passes = 0;
  int backgrounds = 0;
  bool huge_pages = false;  ///< hostram backing actually used huge pages
  bool injected = false;    ///< an error was deliberately injected
  bool completed = true;    ///< false when cancelled mid-run

  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t pauses = 0;
  std::uint64_t mismatches = 0;
  std::vector<march::Failure> failures;  ///< capped at max_failures

  Word signature = 0;  ///< shard MISRs folded in shard order
  int misr_width = 0;

  std::vector<MemtestPhase> phases;  ///< one per march element
  double wall_seconds = 0.0;

  [[nodiscard]] bool passed() const noexcept {
    return completed && mismatches == 0;
  }
};

/// Geometry the engine derives for a requested byte size: 64-bit words,
/// one port, power-of-two word count.
[[nodiscard]] MemoryGeometry memtest_geometry(std::uint64_t size_bytes);

/// Shard count for a geometry: a power of two, >= 4096 words per shard,
/// capped at 64.  Pure function of the geometry (jobs-invariant).
[[nodiscard]] int memtest_shards(const MemoryGeometry& geometry);

/// Parses a human byte size: plain digits plus optional K/M/G suffix
/// (binary units; "64M" = 64 MiB, trailing "B"/"iB" accepted).
[[nodiscard]] std::optional<std::uint64_t> parse_size_bytes(
    std::string_view text);

/// Runs `alg` against a fresh backend per `options`.  Throws BackendError
/// for invalid algorithms/options; mmap failure also surfaces as
/// BackendError.
[[nodiscard]] MemtestReport run_memtest(const march::MarchAlgorithm& alg,
                                        const MemtestOptions& options);

/// Deterministic report (stdout, serve payloads): identical for every
/// --jobs value and, fault-free, for both backends.  No timing data.
[[nodiscard]] std::string format_memtest_report(const MemtestReport& report);

/// Timing view (stderr): per-phase and sustained read/write GB/s.
[[nodiscard]] std::string format_memtest_throughput(
    const MemtestReport& report);

}  // namespace pmbist::backend
