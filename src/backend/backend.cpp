#include "backend/backend.h"

namespace pmbist::backend {

std::string_view to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::Sim:
      return "sim";
    case BackendKind::HostRam:
      return "hostram";
  }
  return "?";
}

std::optional<BackendKind> parse_backend(std::string_view name) {
  if (name == "sim") return BackendKind::Sim;
  if (name == "hostram") return BackendKind::HostRam;
  return std::nullopt;
}

}  // namespace pmbist::backend
