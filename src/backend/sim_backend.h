#pragma once
// SimBackend: the behavioral simulator behind the MemoryBackend interface.
//
// Two modes:
//   - borrowing: wraps an existing memsim::Memory (FaultyMemory,
//     RepairedMemory, ...) without taking ownership.  This is how the
//     memsim::Memory& overloads of bist::run_session / march::run_stream
//     route through the interface — the wrapper forwards every virtual
//     call one-to-one, so the access sequence the simulator observes is
//     bit-identical to the pre-backend direct path.
//   - owning: allocates a zero-filled SramModel for the given geometry.
//     The memtest engine uses this so the sim and hostram paths start from
//     the same all-zero contents and produce identical signatures.

#include <memory>

#include "backend/backend.h"
#include "memsim/memory.h"

namespace pmbist::backend {

class SimBackend final : public MemoryBackend {
 public:
  /// Borrows `memory`; it must outlive the backend.
  explicit SimBackend(memsim::Memory& memory)
      : MemoryBackend{memory.geometry()}, memory_{&memory} {}

  /// Owns a fresh SramModel filled with `fill` (masked to the word width).
  SimBackend(MemoryGeometry geometry, Word fill)
      : MemoryBackend{geometry},
        owned_{std::make_unique<memsim::SramModel>(geometry, fill, true)},
        memory_{owned_.get()} {}

  [[nodiscard]] std::string_view name() const override { return "sim"; }

  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{.behavioral = true,
                        .direct_map = false,
                        .huge_pages = false,
                        .page_bytes = 0};
  }

  [[nodiscard]] Word read(int port, Address addr) override {
    return memory_->read(port, addr);
  }
  void write(int port, Address addr, Word data) override {
    memory_->write(port, addr, data);
  }
  void advance_time_ns(std::uint64_t ns) override {
    memory_->advance_time_ns(ns);
  }

  /// The wrapped simulator (for peek/poke in tests and fault setup).
  [[nodiscard]] memsim::Memory& memory() { return *memory_; }

 private:
  std::unique_ptr<memsim::SramModel> owned_;
  memsim::Memory* memory_;
};

}  // namespace pmbist::backend
