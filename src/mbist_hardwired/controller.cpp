#include "mbist_hardwired/controller.h"

namespace pmbist::mbist_hardwired {

HardwiredController::HardwiredController(const march::MarchAlgorithm& alg,
                                         const HardwiredConfig& config)
    : algorithm_name_{alg.name()},
      config_{config},
      fsm_{generate_fsm(alg,
                        HardwiredFeatures::for_geometry(config.geometry))},
      addr_{config.geometry.address_bits},
      data_{config.geometry.word_bits},
      port_{config.geometry.num_ports} {
  // Retention algorithms carry their pause duration in the elements.
  for (const auto& e : alg.elements())
    if (e.is_pause) config_.pause_ns = e.pause_ns;
  reset();
}

void HardwiredController::reset() {
  state_ = 0;  // Idle (reset state)
  pause_done_ = false;
  done_ = false;
  addr_.init(march::AddressOrder::Up);
  data_.reset();
  port_.reset();
}

std::optional<march::MemOp> HardwiredController::step() {
  if (done_) return std::nullopt;

  const std::uint32_t out = fsm_.outputs_of(state_);

  // Memory operation / pause issued in this state.
  std::optional<march::MemOp> op;
  if (out & kOutReadEn) {
    op = march::MemOp::read(port_.current(), addr_.current(),
                            data_.data_for(out & kOutDataVal));
  } else if (out & kOutWriteEn) {
    op = march::MemOp::write(port_.current(), addr_.current(),
                             data_.data_for(out & kOutDataVal));
  } else if ((out & kOutPauseStart) && !pause_done_) {
    op = march::MemOp::pause(config_.pause_ns);
    pause_done_ = true;  // timer modeled as expiring before the next cycle
  }

  // Sample the condition inputs.
  std::uint32_t in = kInStart;
  if (addr_.at_last()) in |= kInLastAddr;
  if (pause_done_) in |= kInPauseDone;
  if (data_.at_last()) in |= kInLastBg;
  if (port_.at_last()) in |= kInLastPort;

  const int next = fsm_.step(state_, in);

  // Datapath side effects at the clock edge.
  if (out & kOutAddrInit)
    addr_.init((out & kOutAddrDirDown) ? march::AddressOrder::Down
                                       : march::AddressOrder::Up);
  if ((out & kOutAddrAdvance) && !addr_.at_last()) addr_.step();
  if (out & kOutBgInc) data_.next();
  if (out & kOutBgReset) data_.reset();
  if (out & kOutPortInc) port_.next();
  if ((out & kOutPauseStart) && next != state_) pause_done_ = false;

  state_ = next;
  if (fsm_.outputs_of(state_) & kOutDone) done_ = true;
  return op;
}

}  // namespace pmbist::mbist_hardwired
