#pragma once
// Cycle-accurate behavioral model of a hardwired BIST controller: it
// interprets the generated Moore FSM (generator.h) against the shared
// datapath, one state per cycle.  Because the same FSM is what the area
// model synthesizes, simulated behaviour and reported overhead are
// guaranteed to describe the same machine.

#include "bist/controller.h"
#include "bist/datapath.h"
#include "march/library.h"
#include "mbist_hardwired/generator.h"

namespace pmbist::mbist_hardwired {

struct HardwiredConfig {
  memsim::MemoryGeometry geometry{};
  std::uint64_t pause_ns = march::kDefaultPauseNs;
};

class HardwiredController final : public bist::Controller {
 public:
  /// Builds the controller for one fixed algorithm (that is the point of a
  /// non-programmable controller).  Loop-back features derive from the
  /// geometry.
  HardwiredController(const march::MarchAlgorithm& alg,
                      const HardwiredConfig& config);

  [[nodiscard]] std::string name() const override {
    return "hardwired " + algorithm_name_;
  }
  void reset() override;
  [[nodiscard]] bool done() const override { return done_; }
  std::optional<march::MemOp> step() override;

  [[nodiscard]] const netlist::MooreFsm& fsm() const noexcept { return fsm_; }

 private:
  std::string algorithm_name_;
  HardwiredConfig config_;
  netlist::MooreFsm fsm_;

  bist::AddressGenerator addr_;
  bist::DataGenerator data_;
  bist::PortSequencer port_;

  int state_ = 0;
  bool pause_done_ = false;
  bool done_ = false;
};

}  // namespace pmbist::mbist_hardwired
