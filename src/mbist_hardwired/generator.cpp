#include "mbist_hardwired/generator.h"

#include <cassert>
#include <stdexcept>

namespace pmbist::mbist_hardwired {

using march::AddressOrder;
using march::MarchElement;
using netlist::Cube;
using netlist::MooreFsm;

netlist::MooreFsm generate_fsm(const march::MarchAlgorithm& alg,
                               const HardwiredFeatures& features) {
  if (const std::string err = alg.validate(); !err.empty())
    throw std::invalid_argument("cannot generate hardwired controller for '" +
                                alg.name() + "': " + err);

  MooreFsm fsm{"hardwired " + alg.name(),
               {"start", "last_addr", "pause_done", "last_bg", "last_port"},
               {"read_en", "write_en", "data_val", "addr_advance",
                "addr_init", "addr_dir_down", "bg_inc", "bg_reset",
                "port_inc", "pause_start", "done"}};

  const int idle = fsm.add_state("Idle", 0);

  // First pass: create all states, remembering each element's entry state.
  const auto& elements = alg.elements();
  std::vector<int> entry(elements.size(), -1);
  std::vector<std::vector<int>> op_states(elements.size());
  std::vector<int> pause_states(elements.size(), -1);

  for (std::size_t e = 0; e < elements.size(); ++e) {
    const MarchElement& el = elements[e];
    // Built with += (not "e" + to_string(e)): GCC 12 -O3 issues a bogus
    // -Wrestrict on operator+(const char*, string&&) (PR 105329).
    std::string tag = "e";
    tag += std::to_string(e);
    if (el.is_pause) {
      pause_states[e] = fsm.add_state(tag + ".pause", kOutPauseStart);
      entry[e] = pause_states[e];
      continue;
    }
    std::uint32_t setup_out = kOutAddrInit;
    if (el.order == AddressOrder::Down) setup_out |= kOutAddrDirDown;
    entry[e] = fsm.add_state(tag + ".setup", setup_out);
    for (std::size_t j = 0; j < el.ops.size(); ++j) {
      const auto& op = el.ops[j];
      std::uint32_t out = op.is_read() ? kOutReadEn : kOutWriteEn;
      if (op.data) out |= kOutDataVal;
      if (j == el.ops.size() - 1) out |= kOutAddrAdvance;
      op_states[e].push_back(
          fsm.add_state(tag + ".op" + std::to_string(j), out));
    }
  }

  const int bg_adv = features.data_backgrounds
                         ? fsm.add_state("bg_advance", kOutBgInc)
                         : -1;
  const int port_adv = features.multiport
                           ? fsm.add_state("port_advance",
                                           kOutPortInc | kOutBgReset)
                           : -1;
  const int done = fsm.add_state("Done", kOutDone);

  // Second pass: wire transitions.
  fsm.add_arc(idle, Cube{kInStart, kInStart}, entry.empty() ? done : entry[0]);

  // Exit of the whole pass: background loop, then port loop, then Done.
  auto wire_pass_exit = [&](int from, std::uint32_t base_value,
                            std::uint32_t base_mask) {
    if (bg_adv >= 0)
      fsm.add_arc(from, Cube{base_value, base_mask | kInLastBg}, bg_adv);
    if (port_adv >= 0)
      fsm.add_arc(from,
                  Cube{base_value | kInLastBg,
                       base_mask | kInLastBg | kInLastPort},
                  port_adv);
    fsm.add_arc(from, Cube{base_value | kInLastBg | kInLastPort,
                           base_mask | kInLastBg | kInLastPort},
                done);
  };

  for (std::size_t e = 0; e < elements.size(); ++e) {
    const MarchElement& el = elements[e];
    const bool is_last_element = e + 1 == elements.size();
    const int next_entry = is_last_element ? -1 : entry[e + 1];

    if (el.is_pause) {
      const int ps = pause_states[e];
      if (is_last_element) {
        // Exit chain guarded by pause completion.
        wire_pass_exit(ps, kInPauseDone, kInPauseDone);
      } else {
        fsm.add_arc(ps, Cube{kInPauseDone, kInPauseDone}, next_entry);
      }
      // default: stay (waiting for the timer)
      continue;
    }

    fsm.set_default_next(entry[e], op_states[e].front());
    for (std::size_t j = 0; j < el.ops.size(); ++j) {
      const int s = op_states[e][j];
      if (j + 1 < el.ops.size()) {
        fsm.set_default_next(s, op_states[e][j + 1]);
        continue;
      }
      // Last op of the element: loop per cell, then leave the element.
      if (is_last_element) {
        wire_pass_exit(s, kInLastAddr, kInLastAddr);
      } else {
        fsm.add_arc(s, Cube{kInLastAddr, kInLastAddr}, next_entry);
      }
      fsm.set_default_next(s, op_states[e].front());
    }
  }

  if (bg_adv >= 0) fsm.set_default_next(bg_adv, entry[0]);
  if (port_adv >= 0) fsm.set_default_next(port_adv, entry[0]);
  // Done: terminal.

  assert(fsm.validate().empty());
  return fsm;
}

}  // namespace pmbist::mbist_hardwired
