#include "mbist_hardwired/area.h"

#include <algorithm>

#include "bist/datapath.h"

namespace pmbist::mbist_hardwired {

netlist::AreaReport hardwired_area(const march::MarchAlgorithm& alg,
                                   const AreaConfig& config) {
  const auto fsm =
      generate_fsm(alg, HardwiredFeatures::for_geometry(config.geometry));
  const auto synth = netlist::synthesize(fsm);

  netlist::AreaReport report{"hardwired BIST unit (" + alg.name() + ")"};
  report.add_block("controller FSM (" + std::to_string(fsm.num_states()) +
                       " states)",
                   synth.inventory);

  const bool has_pause = std::any_of(
      alg.elements().begin(), alg.elements().end(),
      [](const march::MarchElement& e) { return e.is_pause; });
  if (config.include_datapath)
    bist::add_datapath_blocks(report, config.geometry, has_pause);
  return report;
}

}  // namespace pmbist::mbist_hardwired
