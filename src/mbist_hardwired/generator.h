#pragma once
// Non-programmable (hardwired) BIST controller generator: turns a march
// algorithm into the symbolic Moore FSM a designer would hand-craft —
// "the hardware realization of a selected memory test algorithm" (paper,
// Sec. 1).  The same FSM object drives both the cycle-accurate behavioral
// controller and the synthesized area model, so behaviour and overhead come
// from a single artifact.
//
// FSM structure:
//   Idle -> per element [Setup -> Op_0 .. Op_n-1 (per-cell loop)] ...
//        -> (BgAdvance loop)? -> (PortAdvance loop)? -> Done
// Pause elements become a single Pause state gated by the pause timer.
//
// Inputs : start, last_addr, pause_done, last_bg, last_port
// Outputs: read_en, write_en, data_val, addr_advance, addr_init,
//          addr_dir_down, bg_inc, bg_reset, port_inc, pause_start, done

#include "march/march.h"
#include "memsim/memory.h"
#include "netlist/fsm_synth.h"

namespace pmbist::mbist_hardwired {

/// Input bit positions of every generated FSM.
enum FsmInput : std::uint32_t {
  kInStart = 1u << 0,
  kInLastAddr = 1u << 1,
  kInPauseDone = 1u << 2,
  kInLastBg = 1u << 3,
  kInLastPort = 1u << 4,
};
inline constexpr int kNumFsmInputs = 5;

/// Output bit positions of every generated FSM.
enum FsmOutput : std::uint32_t {
  kOutReadEn = 1u << 0,
  kOutWriteEn = 1u << 1,
  kOutDataVal = 1u << 2,
  kOutAddrAdvance = 1u << 3,
  kOutAddrInit = 1u << 4,
  kOutAddrDirDown = 1u << 5,
  kOutBgInc = 1u << 6,
  kOutBgReset = 1u << 7,
  kOutPortInc = 1u << 8,
  kOutPauseStart = 1u << 9,
  kOutDone = 1u << 10,
};
inline constexpr int kNumFsmOutputs = 11;

/// Which loop-back machinery the controller is built with.  Derive from a
/// geometry with features_for(); the Table 2 experiments build the same
/// algorithms with word-oriented / multiport support to measure the growth.
struct HardwiredFeatures {
  bool data_backgrounds = false;  ///< repeat per background (word-oriented)
  bool multiport = false;         ///< repeat per port

  [[nodiscard]] static HardwiredFeatures for_geometry(
      const memsim::MemoryGeometry& g) {
    return {g.word_bits > 1, g.num_ports > 1};
  }
};

/// Generates the hardwired controller FSM for `alg`.
[[nodiscard]] netlist::MooreFsm generate_fsm(const march::MarchAlgorithm& alg,
                                             const HardwiredFeatures& features);

}  // namespace pmbist::mbist_hardwired
