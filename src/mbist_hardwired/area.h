#pragma once
// Area model of hardwired BIST controllers: the generated FSM is
// synthesized (netlist/fsm_synth) and combined with the shared datapath.
// Enhancing the algorithm (C -> C+ -> C++) grows the FSM state count and
// hence the synthesized logic — the paper's observation 3.

#include "march/march.h"
#include "mbist_hardwired/generator.h"
#include "netlist/gate_inventory.h"

namespace pmbist::mbist_hardwired {

struct AreaConfig {
  memsim::MemoryGeometry geometry{};
  bool include_datapath = true;
};

/// Hierarchical area report of the hardwired BIST unit for `alg`.  The
/// pause timer is included exactly when the algorithm has pause elements.
[[nodiscard]] netlist::AreaReport hardwired_area(
    const march::MarchAlgorithm& alg, const AreaConfig& config);

}  // namespace pmbist::mbist_hardwired
