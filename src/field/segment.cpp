#include "field/segment.h"

#include "diag/transparent.h"
#include "field/profile.h"
#include "march/expand.h"
#include "soc/scheduler.h"

namespace pmbist::field {

SegmentPlan segment_algorithm(const march::MarchAlgorithm& alg,
                              const memsim::MemoryGeometry& geometry,
                              soc::ControllerKind kind,
                              std::uint64_t max_cycles) {
  SegmentPlan plan;
  // Boundaries replicate march::expand's loop nesting exactly: for each
  // port, for each data background, each element contributes one pause op
  // or ops-per-element * num_words array ops.
  const auto backgrounds = march::standard_backgrounds(geometry.word_bits);
  const auto num_words = static_cast<std::size_t>(geometry.num_words());
  std::size_t op_cursor = 0;
  for (int port = 0; port < geometry.num_ports; ++port) {
    for (std::size_t bg = 0; bg < backgrounds.size(); ++bg) {
      for (std::size_t e = 0; e < alg.elements().size(); ++e) {
        const auto& element = alg.elements()[e];
        const std::size_t count =
            element.is_pause ? 1 : element.ops.size() * num_words;
        Segment seg;
        seg.port = port;
        seg.background_index = bg;
        seg.element_index = e;
        seg.op_begin = op_cursor;
        seg.op_end = op_cursor + count;
        plan.segments.push_back(seg);
        op_cursor += count;
      }
    }
  }

  // Exact cycle attribution: step the real controller once; overhead
  // cycles (state transitions, setup) belong to the segment of the next
  // issued op, completion overhead to the last segment.
  const auto ctrl = soc::make_plan_controller(kind, alg, geometry,
                                              &plan.reload_cycles);
  ctrl->reset();
  std::uint64_t cycles = 0;
  std::size_t ops = 0;
  std::size_t seg = 0;
  std::uint64_t seg_start = 0;
  while (!ctrl->done()) {
    if (cycles >= max_cycles)
      throw FieldError{"controller for '" + alg.name() +
                       "' exceeded the cycle bound while segmenting"};
    ++cycles;
    if (ctrl->step()) {
      ++ops;
      while (seg + 1 < plan.segments.size() &&
             ops == plan.segments[seg].op_end) {
        plan.segments[seg].cycles = cycles - seg_start;
        seg_start = cycles;
        ++seg;
      }
    }
  }
  if (!plan.segments.empty()) plan.segments[seg].cycles = cycles - seg_start;
  plan.total_cycles = cycles;
  if (ops != plan.total_ops())
    throw FieldError{"controller for '" + alg.name() +
                     "' issued " + std::to_string(ops) + " ops, expected " +
                     std::to_string(plan.total_ops())};
  return plan;
}

SegmentPlan segment_transparent(const march::MarchAlgorithm& alg,
                                const memsim::MemoryGeometry& geometry,
                                soc::ControllerKind kind,
                                std::uint64_t max_cycles) {
  auto plan = segment_algorithm(alg, geometry, kind, max_cycles);
  if (diag::transparent_restore_needed(alg, geometry.word_bits)) {
    const auto num_words = static_cast<std::size_t>(geometry.num_words());
    Segment restore;
    restore.port = 0;
    restore.background_index = 0;
    restore.element_index = alg.elements().size();
    restore.op_begin = plan.total_ops();
    restore.op_end = restore.op_begin + num_words;
    restore.cycles = num_words;  // one refresh write per cycle
    restore.restore = true;
    plan.segments.push_back(restore);
    plan.total_cycles += num_words;
  }
  return plan;
}

}  // namespace pmbist::field
