#pragma once
// Mission profile: when each memory of a *running* chip is idle and may be
// tested in the field.
//
// The paper's case for programmable MBIST is lifetime reuse: the same
// controller that ran the power-on sweep is reloaded for periodic in-field
// (transparent) testing.  A mission profile captures the system side of
// that contract — a timeline of per-instance idle windows (cycles during
// which the functional logic guarantees not to touch the memory) plus the
// shared test-access-bus bandwidth (how many sessions may stream
// operations concurrently).  The field manager (manager.h) packs
// checkpointable session segments (segment.h) into these windows.
//
// On-disk format (.profile), in the chip-file style — grammar in
// docs/FIELD.md, every fenced example there is parsed by test_docs.cpp:
//
//   # comment
//   profile <name>
//   horizon <cycles>          # optional; 0/absent = last window end
//   bus_budget <lanes>        # optional; default 1
//   window <mem> start=N end=N
//
// Windows are half-open cycle intervals [start, end).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "soc/description.h"

namespace pmbist::field {

/// Raised for every malformed mission profile / field-manager misuse.
class FieldError : public soc::SocError {
 public:
  using SocError::SocError;
};

/// Raised on malformed .profile text; the message carries the line number.
class ProfileError : public FieldError {
 public:
  using FieldError::FieldError;
};

/// One idle window: the instance may be tested in cycles [start, end).
struct IdleWindow {
  std::uint64_t start = 0;
  std::uint64_t end = 0;

  [[nodiscard]] std::uint64_t width() const noexcept { return end - start; }
  friend bool operator==(const IdleWindow&, const IdleWindow&) = default;
};

/// The full mission profile.
struct MissionProfile {
  /// Per-instance window list, in ascending start order.
  struct WindowSet {
    std::string memory;
    std::vector<IdleWindow> windows;
    friend bool operator==(const WindowSet&, const WindowSet&) = default;
  };

  std::string name;
  /// Scheduling horizon in cycles; 0 = derived from the last window end.
  std::uint64_t horizon = 0;
  /// Test-bus lanes: how many sessions may stream operations concurrently.
  std::uint64_t bus_budget = 1;
  /// One entry per windowed memory, in first-mention order.
  std::vector<WindowSet> windows;

  /// Appends a window for `memory` (creating its set on first mention).
  MissionProfile& add_window(std::string_view memory, IdleWindow window);

  /// Window set of `memory`, or nullptr.
  [[nodiscard]] const WindowSet* find(std::string_view memory) const;

  /// The horizon the manager actually schedules against.
  [[nodiscard]] std::uint64_t effective_horizon() const noexcept;

  /// Structural validation: bus_budget >= 1, every window non-empty with
  /// start < end, per-memory windows sorted and non-overlapping.  Throws
  /// FieldError naming the offender.  (The linter runs the same checks as
  /// diagnostics instead — see lint/profile_lint.h.)
  void validate() const;

  /// validate() plus cross-checks against the chip: every windowed memory
  /// must exist in `chip`.
  void validate(const soc::SocDescription& chip) const;

  friend bool operator==(const MissionProfile&, const MissionProfile&) = default;
};

struct ProfileParseOptions {
  /// Run MissionProfile::validate at the end (the default).  The linter
  /// parses with this off so it can report every structural problem itself
  /// instead of stopping at the first one.
  bool validate = true;
};

/// Parses .profile text.  Throws ProfileError (with a line number) on
/// syntax errors; with options.validate, FieldError on structural ones.
[[nodiscard]] MissionProfile parse_profile_text(
    const std::string& text, const ProfileParseOptions& options = {});

/// Reads and parses a .profile file from disk.  Throws ProfileError when
/// the file cannot be read.
[[nodiscard]] MissionProfile load_profile_file(const std::string& path);

/// Serializes a profile back into .profile text; the output re-parses to an
/// equal MissionProfile (round-trip).
[[nodiscard]] std::string to_profile_text(const MissionProfile& profile);

/// The matching mission profile for soc::demo_soc()/demo_plan(): recurring
/// idle windows for every assigned instance sized so that the small
/// memories complete several transparent passes, the big ones must resume
/// across windows, and a bus budget that forces contention stalls.
[[nodiscard]] MissionProfile demo_profile();

}  // namespace pmbist::field
