#include "field/schedule_io.h"

#include <sstream>
#include <stdexcept>

namespace pmbist::field {
namespace {

[[noreturn]] void fail(int lineno, const std::string& why) {
  throw FieldScheduleError("field schedule line " + std::to_string(lineno) +
                           ": " + why);
}

std::uint64_t parse_u64(const std::string& value, int lineno,
                        const std::string& key) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument{value};
    return v;
  } catch (const std::exception&) {
    fail(lineno, key + " expects a non-negative integer, got '" + value + "'");
  }
}

}  // namespace

FieldScheduleFile parse_field_schedule_text(const std::string& text) {
  FieldScheduleFile file;
  bool saw_header = false;
  std::istringstream lines{text};
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    std::istringstream words{line.substr(0, line.find('#'))};
    std::string directive;
    if (!(words >> directive)) continue;
    if (directive == "fieldschedule") {
      if (saw_header) fail(lineno, "duplicate fieldschedule directive");
      if (!(words >> file.name)) fail(lineno, "fieldschedule needs a name");
      saw_header = true;
      continue;
    }
    if (directive != "fsession")
      fail(lineno, "unknown directive '" + directive + "'");
    if (!saw_header)
      fail(lineno, "fsession before the fieldschedule directive");
    FieldScheduleEntry entry;
    entry.line = lineno;
    auto& s = entry.session;
    if (!(words >> s.memory)) fail(lineno, "fsession needs a memory name");
    bool saw_pass = false;
    bool saw_seg = false;
    bool saw_start = false;
    bool saw_end = false;
    bool saw_reload = false;
    std::string token;
    while (words >> token) {
      if (token == "retest") {
        s.retest = true;
        continue;
      }
      const auto eq = token.find('=');
      if (eq == std::string::npos)
        fail(lineno, "expected key=value or retest, got '" + token + "'");
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "pass") {
        s.pass = static_cast<int>(parse_u64(value, lineno, key));
        saw_pass = true;
      } else if (key == "seg") {
        const auto dots = value.find("..");
        if (dots == std::string::npos)
          fail(lineno, "seg expects A..B, got '" + value + "'");
        s.segment_begin = parse_u64(value.substr(0, dots), lineno, key);
        s.segment_end = parse_u64(value.substr(dots + 2), lineno, key);
        saw_seg = true;
      } else if (key == "start") {
        s.start_cycle = parse_u64(value, lineno, key);
        saw_start = true;
      } else if (key == "end") {
        s.end_cycle = parse_u64(value, lineno, key);
        saw_end = true;
      } else if (key == "reload") {
        s.reload_cycles = parse_u64(value, lineno, key);
        saw_reload = true;
      } else {
        fail(lineno, "unknown fsession key '" + key + "'");
      }
    }
    if (!saw_pass || !saw_seg || !saw_start || !saw_end || !saw_reload)
      fail(lineno, "fsession needs pass=, seg=, start=, end= and reload=");
    if (s.end_cycle < s.start_cycle) fail(lineno, "end before start");
    if (s.segment_end < s.segment_begin) fail(lineno, "seg range reversed");
    file.entries.push_back(std::move(entry));
  }
  if (!saw_header)
    throw FieldScheduleError{"field schedule has no fieldschedule directive"};
  return file;
}

std::string to_field_schedule_text(const std::string& name,
                                   const std::vector<FieldSession>& sessions) {
  std::ostringstream os;
  os << "# pmbist field schedule (certify with `pmbist lint FILE --chip CHIP "
        "--profile PROFILE`)\n";
  os << "fieldschedule " << name << '\n';
  for (const auto& s : sessions) {
    os << "fsession " << s.memory << " pass=" << s.pass << " seg="
       << s.segment_begin << ".." << s.segment_end << " start=" << s.start_cycle
       << " end=" << s.end_cycle << " reload=" << s.reload_cycles;
    if (s.retest) os << " retest";
    os << '\n';
  }
  return os.str();
}

std::vector<FieldScheduleEntry> field_schedule_entries(
    const std::vector<FieldSession>& sessions) {
  std::vector<FieldScheduleEntry> entries;
  entries.reserve(sessions.size());
  for (const auto& s : sessions) entries.push_back({s, -1});
  return entries;
}

}  // namespace pmbist::field
