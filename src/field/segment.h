#pragma once
// Segmenting engine: splits a march algorithm's expanded op stream into
// checkpointable segments for preemptible in-field execution.
//
// Cuts happen only at march *element* boundaries (within one port/data-
// background pass).  That is the natural checkpoint of the hardware: at an
// element boundary the address counter has wrapped, the element register
// advances, and the per-cell XOR discipline of the transparent transform
// holds — so a session interrupted there can resume in a later idle window
// and produce bit-identical fault verdicts and signatures to an
// uninterrupted run (pinned by the equivalence suite in test_field.cpp).
//
// Per-segment cycle costs are EXACT: the real controller (the same
// construction soc::make_plan_controller uses for the power-on sweep) is
// stepped once and its overhead cycles are attributed to the segment of
// the next issued op; the per-segment costs therefore sum to
// bist::count_cycles of the whole run.  Re-entry cost is the controller's
// program_load_cycles (reloading the program when the seat is re-armed in
// a new window; 0 for hardwired).

#include <cstdint>
#include <vector>

#include "march/march.h"
#include "memsim/memory.h"
#include "soc/plan.h"

namespace pmbist::field {

/// One checkpointable slice of the expanded stream: ops [op_begin, op_end)
/// of one element within one (port, background) pass.
struct Segment {
  int port = 0;
  std::size_t background_index = 0;
  std::size_t element_index = 0;  ///< elements().size() marks the restore pass
  std::size_t op_begin = 0;       ///< index into the expanded stream
  std::size_t op_end = 0;
  std::uint64_t cycles = 0;  ///< exact controller cycles for this slice
  bool restore = false;      ///< trailing transparent restore pass

  [[nodiscard]] std::size_t op_count() const noexcept {
    return op_end - op_begin;
  }
  friend bool operator==(const Segment&, const Segment&) = default;
};

/// The full segment plan of one algorithm on one geometry/controller.
struct SegmentPlan {
  std::vector<Segment> segments;
  /// Program (re)load cost charged whenever the controller seat is
  /// (re)armed — once per scheduled burst, not per segment.
  std::uint64_t reload_cycles = 0;
  /// Sum of segment cycles == bist::count_cycles of the uninterrupted run
  /// (plus the restore-pass writes when a restore segment is present).
  std::uint64_t total_cycles = 0;

  [[nodiscard]] std::size_t total_ops() const noexcept {
    return segments.empty() ? 0 : segments.back().op_end;
  }
  friend bool operator==(const SegmentPlan&, const SegmentPlan&) = default;
};

/// Segments `alg` as run on `kind` over `geometry`.  Throws FieldError
/// (via bist::count_cycles) if the controller exceeds `max_cycles`.
[[nodiscard]] SegmentPlan segment_algorithm(
    const march::MarchAlgorithm& alg, const memsim::MemoryGeometry& geometry,
    soc::ControllerKind kind, std::uint64_t max_cycles = 1'000'000'000);

/// segment_algorithm() plus, when the transparent transform of `alg` needs
/// a restoring refresh pass (diag::transparent_restore_needed), one
/// trailing restore segment of num_words write cycles.  This is the plan
/// the field manager schedules: its op ranges index
/// diag::transparent_stream_with_restore 1:1.
[[nodiscard]] SegmentPlan segment_transparent(
    const march::MarchAlgorithm& alg, const memsim::MemoryGeometry& geometry,
    soc::ControllerKind kind, std::uint64_t max_cycles = 1'000'000'000);

}  // namespace pmbist::field
