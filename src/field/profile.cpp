#include "field/profile.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

namespace pmbist::field {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ProfileError{"profile line " + std::to_string(line) + ": " + what};
}

/// Splits one line into tokens: double-quoted strings (kept verbatim, no
/// escapes) or maximal non-space runs.  `#` starts a comment outside quotes.
std::vector<std::string> tokenize(const std::string& line, std::size_t lineno) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
    } else if (c == '#') {
      break;
    } else if (c == '"') {
      const auto end = line.find('"', i + 1);
      if (end == std::string::npos) fail(lineno, "unterminated quote");
      tokens.push_back(line.substr(i + 1, end - i - 1));
      i = end + 1;
    } else {
      std::size_t end = i;
      while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
             line[end] != '#' && line[end] != '\r')
        ++end;
      tokens.push_back(line.substr(i, end - i));
      i = end;
    }
  }
  return tokens;
}

/// key=value arguments of one directive.
class Args {
 public:
  Args(const std::vector<std::string>& tokens, std::size_t first,
       std::size_t lineno)
      : lineno_{lineno} {
    for (std::size_t i = first; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      if (eq == std::string::npos || eq == 0)
        fail(lineno, "expected key=value, got '" + tokens[i] + "'");
      if (!kv_.emplace(tokens[i].substr(0, eq), tokens[i].substr(eq + 1))
               .second)
        fail(lineno, "duplicate key '" + tokens[i].substr(0, eq) + "'");
    }
  }

  [[nodiscard]] std::uint64_t u64(const std::string& key) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) fail(lineno_, "missing " + key + "=");
    const auto& text = it->second;
    try {
      std::size_t used = 0;
      const auto v = std::stoull(text, &used, 0);
      if (used != text.size()) throw std::invalid_argument{text};
      return v;
    } catch (const std::exception&) {
      fail(lineno_, "bad number for " + key + ": '" + text + "'");
    }
  }

 private:
  std::map<std::string, std::string> kv_;
  std::size_t lineno_;
};

std::uint64_t parse_count(const std::string& text, std::size_t lineno,
                          const char* what) {
  try {
    std::size_t used = 0;
    const auto v = std::stoull(text, &used, 0);
    if (used != text.size()) throw std::invalid_argument{text};
    return v;
  } catch (const std::exception&) {
    fail(lineno, std::string{"bad "} + what + " '" + text + "'");
  }
}

}  // namespace

MissionProfile& MissionProfile::add_window(std::string_view memory,
                                           IdleWindow window) {
  for (auto& set : windows) {
    if (set.memory == memory) {
      set.windows.push_back(window);
      return *this;
    }
  }
  windows.push_back(WindowSet{std::string{memory}, {window}});
  return *this;
}

const MissionProfile::WindowSet* MissionProfile::find(
    std::string_view memory) const {
  for (const auto& set : windows)
    if (set.memory == memory) return &set;
  return nullptr;
}

std::uint64_t MissionProfile::effective_horizon() const noexcept {
  if (horizon != 0) return horizon;
  std::uint64_t last = 0;
  for (const auto& set : windows)
    for (const auto& w : set.windows) last = std::max(last, w.end);
  return last;
}

void MissionProfile::validate() const {
  if (bus_budget < 1)
    throw FieldError{"profile '" + name + "': bus budget must be >= 1"};
  for (const auto& set : windows) {
    auto sorted = set.windows;
    std::sort(sorted.begin(), sorted.end(),
              [](const IdleWindow& a, const IdleWindow& b) {
                if (a.start != b.start) return a.start < b.start;
                return a.end < b.end;
              });
    for (const auto& w : sorted) {
      if (w.start >= w.end)
        throw FieldError{"profile '" + name + "': empty idle window [" +
                         std::to_string(w.start) + ", " +
                         std::to_string(w.end) + ") for '" + set.memory + "'"};
    }
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      if (sorted[i].end > sorted[i + 1].start)
        throw FieldError{"profile '" + name + "': overlapping idle windows [" +
                         std::to_string(sorted[i].start) + ", " +
                         std::to_string(sorted[i].end) + ") and [" +
                         std::to_string(sorted[i + 1].start) + ", " +
                         std::to_string(sorted[i + 1].end) + ") for '" +
                         set.memory + "'"};
    }
  }
}

void MissionProfile::validate(const soc::SocDescription& chip) const {
  validate();
  for (const auto& set : windows)
    if (chip.find(set.memory) == nullptr)
      throw FieldError{"profile '" + name + "': window names unknown memory '" +
                       set.memory + "'"};
}

MissionProfile parse_profile_text(const std::string& text,
                                  const ProfileParseOptions& options) {
  MissionProfile profile;
  std::istringstream lines{text};
  std::string line;
  std::size_t lineno = 0;
  bool named = false;
  while (std::getline(lines, line)) {
    ++lineno;
    const auto tokens = tokenize(line, lineno);
    if (tokens.empty()) continue;
    const auto& directive = tokens[0];
    if (directive == "profile") {
      if (tokens.size() != 2) fail(lineno, "usage: profile <name>");
      if (named) fail(lineno, "duplicate profile directive");
      profile.name = tokens[1];
      named = true;
    } else if (directive == "horizon") {
      if (tokens.size() != 2) fail(lineno, "usage: horizon <cycles>");
      profile.horizon = parse_count(tokens[1], lineno, "horizon");
    } else if (directive == "bus_budget") {
      if (tokens.size() != 2) fail(lineno, "usage: bus_budget <lanes>");
      profile.bus_budget = parse_count(tokens[1], lineno, "bus budget");
    } else if (directive == "window") {
      if (tokens.size() < 4)
        fail(lineno, "usage: window <mem> start=N end=N");
      const Args args{tokens, 2, lineno};
      const IdleWindow w{args.u64("start"), args.u64("end")};
      if (w.end < w.start)
        fail(lineno, "window end=" + std::to_string(w.end) +
                         " is before start=" + std::to_string(w.start));
      profile.add_window(tokens[1], w);
    } else {
      fail(lineno, "unknown directive '" + directive + "'");
    }
  }
  if (options.validate) profile.validate();
  return profile;
}

MissionProfile load_profile_file(const std::string& path) {
  std::ifstream is{path};
  if (!is) throw ProfileError{"cannot open profile file '" + path + "'"};
  std::ostringstream os;
  os << is.rdbuf();
  return parse_profile_text(os.str());
}

std::string to_profile_text(const MissionProfile& profile) {
  std::ostringstream os;
  if (!profile.name.empty()) os << "profile " << profile.name << "\n";
  if (profile.horizon != 0) os << "horizon " << profile.horizon << "\n";
  if (profile.bus_budget != 1) os << "bus_budget " << profile.bus_budget << "\n";
  os << "\n";
  for (const auto& set : profile.windows)
    for (const auto& w : set.windows)
      os << "window " << set.memory << " start=" << w.start
         << " end=" << w.end << "\n";
  return os.str();
}

MissionProfile demo_profile() {
  // Tuned against the exact session cycle counts of demo_soc()/demo_plan()
  // (bench_field pins the interesting consequences): the small arrays
  // complete several transparent passes per window, the caches must
  // checkpoint and resume across windows, and bus_budget 2 forces
  // contention stalls when three instances are idle at once.
  MissionProfile p;
  p.name = "mission_demo";
  p.horizon = 600'000;
  p.bus_budget = 2;
  const auto periodic = [&p](std::string_view mem, std::uint64_t first,
                             std::uint64_t width, std::uint64_t period) {
    for (std::uint64_t s = first; s < p.horizon; s += period)
      p.add_window(mem, {s, std::min(s + width, p.horizon)});
  };
  periodic("cpu_l1i", 0, 30'000, 100'000);
  periodic("cpu_l1d", 10'000, 30'000, 100'000);
  periodic("cpu_l2", 0, 60'000, 150'000);
  periodic("dsp_x", 5'000, 20'000, 80'000);
  periodic("dsp_y", 25'000, 20'000, 80'000);
  periodic("gpu_tile", 0, 40'000, 120'000);
  periodic("nic_fifo", 2'000, 10'000, 50'000);
  periodic("rom_patch", 0, 8'000, 60'000);
  periodic("sensor_buf", 4'000, 6'000, 40'000);
  return p;
}

}  // namespace pmbist::field
