#pragma once
// In-field online test manager: plans and runs preemptible, resumable
// transparent BIST sessions inside the idle windows of a running chip.
//
// Where soc::Scheduler models the one-shot power-on sweep, this manager
// models the product lifetime: the same programmable controllers are
// re-armed periodically (the paper's lifetime-reuse argument), each test
// runs Nicolaidis-transparent (diag::transparent) so mission data
// survives, and a session that does not fit one idle window checkpoints at
// an element boundary (field/segment.h) and resumes in a later window.
//
// Planning contract (FieldManager::run):
//
//   1. Segment every assigned algorithm on its real controller
//      (exact per-segment cycle costs; program_load_cycles re-entry cost).
//   2. Probe repair-capable instances once (uninterrupted reference pass)
//      to learn deterministically which of them will need a BISR retest.
//   3. Serial event-driven packing of segment bursts into idle windows
//      under power (TestPlan's model), test-bus bandwidth (MissionProfile::
//      bus_budget lanes, one per streaming session), and controller-seat
//      (share_group) constraints.  Sessions are preempted when their
//      window closes and resume from the checkpoint in a later window;
//      BISR retests fold into later windows as ordinary passes.
//   4. Parallel deterministic execution of the planned bursts on the
//      shared ThreadPool.  Per-instance verdicts are bit-identical to an
//      uninterrupted power-on run of the same transparent stream — the
//      segmentation-equivalence contract pinned by test_field.cpp.
//
// Everything in the FieldReport except wall_seconds is a pure function of
// (chip, plan, profile): it never depends on --jobs or the host.
//
// Modeling note: memory time does NOT advance between idle windows — gaps
// belong to the mission workload, whose accesses refresh cell state in a
// workload-dependent way this simulator does not model.  Retention faults
// are exercised by the pause elements *inside* sessions, exactly as in the
// power-on sweep; that choice is what keeps in-field verdicts provably
// equal to power-on verdicts.

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bist/session.h"
#include "field/profile.h"
#include "field/segment.h"
#include "soc/scheduler.h"

namespace pmbist::field {

struct FieldOptions {
  /// Execution worker count: 0 = hardware concurrency, 1 = serial.
  /// Results are identical for every value.
  int jobs = 0;
  /// First-pass failure-log capacity per instance.
  std::size_t max_failures = 1024;
  /// Runaway-controller bound (segmentation + probe).
  std::uint64_t max_cycles = 1'000'000'000;
  /// Keep starting new passes until the horizon closes (periodic in-field
  /// testing).  false = one pass per instance, plus the folded BISR retest
  /// pass when repair engages.
  bool repeat_passes = true;
  /// Signature register width for per-pass response compaction.
  int misr_width = 16;
  /// Memory-under-test backend (backend/backend.h).  HostRam runs every
  /// transparent pass against mmap'd host memory and requires a fault-free
  /// chip — run() throws SocError when any instance injects faults.
  backend::BackendKind backend = backend::BackendKind::Sim;
  /// Optional cooperative cancellation flag (common/cancel.h): polled
  /// between execution bursts; run() throws common::Cancelled once
  /// in-flight work drains.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional progress callback, invoked as (done, total) participant
  /// counts as execution completes.  Called from worker threads (must be
  /// thread-safe); carries counts only, never names.
  std::function<void(int done, int total)> progress = nullptr;
};

/// One scheduled burst: consecutive segments of one instance's current
/// pass, placed in one idle window.
struct FieldSession {
  std::string memory;
  int pass = 0;           ///< which transparent pass this burst belongs to
  bool retest = false;    ///< pass is the post-repair BISR retest
  std::size_t segment_begin = 0;  ///< into the instance's SegmentPlan
  std::size_t segment_end = 0;
  std::uint64_t reload_cycles = 0;  ///< seat re-arm cost paid at burst start
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;

  [[nodiscard]] std::uint64_t duration() const noexcept {
    return end_cycle - start_cycle;
  }
  friend bool operator==(const FieldSession&, const FieldSession&) = default;
};

/// Outcome of one (possibly preempted-forever) transparent pass.
struct PassResult {
  int pass = 0;
  bool retest = false;
  /// Completed = every segment (including the restore pass) ran before the
  /// horizon; Interrupted = the horizon closed mid-pass.
  bist::SessionState state = bist::SessionState::Interrupted;
  std::uint64_t mismatches = 0;
  std::uint64_t complete_cycle = 0;  ///< modeled completion time (0 if interrupted)
  /// MISR signature over the actual read responses.  Engaged ONLY when the
  /// pass completed: an interrupted transparent session must not emit a
  /// signature, because the signature prediction covers the whole stream.
  std::optional<memsim::Word> signature;
  /// Contents equal the pass seed afterwards (meaningful when completed).
  bool contents_preserved = false;

  [[nodiscard]] bool completed() const noexcept {
    return state == bist::SessionState::Completed;
  }
  [[nodiscard]] bool clean() const noexcept {
    return completed() && mismatches == 0;
  }
  friend bool operator==(const PassResult&, const PassResult&) = default;
};

/// Lifetime test record of one plan assignment.
struct FieldInstanceResult {
  std::string memory;
  /// Chronological passes actually started (pass 0 first).
  std::vector<PassResult> passes;
  /// First-pass failure log; op indices address the transparent stream
  /// (diag::transparent_stream_with_restore order).
  std::vector<march::Failure> failures;
  /// Engaged iff the first pass completed with failures on a repairable,
  /// bit-oriented instance with spares; retest_passed comes from the
  /// folded retest pass.
  std::optional<soc::RepairOutcome> repair;
  /// Test latency: cycle of the first completed pass (horizon if none).
  std::uint64_t first_pass_cycle = 0;
  /// Worst-case time since the last complete pass, over the whole horizon.
  std::uint64_t staleness_cycles = 0;
  /// In-window time lost waiting on bus/power/controller-seat contention.
  std::uint64_t stall_cycles = 0;
  /// In-window time spent streaming (reloads included).
  std::uint64_t busy_cycles = 0;

  [[nodiscard]] int completed_passes() const noexcept;
  /// Healthy = first pass completed clean, or repaired and retested clean.
  [[nodiscard]] bool healthy() const noexcept;
  friend bool operator==(const FieldInstanceResult&,
                         const FieldInstanceResult&) = default;
};

/// Whole-lifetime outcome.  Everything except `wall_seconds` is
/// deterministic (operator== deliberately ignores wall time).
struct FieldReport {
  std::string chip;
  std::string profile;
  std::uint64_t horizon = 0;
  std::uint64_t bus_budget = 0;
  std::vector<FieldInstanceResult> instances;  ///< in plan-assignment order
  std::vector<FieldSession> sessions;          ///< by start cycle, then name
  /// Busy window cycles / available window cycles (clipped to horizon).
  double window_utilization = 0.0;
  /// Total in-window time lost to bus contention alone.
  std::uint64_t bus_stall_cycles = 0;
  double peak_power = 0.0;   ///< max summed toggle weight of an instant
  double wall_seconds = 0.0;  ///< host execution time (not compared)

  [[nodiscard]] int healthy_count() const noexcept;
  [[nodiscard]] bool all_healthy() const noexcept {
    return healthy_count() == static_cast<int>(instances.size());
  }

  friend bool operator==(const FieldReport& a, const FieldReport& b) {
    return a.chip == b.chip && a.profile == b.profile &&
           a.horizon == b.horizon && a.bus_budget == b.bus_budget &&
           a.instances == b.instances && a.sessions == b.sessions &&
           a.window_utilization == b.window_utilization &&
           a.bus_stall_cycles == b.bus_stall_cycles &&
           a.peak_power == b.peak_power;
  }
};

class FieldManager {
 public:
  explicit FieldManager(FieldOptions options = {}) : options_{options} {}

  /// Plans and executes the in-field campaign.  Throws FieldError on an
  /// invalid profile (MissionProfile::validate against the chip) and
  /// SocError on an invalid plan.
  [[nodiscard]] FieldReport run(const soc::SocDescription& chip,
                                const soc::TestPlan& plan,
                                const MissionProfile& profile) const;

  [[nodiscard]] const FieldOptions& options() const noexcept {
    return options_;
  }

 private:
  FieldOptions options_;
};

/// One-call front end.
[[nodiscard]] FieldReport run_field(const soc::SocDescription& chip,
                                    const soc::TestPlan& plan,
                                    const MissionProfile& profile,
                                    const FieldOptions& options = {});

/// Canonical human-readable report of an in-field run: header, session
/// table, utilization summary, per-instance verdicts, final PASS/FAIL
/// line.  Deliberately excludes wall_seconds, so the text is a pure
/// function of (chip, plan, profile) — `pmbist field` and the serve layer
/// both emit exactly this string (the serve/CLI byte-equivalence pin).
[[nodiscard]] std::string format_field_report(const FieldReport& report);

}  // namespace pmbist::field
