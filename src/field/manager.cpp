#include "field/manager.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <numeric>
#include <set>

#include "backend/hostram_backend.h"
#include "bist/misr.h"
#include "common/cancel.h"
#include "common/thread_pool.h"
#include "diag/bitmap.h"
#include "diag/transparent.h"
#include "memsim/faulty_memory.h"
#include "repair/repaired_memory.h"

namespace pmbist::field {
namespace {

using memsim::Word;

constexpr std::uint64_t kNoEvent = std::numeric_limits<std::uint64_t>::max();

/// Scheduling state of one windowed plan assignment.
struct Participant {
  std::size_t assign_index = 0;
  const soc::TestAssignment* assignment = nullptr;
  const soc::MemoryInstance* instance = nullptr;
  SegmentPlan plan;
  double weight = 0.0;
  std::vector<IdleWindow> windows;  ///< sorted, clipped to the horizon

  bool needs_retest = false;  ///< probe verdict: BISR will engage + repair

  // Event-simulation state.
  std::size_t win = 0;  ///< current/next window
  std::size_t seg = 0;  ///< next segment of the current pass
  int pass = 0;
  bool active = false;
  bool blocked = false;  ///< in-window, work fits, resource-contended now
  bool blocked_by_bus = false;
  bool finished = false;  ///< no further passes schedulable
  std::uint64_t busy = 0;
  std::uint64_t stall = 0;
  std::vector<std::uint64_t> completions;  ///< pass completion cycles
};

/// One planned pass of one participant, for the execution phase: the
/// stream prefix its scheduled bursts cover.
struct PassExec {
  int pass = 0;
  bool retest = false;
  std::size_t op_end = 0;
  bool completed = false;
  std::uint64_t complete_cycle = 0;
};

/// Reference uninterrupted first pass: decides — deterministically, from
/// (faults, power-up seed, algorithm) alone — whether BISR will engage and
/// repair, i.e. whether a retest pass must be folded into the schedule.
bool probe_needs_retest(const soc::MemoryInstance& inst,
                        const march::MarchAlgorithm& alg,
                        const FieldOptions& options) {
  if (!inst.repair.any() || !inst.geometry.bit_oriented() ||
      inst.faults.empty())
    return false;
  const auto& g = inst.geometry;
  memsim::FaultyMemory memory{g, inst.powerup_seed};
  for (const auto& f : inst.faults) memory.add_fault(f);
  std::vector<Word> initial(g.num_words());
  for (memsim::Address a = 0; a < g.num_words(); ++a)
    initial[a] = memory.read(0, a);
  const auto stream = diag::transparent_stream_with_restore(alg, g, initial);
  const auto run = march::run_stream(stream, memory, options.max_failures);
  if (run.failures.empty()) return false;
  diag::FailBitmap bitmap{g};
  bitmap.accumulate(run.failures);
  const auto topology = inst.topology();
  const auto solution = repair::allocate_redundancy(
      bitmap, topology,
      {.spare_rows = inst.repair.spare_rows,
       .spare_cols = inst.repair.spare_cols});
  return solution.repairable;
}

/// Executes every planned pass of one participant against a fresh memory.
/// Chunk boundaries never appear here: a pass is the stream prefix its
/// bursts covered, played in order — segmented execution is equivalent to
/// uninterrupted execution by construction (pinned by test_field.cpp).
void execute_participant(const Participant& p,
                         const march::MarchAlgorithm& alg,
                         const std::vector<PassExec>& passes,
                         const FieldOptions& options,
                         FieldInstanceResult& out) {
  const auto& inst = *p.instance;
  const auto& g = inst.geometry;
  // Backing storage per the selected backend: the behavioral simulator
  // (fault injection, pseudo-random power-up) or a hostram mapping through
  // the BackendMemory adapter.  run() has already rejected hostram+faults.
  std::unique_ptr<memsim::FaultyMemory> sim;
  std::unique_ptr<backend::HostRamBackend> hostram;
  std::unique_ptr<backend::BackendMemory> hostram_view;
  if (options.backend == backend::BackendKind::Sim) {
    sim = std::make_unique<memsim::FaultyMemory>(g, inst.powerup_seed);
    try {
      for (const auto& f : inst.faults) sim->add_fault(f);
    } catch (const std::exception& e) {
      throw soc::SocError{"instance '" + inst.name + "': " + e.what()};
    }
  } else {
    try {
      hostram = std::make_unique<backend::HostRamBackend>(g);
    } catch (const backend::BackendError& e) {
      throw soc::SocError{"instance '" + inst.name + "': " + e.what()};
    }
    // Transparent BIST preserves — and therefore observes — the memory's
    // existing contents, so the power-up image is part of every pass
    // signature.  Seed the mapping with the simulator's deterministic
    // power-up pattern to keep reports backend-invariant.
    memsim::SramModel image{g, inst.powerup_seed};
    const auto words = hostram->mapped_words();
    for (memsim::Address a = 0; a < g.num_words(); ++a)
      words[a] = image.read(0, a);
    hostram_view = std::make_unique<backend::BackendMemory>(*hostram);
  }
  memsim::Memory& base =
      sim ? static_cast<memsim::Memory&>(*sim) : *hostram_view;
  struct RepairState {
    memsim::ArrayTopology topology;
    repair::RepairSolution solution;
    std::unique_ptr<repair::RepairedMemory> view;
  };
  std::unique_ptr<RepairState> repaired;
  memsim::Memory* view = &base;

  for (const auto& pe : passes) {
    // Seed capture (the hardware's signature-prediction read pass), then
    // the transparent stream for *these* contents.
    std::vector<Word> initial(g.num_words());
    for (memsim::Address a = 0; a < g.num_words(); ++a)
      initial[a] = view->read(0, a);
    const auto stream = diag::transparent_stream_with_restore(alg, g, initial);
    bist::Misr misr{options.misr_width};
    PassResult pr;
    pr.pass = pe.pass;
    pr.retest = pe.retest;
    const std::size_t limit = std::min(pe.op_end, stream.size());
    for (std::size_t i = 0; i < limit; ++i) {
      const auto& op = stream[i];
      switch (op.kind) {
        case march::MemOp::Kind::Pause:
          view->advance_time_ns(op.pause_ns);
          break;
        case march::MemOp::Kind::Write:
          view->write(op.port, op.addr, op.data);
          break;
        case march::MemOp::Kind::Read: {
          const Word actual = view->read(op.port, op.addr);
          misr.absorb(actual);
          if (actual != op.data) {
            ++pr.mismatches;
            if (pe.pass == 0 && out.failures.size() < options.max_failures)
              out.failures.push_back(march::Failure{i, op, actual});
          }
          break;
        }
      }
    }
    if (pe.completed) {
      pr.state = bist::SessionState::Completed;
      pr.complete_cycle = pe.complete_cycle;
      pr.signature = misr.signature();
      pr.contents_preserved = true;
      for (memsim::Address a = 0; a < g.num_words(); ++a) {
        if (view->read(0, a) != initial[a]) {
          pr.contents_preserved = false;
          break;
        }
      }
    }
    // BISR after the first completed pass; later passes (the folded
    // retest first) run through the spare switch-in view.
    if (pe.pass == 0 && pe.completed && inst.repair.any() &&
        g.bit_oriented() && !out.failures.empty()) {
      soc::RepairOutcome outcome;
      diag::FailBitmap bitmap{g};
      bitmap.accumulate(out.failures);
      auto rs = std::make_unique<RepairState>(
          RepairState{inst.topology(), {}, nullptr});
      rs->solution = repair::allocate_redundancy(
          bitmap, rs->topology,
          {.spare_rows = inst.repair.spare_rows,
           .spare_cols = inst.repair.spare_cols});
      outcome.repairable = rs->solution.repairable;
      if (rs->solution.repairable) {
        outcome.spare_rows_used =
            static_cast<int>(rs->solution.rows_replaced.size());
        outcome.spare_cols_used =
            static_cast<int>(rs->solution.cols_replaced.size());
        rs->view = std::make_unique<repair::RepairedMemory>(
            base, rs->topology, rs->solution);
        repaired = std::move(rs);
        view = repaired->view.get();
      }
      out.repair = outcome;
    }
    if (pr.retest && pr.completed() && out.repair)
      out.repair->retest_passed = pr.mismatches == 0;
    out.passes.push_back(std::move(pr));
  }
}

}  // namespace

int FieldInstanceResult::completed_passes() const noexcept {
  int count = 0;
  for (const auto& p : passes)
    if (p.completed()) ++count;
  return count;
}

bool FieldInstanceResult::healthy() const noexcept {
  if (passes.empty() || !passes.front().completed()) return false;
  if (passes.front().mismatches == 0) return true;
  return repair && repair->retest_passed;
}

int FieldReport::healthy_count() const noexcept {
  int count = 0;
  for (const auto& r : instances)
    if (r.healthy()) ++count;
  return count;
}

FieldReport FieldManager::run(const soc::SocDescription& chip,
                              const soc::TestPlan& plan,
                              const MissionProfile& profile) const {
  const auto t0 = std::chrono::steady_clock::now();
  plan.validate(chip);
  profile.validate(chip);
  if (options_.backend == backend::BackendKind::HostRam) {
    for (const auto& m : chip.memories()) {
      if (!m.faults.empty()) {
        throw soc::SocError{
            "instance '" + m.name +
            "' injects faults; fault injection requires the sim backend "
            "(--backend sim)"};
      }
    }
  }

  const std::uint64_t horizon = profile.effective_horizon();
  const auto& assignments = plan.assignments();
  const auto n = assignments.size();

  FieldReport report;
  report.chip = chip.name();
  report.profile = profile.name;
  report.horizon = horizon;
  report.bus_budget = profile.bus_budget;
  report.instances.resize(n);

  std::vector<march::MarchAlgorithm> algs(n);
  for (std::size_t i = 0; i < n; ++i)
    algs[i] = soc::resolve_algorithm(assignments[i].algorithm);

  // Participants: assignments whose memory has idle windows before the
  // horizon.  Assignments without windows stay in the report untested
  // (staleness = horizon) — the profile linter warns about them (FP05).
  std::vector<Participant> parts;
  for (std::size_t i = 0; i < n; ++i) {
    report.instances[i].memory = assignments[i].memory;
    report.instances[i].first_pass_cycle = horizon;
    report.instances[i].staleness_cycles = horizon;
    const auto* set = profile.find(assignments[i].memory);
    if (set == nullptr) continue;
    Participant p;
    p.assign_index = i;
    p.assignment = &assignments[i];
    p.instance = chip.find(assignments[i].memory);
    p.weight = plan.effective_weight(assignments[i], *p.instance);
    for (auto w : set->windows) {
      if (w.start >= horizon) continue;
      w.end = std::min(w.end, horizon);
      if (w.start < w.end) p.windows.push_back(w);
    }
    if (p.windows.empty()) continue;
    std::sort(p.windows.begin(), p.windows.end(),
              [](const IdleWindow& a, const IdleWindow& b) {
                return a.start < b.start;
              });
    parts.push_back(std::move(p));
  }

  // Phase 1 (parallel): segment every transparent session on its real
  // controller; probe repair-capable instances for the retest decision.
  // Both are pure functions of (chip, plan) — deterministic.
  common::parallel_shards(
      options_.jobs, static_cast<int>(parts.size()), [&](int pi) {
        common::throw_if_cancelled(options_.cancel);
        auto& p = parts[static_cast<std::size_t>(pi)];
        p.plan =
            segment_transparent(algs[p.assign_index], p.instance->geometry,
                                p.assignment->controller, options_.max_cycles);
        p.needs_retest =
            probe_needs_retest(*p.instance, algs[p.assign_index], options_);
      });

  // Phase 2 (serial): deterministic event-driven packing of segment bursts
  // into idle windows under bus, power and controller-seat constraints.
  std::vector<std::size_t> by_name(parts.size());
  std::iota(by_name.begin(), by_name.end(), std::size_t{0});
  std::sort(by_name.begin(), by_name.end(), [&](std::size_t a, std::size_t b) {
    return parts[a].assignment->memory < parts[b].assignment->memory;
  });

  struct ActiveBurst {
    std::size_t part = 0;
    std::uint64_t end = 0;
  };
  std::vector<ActiveBurst> active;
  std::set<std::string> busy_groups;
  double power_in_use = 0.0;
  const double power_budget = plan.power().budget;
  std::uint64_t lanes = 0;

  std::vector<std::vector<PassExec>> pass_exec(parts.size());
  std::vector<FieldSession> sessions;

  std::uint64_t now = 0;
  while (true) {
    // Retire bursts ending now: free their resources; a burst that
    // consumed the last segment completes the pass.
    for (std::size_t i = active.size(); i-- > 0;) {
      if (active[i].end > now) continue;
      auto& p = parts[active[i].part];
      p.active = false;
      power_in_use -= p.weight;
      --lanes;
      if (!p.assignment->share_group.empty())
        busy_groups.erase(p.assignment->share_group);
      if (p.seg == p.plan.segments.size()) {
        p.completions.push_back(active[i].end);
        pass_exec[active[i].part].back().completed = true;
        pass_exec[active[i].part].back().complete_cycle = active[i].end;
        ++p.pass;
        p.seg = 0;
        if (!options_.repeat_passes &&
            p.pass >= 1 + (p.needs_retest ? 1 : 0))
          p.finished = true;
      }
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
    }

    // Start bursts in instance-name order.  A burst runs as many
    // consecutive segments as fit before the window closes; re-entry pays
    // the program reload.
    for (const auto pi : by_name) {
      auto& p = parts[pi];
      p.blocked = false;
      p.blocked_by_bus = false;
      if (p.finished || p.active) continue;
      while (p.win < p.windows.size() && p.windows[p.win].end <= now) ++p.win;
      if (p.win == p.windows.size()) {
        p.finished = true;
        continue;
      }
      const auto& w = p.windows[p.win];
      if (w.start > now) continue;
      const std::uint64_t avail = w.end - now;
      const auto& segs = p.plan.segments;
      std::uint64_t burst = p.plan.reload_cycles + segs[p.seg].cycles;
      if (burst > avail) continue;  // window remainder too short to resume
      const auto& group = p.assignment->share_group;
      const bool bus_full = lanes >= profile.bus_budget;
      const bool group_busy = !group.empty() && busy_groups.count(group) != 0;
      const bool power_full = power_budget > 0.0 &&
                              power_in_use + p.weight > power_budget + 1e-9;
      if (bus_full || group_busy || power_full) {
        p.blocked = true;
        p.blocked_by_bus = bus_full;
        continue;
      }
      std::size_t seg_end = p.seg + 1;
      while (seg_end < segs.size() &&
             burst + segs[seg_end].cycles <= avail) {
        burst += segs[seg_end].cycles;
        ++seg_end;
      }
      const bool retest = p.needs_retest && p.pass == 1;
      if (p.seg == 0)
        pass_exec[pi].push_back(PassExec{p.pass, retest, 0, false, 0});
      pass_exec[pi].back().op_end = segs[seg_end - 1].op_end;
      sessions.push_back(FieldSession{p.assignment->memory, p.pass, retest,
                                      p.seg, seg_end, p.plan.reload_cycles,
                                      now, now + burst});
      p.seg = seg_end;
      p.active = true;
      p.busy += burst;
      active.push_back({pi, now + burst});
      power_in_use += p.weight;
      ++lanes;
      if (!group.empty()) busy_groups.insert(group);
    }
    report.peak_power = std::max(report.peak_power, power_in_use);

    // Advance to the next event: a burst retiring, a window opening or
    // closing.  No event and nothing active = the horizon has drained.
    std::uint64_t next = kNoEvent;
    for (const auto& a : active) next = std::min(next, a.end);
    for (const auto& p : parts) {
      if (p.finished || p.active || p.win == p.windows.size()) continue;
      const auto& w = p.windows[p.win];
      next = std::min(next, now < w.start ? w.start : w.end);
    }
    if (next == kNoEvent) break;

    // Contention stalls: in-window instances whose next segment fits but
    // that a shared resource keeps idle, until the next event.
    for (auto& p : parts) {
      if (!p.blocked) continue;
      const auto delta = next - now;
      p.stall += delta;
      if (p.blocked_by_bus) report.bus_stall_cycles += delta;
    }
    now = next;
  }

  // Phase 3 (parallel): execute the planned bursts.  Each participant's
  // verdicts depend only on (program, geometry, faults, seed, pass plan).
  std::atomic<int> done{0};
  common::parallel_shards(
      options_.jobs, static_cast<int>(parts.size()), [&](int pi) {
        common::throw_if_cancelled(options_.cancel);
        const auto& p = parts[static_cast<std::size_t>(pi)];
        execute_participant(p, algs[p.assign_index],
                            pass_exec[static_cast<std::size_t>(pi)], options_,
                            report.instances[p.assign_index]);
        if (options_.progress)
          options_.progress(done.fetch_add(1) + 1,
                            static_cast<int>(parts.size()));
      });

  // Metrics.
  std::uint64_t avail_total = 0;
  std::uint64_t busy_total = 0;
  for (const auto& p : parts) {
    auto& out = report.instances[p.assign_index];
    out.stall_cycles = p.stall;
    out.busy_cycles = p.busy;
    for (const auto& w : p.windows) avail_total += w.width();
    busy_total += p.busy;
    if (p.completions.empty()) {
      out.first_pass_cycle = horizon;
      out.staleness_cycles = horizon;
    } else {
      out.first_pass_cycle = p.completions.front();
      std::uint64_t worst = p.completions.front();
      for (std::size_t i = 0; i + 1 < p.completions.size(); ++i)
        worst = std::max(worst, p.completions[i + 1] - p.completions[i]);
      worst = std::max(worst, horizon - p.completions.back());
      out.staleness_cycles = worst;
    }
  }
  report.window_utilization =
      avail_total == 0
          ? 0.0
          : static_cast<double>(busy_total) / static_cast<double>(avail_total);

  std::sort(sessions.begin(), sessions.end(),
            [](const FieldSession& a, const FieldSession& b) {
              if (a.start_cycle != b.start_cycle)
                return a.start_cycle < b.start_cycle;
              return a.memory < b.memory;
            });
  report.sessions = std::move(sessions);

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

FieldReport run_field(const soc::SocDescription& chip,
                      const soc::TestPlan& plan,
                      const MissionProfile& profile,
                      const FieldOptions& options) {
  return FieldManager{options}.run(chip, plan, profile);
}

std::string format_field_report(const FieldReport& report) {
  std::string out;
  char line[256];
  auto emit = [&out, &line] { out += line; };

  std::snprintf(
      line, sizeof line,
      "chip '%s', profile '%s': horizon %llu cycles, bus budget %llu\n\n",
      report.chip.c_str(), report.profile.c_str(),
      static_cast<unsigned long long>(report.horizon),
      static_cast<unsigned long long>(report.bus_budget));
  emit();
  std::snprintf(line, sizeof line, "%-12s %4s %6s %10s %10s %9s %s\n",
                "memory", "pass", "segs", "start", "end", "reload", "kind");
  emit();
  for (const auto& s : report.sessions) {
    std::snprintf(line, sizeof line, "%-12s %4d %3zu-%-3zu %10llu %10llu %9llu %s\n",
                  s.memory.c_str(), s.pass, s.segment_begin, s.segment_end,
                  static_cast<unsigned long long>(s.start_cycle),
                  static_cast<unsigned long long>(s.end_cycle),
                  static_cast<unsigned long long>(s.reload_cycles),
                  s.retest ? "retest" : "test");
    emit();
  }
  std::snprintf(line, sizeof line,
                "\nwindow utilization %.1f%%, bus stalls %llu cycles, "
                "peak power %g\n\n",
                100.0 * report.window_utilization,
                static_cast<unsigned long long>(report.bus_stall_cycles),
                report.peak_power);
  emit();
  for (const auto& r : report.instances) {
    std::string note;
    if (r.repair) {
      if (!r.repair->repairable) {
        note = "  (unrepairable)";
      } else if (r.repair->retest_passed) {
        note = "  (repaired; retest clean)";
      } else {
        note = "  (repaired but retest failed)";
      }
    }
    std::snprintf(line, sizeof line,
                  "  %-12s %s  passes=%d first=%llu staleness=%llu "
                  "stall=%llu%s\n",
                  r.memory.c_str(), r.healthy() ? "HEALTHY" : "FAULTY ",
                  r.completed_passes(),
                  static_cast<unsigned long long>(r.first_pass_cycle),
                  static_cast<unsigned long long>(r.staleness_cycles),
                  static_cast<unsigned long long>(r.stall_cycles),
                  note.c_str());
    emit();
  }
  std::snprintf(line, sizeof line,
                "\nchip %s: %d/%zu memories healthy in the field\n",
                report.all_healthy() ? "PASS" : "FAIL", report.healthy_count(),
                report.instances.size());
  emit();
  return out;
}

}  // namespace pmbist::field
