#pragma once
// On-disk form of a planned in-field session table (.fieldsched) — the
// field-side artifact the certificate checker (lint/certify.h) verifies
// against the chip and mission profile it was planned for.
//
// Like the SoC .schedule format (soc/schedule_io.h) this records only the
// manager's decisions; segment costs, window membership, bus lanes and
// power weights are all re-derived at certification time.
//
// Format ('#' comments, one directive per line):
//
//   fieldschedule <name>
//   fsession <mem> pass=N seg=A..B start=N end=N reload=N [retest]
//
// seg=A..B names the half-open segment range [A, B) of the instance's
// SegmentPlan this burst streams.  `pmbist field --emit-schedule FILE`
// writes this file; `pmbist lint FILE --chip CHIP --profile PROFILE`
// certifies it (SC codes, docs/LINT.md).

#include <string>
#include <vector>

#include "field/manager.h"

namespace pmbist::field {

/// Raised on malformed .fieldsched text; the message carries the line
/// number.
class FieldScheduleError : public FieldError {
 public:
  using FieldError::FieldError;
};

/// One parsed `fsession` directive.
struct FieldScheduleEntry {
  FieldSession session;
  int line = -1;  ///< 1-based source line (-1 when built in memory)
  friend bool operator==(const FieldScheduleEntry&,
                         const FieldScheduleEntry&) = default;
};

/// The parsed file.
struct FieldScheduleFile {
  std::string name;
  std::vector<FieldScheduleEntry> entries;
  friend bool operator==(const FieldScheduleFile&,
                         const FieldScheduleFile&) = default;
};

/// Parses .fieldsched text.  Throws FieldScheduleError (with a line
/// number) on syntax errors; semantic checks are the certifier's job.
[[nodiscard]] FieldScheduleFile parse_field_schedule_text(
    const std::string& text);

/// Serializes a planned session table into .fieldsched text; the output
/// re-parses to equal sessions (round-trip).
[[nodiscard]] std::string to_field_schedule_text(
    const std::string& name, const std::vector<FieldSession>& sessions);

/// Converts live manager output into entries (line = -1), the form the
/// certifier consumes.
[[nodiscard]] std::vector<FieldScheduleEntry> field_schedule_entries(
    const std::vector<FieldSession>& sessions);

}  // namespace pmbist::field
