#include "lint/certify.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "bist/session.h"
#include "field/segment.h"
#include "soc/scheduler.h"

namespace pmbist::lint {
namespace {

/// The scheduler's own power comparison slack (scheduler.cpp / manager.cpp
/// use `sum > budget + 1e-9`): a certified schedule must satisfy exactly
/// the constraint the engines enforce, no tighter and no looser.
constexpr double kPowerTolerance = 1e-9;

/// One re-derived occupation interval [start, end) for the overlap / power
/// sweeps.  `end` always comes from re-derived costs, never the file.
struct Interval {
  std::string memory;
  std::string group;  ///< empty = dedicated controller seat
  double weight = 0.0;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  int line = -1;
};

std::string cycles_of(const Interval& iv) {
  std::string text = "[";
  text += std::to_string(iv.start);
  text += ", ";
  text += std::to_string(iv.end);
  text += ")";
  return text;
}

/// SC02: within every named share group, session intervals must be
/// pairwise disjoint — one controller seat cannot run two programs.
void check_seats(const std::vector<Interval>& intervals,
                 const std::string& unit, Report& report) {
  std::map<std::string, std::vector<const Interval*>> groups;
  for (const auto& iv : intervals)
    if (!iv.group.empty()) groups[iv.group].push_back(&iv);
  for (auto& [group, members] : groups) {
    std::sort(members.begin(), members.end(),
              [](const Interval* a, const Interval* b) {
                return std::tie(a->start, a->end, a->memory) <
                       std::tie(b->start, b->end, b->memory);
              });
    for (std::size_t i = 1; i < members.size(); ++i) {
      const Interval* prev = members[i - 1];
      const Interval* cur = members[i];
      if (cur->start < prev->end)
        report.add("SC02", unit, cur->line,
                   "share group '" + group + "': '" + cur->memory + "' " +
                       cycles_of(*cur) + " overlaps '" + prev->memory + "' " +
                       cycles_of(*prev) +
                       " on the same controller seat",
                   "sessions of one share group must serialize");
    }
  }
}

/// SC03: at every session start instant, the summed re-derived weights of
/// the sessions covering it must fit the budget (0 = unconstrained).
void check_power(const std::vector<Interval>& intervals, double budget,
                 const std::string& unit, Report& report) {
  if (budget <= 0.0) return;
  std::set<std::uint64_t> reported;
  for (const auto& at : intervals) {
    if (at.start == at.end) continue;
    if (reported.count(at.start)) continue;
    double sum = 0.0;
    for (const auto& iv : intervals)
      if (iv.start <= at.start && at.start < iv.end) sum += iv.weight;
    if (sum > budget + kPowerTolerance) {
      reported.insert(at.start);
      std::ostringstream os;
      os << "at cycle " << at.start << " the running sessions sum to toggle "
         << "weight " << sum << ", over the chip budget " << budget;
      report.add("SC03", unit, at.line, os.str(),
                 "stagger the overlapping sessions");
    }
  }
}

/// SC10: at every burst start instant, at most bus_budget bursts may
/// stream concurrently (each active burst holds one test-bus lane).
void check_bus(const std::vector<Interval>& intervals, std::uint64_t lanes,
               const std::string& unit, Report& report) {
  std::set<std::uint64_t> reported;
  for (const auto& at : intervals) {
    if (at.start == at.end) continue;
    if (reported.count(at.start)) continue;
    std::uint64_t streaming = 0;
    for (const auto& iv : intervals)
      if (iv.start <= at.start && at.start < iv.end) ++streaming;
    if (streaming > lanes) {
      reported.insert(at.start);
      report.add("SC10", unit, at.line,
                 "at cycle " + std::to_string(at.start) + ", " +
                     std::to_string(streaming) +
                     " bursts stream concurrently but the profile grants " +
                     std::to_string(lanes) + " test-bus lane(s)",
                 "serialize bursts or raise bus_budget");
    }
  }
}

/// Everything the certifier re-derives about one SoC plan assignment.
struct SocDerived {
  const soc::TestAssignment* assignment = nullptr;
  std::uint64_t load = 0;  ///< program (re)load cycles, from the controller
  std::uint64_t test = 0;  ///< exact run cycles, from bist::count_cycles
  double weight = 0.0;
  bool can_retest = false;  ///< spares + bit-oriented + injected defects
};

/// Everything the certifier re-derives about one field participant.
struct FieldDerived {
  const soc::TestAssignment* assignment = nullptr;
  field::SegmentPlan plan;
  double weight = 0.0;
  std::vector<field::IdleWindow> windows;  ///< horizon-clipped, sorted
  bool can_retest = false;
};

}  // namespace

Report certify_soc(const soc::SocDescription& chip, const soc::TestPlan& plan,
                   const std::vector<soc::ScheduleEntry>& entries,
                   std::string unit, const CertifyOptions& options) {
  Report report;
  std::map<std::string, SocDerived> derived;
  try {
    plan.validate(chip);
    for (const auto& a : plan.assignments()) {
      const auto* mem = chip.find(a.memory);
      SocDerived d;
      d.assignment = &a;
      const auto alg = soc::resolve_algorithm(a.algorithm);
      const auto controller =
          soc::make_plan_controller(a.controller, alg, mem->geometry, &d.load);
      d.test = bist::count_cycles(*controller, options.max_cycles);
      d.weight = plan.effective_weight(a, *mem);
      d.can_retest = mem->repair.any() && mem->geometry.bit_oriented() &&
                     !mem->faults.empty();
      derived.emplace(a.memory, std::move(d));
    }
  } catch (const std::exception& e) {
    report.add("SC00", std::move(unit), -1,
               std::string{"chip/plan context is not certifiable: "} +
                   e.what(),
               "fix the chip file first (pmbist lint CHIP)");
    return report;
  }

  // Per-session checks + the re-derived interval list for the sweeps.
  std::vector<Interval> intervals;
  std::map<std::pair<std::string, bool>, const soc::ScheduleEntry*> seen;
  for (const auto& e : entries) {
    const auto it = derived.find(e.memory);
    if (it == derived.end()) {
      report.add("SC01", unit, e.line,
                 "session names '" + e.memory +
                     "' but the plan assigns no test to it",
                 "every session must match an assign directive");
      continue;
    }
    const SocDerived& d = it->second;
    if (const auto [pos, fresh] = seen.emplace(
            std::make_pair(e.memory, e.retest), &e);
        !fresh) {
      report.add("SC01", unit, e.line,
                 "duplicate " + std::string{e.retest ? "retest " : ""} +
                     "session for '" + e.memory + "' (first on line " +
                     std::to_string(pos->second->line) + ")",
                 "one session per memory per pass");
      continue;
    }
    if (e.load != d.load || e.test != d.test)
      report.add("SC04", unit, e.line,
                 "'" + e.memory + "' claims load=" + std::to_string(e.load) +
                     " test=" + std::to_string(e.test) +
                     " but the controller re-costs to load=" +
                     std::to_string(d.load) + " test=" +
                     std::to_string(d.test),
                 "the stored cycle costs must equal the re-derived ones");
    if (e.has_weight && std::abs(e.weight - d.weight) > kPowerTolerance) {
      std::ostringstream os;
      os << "'" << e.memory << "' claims weight " << e.weight
         << " but the plan's effective weight is " << d.weight;
      report.add("SC05", unit, e.line, os.str(),
                 "drop weight= to inherit the plan's value");
    }
    intervals.push_back(Interval{e.memory, d.assignment->share_group,
                                 d.weight, e.start, e.start + d.load + d.test,
                                 e.line});
  }

  // SC06: the power-on sweep must test every assignment.
  for (const auto& [memory, d] : derived) {
    (void)d;
    if (!seen.count({memory, false}))
      report.add("SC06", unit, -1,
                 "assigned memory '" + memory +
                     "' has no first-pass session: it ships untested",
                 "every assignment needs a session");
  }

  // SC07: a BISR retest must follow its triggering first pass and target
  // an instance on which repair can engage at all.
  for (const auto& [key, entry] : seen) {
    if (!key.second) continue;
    const SocDerived& d = derived.at(key.first);
    if (!d.can_retest) {
      report.add("SC07", unit, entry->line,
                 "retest session for '" + key.first +
                     "' but repair can never engage (needs spare resources, "
                     "a bit-oriented array and injected defects)",
                 "drop the retest session");
      continue;
    }
    const auto first = seen.find({key.first, false});
    if (first == seen.end()) continue;  // SC06 already reported
    const std::uint64_t first_end =
        first->second->start + d.load + d.test;
    if (entry->start < first_end)
      report.add("SC07", unit, entry->line,
                 "retest of '" + key.first + "' starts at cycle " +
                     std::to_string(entry->start) +
                     ", before its triggering session ends at " +
                     std::to_string(first_end),
                 "repair needs the first-pass fail bitmap");
  }

  check_seats(intervals, unit, report);
  check_power(intervals, plan.power().budget, unit, report);
  return report;
}

Report certify_soc(const soc::SocDescription& chip, const soc::TestPlan& plan,
                   const std::vector<soc::ScheduledSession>& schedule,
                   std::string unit, const CertifyOptions& options) {
  return certify_soc(chip, plan, soc::schedule_entries(schedule),
                     std::move(unit), options);
}

Report certify_field(const soc::SocDescription& chip,
                     const soc::TestPlan& plan,
                     const field::MissionProfile& profile,
                     const std::vector<field::FieldScheduleEntry>& entries,
                     std::string unit, const CertifyOptions& options) {
  Report report;
  std::uint64_t horizon = 0;
  std::map<std::string, FieldDerived> derived;
  try {
    plan.validate(chip);
    profile.validate(chip);
    horizon = profile.effective_horizon();
    for (const auto& a : plan.assignments()) {
      const auto* set = profile.find(a.memory);
      if (set == nullptr) continue;  // not a field participant
      const auto* mem = chip.find(a.memory);
      FieldDerived d;
      d.assignment = &a;
      d.plan = field::segment_transparent(soc::resolve_algorithm(a.algorithm),
                                          mem->geometry, a.controller,
                                          options.max_cycles);
      d.weight = plan.effective_weight(a, *mem);
      d.can_retest = mem->repair.any() && mem->geometry.bit_oriented() &&
                     !mem->faults.empty();
      for (auto w : set->windows) {
        if (w.start >= horizon) continue;
        w.end = std::min(w.end, horizon);
        if (w.start < w.end) d.windows.push_back(w);
      }
      std::sort(d.windows.begin(), d.windows.end(),
                [](const field::IdleWindow& a_, const field::IdleWindow& b_) {
                  return a_.start < b_.start;
                });
      derived.emplace(a.memory, std::move(d));
    }
  } catch (const std::exception& e) {
    report.add("SC00", std::move(unit), -1,
               std::string{"chip/plan/profile context is not certifiable: "} +
                   e.what(),
               "fix the chip and profile files first");
    return report;
  }

  std::vector<Interval> intervals;
  std::map<std::string, std::vector<const field::FieldScheduleEntry*>>
      by_memory;
  for (const auto& entry : entries) {
    const auto& s = entry.session;
    const auto it = derived.find(s.memory);
    if (it == derived.end()) {
      report.add("SC01", unit, entry.line,
                 "burst names '" + s.memory +
                     "' but it is not a field participant (no assignment or "
                     "no idle windows)",
                 "every burst must match an assigned, windowed memory");
      continue;
    }
    const FieldDerived& d = it->second;
    const auto& segs = d.plan.segments;
    if (s.segment_begin >= s.segment_end || s.segment_end > segs.size()) {
      report.add("SC09", unit, entry.line,
                 "'" + s.memory + "' burst names segments [" +
                     std::to_string(s.segment_begin) + ", " +
                     std::to_string(s.segment_end) +
                     ") but the segment plan has " +
                     std::to_string(segs.size()) + " segment(s)",
                 "segment indices must form a non-empty in-range window");
      continue;
    }
    std::uint64_t cost = d.plan.reload_cycles;
    for (std::size_t i = s.segment_begin; i < s.segment_end; ++i)
      cost += segs[i].cycles;
    if (s.reload_cycles != d.plan.reload_cycles ||
        s.end_cycle - s.start_cycle != cost)
      report.add("SC04", unit, entry.line,
                 "'" + s.memory + "' burst claims reload=" +
                     std::to_string(s.reload_cycles) + " duration=" +
                     std::to_string(s.end_cycle - s.start_cycle) +
                     " but the segments re-cost to reload=" +
                     std::to_string(d.plan.reload_cycles) + " duration=" +
                     std::to_string(cost),
                 "burst duration = reload + sum of its segment cycles");
    bool inside = false;
    for (const auto& w : d.windows)
      if (w.start <= s.start_cycle && s.end_cycle <= w.end) {
        inside = true;
        break;
      }
    if (!inside)
      report.add("SC08", unit, entry.line,
                 "'" + s.memory + "' burst [" +
                     std::to_string(s.start_cycle) + ", " +
                     std::to_string(s.end_cycle) +
                     ") lies outside every declared idle window "
                     "(horizon-clipped)",
                 "bursts may only run while the memory is idle");
    if (s.retest && s.pass == 0)
      report.add("SC07", unit, entry.line,
                 "'" + s.memory + "' flags pass 0 as a retest: the retest "
                 "must follow the triggering first pass",
                 "repair needs the first-pass fail bitmap");
    else if (s.retest && !d.can_retest)
      report.add("SC07", unit, entry.line,
                 "retest burst for '" + s.memory +
                     "' but repair can never engage (needs spare resources, "
                     "a bit-oriented array and injected defects)",
                 "drop the retest flag");
    by_memory[s.memory].push_back(&entry);
    intervals.push_back(Interval{s.memory, d.assignment->share_group,
                                 d.weight, s.start_cycle, s.end_cycle,
                                 entry.line});
  }

  // SC09: per instance, bursts must chain — time-ordered, non-overlapping,
  // each resuming exactly where the previous one checkpointed, passes
  // strictly sequential from (pass 0, segment 0).
  for (auto& [memory, bursts] : by_memory) {
    const FieldDerived& d = derived.at(memory);
    std::sort(bursts.begin(), bursts.end(),
              [](const field::FieldScheduleEntry* a,
                 const field::FieldScheduleEntry* b) {
                return std::tie(a->session.start_cycle,
                                a->session.end_cycle) <
                       std::tie(b->session.start_cycle, b->session.end_cycle);
              });
    int expected_pass = 0;
    std::size_t expected_seg = 0;
    std::uint64_t prev_end = 0;
    for (const auto* entry : bursts) {
      const auto& s = entry->session;
      if (s.segment_begin >= s.segment_end ||
          s.segment_end > d.plan.segments.size())
        break;  // SC09 already reported above; the chain is unrecoverable
      if (s.start_cycle < prev_end) {
        report.add("SC09", unit, entry->line,
                   "'" + memory + "' burst starts at cycle " +
                       std::to_string(s.start_cycle) +
                       " while the previous burst runs until " +
                       std::to_string(prev_end),
                   "one instance streams one burst at a time");
        break;
      }
      if (s.pass != expected_pass || s.segment_begin != expected_seg) {
        report.add("SC09", unit, entry->line,
                   "'" + memory + "' burst claims pass " +
                       std::to_string(s.pass) + " segment " +
                       std::to_string(s.segment_begin) +
                       " but the resume chain expects pass " +
                       std::to_string(expected_pass) + " segment " +
                       std::to_string(expected_seg),
                   "bursts must resume exactly at the previous checkpoint");
        break;
      }
      expected_seg = s.segment_end;
      if (expected_seg == d.plan.segments.size()) {
        ++expected_pass;
        expected_seg = 0;
      }
      prev_end = s.end_cycle;
    }
  }

  check_seats(intervals, unit, report);
  check_power(intervals, plan.power().budget, unit, report);
  check_bus(intervals, profile.bus_budget, unit, report);
  return report;
}

Report certify_field(const soc::SocDescription& chip,
                     const soc::TestPlan& plan,
                     const field::MissionProfile& profile,
                     const field::FieldReport& fieldreport, std::string unit,
                     const CertifyOptions& options) {
  Report report = certify_field(chip, plan, profile,
                                field::field_schedule_entries(
                                    fieldreport.sessions),
                                unit, options);
  // SC11: an interrupted transparent pass must not carry a signature —
  // the MISR prediction covers the whole stream, so a partial signature
  // would let a truncated run masquerade as a completed one.
  for (const auto& inst : fieldreport.instances)
    for (const auto& pass : inst.passes)
      if (pass.state == bist::SessionState::Interrupted &&
          pass.signature.has_value())
        report.add("SC11", unit, -1,
                   "'" + inst.memory + "' pass " + std::to_string(pass.pass) +
                       " was interrupted but carries a MISR signature",
                   "signatures are only valid for completed passes");
  return report;
}

}  // namespace pmbist::lint
