#pragma once
// Mission-profile lint pass (FP codes).  Parses the profile text with
// validation off and reports *every* problem — overlapping or zero-width
// idle windows, a zero bus budget, windows wasted at/beyond the horizon —
// plus, when the chip text is supplied, the cross-file checks: windows
// naming unknown memories and tested memories the profile never gives an
// idle window to (which would ship with staleness = the whole horizon).

#include <string>

#include "lint/diagnostics.h"

namespace pmbist::lint {

/// Lints mission-profile text.  `unit` names the file in diagnostics;
/// indexes are 1-based line numbers where known.  `chip_text`, when
/// non-empty, is the chip-file TEXT the profile is checked against (FP04 /
/// FP05 need it; without it those checks are skipped).
[[nodiscard]] Report lint_profile_text(const std::string& text,
                                       std::string unit = "profile",
                                       const std::string& chip_text = {});

}  // namespace pmbist::lint
