#include "lint/diagnostics.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <sstream>
#include <tuple>
#include <vector>

namespace pmbist::lint {
namespace {

// The stable code registry.  Append-only; codes keep their meaning forever.
constexpr std::array<CodeInfo, 65> kCodes{{
    // March algorithms (MA).
    {"MA00", Severity::Error, "march text does not parse"},
    {"MA01", Severity::Error, "structurally invalid march algorithm"},
    {"MA02", Severity::Error, "algorithm performs no read operations"},
    {"MA03", Severity::Error,
     "read expects a value no healthy cell can hold at that point"},
    {"MA04", Severity::Warning, "ill-placed or inconsistent pause elements"},
    {"MA05", Severity::Note, "statically proven fault-class guarantees"},
    {"MA06", Severity::Warning,
     "algorithm does not guarantee stuck-at detection"},
    // Microcode programs (UC).
    {"UC00", Severity::Error, "microcode hex image does not parse"},
    {"UC02", Severity::Error, "program exceeds the controller storage depth"},
    {"UC03", Severity::Error, "unreachable instruction (dead code)"},
    {"UC04", Severity::Error,
     "control flow runs off the end of the program"},
    {"UC05", Severity::Error, "empty or nested Repeat window"},
    {"UC06", Severity::Error, "no reachable read instruction"},
    {"UC07", Severity::Warning,
     "Repeat with an identity complement mask (reference register unused)"},
    {"UC08", Severity::Warning, "reachable no-op memory sweep"},
    // pFSM instruction buffers (PF).
    {"PF00", Severity::Error, "pFSM hex image does not parse"},
    {"PF02", Severity::Error, "program exceeds the instruction-buffer depth"},
    {"PF03", Severity::Error, "mode bits outside SM0..SM7", true},
    {"PF04", Severity::Error,
     "hold on a loop-control row (hold-condition deadlock)"},
    {"PF05", Severity::Error,
     "no reachable port-loop row: the circular buffer never reaches Done"},
    {"PF06", Severity::Warning, "unused buffer rows (unreachable)"},
    {"PF07", Severity::Error, "no reachable component row (tests nothing)"},
    // Translation validation (EQ) — `pmbist lint --against <algorithm>`.
    {"EQ00", Severity::Error,
     "--against source does not resolve or does not apply to this input"},
    {"EQ01", Severity::Error,
     "image is not liftable to a march algorithm"},
    {"EQ02", Severity::Error,
     "image does not realize the --against algorithm (counterexample trace)"},
    {"EQ03", Severity::Warning,
     "image lacks the data-background or port loop tail"},
    {"EQ04", Severity::Note, "image proven equivalent to the source algorithm"},
    // Chip files (CH).
    {"CH01", Severity::Error, "duplicate memory instance name"},
    {"CH02", Severity::Error, "chip file does not parse"},
    {"CH03", Severity::Error, "assignment names an unknown memory"},
    {"CH04", Severity::Error, "algorithm does not resolve or is invalid"},
    {"CH05", Severity::Error, "algorithm is not pFSM-mappable"},
    {"CH06", Severity::Error,
     "hardwired controller inside a share group"},
    {"CH07", Severity::Error,
     "session power weight can never fit the budget"},
    {"CH08", Severity::Warning, "memory is never assigned a test"},
    {"CH09", Severity::Warning,
     "spare resources on a word-oriented instance (repair never engages)"},
    {"CH10", Severity::Warning,
     "injected defects but no spare resources to repair them"},
    {"CH11", Severity::Warning,
     "injected fault class not guaranteed by the assigned algorithm"},
    // Mission profiles (FP).
    {"FP00", Severity::Error, "profile file does not parse"},
    {"FP01", Severity::Error, "overlapping idle windows for one memory"},
    {"FP02", Severity::Error, "empty (zero-width) idle window"},
    {"FP03", Severity::Error, "bus budget is zero"},
    {"FP04", Severity::Error, "window names an unknown memory"},
    {"FP05", Severity::Warning,
     "tested memory has no usable idle window (never tested in the field)"},
    {"FP06", Severity::Warning,
     "idle window starts at or beyond the horizon"},
    // Schedule certificates (SC) — `pmbist lint --certify` and the
    // independent checker in lint/certify.h.
    {"SC00", Severity::Error,
     "schedule does not parse or lacks its chip/profile context"},
    {"SC01", Severity::Error,
     "session names an unknown, unassigned or duplicated memory"},
    {"SC02", Severity::Error,
     "controller-seat overlap inside one share group"},
    {"SC03", Severity::Error,
     "concurrent sessions exceed the chip power budget"},
    {"SC04", Severity::Error,
     "session duration disagrees with the re-derived controller cost"},
    {"SC05", Severity::Error,
     "session weight disagrees with the plan's effective weight"},
    {"SC06", Severity::Error, "assigned memory is never scheduled"},
    {"SC07", Severity::Error,
     "BISR retest precedes its triggering session or can never engage"},
    {"SC08", Severity::Error,
     "field burst outside every declared idle window"},
    {"SC09", Severity::Error,
     "field burst breaks the segment resume chain"},
    {"SC10", Severity::Error,
     "concurrent field bursts exceed the test-bus lanes"},
    {"SC11", Severity::Error,
     "interrupted transparent pass carries a signature", true},
    // Control-flow structure of controller images (LT) — the CFG analysis
    // in lint/cfg.h and the lifter's structured rejections (lint/lifter.h).
    {"LT00", Severity::Error, "unreachable basic block"},
    {"LT01", Severity::Error, "irreducible control-flow region", true},
    {"LT02", Severity::Error,
     "cell-loop body disagrees with the first-cell pass"},
    {"LT03", Severity::Error,
     "control flow never makes progress (hold cycle with no exit)"},
    {"LT04", Severity::Error, "address steps mid-element"},
    {"LT05", Severity::Error,
     "op group runs on one cell only (no enclosing cell loop)"},
    {"LT06", Severity::Error,
     "operation or pause after the data-background loop"},
    {"LT07", Severity::Error, "misplaced or duplicated loop structure"},
}};

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

void Report::add(std::string_view code, std::string unit, int index,
                 std::string message, std::string hint) {
  Diagnostic d;
  d.code = std::string{code};
  d.severity = severity_of(code);
  d.unit = std::move(unit);
  d.index = index;
  d.message = std::move(message);
  d.hint = std::move(hint);
  diagnostics_.push_back(std::move(d));
}

void Report::merge(Report other) {
  for (auto& d : other.diagnostics_) diagnostics_.push_back(std::move(d));
}

int Report::count(Severity s) const noexcept {
  int n = 0;
  for (const auto& d : diagnostics_)
    if (d.severity == s) ++n;
  return n;
}

bool Report::has_code(std::string_view code) const noexcept {
  for (const auto& d : diagnostics_)
    if (d.code == code) return true;
  return false;
}

std::span<const CodeInfo> all_codes() { return kCodes; }

const CodeInfo* find_code(std::string_view code) {
  for (const auto& info : kCodes)
    if (info.code == code) return &info;
  return nullptr;
}

Severity severity_of(std::string_view code) {
  const auto* info = find_code(code);
  return info != nullptr ? info->severity : Severity::Error;
}

std::string format_text(const Report& report) {
  std::ostringstream os;
  for (const auto& d : report.diagnostics()) {
    os << to_string(d.severity) << '[' << d.code << "] " << d.unit;
    if (d.index >= 0) os << ':' << d.index;
    os << ": " << d.message << '\n';
    if (!d.hint.empty()) os << "    hint: " << d.hint << '\n';
  }
  return os.str();
}

std::string format_json(const Report& report) {
  // Machine-readable output is sorted by (unit, code, location) so the
  // byte stream never depends on pass emission order (or a future
  // parallel lint); the human-readable text keeps emission order, which
  // follows the input's own structure.
  std::vector<const Diagnostic*> ordered;
  ordered.reserve(report.diagnostics().size());
  for (const auto& d : report.diagnostics()) ordered.push_back(&d);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Diagnostic* a, const Diagnostic* b) {
                     return std::tie(a->unit, a->code, a->index) <
                            std::tie(b->unit, b->code, b->index);
                   });
  std::ostringstream os;
  os << "{\"diagnostics\":[";
  bool first = true;
  for (const auto* dp : ordered) {
    const auto& d = *dp;
    if (!first) os << ',';
    first = false;
    os << "{\"code\":";
    append_json_string(os, d.code);
    os << ",\"severity\":";
    append_json_string(os, to_string(d.severity));
    os << ",\"unit\":";
    append_json_string(os, d.unit);
    os << ",\"index\":" << d.index;
    os << ",\"message\":";
    append_json_string(os, d.message);
    os << ",\"hint\":";
    append_json_string(os, d.hint);
    os << '}';
  }
  os << "],\"errors\":" << report.count(Severity::Error)
     << ",\"warnings\":" << report.count(Severity::Warning)
     << ",\"notes\":" << report.count(Severity::Note) << "}";
  return os.str();
}

std::string format_cli(const Report& report, const std::string& unit,
                       bool json) {
  if (json) return format_json(report) + "\n";
  std::ostringstream os;
  os << format_text(report);
  os << unit << ": " << report.count(Severity::Error) << " error(s), "
     << report.count(Severity::Warning) << " warning(s), "
     << report.count(Severity::Note) << " note(s)\n";
  return os.str();
}

}  // namespace pmbist::lint
