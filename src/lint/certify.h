#pragma once
// Schedule certificate checker: independent static verification that a
// SoC schedule (soc/schedule_io.h) or an in-field session table
// (field/schedule_io.h) is feasible for the chip (and mission profile) it
// claims to test.
//
// The certifier re-derives everything from first principles — the chip
// file, the profile and the raw session list, never the scheduler's
// internal state: session costs come from re-constructing the real
// controllers (soc::make_plan_controller + bist::count_cycles;
// field::segment_transparent), weights from TestPlan::effective_weight,
// and feasibility from interval-overlap analysis over the declared
// start/end cycles.  It proves *feasibility*, not optimality: any session
// table that violates no constraint passes, whether or not the greedy
// engines would have produced it.
//
// Checks (the SC diagnostic family, docs/LINT.md):
//
//   SC00  missing/invalid chip or profile context (driver-level)
//   SC01  unknown, unassigned or duplicated memory in a session
//   SC02  controller-seat overlap: two sessions of one share group
//         overlap in time (half-open intervals)
//   SC03  power overdraft: at some instant the summed re-derived toggle
//         weights exceed the chip budget (scheduler tolerance, 1e-9)
//   SC04  re-cost mismatch: stored load/test cycles (soc) or burst
//         duration/reload (field) disagree with the re-derived controller
//         or segment costs
//   SC05  stored weight disagrees with the plan's effective weight
//   SC06  an assigned memory never gets a first-pass session
//   SC07  BISR retest precedes its triggering session, or targets an
//         instance on which repair can never engage
//   SC08  field burst outside every declared idle window (horizon-clipped)
//   SC09  field burst breaks the segment resume chain (out-of-range
//         segment indices, non-contiguous resume, overlapping bursts of
//         one instance, pass started before the previous one finished)
//   SC10  test-bus overdraft: more concurrent field bursts than
//         MissionProfile::bus_budget lanes
//   SC11  an interrupted transparent pass carries a MISR signature
//         (FieldReport overload only — the on-disk table has no
//         signatures; pinned api_only like PF03)
//
// `pmbist lint --certify` and the serve `certify` option run these after
// every scheduler invocation; seeded-bad schedules in tests/lint_cases/
// pin each rejection.

#include <cstdint>
#include <string>
#include <vector>

#include "field/manager.h"
#include "field/schedule_io.h"
#include "lint/diagnostics.h"
#include "soc/schedule_io.h"

namespace pmbist::lint {

struct CertifyOptions {
  /// Runaway-controller bound for the re-costing runs (matches the
  /// scheduler/manager default).
  std::uint64_t max_cycles = 1'000'000'000;
};

/// Certifies a SoC schedule against (chip, plan).  Never throws on a bad
/// schedule — violations become SC diagnostics; an inconsistent chip/plan
/// context itself becomes SC00.
[[nodiscard]] Report certify_soc(const soc::SocDescription& chip,
                                 const soc::TestPlan& plan,
                                 const std::vector<soc::ScheduleEntry>& entries,
                                 std::string unit = "schedule",
                                 const CertifyOptions& options = {});

/// Convenience overload for live scheduler output.
[[nodiscard]] Report certify_soc(
    const soc::SocDescription& chip, const soc::TestPlan& plan,
    const std::vector<soc::ScheduledSession>& schedule,
    std::string unit = "schedule", const CertifyOptions& options = {});

/// Certifies an in-field session table against (chip, plan, profile).
[[nodiscard]] Report certify_field(
    const soc::SocDescription& chip, const soc::TestPlan& plan,
    const field::MissionProfile& profile,
    const std::vector<field::FieldScheduleEntry>& entries,
    std::string unit = "fieldschedule", const CertifyOptions& options = {});

/// Certifies a full FieldReport: the session table plus the
/// signature-discipline check (SC11) over the executed passes.
[[nodiscard]] Report certify_field(const soc::SocDescription& chip,
                                   const soc::TestPlan& plan,
                                   const field::MissionProfile& profile,
                                   const field::FieldReport& report,
                                   std::string unit = "fieldschedule",
                                   const CertifyOptions& options = {});

}  // namespace pmbist::lint
