#include "lint/program_lint.h"

#include <string>
#include <vector>

#include "lint/cfg.h"
#include "lint/lifter.h"
#include "mbist_pfsm/components.h"

namespace pmbist::lint {
namespace {

using mbist_ucode::Flow;
using mbist_ucode::Rw;

/// Structure pass shared by both ISAs: when the lifter finds no canonical
/// march behind the image, surface its stable code (LT02..LT07 / PF03) with
/// the reason and counterexample trace.  Skipped when an earlier pass
/// already emitted the same code (lint_pfsm's own PF03 row check).
void add_lift_rejection(const LiftResult& lifted, const std::string& unit,
                        Report& report) {
  if (lifted.ok || report.has_code(lifted.code)) return;
  std::string message = lifted.why;
  for (const auto& line : lifted.trace) message += "\n      " + line;
  report.add(lifted.code, unit, lifted.index, std::move(message),
             "see docs/EQUIV.md (control-flow recovery) for the liftable "
             "forms");
}

}  // namespace

Report lint_ucode(const mbist_ucode::MicrocodeProgram& program,
                  const UcodeLintOptions& options) {
  const std::string unit = program.name().empty() ? "ucode" : program.name();
  Report report;
  const auto& code = program.instructions();
  const int n = program.size();

  if (n > options.storage_depth)
    report.add("UC02", unit, -1,
               "program needs " + std::to_string(n) +
                   " words but the storage unit holds " +
                   std::to_string(options.storage_depth),
               "raise --storage-depth or shorten the program "
               "(symmetric Repeat encoding halves symmetric algorithms)");

  if (n == 0) {
    report.add("UC06", unit, -1,
               "empty program: the controller terminates without testing",
               "load at least one write/read sweep");
    return report;
  }

  const Cfg cfg = build_ucode_cfg(program);
  const auto& reachable = cfg.reachable_insn;
  bool any_read = false;
  int reachable_repeats = 0;
  for (int i = 0; i < n; ++i) {
    const auto& instr = code[static_cast<std::size_t>(i)];
    if (!reachable[static_cast<std::size_t>(i)]) {
      report.add("UC03", unit, i,
                 "instruction is unreachable (dead code): " +
                     instr.disassemble(),
                 "remove it, or fix the flow field that skips it");
      continue;
    }
    any_read = any_read || instr.rw == Rw::Read;

    const bool falls_through =
        instr.flow != Flow::Terminate && instr.flow != Flow::LoopPort;
    if (falls_through && i + 1 == n)
      report.add("UC04", unit, i,
                 "control flow runs off the end of the program "
                 "(instruction-counter exhaustion ends the test silently)",
                 "end the program with TERMINATE or LOOP_PORT");

    if (instr.flow == Flow::Repeat) {
      ++reachable_repeats;
      if (i <= 1)
        report.add("UC05", unit, i,
                   "empty Repeat window: the repeat path re-executes "
                   "instructions [1.." +
                       std::to_string(i - 1) + "]",
                   "a Repeat needs at least one instruction between index 1 "
                   "and itself");
      else if (reachable_repeats > 1)
        report.add("UC05", unit, i,
                   "nested Repeat windows: the single repeat bit makes the "
                   "two Repeats toggle each other forever (livelock)",
                   "encode at most one symmetric fold per program");
      else if (!instr.addr_down && !instr.data_inv && !instr.cmp_inv)
        report.add("UC07", unit, i,
                   "Repeat with an identity complement mask re-executes the "
                   "window unchanged",
                   "set the order/data/compare complement bits, or drop the "
                   "Repeat (the algorithm is not symmetric)");
    }

    if (instr.rw == Rw::Nop &&
        (instr.flow == Flow::Next || instr.flow == Flow::LoopCell ||
         instr.flow == Flow::LoopSelf))
      report.add("UC08", unit, i,
                 "no-op memory sweep: the instruction walks addresses "
                 "without reading or writing",
                 "set the rw field, or remove the instruction");
  }

  if (!any_read)
    report.add("UC06", unit, -1,
               "no reachable read instruction: the program observes nothing",
               "a march detects faults only through reads");

  // Block-granular dead-code view on top of the per-instruction UC03
  // lines: one LT00 per unreachable basic block, naming its extent (what
  // `--fix` removes in one step).
  for (const auto& block : cfg.blocks) {
    if (block.reachable) continue;
    report.add("LT00", unit, block.first,
               "unreachable basic block [" + std::to_string(block.first) +
                   ".." + std::to_string(block.last) +
                   "]: no flow edge reaches it",
               "`pmbist lint --fix` removes unreachable blocks exactly");
  }

  add_lift_rejection(lift_ucode(program), unit, report);
  return report;
}

Report lint_pfsm(const mbist_pfsm::PfsmProgram& program,
                 const PfsmLintOptions& options) {
  const std::string unit = program.name().empty() ? "pfsm" : program.name();
  Report report;
  const auto& code = program.instructions();
  const int n = program.size();

  if (n > options.buffer_depth)
    report.add("PF02", unit, -1,
               "program needs " + std::to_string(n) +
                   " rows but the instruction buffer holds " +
                   std::to_string(options.buffer_depth),
               "raise --buffer-depth or split the test");

  if (n == 0) {
    report.add("PF07", unit, -1,
               "empty buffer: the controller ends without running a "
               "component",
               "load at least one SM row and a port-loop row");
    return report;
  }

  // Row i chains to (i+1) mod n; path-A rows also restart at 0 (per
  // background), path-B rows restart at 0 (per port) and are the only exit
  // to Done — so the reachable region is the prefix up to the first path-B
  // row, which the CFG derives from the same edges.
  const Cfg cfg = build_pfsm_cfg(program);
  const auto& reachable = cfg.reachable_insn;
  bool saw_port_loop = false;
  for (int i = 0; i < n; ++i) {
    const auto& row = code[static_cast<std::size_t>(i)];
    if (reachable[static_cast<std::size_t>(i)] && row.ctrl && row.ctrl_op)
      saw_port_loop = true;
  }

  bool any_component = false;
  for (int i = 0; i < n; ++i) {
    const auto& row = code[static_cast<std::size_t>(i)];
    if (!reachable[static_cast<std::size_t>(i)]) {
      report.add("PF06", unit, i,
                 "unused buffer row (after the port-loop row): " +
                     row.disassemble(),
                 "remove it, or move it before the port loop");
      continue;
    }
    if (row.ctrl) {
      if (row.hold_after)
        report.add("PF04", unit, i,
                   "hold on a loop-control row: the upper FSM would wait "
                   "for a lower-controller Done that never comes "
                   "(deadlock in hardware; ignored by the model)",
                   "set hold_after on the last component row instead");
      continue;
    }
    any_component = true;
    if (row.mode >= mbist_pfsm::kNumComponents)
      report.add("PF03", unit, i,
                 "mode SM" + std::to_string(static_cast<int>(row.mode)) +
                     " is outside SM0..SM7 (out of bounds in the component "
                     "table)",
                 "the lower controller realizes only SM0..SM7");
  }

  if (!saw_port_loop)
    report.add("PF05", unit, -1,
               "no reachable port-loop row: the circular buffer wraps "
               "forever and never reaches Done",
               "end the buffer with a path-B (port loop / test end) row");
  if (!any_component)
    report.add("PF07", unit, -1,
               "no reachable component row: the buffer performs no memory "
               "operations",
               "add SM rows before the loop-control tail");

  add_lift_rejection(lift_pfsm(program), unit, report);
  return report;
}

}  // namespace pmbist::lint
