#pragma once
// Chip-file semantic lint pass (CH codes).  Parses the chip text with plan
// validation off and then reports *every* semantic problem — duplicate
// instance names, unknown memories, unresolvable algorithms, pFSM
// assignments outside SM0..SM7, hardwired controllers inside share groups,
// statically infeasible power weights — plus the ship-it warnings: declared
// but untested memories, spare resources that can never engage, defects
// with nothing to repair them, and injected faults the assigned algorithm
// does not guarantee to detect (via the static coverage prover).

#include <string>

#include "lint/diagnostics.h"

namespace pmbist::lint {

/// Lints chip-file text.  `unit` names the file in diagnostics; indexes are
/// 1-based line numbers where known.
[[nodiscard]] Report lint_chip_text(const std::string& text,
                                    std::string unit = "chip");

}  // namespace pmbist::lint
