#include "lint/chip_lint.h"

#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "lint/prover.h"
#include "mbist_pfsm/compiler.h"
#include "soc/chip.h"

namespace pmbist::lint {
namespace {

using march::MarchAlgorithm;

/// Crude whitespace tokenizer for the line pre-scan (the real parser owns
/// quoting; directive and instance-name tokens never contain quotes).
std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is{line.substr(0, line.find('#'))};
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

struct PreScan {
  std::map<std::string, int> mem_line;     ///< first `mem <name>` line
  std::map<std::string, int> assign_line;  ///< first `assign <name>` line
  std::vector<std::pair<std::string, int>> duplicate_mems;
};

PreScan pre_scan(const std::string& text) {
  PreScan scan;
  std::istringstream lines{text};
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const auto tokens = split_tokens(line);
    if (tokens.size() < 2) continue;
    if (tokens[0] == "mem") {
      if (!scan.mem_line.emplace(tokens[1], lineno).second)
        scan.duplicate_mems.emplace_back(tokens[1], lineno);
    } else if (tokens[0] == "assign") {
      scan.assign_line.emplace(tokens[1], lineno);
    }
  }
  return scan;
}

int line_of(const std::map<std::string, int>& index, const std::string& key) {
  const auto it = index.find(key);
  return it == index.end() ? -1 : it->second;
}

/// True when the algorithm contains a nonzero pause (excites retention
/// faults) — the static condition behind the DRF escape warning.
bool has_pause(const MarchAlgorithm& alg) {
  for (const auto& e : alg.elements())
    if (e.is_pause && e.pause_ns > 0) return true;
  return false;
}

/// True when some element issues two consecutive identical reads — the
/// structural condition for catching deceptive read-destructive faults.
bool has_back_to_back_reads(const MarchAlgorithm& alg) {
  for (const auto& e : alg.elements())
    for (std::size_t j = 1; j < e.ops.size(); ++j)
      if (e.ops[j].is_read() && e.ops[j] == e.ops[j - 1]) return true;
  return false;
}

void lint_fault_escapes(const std::string& unit, const soc::TestAssignment& a,
                        const soc::MemoryInstance& mem,
                        const MarchAlgorithm& alg, int lineno,
                        Report& report) {
  const CoverageProof proof = prove_coverage(alg);
  bool warned[static_cast<int>(memsim::FaultClass::LF) + 1] = {};
  for (const auto& fault : mem.faults) {
    const auto cls = memsim::fault_class(fault);
    auto& once = warned[static_cast<int>(cls)];
    if (once) continue;
    const auto name = std::string{memsim::fault_class_name(cls)};
    if (const auto* p = proof.find(cls); p != nullptr) {
      if (p->guaranteed) continue;
      once = true;
      report.add("CH11", unit, lineno,
                 "'" + mem.name + "' injects a " + name + " fault but '" +
                     a.algorithm + "' does not guarantee " + name +
                     " detection (" + p->detail + ")",
                 "pick an algorithm whose qualification shows G for " + name);
    } else if (cls == memsim::FaultClass::DRF && !has_pause(alg)) {
      once = true;
      report.add("CH11", unit, lineno,
                 "'" + mem.name +
                     "' injects a data-retention fault but the algorithm "
                     "has no pause element to excite it",
                 "use a retention variant (March C+/A+ style pause tail)");
    } else if (cls == memsim::FaultClass::DRDF &&
               !has_back_to_back_reads(alg)) {
      once = true;
      report.add("CH11", unit, lineno,
                 "'" + mem.name +
                     "' injects a deceptive read-destructive fault but the "
                     "algorithm never reads the same cell twice in a row",
                 "use a triple-read (++) variant");
    }
  }
}

}  // namespace

Report lint_chip_text(const std::string& text, std::string unit) {
  Report report;
  // The JSON mirror (soc/chip_json.h) has no meaningful line numbers and
  // its object keys cannot express duplicate instances (the parser throws,
  // which becomes CH02 below); the semantic checks are format-agnostic.
  const auto first_char = text.find_first_not_of(" \t\r\n");
  const bool is_json =
      first_char != std::string::npos && text[first_char] == '{';
  PreScan scan;
  if (!is_json) {
    scan = pre_scan(text);
    for (const auto& [name, lineno] : scan.duplicate_mems)
      report.add("CH01", unit, lineno,
                 "duplicate memory instance '" + name + "' (first declared "
                 "on line " +
                     std::to_string(line_of(scan.mem_line, name)) + ")",
                 "give every instance a unique name");
  }

  soc::ChipFile chip;
  try {
    chip = soc::parse_chip(text, {.validate_plan = false});
  } catch (const std::exception& e) {
    if (report.empty()) {
      int lineno = -1;
      std::sscanf(e.what(), "chip file line %d:", &lineno);
      report.add("CH02", unit, lineno, e.what(),
                 "see docs/SOC.md for the chip-file grammar (or the JSON "
                 "mirror in docs/SERVE.md)");
    }
    return report;
  }

  const auto& plan = chip.plan;
  const auto& chipdesc = chip.description;
  if (plan.power().budget < 0.0)
    report.add("CH07", unit, -1, "power budget must be >= 0",
               "0 means unconstrained");

  std::map<std::string, bool> assigned;
  for (const auto& a : plan.assignments()) {
    const int lineno = line_of(scan.assign_line, a.memory);
    assigned[a.memory] = true;
    const auto* mem = chipdesc.find(a.memory);
    if (mem == nullptr) {
      report.add("CH03", unit, lineno,
                 "assignment names unknown memory '" + a.memory + "'",
                 "declare it with a mem directive first");
      continue;
    }
    MarchAlgorithm alg;
    try {
      alg = soc::resolve_algorithm(a.algorithm);
    } catch (const std::exception& e) {
      report.add("CH04", unit, lineno,
                 "'" + a.memory + "': cannot resolve algorithm '" +
                     a.algorithm + "': " + e.what(),
                 "use a library name (pmbist list) or DSL text");
      continue;
    }
    if (const auto why = alg.validate(); !why.empty()) {
      report.add("CH04", unit, lineno,
                 "'" + a.memory + "': invalid algorithm: " + why);
      continue;
    }
    if (a.controller == soc::ControllerKind::Pfsm) {
      std::string why;
      if (!mbist_pfsm::is_mappable(alg, &why))
        report.add("CH05", unit, lineno,
                   "'" + a.memory + "': not pFSM-mappable: " + why,
                   "use the ucode controller, or restrict the algorithm to "
                   "SM0..SM7 elements");
    }
    if (a.controller == soc::ControllerKind::Hardwired &&
        !a.share_group.empty())
      report.add("CH06", unit, lineno,
                 "'" + a.memory + "': a hardwired controller cannot join "
                 "share group '" +
                     a.share_group + "' (it runs one fixed algorithm)",
                 "drop group=, or use a programmable controller kind");
    if (a.power_weight < 0.0) {
      report.add("CH07", unit, lineno,
                 "'" + a.memory + "': power weight must be >= 0");
    } else {
      const double w = plan.effective_weight(a, *mem);
      if (plan.power().budget > 0.0 && w > plan.power().budget) {
        std::ostringstream os;
        os << "'" << a.memory << "': toggle weight " << w
           << " alone exceeds the chip budget " << plan.power().budget
           << " — no schedule can ever run this session";
        report.add("CH07", unit, lineno, os.str(),
                   "raise power_budget or lower weight=");
      }
    }
    lint_fault_escapes(unit, a, *mem, alg, lineno, report);
  }

  for (const auto& mem : chipdesc.memories()) {
    const int lineno = line_of(scan.mem_line, mem.name);
    if (!assigned.count(mem.name))
      report.add("CH08", unit, lineno,
                 "memory '" + mem.name + "' has no test assignment and "
                 "ships untested",
                 "add an assign directive (or remove the instance)");
    const bool has_spares =
        mem.repair.spare_rows > 0 || mem.repair.spare_cols > 0;
    if (has_spares && mem.geometry.word_bits > 1)
      report.add("CH09", unit, lineno,
                 "memory '" + mem.name + "' declares spares but repair "
                 "only engages on bit-oriented instances (word_bits=1)",
                 "drop the spares, or model the array bit-oriented");
    if (!mem.faults.empty() && !has_spares)
      report.add("CH10", unit, lineno,
                 "memory '" + mem.name + "' injects " +
                     std::to_string(mem.faults.size()) +
                     " defect(s) but has no spare rows/columns: a detected "
                     "defect cannot be repaired and no retest runs",
                 "add spare_rows=/spare_cols= if repair is expected");
  }
  return report;
}

}  // namespace pmbist::lint
