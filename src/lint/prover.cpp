#include "lint/prover.h"

#include <array>
#include <sstream>

#include "march/expand.h"

namespace pmbist::lint {
namespace {

using march::AddressOrder;
using march::MarchAlgorithm;
using march::MarchElement;
using march::MarchOp;
using march::MemOp;
using memsim::Address;
using memsim::FaultClass;

constexpr std::array<FaultClass, 9> kProvable{
    FaultClass::SAF,  FaultClass::TF,  FaultClass::CFin,
    FaultClass::CFid, FaultClass::AF,  FaultClass::SOF,
    FaultClass::RDF,  FaultClass::DRDF, FaultClass::LF};

/// The operation sequence one cell sees over the whole test (pause elements
/// apply no memory operations).
std::vector<MarchOp> per_cell_ops(const MarchAlgorithm& alg) {
  std::vector<MarchOp> ops;
  for (const auto& e : alg.elements()) {
    if (e.is_pause) continue;
    ops.insert(ops.end(), e.ops.begin(), e.ops.end());
  }
  return ops;
}

// --- SAF: a stuck cell always reads its stuck value ----------------------

ClassProof prove_saf(const std::vector<MarchOp>& ops) {
  bool reads_expect[2] = {false, false};  // some read expects 0 / 1
  for (const auto& op : ops)
    if (op.is_read()) reads_expect[op.data ? 1 : 0] = true;
  ClassProof proof;
  // Stuck-at-v is caught by any read expecting !v.
  proof.guaranteed = reads_expect[0] && reads_expect[1];
  if (proof.guaranteed) {
    proof.detail = "reads expect both 0 and 1; every stuck cell mismatches";
  } else {
    const int v = reads_expect[1] ? 1 : 0;  // the unobservable stuck value
    proof.detail = "no read expects " + std::to_string(1 - v) +
                   ": stuck-at-" + std::to_string(v) + " cells escape";
  }
  return proof;
}

// --- TF: a failed up (or down) transition persists until resynced --------

bool tf_detected(const std::vector<MarchOp>& ops, bool rising_fault,
                 bool powerup) {
  bool state = powerup;
  for (const auto& op : ops) {
    if (op.is_read()) {
      if (state != op.data) return true;
    } else if (op.data != state) {
      const bool transition_rises = !state;
      if (transition_rises != rising_fault) state = op.data;
      // else: the faulty transition fails and the cell keeps its value.
    }
  }
  return false;
}

ClassProof prove_tf(const std::vector<MarchOp>& ops) {
  ClassProof proof;
  proof.guaranteed = true;
  for (const bool rising : {false, true}) {
    for (const bool powerup : {false, true}) {
      if (tf_detected(ops, rising, powerup)) continue;
      proof.guaranteed = false;
      proof.detail = std::string{"escape: a failed "} +
                     (rising ? "rising" : "falling") +
                     " transition with power-up " + (powerup ? "1" : "0") +
                     " survives every read";
      return proof;
    }
  }
  proof.detail =
      "every (direction x power-up) combination produces a mismatching read";
  return proof;
}

// --- coupling faults: pairwise interleaving of aggressor and victim ------

struct PairOp {
  bool victim = false;
  MarchOp op;
};

/// The operation stream a (aggressor, victim) pair sees.  Within a march
/// element every cell completes the element's op group before the next cell
/// starts, so the pair interleaves at element granularity; the traversal
/// order decides which of the two (by address) goes first.  `victim_low` is
/// the physical layout: true when the victim has the lower address.
std::vector<PairOp> interleave(const MarchAlgorithm& alg, bool victim_low) {
  std::vector<PairOp> seq;
  for (const auto& e : alg.elements()) {
    if (e.is_pause) continue;
    const bool ascending = e.order != AddressOrder::Down;  // Any runs Up
    const bool victim_first = ascending ? victim_low : !victim_low;
    for (const bool victim : {victim_first, !victim_first})
      for (const auto& op : e.ops) seq.push_back({victim, op});
  }
  return seq;
}

/// Simulates one coupling-fault instance over the pair stream.  The
/// aggressor is healthy; a directed aggressor write-transition corrupts the
/// victim (CFin: inverts it; CFid: forces it to `forced`).  Victim writes
/// overwrite the corruption; a victim read mismatching its expected value
/// detects the fault.
bool coupling_detected(const std::vector<PairOp>& seq, bool idempotent,
                       bool on_rising, bool forced, bool aggressor0,
                       bool victim0) {
  bool va = aggressor0;
  bool vv = victim0;
  for (const auto& p : seq) {
    if (!p.victim) {
      if (p.op.is_read()) continue;
      const bool old = va;
      va = p.op.data;
      if (old != va && va == on_rising) vv = idempotent ? forced : !vv;
    } else if (p.op.is_read()) {
      if (vv != p.op.data) return true;
    } else {
      vv = p.op.data;
    }
  }
  return false;
}

ClassProof prove_coupling(const MarchAlgorithm& alg, bool idempotent) {
  const std::vector<PairOp> streams[2] = {interleave(alg, false),
                                          interleave(alg, true)};
  ClassProof proof;
  proof.guaranteed = true;
  const int forced_cases = idempotent ? 2 : 1;
  for (int layout = 0; layout < 2; ++layout) {
    for (const bool on_rising : {false, true}) {
      for (int fc = 0; fc < forced_cases; ++fc) {
        for (const bool a0 : {false, true}) {
          for (const bool v0 : {false, true}) {
            if (coupling_detected(streams[layout], idempotent, on_rising,
                                  fc != 0, a0, v0))
              continue;
            proof.guaranteed = false;
            std::ostringstream os;
            os << "escape: <" << (on_rising ? "up" : "down") << ';';
            if (idempotent) os << (fc != 0 ? "1" : "0");
            else os << "invert";
            os << "> with victim " << (layout == 0 ? "above" : "below")
               << " the aggressor, power-up a=" << a0 << " v=" << v0;
            proof.detail = os.str();
            return proof;
          }
        }
      }
    }
  }
  proof.detail = "all layouts, triggers and power-ups produce a mismatch";
  return proof;
}

// --- AF: van de Goor's structural condition ------------------------------

/// True when the element ascends (Any runs Up), starts with a read of `x`,
/// and its last write writes `!x` (trailing reads after that write are
/// fine — reads do not disturb the addressed cell).
bool af_half(const MarchElement& e, bool ascending, bool x) {
  if (e.is_pause || e.ops.empty()) return false;
  const bool is_ascending = e.order != AddressOrder::Down;
  if (is_ascending != ascending) return false;
  if (!e.ops.front().is_read() || e.ops.front().data != x) return false;
  for (auto it = e.ops.rbegin(); it != e.ops.rend(); ++it)
    if (!it->is_read()) return it->data == !x;
  return false;  // no write at all
}

ClassProof prove_af(const MarchAlgorithm& alg) {
  ClassProof proof;
  for (const bool x : {false, true}) {
    bool has_up = false, has_down = false;
    for (const auto& e : alg.elements()) {
      has_up = has_up || af_half(e, /*ascending=*/true, x);
      has_down = has_down || af_half(e, /*ascending=*/false, !x);
    }
    if (has_up && has_down) {
      std::ostringstream os;
      os << "contains up(r" << x << ",...,w" << !x << ") and down(r" << !x
         << ",...,w" << x << ")";
      proof.guaranteed = true;
      proof.detail = os.str();
      return proof;
    }
  }
  proof.detail =
      "missing an ascending (rx,...,wx') / descending (rx',...,wx) element "
      "pair";
  return proof;
}

// --- position-sensitive classes: exhaustive walk of the canonical stream -
//
// SOF, DRDF and linked faults depend on more than the per-cell op sequence:
// the sense-amplifier residue is written by *other* cells' reads, weak-cell
// back-to-back reads are broken by any intervening operation, and a linked
// pair's masking depends on the order the two aggressors and the victim are
// visited.  For these the prover expands the algorithm on the qualifier's
// canonical 4-word bit array and walks the exact operation stream with a
// hand-rolled automaton per fault instance — every placement, every fault
// parameter, every power-up of the participating cells — so the verdict is
// exact and agrees with march::analyze by construction.

constexpr memsim::MemoryGeometry kProverGeom{.address_bits = 2,
                                             .word_bits = 1, .num_ports = 1};
constexpr int kNumCells = 4;

/// The qualifier's companion cell: the second cell whose power-up the
/// sweep toggles for single-cell instances.
Address companion(Address c) { return c == 1 ? 2 : 1; }

bool expected(const MemOp& op) { return op.data != 0; }

/// Stuck-open cell: reads of the open cell return the column's
/// sense-amplifier residue (last value any *healthy* read sensed; open
/// reads do not refresh it), writes to it are lost.
bool sof_detected(const march::OpStream& stream, Address open_cell,
                  unsigned combo) {
  bool v[kNumCells] = {};
  v[open_cell] = (combo & 1u) != 0;
  v[companion(open_cell)] = (combo >> 1 & 1u) != 0;
  bool residue = false;  // power-up state of the sense amplifier
  for (const auto& op : stream) {
    switch (op.kind) {
      case MemOp::Kind::Pause:
        break;
      case MemOp::Kind::Write:
        if (op.addr != open_cell) v[op.addr] = expected(op);
        break;
      case MemOp::Kind::Read:
        if (op.addr == open_cell) {
          if (residue != expected(op)) return true;
        } else {
          if (v[op.addr] != expected(op)) return true;
          residue = v[op.addr];
        }
        break;
    }
  }
  return false;
}

ClassProof prove_sof(const MarchAlgorithm& alg) {
  const auto stream = march::expand(alg, kProverGeom);
  ClassProof proof;
  for (Address c = 0; c < kNumCells; ++c) {
    for (unsigned combo = 0; combo < 4; ++combo) {
      if (sof_detected(stream, c, combo)) continue;
      std::ostringstream os;
      os << "escape: the open cell at address " << c
         << " always reads back the matching sense residue (power-up "
         << (combo & 1u) << '/' << (combo >> 1 & 1u) << ')';
      proof.detail = os.str();
      return proof;
    }
  }
  proof.guaranteed = true;
  proof.detail =
      "every open-cell placement leaves a stale sense residue that some "
      "read observes";
  return proof;
}

/// Read-destructive cell: every read senses the complement and flips the
/// cell.
bool rdf_detected(const march::OpStream& stream, Address cell,
                  unsigned combo) {
  bool v[kNumCells] = {};
  v[cell] = (combo & 1u) != 0;
  v[companion(cell)] = (combo >> 1 & 1u) != 0;
  for (const auto& op : stream) {
    switch (op.kind) {
      case MemOp::Kind::Pause:
        break;
      case MemOp::Kind::Write:
        v[op.addr] = expected(op);
        break;
      case MemOp::Kind::Read:
        if (op.addr == cell) {
          const bool sensed = !v[cell];
          v[cell] = sensed;
          if (sensed != expected(op)) return true;
        } else if (v[op.addr] != expected(op)) {
          return true;
        }
        break;
    }
  }
  return false;
}

ClassProof prove_rdf(const MarchAlgorithm& alg) {
  const auto stream = march::expand(alg, kProverGeom);
  ClassProof proof;
  for (Address c = 0; c < kNumCells; ++c) {
    for (unsigned combo = 0; combo < 4; ++combo) {
      if (rdf_detected(stream, c, combo)) continue;
      std::ostringstream os;
      os << "escape: the destructive cell at address " << c
         << " is never read (power-up " << (combo & 1u) << '/'
         << (combo >> 1 & 1u) << ')';
      proof.detail = os.str();
      return proof;
    }
  }
  proof.guaranteed = true;
  proof.detail = "every cell is read somewhere; the first read of the "
                 "destructive cell senses the complement";
  return proof;
}

/// Deceptive (weak-cell) read-destructive fault: only a read immediately
/// following a read of the same cell misreads; any write or pause lets the
/// cell recover, and the cell itself is undisturbed.
bool drdf_detected(const march::OpStream& stream, Address cell,
                   unsigned combo) {
  bool v[kNumCells] = {};
  v[cell] = (combo & 1u) != 0;
  v[companion(cell)] = (combo >> 1 & 1u) != 0;
  int last_read = -1;
  for (const auto& op : stream) {
    switch (op.kind) {
      case MemOp::Kind::Pause:
        last_read = -1;
        break;
      case MemOp::Kind::Write:
        v[op.addr] = expected(op);
        last_read = -1;
        break;
      case MemOp::Kind::Read: {
        const bool back_to_back = last_read == static_cast<int>(op.addr);
        const bool sensed = (op.addr == cell && back_to_back)
                                ? !v[op.addr]
                                : v[op.addr];
        if (sensed != expected(op)) return true;
        last_read = static_cast<int>(op.addr);
        break;
      }
    }
  }
  return false;
}

ClassProof prove_drdf(const MarchAlgorithm& alg) {
  const auto stream = march::expand(alg, kProverGeom);
  ClassProof proof;
  for (Address c = 0; c < kNumCells; ++c) {
    for (unsigned combo = 0; combo < 4; ++combo) {
      if (drdf_detected(stream, c, combo)) continue;
      std::ostringstream os;
      os << "escape: the weak cell at address " << c
         << " sees no mismatching back-to-back read (power-up "
         << (combo & 1u) << '/' << (combo >> 1 & 1u) << ')';
      proof.detail = os.str();
      return proof;
    }
  }
  proof.guaranteed = true;
  proof.detail =
      "every cell placement is covered by consecutive same-cell reads";
  return proof;
}

/// One linked coupling fault of a pair: inversion (CFin) or idempotent
/// (CFid, forcing `forced`), triggered by the named aggressor transition.
struct LinkedHalf {
  Address aggressor = 0;
  bool on_rising = false;
  bool idempotent = false;
  bool forced = false;
};

/// Walks the canonical stream with both halves of a linked pair installed
/// on the shared victim, mirroring FaultyMemory's write semantics: a
/// committed aggressor transition applies the half's corruption after the
/// write, victim writes overwrite it, and any mismatching read detects.
bool linked_detected(const march::OpStream& stream, const LinkedHalf& h1,
                     const LinkedHalf& h2, Address victim, unsigned combo) {
  bool v[kNumCells] = {};
  v[h1.aggressor] = (combo & 1u) != 0;
  v[h2.aggressor] = (combo >> 1 & 1u) != 0;
  v[victim] = (combo >> 2 & 1u) != 0;
  auto trigger = [&](const LinkedHalf& h, Address addr, bool rising) {
    if (addr != h.aggressor || rising != h.on_rising) return;
    v[victim] = h.idempotent ? h.forced : !v[victim];
  };
  for (const auto& op : stream) {
    switch (op.kind) {
      case MemOp::Kind::Pause:
        break;
      case MemOp::Kind::Write: {
        const bool old = v[op.addr];
        v[op.addr] = expected(op);
        if (old != v[op.addr]) {
          trigger(h1, op.addr, v[op.addr]);
          trigger(h2, op.addr, v[op.addr]);
        }
        break;
      }
      case MemOp::Kind::Read:
        if (v[op.addr] != expected(op)) return true;
        break;
    }
  }
  return false;
}

std::string linked_escape(const LinkedHalf& h1, const LinkedHalf& h2,
                          Address victim, unsigned combo) {
  auto half = [](std::ostringstream& os, const LinkedHalf& h) {
    os << '<' << (h.on_rising ? "up" : "down") << ';';
    if (h.idempotent) os << (h.forced ? '1' : '0');
    else os << "invert";
    os << '>';
  };
  std::ostringstream os;
  os << "escape: linked pair a" << h1.aggressor;
  half(os, h1);
  os << " + a" << h2.aggressor;
  half(os, h2);
  os << " on victim " << victim << " masks every read (power-up "
     << (combo & 1u) << '/' << (combo >> 1 & 1u) << '/' << (combo >> 2 & 1u)
     << ')';
  return os.str();
}

ClassProof prove_lf(const MarchAlgorithm& alg) {
  const auto stream = march::expand(alg, kProverGeom);
  ClassProof proof;
  for (Address a1 = 0; a1 < kNumCells; ++a1) {
    for (Address a2 = 0; a2 < kNumCells; ++a2) {
      for (Address victim = 0; victim < kNumCells; ++victim) {
        if (a1 == a2 || a1 == victim || a2 == victim) continue;
        // CFid pairs with opposite forced values, mirroring the qualifier
        // (inversion pairs cancel inside every march element when both
        // aggressors precede the victim, so they are not part of LF).
        for (const bool r1 : {false, true}) {
          for (const bool r2 : {false, true}) {
            for (const bool f1 : {false, true}) {
              const LinkedHalf h1{a1, r1, true, f1};
              const LinkedHalf h2{a2, r2, true, !f1};
              for (unsigned combo = 0; combo < 8; ++combo) {
                if (linked_detected(stream, h1, h2, victim, combo)) continue;
                proof.detail = linked_escape(h1, h2, victim, combo);
                return proof;
              }
            }
          }
        }
      }
    }
  }
  proof.guaranteed = true;
  proof.detail = "every linked CFin/CFid pair sharing a victim mismatches "
                 "some read in every placement and power-up";
  return proof;
}

}  // namespace

std::span<const FaultClass> provable_classes() { return kProvable; }

CoverageProof prove_coverage(const MarchAlgorithm& alg) {
  const auto ops = per_cell_ops(alg);
  CoverageProof proof;
  proof.classes.emplace_back(FaultClass::SAF, prove_saf(ops));
  proof.classes.emplace_back(FaultClass::TF, prove_tf(ops));
  proof.classes.emplace_back(FaultClass::CFin,
                             prove_coupling(alg, /*idempotent=*/false));
  proof.classes.emplace_back(FaultClass::CFid,
                             prove_coupling(alg, /*idempotent=*/true));
  proof.classes.emplace_back(FaultClass::AF, prove_af(alg));
  proof.classes.emplace_back(FaultClass::SOF, prove_sof(alg));
  proof.classes.emplace_back(FaultClass::RDF, prove_rdf(alg));
  proof.classes.emplace_back(FaultClass::DRDF, prove_drdf(alg));
  proof.classes.emplace_back(FaultClass::LF, prove_lf(alg));
  return proof;
}

}  // namespace pmbist::lint
