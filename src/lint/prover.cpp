#include "lint/prover.h"

#include <array>
#include <sstream>

namespace pmbist::lint {
namespace {

using march::AddressOrder;
using march::MarchAlgorithm;
using march::MarchElement;
using march::MarchOp;
using memsim::FaultClass;

constexpr std::array<FaultClass, 5> kProvable{
    FaultClass::SAF, FaultClass::TF, FaultClass::CFin, FaultClass::CFid,
    FaultClass::AF};

/// The operation sequence one cell sees over the whole test (pause elements
/// apply no memory operations).
std::vector<MarchOp> per_cell_ops(const MarchAlgorithm& alg) {
  std::vector<MarchOp> ops;
  for (const auto& e : alg.elements()) {
    if (e.is_pause) continue;
    ops.insert(ops.end(), e.ops.begin(), e.ops.end());
  }
  return ops;
}

// --- SAF: a stuck cell always reads its stuck value ----------------------

ClassProof prove_saf(const std::vector<MarchOp>& ops) {
  bool reads_expect[2] = {false, false};  // some read expects 0 / 1
  for (const auto& op : ops)
    if (op.is_read()) reads_expect[op.data ? 1 : 0] = true;
  ClassProof proof;
  // Stuck-at-v is caught by any read expecting !v.
  proof.guaranteed = reads_expect[0] && reads_expect[1];
  if (proof.guaranteed) {
    proof.detail = "reads expect both 0 and 1; every stuck cell mismatches";
  } else {
    const int v = reads_expect[1] ? 1 : 0;  // the unobservable stuck value
    proof.detail = "no read expects " + std::to_string(1 - v) +
                   ": stuck-at-" + std::to_string(v) + " cells escape";
  }
  return proof;
}

// --- TF: a failed up (or down) transition persists until resynced --------

bool tf_detected(const std::vector<MarchOp>& ops, bool rising_fault,
                 bool powerup) {
  bool state = powerup;
  for (const auto& op : ops) {
    if (op.is_read()) {
      if (state != op.data) return true;
    } else if (op.data != state) {
      const bool transition_rises = !state;
      if (transition_rises != rising_fault) state = op.data;
      // else: the faulty transition fails and the cell keeps its value.
    }
  }
  return false;
}

ClassProof prove_tf(const std::vector<MarchOp>& ops) {
  ClassProof proof;
  proof.guaranteed = true;
  for (const bool rising : {false, true}) {
    for (const bool powerup : {false, true}) {
      if (tf_detected(ops, rising, powerup)) continue;
      proof.guaranteed = false;
      proof.detail = std::string{"escape: a failed "} +
                     (rising ? "rising" : "falling") +
                     " transition with power-up " + (powerup ? "1" : "0") +
                     " survives every read";
      return proof;
    }
  }
  proof.detail =
      "every (direction x power-up) combination produces a mismatching read";
  return proof;
}

// --- coupling faults: pairwise interleaving of aggressor and victim ------

struct PairOp {
  bool victim = false;
  MarchOp op;
};

/// The operation stream a (aggressor, victim) pair sees.  Within a march
/// element every cell completes the element's op group before the next cell
/// starts, so the pair interleaves at element granularity; the traversal
/// order decides which of the two (by address) goes first.  `victim_low` is
/// the physical layout: true when the victim has the lower address.
std::vector<PairOp> interleave(const MarchAlgorithm& alg, bool victim_low) {
  std::vector<PairOp> seq;
  for (const auto& e : alg.elements()) {
    if (e.is_pause) continue;
    const bool ascending = e.order != AddressOrder::Down;  // Any runs Up
    const bool victim_first = ascending ? victim_low : !victim_low;
    for (const bool victim : {victim_first, !victim_first})
      for (const auto& op : e.ops) seq.push_back({victim, op});
  }
  return seq;
}

/// Simulates one coupling-fault instance over the pair stream.  The
/// aggressor is healthy; a directed aggressor write-transition corrupts the
/// victim (CFin: inverts it; CFid: forces it to `forced`).  Victim writes
/// overwrite the corruption; a victim read mismatching its expected value
/// detects the fault.
bool coupling_detected(const std::vector<PairOp>& seq, bool idempotent,
                       bool on_rising, bool forced, bool aggressor0,
                       bool victim0) {
  bool va = aggressor0;
  bool vv = victim0;
  for (const auto& p : seq) {
    if (!p.victim) {
      if (p.op.is_read()) continue;
      const bool old = va;
      va = p.op.data;
      if (old != va && va == on_rising) vv = idempotent ? forced : !vv;
    } else if (p.op.is_read()) {
      if (vv != p.op.data) return true;
    } else {
      vv = p.op.data;
    }
  }
  return false;
}

ClassProof prove_coupling(const MarchAlgorithm& alg, bool idempotent) {
  const std::vector<PairOp> streams[2] = {interleave(alg, false),
                                          interleave(alg, true)};
  ClassProof proof;
  proof.guaranteed = true;
  const int forced_cases = idempotent ? 2 : 1;
  for (int layout = 0; layout < 2; ++layout) {
    for (const bool on_rising : {false, true}) {
      for (int fc = 0; fc < forced_cases; ++fc) {
        for (const bool a0 : {false, true}) {
          for (const bool v0 : {false, true}) {
            if (coupling_detected(streams[layout], idempotent, on_rising,
                                  fc != 0, a0, v0))
              continue;
            proof.guaranteed = false;
            std::ostringstream os;
            os << "escape: <" << (on_rising ? "up" : "down") << ';';
            if (idempotent) os << (fc != 0 ? "1" : "0");
            else os << "invert";
            os << "> with victim " << (layout == 0 ? "above" : "below")
               << " the aggressor, power-up a=" << a0 << " v=" << v0;
            proof.detail = os.str();
            return proof;
          }
        }
      }
    }
  }
  proof.detail = "all layouts, triggers and power-ups produce a mismatch";
  return proof;
}

// --- AF: van de Goor's structural condition ------------------------------

/// True when the element ascends (Any runs Up), starts with a read of `x`,
/// and its last write writes `!x` (trailing reads after that write are
/// fine — reads do not disturb the addressed cell).
bool af_half(const MarchElement& e, bool ascending, bool x) {
  if (e.is_pause || e.ops.empty()) return false;
  const bool is_ascending = e.order != AddressOrder::Down;
  if (is_ascending != ascending) return false;
  if (!e.ops.front().is_read() || e.ops.front().data != x) return false;
  for (auto it = e.ops.rbegin(); it != e.ops.rend(); ++it)
    if (!it->is_read()) return it->data == !x;
  return false;  // no write at all
}

ClassProof prove_af(const MarchAlgorithm& alg) {
  ClassProof proof;
  for (const bool x : {false, true}) {
    bool has_up = false, has_down = false;
    for (const auto& e : alg.elements()) {
      has_up = has_up || af_half(e, /*ascending=*/true, x);
      has_down = has_down || af_half(e, /*ascending=*/false, !x);
    }
    if (has_up && has_down) {
      std::ostringstream os;
      os << "contains up(r" << x << ",...,w" << !x << ") and down(r" << !x
         << ",...,w" << x << ")";
      proof.guaranteed = true;
      proof.detail = os.str();
      return proof;
    }
  }
  proof.detail =
      "missing an ascending (rx,...,wx') / descending (rx',...,wx) element "
      "pair";
  return proof;
}

}  // namespace

std::span<const FaultClass> provable_classes() { return kProvable; }

CoverageProof prove_coverage(const MarchAlgorithm& alg) {
  const auto ops = per_cell_ops(alg);
  CoverageProof proof;
  proof.classes.emplace_back(FaultClass::SAF, prove_saf(ops));
  proof.classes.emplace_back(FaultClass::TF, prove_tf(ops));
  proof.classes.emplace_back(FaultClass::CFin,
                             prove_coupling(alg, /*idempotent=*/false));
  proof.classes.emplace_back(FaultClass::CFid,
                             prove_coupling(alg, /*idempotent=*/true));
  proof.classes.emplace_back(FaultClass::AF, prove_af(alg));
  return proof;
}

}  // namespace pmbist::lint
