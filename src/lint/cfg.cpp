#include "lint/cfg.h"

#include <algorithm>
#include <cstddef>

namespace pmbist::lint {
namespace {

using mbist_ucode::Flow;

void insert_sorted(std::vector<int>& v, int x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) v.insert(it, x);
}

}  // namespace

std::vector<std::vector<int>> ucode_branch_values(
    const std::vector<mbist_ucode::Instruction>& code) {
  const int n = static_cast<int>(code.size());
  std::vector<std::vector<int>> in(static_cast<std::size_t>(n));
  if (n == 0) return in;

  // Forward may-analysis: in[i] accumulates every value the branch register
  // can hold when instruction i executes.  Transfer functions mirror
  // decode(): ic_reset1 (Repeat open) forces branch := 1, ic_reset0
  // (LoopData / LoopPort restart) forces branch := 0, branch_save on the
  // group-closing exits forces branch := i + 1; everything else passes the
  // incoming set through.  Values are bounded by [0, n], sets only grow, so
  // the worklist terminates.
  std::vector<int> work;
  std::vector<bool> queued(static_cast<std::size_t>(n), false);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  auto merge_to = [&](int t, const std::vector<int>& values) {
    if (t < 0 || t >= n) return;  // IC exhaustion: an exit, not an edge
    const auto ut = static_cast<std::size_t>(t);
    bool changed = !seen[ut];
    seen[ut] = true;
    auto& dst = in[ut];
    for (const int v : values) {
      const auto it = std::lower_bound(dst.begin(), dst.end(), v);
      if (it == dst.end() || *it != v) {
        dst.insert(it, v);
        changed = true;
      }
    }
    if (changed && !queued[ut]) {
      queued[ut] = true;
      work.push_back(t);
    }
  };
  merge_to(0, {0});
  while (!work.empty()) {
    const int i = work.back();
    work.pop_back();
    queued[static_cast<std::size_t>(i)] = false;
    // Copy: self edges (LoopCell to itself) may grow in[i] mid-iteration.
    const std::vector<int> values = in[static_cast<std::size_t>(i)];
    switch (code[static_cast<std::size_t>(i)].flow) {
      case Flow::Next:
        merge_to(i + 1, values);
        break;
      case Flow::LoopSelf:
        // The not-last-address self edge holds IC (branch unchanged, and
        // in[i] already contains `values`); the exhausted exit saves IC+1.
        merge_to(i + 1, {i + 1});
        break;
      case Flow::LoopCell:
        for (const int v : values) merge_to(v, {v});
        merge_to(i + 1, {i + 1});
        break;
      case Flow::Repeat:
        merge_to(1, {1});
        merge_to(i + 1, {i + 1});
        break;
      case Flow::Pause:
        merge_to(i + 1, {i + 1});
        break;
      case Flow::LoopData:
        merge_to(0, {0});
        merge_to(i + 1, values);  // the exhausted exit has no branch_save
        break;
      case Flow::LoopPort:
        merge_to(0, {0});
        break;
      case Flow::Terminate:
        break;
    }
  }
  return in;
}

std::vector<std::vector<int>> ucode_successors(
    const std::vector<mbist_ucode::Instruction>& code) {
  const int n = static_cast<int>(code.size());
  const auto branch = ucode_branch_values(code);
  std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& out = succ[static_cast<std::size_t>(i)];
    auto add = [&](int t) {
      if (t >= 0 && t < n) insert_sorted(out, t);
    };
    switch (code[static_cast<std::size_t>(i)].flow) {
      case Flow::Next:
        add(i + 1);
        break;
      case Flow::LoopSelf:
        add(i);  // hold IC while stepping addresses
        add(i + 1);
        break;
      case Flow::LoopCell:
        for (const int v : branch[static_cast<std::size_t>(i)]) add(v);
        add(i + 1);
        break;
      case Flow::Repeat:
        add(1);  // the dedicated reset-to-1 path of the open encounter
        add(i + 1);
        break;
      case Flow::Pause:
        add(i);  // timer running
        add(i + 1);
        break;
      case Flow::LoopData:
        add(0);
        add(i + 1);
        break;
      case Flow::LoopPort:
        add(0);  // per-port restart; the last port terminates (exit)
        break;
      case Flow::Terminate:
        break;
    }
  }
  return succ;
}

std::vector<std::vector<int>> pfsm_successors(
    const std::vector<mbist_pfsm::PfsmInstruction>& rows) {
  const int n = static_cast<int>(rows.size());
  std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& out = succ[static_cast<std::size_t>(i)];
    const auto& row = rows[static_cast<std::size_t>(i)];
    if (!row.ctrl) {
      insert_sorted(out, (i + 1) % n);  // the buffer is circular
    } else if (!row.ctrl_op) {
      insert_sorted(out, 0);  // path A: restart per background
      insert_sorted(out, (i + 1) % n);
    } else {
      insert_sorted(out, 0);  // path B: restart per port; last port -> Done
    }
  }
  return succ;
}

bool Cfg::dominates(int a, int b) const {
  const int nb = static_cast<int>(blocks.size());
  if (a < 0 || b < 0 || a >= nb || b >= nb) return false;
  if (idom[static_cast<std::size_t>(a)] == -1 ||
      idom[static_cast<std::size_t>(b)] == -1)
    return false;
  int x = b;
  while (true) {
    if (x == a) return true;
    const int up = idom[static_cast<std::size_t>(x)];
    if (up == x) return false;  // reached the entry without meeting `a`
    x = up;
  }
}

Cfg build_cfg(const std::vector<std::vector<int>>& successors) {
  Cfg cfg;
  const int n = static_cast<int>(successors.size());
  cfg.block_of.assign(static_cast<std::size_t>(n), -1);
  cfg.reachable_insn.assign(static_cast<std::size_t>(n), false);
  if (n == 0) return cfg;

  // Instruction-level reachability from the entry.
  {
    std::vector<int> stack{0};
    cfg.reachable_insn[0] = true;
    while (!stack.empty()) {
      const int i = stack.back();
      stack.pop_back();
      for (const int t : successors[static_cast<std::size_t>(i)]) {
        if (!cfg.reachable_insn[static_cast<std::size_t>(t)]) {
          cfg.reachable_insn[static_cast<std::size_t>(t)] = true;
          stack.push_back(t);
        }
      }
    }
  }

  // Block leaders: the entry, every target of a non-fallthrough node, and
  // the instruction after one.  Any join point (indegree > 1) is the target
  // of some non-fallthrough edge, so this covers it.
  std::vector<bool> leader(static_cast<std::size_t>(n), false);
  leader[0] = true;
  for (int i = 0; i < n; ++i) {
    const auto& s = successors[static_cast<std::size_t>(i)];
    if (s.size() == 1 && s[0] == i + 1) continue;  // plain fallthrough
    if (i + 1 < n) leader[static_cast<std::size_t>(i + 1)] = true;
    for (const int t : s) leader[static_cast<std::size_t>(t)] = true;
  }

  for (int i = 0; i < n; ++i) {
    if (leader[static_cast<std::size_t>(i)]) {
      BasicBlock b;
      b.first = i;
      b.last = i;
      b.reachable = cfg.reachable_insn[static_cast<std::size_t>(i)];
      cfg.blocks.push_back(b);
    }
    cfg.blocks.back().last = i;
    cfg.block_of[static_cast<std::size_t>(i)] =
        static_cast<int>(cfg.blocks.size()) - 1;
  }

  const int nb = static_cast<int>(cfg.blocks.size());
  for (int b = 0; b < nb; ++b) {
    auto& block = cfg.blocks[static_cast<std::size_t>(b)];
    for (const int t : successors[static_cast<std::size_t>(block.last)])
      insert_sorted(block.successors,
                    cfg.block_of[static_cast<std::size_t>(t)]);
  }
  for (int b = 0; b < nb; ++b)
    for (const int t : cfg.blocks[static_cast<std::size_t>(b)].successors)
      insert_sorted(cfg.blocks[static_cast<std::size_t>(t)].predecessors, b);

  // Reverse postorder over the reachable blocks (iterative DFS; successor
  // order is the sorted edge list, so the order is deterministic).
  cfg.rpo_index.assign(static_cast<std::size_t>(nb), -1);
  {
    std::vector<int> post;
    std::vector<int> state(static_cast<std::size_t>(nb), 0);
    std::vector<std::pair<int, int>> stack;  // (block, next successor slot)
    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
      const int b = stack.back().first;
      const auto& bs = cfg.blocks[static_cast<std::size_t>(b)].successors;
      if (stack.back().second < static_cast<int>(bs.size())) {
        const int t = bs[static_cast<std::size_t>(stack.back().second++)];
        if (state[static_cast<std::size_t>(t)] == 0) {
          state[static_cast<std::size_t>(t)] = 1;
          stack.emplace_back(t, 0);
        }
      } else {
        post.push_back(b);
        state[static_cast<std::size_t>(b)] = 2;
        stack.pop_back();
      }
    }
    cfg.rpo.assign(post.rbegin(), post.rend());
    for (int k = 0; k < static_cast<int>(cfg.rpo.size()); ++k)
      cfg.rpo_index[static_cast<std::size_t>(cfg.rpo[static_cast<std::size_t>(
          k)])] = k;
  }

  // Immediate dominators: the iterative RPO algorithm of Cooper, Harvey
  // and Kennedy.  idom[entry] == entry; unreachable blocks stay -1.
  cfg.idom.assign(static_cast<std::size_t>(nb), -1);
  if (!cfg.rpo.empty()) {
    const int entry = cfg.rpo[0];
    cfg.idom[static_cast<std::size_t>(entry)] = entry;
    auto intersect = [&](int a, int b) {
      while (a != b) {
        while (cfg.rpo_index[static_cast<std::size_t>(a)] >
               cfg.rpo_index[static_cast<std::size_t>(b)])
          a = cfg.idom[static_cast<std::size_t>(a)];
        while (cfg.rpo_index[static_cast<std::size_t>(b)] >
               cfg.rpo_index[static_cast<std::size_t>(a)])
          b = cfg.idom[static_cast<std::size_t>(b)];
      }
      return a;
    };
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t k = 1; k < cfg.rpo.size(); ++k) {
        const int b = cfg.rpo[k];
        int best = -1;
        for (const int p : cfg.blocks[static_cast<std::size_t>(b)].predecessors) {
          if (cfg.idom[static_cast<std::size_t>(p)] == -1) continue;
          best = best == -1 ? p : intersect(p, best);
        }
        if (best != -1 && cfg.idom[static_cast<std::size_t>(b)] != best) {
          cfg.idom[static_cast<std::size_t>(b)] = best;
          changed = true;
        }
      }
    }
  }

  // Retreating edges: dominating targets head natural loops (body = the
  // backward closure of the edge source that stays below the header);
  // non-dominating targets mark the region irreducible.
  for (const int u : cfg.rpo) {
    for (const int h : cfg.blocks[static_cast<std::size_t>(u)].successors) {
      if (cfg.rpo_index[static_cast<std::size_t>(h)] == -1) continue;
      if (cfg.rpo_index[static_cast<std::size_t>(h)] >
          cfg.rpo_index[static_cast<std::size_t>(u)])
        continue;  // forward or cross edge
      if (!cfg.dominates(h, u)) {
        cfg.irreducible_edges.emplace_back(u, h);
        continue;
      }
      std::vector<bool> inbody(static_cast<std::size_t>(nb), false);
      inbody[static_cast<std::size_t>(h)] = true;
      std::vector<int> work;
      if (!inbody[static_cast<std::size_t>(u)]) {
        inbody[static_cast<std::size_t>(u)] = true;
        work.push_back(u);
      }
      while (!work.empty()) {
        const int x = work.back();
        work.pop_back();
        for (const int p :
             cfg.blocks[static_cast<std::size_t>(x)].predecessors) {
          if (cfg.rpo_index[static_cast<std::size_t>(p)] == -1) continue;
          if (!inbody[static_cast<std::size_t>(p)]) {
            inbody[static_cast<std::size_t>(p)] = true;
            work.push_back(p);
          }
        }
      }
      NaturalLoop* loop = nullptr;
      for (auto& l : cfg.loops)
        if (l.header == h) loop = &l;
      if (loop == nullptr) {
        cfg.loops.push_back({h, {}});
        loop = &cfg.loops.back();
      }
      for (int b = 0; b < nb; ++b)
        if (inbody[static_cast<std::size_t>(b)])
          insert_sorted(loop->body, b);
    }
  }
  std::sort(cfg.loops.begin(), cfg.loops.end(),
            [](const NaturalLoop& a, const NaturalLoop& b) {
              return a.header < b.header;
            });
  std::sort(cfg.irreducible_edges.begin(), cfg.irreducible_edges.end());
  return cfg;
}

Cfg build_ucode_cfg(const mbist_ucode::MicrocodeProgram& p) {
  return build_cfg(ucode_successors(p.instructions()));
}

Cfg build_pfsm_cfg(const mbist_pfsm::PfsmProgram& p) {
  return build_cfg(pfsm_successors(p.instructions()));
}

}  // namespace pmbist::lint
