#pragma once
// Static march-coverage prover: derives guaranteed fault-class detection
// from the *structure* of a march algorithm, without fault simulation.
//
// For the single-cell classes (SAF, TF) and the pairwise coupling classes
// (CFin, CFid) the proof is a symbolic execution of the per-cell operation
// sequence the march applies: detection of these faults depends only on
// the sequence of reads/writes each participating cell sees and — for
// coupling faults — on the relative traversal order of aggressor and
// victim, so a march element maps to an exact small-state machine.  The
// prover exhausts every fault parameter and every power-up assignment of
// the participating cells; a class is *guaranteed* iff every combination
// produces at least one mismatching read.
//
// Address-decoder faults (AF) use van de Goor's structural condition: the
// test must contain an ascending element (rx, ..., last write wx') and a
// descending element (rx', ..., last write wx) — don't-care orders are
// traversed ascending by every controller in this repo and are
// canonicalized the same way here.
//
// The position-sensitive classes — stuck-open cells (SOF, detection rides
// on the column's sense-amplifier residue written by *other* cells' reads),
// read-destructive and deceptive read-destructive cells (RDF/DRDF, the
// latter needing back-to-back same-cell reads) and linked faults (LF, two
// coupling faults sharing a victim whose second corruption can mask the
// first) — are decided by expanding the algorithm on the qualifier's
// canonical 4-word array and walking the exact operation stream with a
// per-fault automaton over every placement, parameter and power-up.
//
// tests/test_lint.cpp pins the prover against the simulation-backed
// exhaustive qualifier (march::analyze) over the whole algorithm library:
// guaranteed here ⇔ Detection::Guaranteed there, for every provable
// class.  The prover is the static half of that agreement; it never runs
// a memory model.

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "march/march.h"
#include "memsim/fault_model.h"

namespace pmbist::lint {

/// Verdict for one fault class.
struct ClassProof {
  bool guaranteed = false;
  /// Human-readable witness: the structural condition met, or the first
  /// escaping (parameter x power-up) combination.
  std::string detail;
};

/// Proof results over every provable class, in provable_classes() order.
struct CoverageProof {
  std::vector<std::pair<memsim::FaultClass, ClassProof>> classes;

  [[nodiscard]] const ClassProof* find(memsim::FaultClass cls) const {
    for (const auto& [c, proof] : classes)
      if (c == cls) return &proof;
    return nullptr;
  }
};

/// The fault classes the prover decides: SAF, TF, CFin, CFid, AF, SOF,
/// RDF, DRDF, LF.
[[nodiscard]] std::span<const memsim::FaultClass> provable_classes();

/// Proves the guaranteed fault classes of `alg`.  The algorithm must be
/// structurally valid (MarchAlgorithm::validate() empty).
[[nodiscard]] CoverageProof prove_coverage(const march::MarchAlgorithm& alg);

}  // namespace pmbist::lint
