#include "lint/march_lint.h"

#include <sstream>

#include "lint/prover.h"
#include "memsim/fault_model.h"

namespace pmbist::lint {
namespace {

using march::MarchAlgorithm;

void lint_pauses(const MarchAlgorithm& alg, const std::string& unit,
                 Report& report) {
  const auto& elements = alg.elements();
  std::uint64_t pause_ns = 0;
  bool mixed_reported = false;
  for (std::size_t i = 0; i < elements.size(); ++i) {
    const auto& e = elements[i];
    if (!e.is_pause) continue;
    const int idx = static_cast<int>(i);
    if (i == 0)
      report.add("MA04", unit, idx,
                 "leading pause element delays an uninitialized array",
                 "start with a write element, pause after it");
    else if (elements[i - 1].is_pause)
      report.add("MA04", unit, idx,
                 "consecutive pause elements (controllers have one pause "
                 "timer per Hold)",
                 "merge into a single pause of the combined duration");
    if (i + 1 == elements.size())
      report.add("MA04", unit, idx,
                 "final element is a pause: retention effects are never "
                 "read back",
                 "follow the pause with a read element");
    if (pause_ns != 0 && e.pause_ns != pause_ns && !mixed_reported) {
      mixed_reported = true;
      report.add("MA04", unit, idx,
                 "pause elements with differing durations (" +
                     std::to_string(pause_ns) + "ns vs " +
                     std::to_string(e.pause_ns) +
                     "ns) need per-pause timer configs",
                 "use one duration for every pause");
    }
    if (e.pause_ns != 0) pause_ns = e.pause_ns;
  }
}

void lint_consistency(const MarchAlgorithm& alg, const std::string& unit,
                      Report& report) {
  // Symbolic per-cell state: every healthy cell holds `state` here (-1 =
  // unknown, before the first write).
  int state = -1;
  for (std::size_t i = 0; i < alg.elements().size(); ++i) {
    const auto& e = alg.elements()[i];
    if (e.is_pause) continue;
    for (const auto& op : e.ops) {
      if (!op.is_read()) {
        state = op.data ? 1 : 0;
      } else if (state >= 0 && state != (op.data ? 1 : 0)) {
        std::ostringstream os;
        os << "element " << i << " (" << e.to_string() << ") reads expecting "
           << op.data << " but every healthy cell holds " << state
           << " at that point";
        report.add("MA03", unit, static_cast<int>(i), os.str(),
                   "fix the expected value; this test fails on good parts");
        return;  // later reads inherit the same confusion; report once
      }
    }
  }
}

}  // namespace

Report lint_march(const MarchAlgorithm& alg, const MarchLintOptions& options,
                  std::string unit) {
  if (unit.empty()) unit = alg.name().empty() ? "march" : alg.name();
  Report report;

  if (const auto why = alg.validate(); !why.empty()) {
    report.add("MA01", unit, -1, why,
               "see docs/DSL.md for the structural rules");
    return report;  // later passes assume a structurally valid algorithm
  }
  if (alg.reads_per_cell() == 0)
    report.add("MA02", unit, -1,
               "algorithm performs no read operations and observes nothing",
               "add read ops; a march detects faults only through reads");

  lint_consistency(alg, unit, report);
  lint_pauses(alg, unit, report);

  if (options.prover_summary && !report.has_errors()) {
    const auto proof = prove_coverage(alg);
    std::string proven;
    for (const auto& [cls, p] : proof.classes) {
      if (!p.guaranteed) continue;
      if (!proven.empty()) proven += ", ";
      proven += std::string{memsim::fault_class_name(cls)};
    }
    report.add("MA05", unit, -1,
               proven.empty()
                   ? "statically proven guarantees: none"
                   : "statically proven guarantees: " + proven);
    if (const auto* saf = proof.find(memsim::FaultClass::SAF);
        saf != nullptr && !saf->guaranteed)
      report.add("MA06", unit, -1,
                 "stuck-at coverage is not guaranteed: " + saf->detail,
                 "read every cell expecting 0 and expecting 1 at least once");
  }
  return report;
}

}  // namespace pmbist::lint
