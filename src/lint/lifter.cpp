#include "lint/lifter.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "lint/cfg.h"
#include "mbist_pfsm/components.h"

namespace pmbist::lint {
namespace {

using march::AddressOrder;
using march::MarchElement;
using march::MarchOp;
using mbist_ucode::Flow;
using mbist_ucode::Rw;

LiftResult fail(int index, std::string code, std::string why,
                std::vector<std::string> trace = {}) {
  LiftResult r;
  r.ok = false;
  r.index = index;
  r.code = std::move(code);
  r.why = std::move(why);
  r.trace = std::move(trace);
  return r;
}

bool is_op_flow(Flow f) {
  return f == Flow::Next || f == Flow::LoopCell || f == Flow::LoopSelf;
}

std::string fmt_ops(const std::vector<MarchOp>& ops) {
  if (ops.empty()) return "(no ops)";
  std::string s;
  for (const auto& op : ops) {
    if (!s.empty()) s += ',';
    s += op.to_string();
  }
  return s;
}

/// LT01 rejection from the retreating edges no dominator explains.  No
/// controller flow field can encode such a region (every backward target —
/// the branch register, 0 and 1 — dominates its uses), so this is a
/// defensive gate for the synthetic-graph API surface of cfg.h.
LiftResult fail_irreducible(const Cfg& cfg) {
  std::vector<std::string> trace;
  for (const auto& edge : cfg.irreducible_edges) {
    const auto& from = cfg.blocks[static_cast<std::size_t>(edge.first)];
    const auto& to = cfg.blocks[static_cast<std::size_t>(edge.second)];
    trace.push_back("retreating edge: instruction " +
                    std::to_string(from.last) + " -> " +
                    std::to_string(to.first) +
                    " (target does not dominate source)");
  }
  const int at = cfg.blocks[static_cast<std::size_t>(
                                cfg.irreducible_edges.front().second)]
                     .first;
  return fail(at, "LT01",
              "irreducible control-flow region (no loop structure explains "
              "the retreating edges)",
              std::move(trace));
}

}  // namespace

// The microcode lifter abstractly interprets the image over its CFG with
// the address, data and port generators symbolic.  An op-flow run is the
// NEXT chain from the current instruction (the leader) to its closing
// instruction; what the run means is decided by the ops its paths apply:
//
//   LOOP_CELL closer   the steady-state body — the rows from the branch
//                      register's target through the closer — must apply
//                      the same op list the first cell saw (the rows from
//                      the leader through the closer).  Equal lists make
//                      one march element; different lists are rejected with
//                      both paths' op lists as the counterexample (LT02).
//   LOOP_SELF closer   a single-op (or no-op) element; preceding real ops
//                      would run on the first cell only (LT05).
//   control row        a run that falls through without a cell loop is
//                      invisible when it carries no real op, unliftable
//                      otherwise (LT05 / LT06 after the data loop).
//
// Address steps (NEXT with addr-inc) are rejected only inside runs that
// produce an element (LT04): a run without real ops touches no memory, so
// its address stepping cannot show up in any op stream.  This makes the
// accepted set body-defined rather than shape-defined: no-op padding,
// no-op strides and loop-backs into earlier no-op rows all lift, and every
// rejection names the semantic reason a canonical march cannot exist.
LiftResult lift_ucode(const mbist_ucode::MicrocodeProgram& p,
                      const LiftOptions& options) {
  const auto& code = p.instructions();
  const int size = p.size();

  const Cfg cfg = build_ucode_cfg(p);
  if (!cfg.reducible()) return fail_irreducible(cfg);

  int ic = 0;
  int branch = 0;
  bool repeat = false;
  bool aux_order = false, aux_data = false, aux_cmp = false;
  bool after_data_loop = false;

  LiftResult result;
  std::vector<MarchElement> elements;

  // Every instruction is visited at most twice (the Repeat re-walk); the
  // cap is a defensive bound against livelocking flow (e.g. UC05's nested
  // Repeat) so the lifter terminates on arbitrary images.
  const int max_steps = 4 * size + 16;
  int steps = 0;

  auto append_op = [&](const mbist_ucode::Instruction& i,
                       std::vector<MarchOp>& ops) {
    if (i.rw == Rw::Read)
      ops.push_back({MarchOp::Kind::Read, i.cmp_inv != aux_cmp});
    else if (i.rw == Rw::Write)
      ops.push_back({MarchOp::Kind::Write, i.data_inv != aux_data});
  };
  // Ops applied by rows [a, b] (inclusive), under the current aux mask.
  auto ops_of = [&](int a, int b) {
    std::vector<MarchOp> ops;
    for (int k = a; k <= b; ++k)
      append_op(code[static_cast<std::size_t>(k)], ops);
    return ops;
  };
  // First NEXT row in [a, b) that steps the address, or -1.
  auto first_step_row = [&](int a, int b) {
    for (int k = a; k < b; ++k) {
      const auto& row = code[static_cast<std::size_t>(k)];
      if (row.flow == Flow::Next && row.addr_inc) return k;
    }
    return -1;
  };
  auto push_element = [&](int leader, std::vector<MarchOp> ops) {
    MarchElement e;
    const bool down =
        code[static_cast<std::size_t>(leader)].addr_down ^ aux_order;
    e.order = down ? AddressOrder::Down : AddressOrder::Up;
    e.ops = std::move(ops);
    elements.push_back(std::move(e));
  };

  while (ic < size) {
    if (++steps > max_steps)
      return fail(ic, "LT03",
                  "control flow never makes progress (livelocked Repeat "
                  "window)");
    const auto& instr = code[static_cast<std::size_t>(ic)];

    if (is_op_flow(instr.flow)) {
      const int leader = ic;
      int j = ic;
      while (j < size &&
             code[static_cast<std::size_t>(j)].flow == Flow::Next)
        ++j;

      if (j >= size) {
        // The NEXT chain hits instruction-counter exhaustion: the ops ran
        // on the element's first cell only.  Invisible if the run carries
        // no real op, unliftable otherwise.
        if (!ops_of(leader, size - 1).empty())
          return fail(leader, "LT05",
                      "element op group runs off the end of the program "
                      "(ops touch the first cell only)");
        ic = size;
        break;
      }
      const auto& closer = code[static_cast<std::size_t>(j)];

      if (closer.flow == Flow::LoopSelf) {
        if (!ops_of(leader, j - 1).empty())
          return fail(j, "LT05",
                      "LOOP_SELF closes a multi-op group (the preceding "
                      "ops run on the first cell only)");
        std::vector<MarchOp> ops;
        append_op(closer, ops);
        if (!ops.empty()) {
          if (after_data_loop)
            return fail(j, "LT06",
                        "operation after the data-background loop would "
                        "run once instead of once per background");
          const int step_row = first_step_row(leader, j);
          if (step_row >= 0)
            return fail(step_row, "LT04",
                        "NEXT with addr-inc steps the address mid-element "
                        "(ops land on different cells)");
          push_element(leader, std::move(ops));
        }
        ic = j + 1;
        branch = j + 1;
        continue;
      }

      if (closer.flow == Flow::LoopCell) {
        if (branch < 0 || branch > j)
          return fail(j, "LT02",
                      "LOOP_CELL loops back to instruction " +
                          std::to_string(branch) +
                          ", past the closer (the loop body is not an op "
                          "group)");
        for (int k = branch; k < j; ++k) {
          if (code[static_cast<std::size_t>(k)].flow != Flow::Next) {
            std::vector<std::string> trace{
                "first-cell pass (rows " + std::to_string(leader) + ".." +
                    std::to_string(j) + "): " + fmt_ops(ops_of(leader, j)),
                "loop-back pass starts at row " + std::to_string(branch) +
                    " (the stale branch register) and re-runs control row " +
                    std::to_string(k)};
            return fail(j, "LT02",
                        "cell-loop body crosses a control row: LOOP_CELL "
                        "loops back to instruction " +
                            std::to_string(branch) + " but instruction " +
                            std::to_string(k) +
                            " re-runs non-NEXT flow inside the body",
                        std::move(trace));
          }
        }
        auto ops_first = ops_of(leader, j);
        const auto ops_body = ops_of(branch, j);
        if (ops_first != ops_body) {
          std::vector<std::string> trace{
              "first-cell pass (rows " + std::to_string(leader) + ".." +
                  std::to_string(j) + "): " + fmt_ops(ops_first),
              "loop-back pass (rows " + std::to_string(branch) + ".." +
                  std::to_string(j) + "): " + fmt_ops(ops_body)};
          return fail(j, "LT02",
                      "LOOP_CELL loops back to instruction " +
                          std::to_string(branch) +
                          ": the loop body applies different ops than the "
                          "first cell saw",
                      std::move(trace));
        }
        if (!ops_first.empty()) {
          if (after_data_loop)
            return fail(j, "LT06",
                        "operation after the data-background loop would "
                        "run once instead of once per background");
          const int step_row = first_step_row(std::min(branch, leader), j);
          if (step_row >= 0)
            return fail(step_row, "LT04",
                        "NEXT with addr-inc steps the address mid-element "
                        "(ops land on different cells)");
          push_element(leader, std::move(ops_first));
        }
        ic = j + 1;
        branch = j + 1;
        continue;
      }

      // The chain fell through into a control row without a cell loop.
      if (!ops_of(leader, j - 1).empty()) {
        if (after_data_loop)
          return fail(leader, "LT06",
                      "operation after the data-background loop would run "
                      "once instead of once per background");
        return fail(j, "LT05",
                    "element op group is not closed by LOOP_CELL or "
                    "LOOP_SELF (ops would run on one cell only)");
      }
      // No-op padding: invisible in every op stream.  Continue at the
      // control row with the branch register untouched, exactly as the
      // hardware would reach it.
      ic = j;
      continue;
    }

    switch (instr.flow) {
      case Flow::Repeat:
        if (after_data_loop)
          return fail(ic, "LT07", "Repeat after the data-background loop");
        if (!repeat) {
          repeat = true;
          aux_order = instr.addr_down;
          aux_data = instr.data_inv;
          aux_cmp = instr.cmp_inv;
          ic = 1;
          branch = 1;
        } else {
          repeat = false;
          aux_order = aux_data = aux_cmp = false;
          ++ic;
          branch = ic;
        }
        break;
      case Flow::Pause:
        if (after_data_loop)
          return fail(ic, "LT06", "pause after the data-background loop");
        elements.push_back(MarchElement::pause(options.pause_ns));
        ++ic;
        branch = ic;
        break;
      case Flow::LoopData:
        if (repeat)
          return fail(ic, "LT07",
                      "data-background loop inside an open Repeat window");
        if (result.has_data_loop)
          return fail(ic, "LT07",
                      "second data-background loop (the restarted pass "
                      "would replay the first loop)");
        result.has_data_loop = true;
        after_data_loop = true;
        ++ic;
        break;
      case Flow::LoopPort:
        if (repeat)
          return fail(ic, "LT07", "port loop inside an open Repeat window");
        result.has_port_loop = true;
        ic = size;  // everything after the port loop is dead
        break;
      case Flow::Terminate:
        ic = size;
        break;
      case Flow::Next:
      case Flow::LoopCell:
      case Flow::LoopSelf:
        break;  // handled above
    }
  }

  result.ok = true;
  result.algorithm = march::MarchAlgorithm{p.name(), std::move(elements)};
  return result;
}

// The pFSM lifter walks the circular buffer once: component rows expand
// through the SM component table with the row's polarity bits applied per
// op (the lower FSM XORs the component's internal ~d onto cmp_inv for
// reads and data_inv for writes), hold_after appends a pause element, the
// first path-A row marks the data-background loop and the first path-B row
// marks the port loop and ends the walk (rows after it are dead).
LiftResult lift_pfsm(const mbist_pfsm::PfsmProgram& p,
                     const LiftOptions& options) {
  const Cfg cfg = build_pfsm_cfg(p);
  if (!cfg.reducible()) return fail_irreducible(cfg);

  LiftResult result;
  std::vector<MarchElement> elements;

  const auto& rows = p.instructions();
  for (int i = 0; i < p.size(); ++i) {
    const auto& row = rows[static_cast<std::size_t>(i)];
    if (row.ctrl) {
      if (!row.ctrl_op) {  // path A: data-background loop
        if (result.has_data_loop)
          return fail(i, "LT07",
                      "second data-background loop row (the restarted "
                      "pass would replay the first loop)");
        result.has_data_loop = true;
      } else {  // path B: port loop / test end
        result.has_port_loop = true;
        break;  // rows after the port loop are dead
      }
      continue;
    }
    if (result.has_data_loop)
      return fail(i, "LT06",
                  "component row after the data-background loop would "
                  "run once instead of once per background");
    if (row.mode >= mbist_pfsm::kNumComponents)
      return fail(i, "PF03",
                  "mode " + std::to_string(row.mode) + " outside SM0..SM7");
    const auto& comp =
        mbist_pfsm::component_set()[static_cast<std::size_t>(row.mode)];
    MarchElement e;
    e.order = row.addr_down ? AddressOrder::Down : AddressOrder::Up;
    for (const auto& cop : comp.ops) {
      if (cop.is_read)
        e.ops.push_back({MarchOp::Kind::Read, row.cmp_inv != cop.inverted});
      else
        e.ops.push_back({MarchOp::Kind::Write, row.data_inv != cop.inverted});
    }
    elements.push_back(std::move(e));
    if (row.hold_after)
      elements.push_back(MarchElement::pause(options.pause_ns));
  }

  result.ok = true;
  result.algorithm = march::MarchAlgorithm{p.name(), std::move(elements)};
  return result;
}

}  // namespace pmbist::lint
