#include "lint/lifter.h"

#include <string>

#include "mbist_pfsm/components.h"

namespace pmbist::lint {
namespace {

using march::AddressOrder;
using march::MarchElement;
using march::MarchOp;
using mbist_ucode::Flow;
using mbist_ucode::Rw;

LiftResult fail(int index, std::string why) {
  LiftResult r;
  r.ok = false;
  r.index = index;
  r.why = std::move(why);
  return r;
}

bool is_op_flow(Flow f) {
  return f == Flow::Next || f == Flow::LoopCell || f == Flow::LoopSelf;
}

}  // namespace

// The microcode lifter mirrors MicrocodeController::step() with the address
// generator abstracted away: a fresh op-flow run `leader .. closer` is one
// march element applied to every cell iff the closer loops back to the
// leader (LOOP_CELL re-enters at the branch register, which holds the
// leader index in every well-formed program) or is a single-instruction
// LOOP_SELF group.  Everything the hardware would make geometry-dependent
// — an address step mid-group, a loop-back past the leader, ops that run
// on one cell only — is rejected as unliftable.
LiftResult lift_ucode(const mbist_ucode::MicrocodeProgram& p,
                      const LiftOptions& options) {
  const auto& code = p.instructions();
  const int size = p.size();

  int ic = 0;
  int branch = 0;
  bool repeat = false;
  bool aux_order = false, aux_data = false, aux_cmp = false;
  bool after_data_loop = false;

  LiftResult result;
  std::vector<MarchElement> elements;

  // Every instruction is visited at most twice (the Repeat re-walk); the
  // cap is a defensive bound against livelocking flow (e.g. UC05's nested
  // Repeat) so the lifter terminates on arbitrary images.
  const int max_steps = 4 * size + 16;
  int steps = 0;

  while (ic < size) {
    if (++steps > max_steps)
      return fail(ic, "control flow never makes progress (livelocked Repeat "
                      "window)");
    const auto& instr = code[static_cast<std::size_t>(ic)];

    if (is_op_flow(instr.flow)) {
      if (after_data_loop)
        return fail(ic, "operation after the data-background loop would run "
                        "once instead of once per background");
      const int leader = ic;
      const bool down = instr.addr_down ^ aux_order;
      std::vector<MarchOp> ops;
      auto append_op = [&](const mbist_ucode::Instruction& i) {
        if (i.rw == Rw::Read)
          ops.push_back({MarchOp::Kind::Read, i.cmp_inv != aux_cmp});
        else if (i.rw == Rw::Write)
          ops.push_back({MarchOp::Kind::Write, i.data_inv != aux_data});
      };

      int j = ic;
      while (j < size &&
             code[static_cast<std::size_t>(j)].flow == Flow::Next) {
        const auto& body = code[static_cast<std::size_t>(j)];
        if (body.addr_inc)
          return fail(j, "NEXT with addr-inc steps the address mid-element "
                         "(ops land on different cells)");
        append_op(body);
        ++j;
      }
      if (j >= size) {
        // The NEXT chain hits instruction-counter exhaustion: the ops ran
        // on the element's first cell only.  Invisible if they were all
        // no-ops, unliftable otherwise.
        if (!ops.empty())
          return fail(leader, "element op group runs off the end of the "
                              "program (ops touch the first cell only)");
        ic = j;
        break;
      }
      const auto& closer = code[static_cast<std::size_t>(j)];
      if (closer.flow == Flow::LoopSelf) {
        if (!ops.empty())
          return fail(j, "LOOP_SELF closes a multi-op group (the preceding "
                         "ops run on the first cell only)");
        append_op(closer);
      } else if (closer.flow == Flow::LoopCell) {
        if (branch != leader)
          return fail(j, "LOOP_CELL re-enters at instruction " +
                             std::to_string(branch) +
                             " instead of the element leader " +
                             std::to_string(leader));
        append_op(closer);
      } else {
        // The op group fell through to a control instruction without a
        // cell loop: its ops ran on the first cell only.
        return fail(j, "element op group is not closed by LOOP_CELL or "
                       "LOOP_SELF (ops would run on one cell only)");
      }
      if (!ops.empty()) {
        MarchElement e;
        e.order = down ? AddressOrder::Down : AddressOrder::Up;
        e.ops = std::move(ops);
        elements.push_back(std::move(e));
      }
      ic = j + 1;
      branch = j + 1;
      continue;
    }

    switch (instr.flow) {
      case Flow::Repeat:
        if (after_data_loop)
          return fail(ic, "Repeat after the data-background loop");
        if (!repeat) {
          repeat = true;
          aux_order = instr.addr_down;
          aux_data = instr.data_inv;
          aux_cmp = instr.cmp_inv;
          ic = 1;
          branch = 1;
        } else {
          repeat = false;
          aux_order = aux_data = aux_cmp = false;
          ++ic;
          branch = ic;
        }
        break;
      case Flow::Pause:
        if (after_data_loop)
          return fail(ic, "pause after the data-background loop");
        elements.push_back(MarchElement::pause(options.pause_ns));
        ++ic;
        branch = ic;
        break;
      case Flow::LoopData:
        if (repeat)
          return fail(ic, "data-background loop inside an open Repeat "
                          "window");
        if (result.has_data_loop)
          return fail(ic, "second data-background loop (the restarted pass "
                          "would replay the first loop)");
        result.has_data_loop = true;
        after_data_loop = true;
        ++ic;
        break;
      case Flow::LoopPort:
        if (repeat)
          return fail(ic, "port loop inside an open Repeat window");
        result.has_port_loop = true;
        ic = size;  // everything after the port loop is dead
        break;
      case Flow::Terminate:
        ic = size;
        break;
      case Flow::Next:
      case Flow::LoopCell:
      case Flow::LoopSelf:
        break;  // handled above
    }
  }

  result.ok = true;
  result.algorithm = march::MarchAlgorithm{p.name(), std::move(elements)};
  return result;
}

// The pFSM lifter walks the circular buffer once: component rows expand
// through the SM component table with the row's polarity bits applied per
// op (the lower FSM XORs the component's internal ~d onto cmp_inv for
// reads and data_inv for writes), hold_after appends a pause element, the
// first path-A row marks the data-background loop and the first path-B row
// marks the port loop and ends the walk (rows after it are dead).
LiftResult lift_pfsm(const mbist_pfsm::PfsmProgram& p,
                     const LiftOptions& options) {
  LiftResult result;
  std::vector<MarchElement> elements;

  const auto& rows = p.instructions();
  for (int i = 0; i < p.size(); ++i) {
    const auto& row = rows[static_cast<std::size_t>(i)];
    if (row.ctrl) {
      if (!row.ctrl_op) {  // path A: data-background loop
        if (result.has_data_loop)
          return fail(i, "second data-background loop row (the restarted "
                         "pass would replay the first loop)");
        result.has_data_loop = true;
      } else {  // path B: port loop / test end
        result.has_port_loop = true;
        break;  // rows after the port loop are dead
      }
      continue;
    }
    if (result.has_data_loop)
      return fail(i, "component row after the data-background loop would "
                     "run once instead of once per background");
    if (row.mode >= mbist_pfsm::kNumComponents)
      return fail(i, "mode " + std::to_string(row.mode) +
                         " outside SM0..SM7");
    const auto& comp =
        mbist_pfsm::component_set()[static_cast<std::size_t>(row.mode)];
    MarchElement e;
    e.order = row.addr_down ? AddressOrder::Down : AddressOrder::Up;
    for (const auto& cop : comp.ops) {
      if (cop.is_read)
        e.ops.push_back({MarchOp::Kind::Read, row.cmp_inv != cop.inverted});
      else
        e.ops.push_back({MarchOp::Kind::Write, row.data_inv != cop.inverted});
    }
    elements.push_back(std::move(e));
    if (row.hold_after)
      elements.push_back(MarchElement::pause(options.pause_ns));
  }

  result.ok = true;
  result.algorithm = march::MarchAlgorithm{p.name(), std::move(elements)};
  return result;
}

}  // namespace pmbist::lint
