#pragma once
// Controller-program lint passes.
//
// Microcode (UC codes): the flow graph is the basic-block CFG of
// lint/cfg.h, whose edges derive from the one decode() function both the
// behavioral controller and the synthesized decoder use (LOOP_CELL edges
// come from the branch-register dataflow, so they are exact even for
// images that enter an op group mid-way).  From that graph the pass finds
// dead code (per-instruction UC03 plus block-granular LT00),
// fall-off-the-end flows (instruction-counter exhaustion ends the test
// silently), empty or nested Repeat windows (a single repeat bit livelocks
// on nesting), and programs that never read.  A final structure pass runs
// the lifter (lint/lifter.h): images with no canonical march gain the
// lifter's stable rejection code (LT02..LT07) with its reason and
// counterexample trace.
//
// pFSM (PF codes): the upper buffer's rows chain linearly; a path-A row
// loops to 0 per background, a path-B row loops to 0 per port and is the
// only way to reach Done.  The pass flags holds on loop-control rows (the
// upper FSM would wait for a lower-controller Done that never comes — the
// behavioral model skips the hold, real hardware deadlocks), buffers with
// no reachable path-B row (the circular buffer wraps forever), mode bits
// outside SM0..SM7 (out-of-bounds in the component table), unused rows,
// and buffers that run no component at all.

#include "lint/diagnostics.h"
#include "mbist_pfsm/isa.h"
#include "mbist_ucode/isa.h"

namespace pmbist::lint {

struct UcodeLintOptions {
  int storage_depth = 32;  ///< Z x Y words of the configured storage unit
};

[[nodiscard]] Report lint_ucode(const mbist_ucode::MicrocodeProgram& program,
                                const UcodeLintOptions& options = {});

struct PfsmLintOptions {
  int buffer_depth = 16;  ///< rows of the configured instruction buffer
};

[[nodiscard]] Report lint_pfsm(const mbist_pfsm::PfsmProgram& program,
                               const PfsmLintOptions& options = {});

}  // namespace pmbist::lint
