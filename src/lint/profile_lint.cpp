#include "lint/profile_lint.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "field/profile.h"
#include "soc/chip.h"

namespace pmbist::lint {
namespace {

/// Crude whitespace tokenizer for the line pre-scan (profile directives
/// and window arguments never contain quotes in practice).
std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is{line.substr(0, line.find('#'))};
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

struct WindowLine {
  std::string memory;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  int lineno = -1;
};

struct PreScan {
  std::vector<WindowLine> windows;
  std::map<std::string, int> first_window_line;  ///< per memory
  int bus_budget_line = -1;
  int horizon_line = -1;
};

bool parse_u64(const std::string& text, std::uint64_t& out) {
  try {
    std::size_t used = 0;
    out = std::stoull(text, &used, 0);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

PreScan pre_scan(const std::string& text) {
  PreScan scan;
  std::istringstream lines{text};
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const auto tokens = split_tokens(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "bus_budget") {
      if (scan.bus_budget_line < 0) scan.bus_budget_line = lineno;
    } else if (tokens[0] == "horizon") {
      if (scan.horizon_line < 0) scan.horizon_line = lineno;
    } else if (tokens[0] == "window" && tokens.size() >= 4) {
      WindowLine w;
      w.memory = tokens[1];
      w.lineno = lineno;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto eq = tokens[i].find('=');
        if (eq == std::string::npos) continue;
        const auto key = tokens[i].substr(0, eq);
        std::uint64_t v = 0;
        if (!parse_u64(tokens[i].substr(eq + 1), v)) continue;
        if (key == "start") w.start = v;
        if (key == "end") w.end = v;
      }
      scan.first_window_line.emplace(w.memory, lineno);
      scan.windows.push_back(std::move(w));
    }
  }
  return scan;
}

/// Line of the first `window` directive matching (memory, start, end);
/// -1 when the pre-scan did not see it (quoting or exotic numerals).
int window_line(const PreScan& scan, const std::string& memory,
                const field::IdleWindow& w) {
  for (const auto& c : scan.windows)
    if (c.memory == memory && c.start == w.start && c.end == w.end)
      return c.lineno;
  return -1;
}

}  // namespace

Report lint_profile_text(const std::string& text, std::string unit,
                         const std::string& chip_text) {
  Report report;
  const PreScan scan = pre_scan(text);

  field::MissionProfile profile;
  try {
    profile = field::parse_profile_text(text, {.validate = false});
  } catch (const std::exception& e) {
    int lineno = -1;
    std::sscanf(e.what(), "profile line %d:", &lineno);
    report.add("FP00", std::move(unit), lineno, e.what(),
               "see docs/FIELD.md for the profile grammar");
    return report;
  }

  if (profile.bus_budget < 1)
    report.add("FP03", unit, scan.bus_budget_line,
               "bus budget 0 gives the test bus no lanes: no session can "
               "ever stream and every memory ships with staleness = the "
               "whole horizon",
               "bus_budget must be >= 1 (lanes on the shared test bus)");

  const std::uint64_t horizon = profile.effective_horizon();
  for (const auto& set : profile.windows) {
    auto sorted = set.windows;
    std::sort(sorted.begin(), sorted.end(),
              [](const field::IdleWindow& a, const field::IdleWindow& b) {
                if (a.start != b.start) return a.start < b.start;
                return a.end < b.end;
              });
    for (const auto& w : sorted) {
      if (w.start >= w.end)
        report.add("FP02", unit, window_line(scan, set.memory, w),
                   "'" + set.memory + "': empty idle window [" +
                       std::to_string(w.start) + ", " + std::to_string(w.end) +
                       ") can never hold a test segment",
                   "windows are half-open [start, end); end must exceed "
                   "start");
      else if (profile.horizon != 0 && w.start >= profile.horizon)
        report.add("FP06", unit, window_line(scan, set.memory, w),
                   "'" + set.memory + "': idle window [" +
                       std::to_string(w.start) + ", " + std::to_string(w.end) +
                       ") starts at or beyond the horizon " +
                       std::to_string(profile.horizon) + " and is never used",
                   "extend the horizon or drop the window");
    }
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      if (sorted[i].end > sorted[i + 1].start)
        report.add("FP01", unit, window_line(scan, set.memory, sorted[i + 1]),
                   "'" + set.memory + "': idle windows [" +
                       std::to_string(sorted[i].start) + ", " +
                       std::to_string(sorted[i].end) + ") and [" +
                       std::to_string(sorted[i + 1].start) + ", " +
                       std::to_string(sorted[i + 1].end) + ") overlap",
                   "a memory is either idle or not — merge the windows");
    }
  }

  if (chip_text.empty()) return report;

  soc::ChipFile chip;
  try {
    chip = soc::parse_chip_text(chip_text, {.validate_plan = false});
  } catch (const std::exception& e) {
    int lineno = -1;
    std::sscanf(e.what(), "chip file line %d:", &lineno);
    report.add("CH02", "--chip", lineno, e.what(),
               "see docs/SOC.md for the chip-file grammar");
    return report;
  }

  for (const auto& set : profile.windows) {
    if (chip.description.find(set.memory) == nullptr) {
      const auto it = scan.first_window_line.find(set.memory);
      report.add("FP04", unit,
                 it == scan.first_window_line.end() ? -1 : it->second,
                 "window names unknown memory '" + set.memory + "'",
                 "every window memory must be a mem instance of the chip");
    }
  }
  for (const auto& a : chip.plan.assignments()) {
    const auto* set = profile.find(a.memory);
    bool usable = false;
    if (set != nullptr)
      for (const auto& w : set->windows)
        if (w.start < w.end && w.start < horizon) usable = true;
    if (!usable)
      report.add("FP05", unit, -1,
                 "tested memory '" + a.memory + "' has no usable idle "
                 "window: in the field it is never tested and ships with "
                 "staleness = the whole horizon",
                 "add window directives for it (or drop its assignment)");
  }
  return report;
}

}  // namespace pmbist::lint
