#include "lint/driver.h"

#include <sstream>

#include "lint/chip_lint.h"
#include "lint/march_lint.h"
#include "lint/program_lint.h"
#include "march/library.h"
#include "march/parser.h"
#include "mbist_pfsm/isa.h"
#include "mbist_ucode/isa.h"

namespace pmbist::lint {
namespace {

bool is_chip_directive(const std::string& word) {
  return word == "soc" || word == "mem" || word == "fault" ||
         word == "assign" || word == "power_budget";
}

// The march parser has no comment syntax; on-disk .march files use the
// same '#' comments as chip files, so strip them (and line breaks) here.
std::string strip_march_comments(const std::string& text) {
  std::istringstream lines{text};
  std::string line;
  std::string out;
  while (std::getline(lines, line)) {
    if (!out.empty()) out += ' ';
    out += line.substr(0, line.find('#'));
  }
  return out;
}

Report lint_march_text(const std::string& raw, std::string unit,
                       const LintOptions&) {
  const std::string text = strip_march_comments(raw);
  march::MarchAlgorithm alg;
  try {
    alg = march::by_name(text);
  } catch (const std::out_of_range&) {
    try {
      alg = march::parse(text, unit);
    } catch (const march::ParseError& e) {
      Report report;
      report.add("MA00", std::move(unit), -1, e.what(),
                 "see docs/DSL.md for the grammar");
      return report;
    }
  }
  return lint_march(alg, {}, std::move(unit));
}

Report lint_ucode_text(const std::string& text, std::string unit,
                       const LintOptions& options) {
  mbist_ucode::MicrocodeProgram program;
  try {
    program = mbist_ucode::MicrocodeProgram::from_hex_text(text);
  } catch (const std::exception& e) {
    Report report;
    report.add("UC00", std::move(unit), -1, e.what(),
               "expected the `pmbist assemble --hex` image format");
    return report;
  }
  return lint_ucode(program, {.storage_depth = options.storage_depth});
}

Report lint_pfsm_text(const std::string& text, std::string unit,
                      const LintOptions& options) {
  mbist_pfsm::PfsmProgram program;
  try {
    program = mbist_pfsm::PfsmProgram::from_hex_text(text);
  } catch (const std::exception& e) {
    Report report;
    report.add("PF00", std::move(unit), -1, e.what(),
               "expected the `pmbist assemble --arch pfsm --hex` image "
               "format");
    return report;
  }
  return lint_pfsm(program, {.buffer_depth = options.buffer_depth});
}

}  // namespace

std::string_view to_string(InputKind kind) {
  switch (kind) {
    case InputKind::March: return "march";
    case InputKind::UcodeImage: return "ucode";
    case InputKind::PfsmImage: return "pfsm";
    case InputKind::Chip: return "chip";
  }
  return "?";
}

InputKind detect_kind(const std::string& text) {
  if (text.find("pmbist microcode image") != std::string::npos)
    return InputKind::UcodeImage;
  if (text.find("pmbist pfsm image") != std::string::npos)
    return InputKind::PfsmImage;
  std::istringstream lines{text};
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream words{line.substr(0, line.find('#'))};
    std::string first;
    if (!(words >> first)) continue;
    return is_chip_directive(first) ? InputKind::Chip : InputKind::March;
  }
  return InputKind::March;
}

Report lint_text_as(InputKind kind, const std::string& text, std::string unit,
                    const LintOptions& options) {
  switch (kind) {
    case InputKind::March:
      return lint_march_text(text, std::move(unit), options);
    case InputKind::UcodeImage:
      return lint_ucode_text(text, std::move(unit), options);
    case InputKind::PfsmImage:
      return lint_pfsm_text(text, std::move(unit), options);
    case InputKind::Chip:
      return lint_chip_text(text, std::move(unit));
  }
  return {};
}

Report lint_text(const std::string& text, std::string unit,
                 const LintOptions& options) {
  return lint_text_as(detect_kind(text), text, std::move(unit), options);
}

}  // namespace pmbist::lint
