#include "lint/driver.h"

#include <sstream>

#include "lint/chip_lint.h"
#include "lint/equiv.h"
#include "lint/lifter.h"
#include "lint/march_lint.h"
#include "lint/profile_lint.h"
#include "lint/program_lint.h"
#include "march/library.h"
#include "march/parser.h"
#include "mbist_pfsm/isa.h"
#include "mbist_ucode/isa.h"

namespace pmbist::lint {
namespace {

bool is_chip_directive(const std::string& word) {
  return word == "soc" || word == "mem" || word == "fault" ||
         word == "assign" || word == "power_budget";
}

bool is_profile_directive(const std::string& word) {
  return word == "profile" || word == "window" || word == "horizon" ||
         word == "bus_budget";
}

// The march parser has no comment syntax; on-disk .march files use the
// same '#' comments as chip files, so strip them (and line breaks) here.
std::string strip_march_comments(const std::string& text) {
  std::istringstream lines{text};
  std::string line;
  std::string out;
  while (std::getline(lines, line)) {
    if (!out.empty()) out += ' ';
    out += line.substr(0, line.find('#'));
  }
  return out;
}

/// Resolves a --against source (library name or march DSL, '#' comments
/// allowed).  Returns false after adding EQ00 when it does not resolve.
bool resolve_against(const std::string& raw, const std::string& unit,
                     march::MarchAlgorithm& out, Report& report) {
  const std::string text = strip_march_comments(raw);
  try {
    out = march::by_name(text);
    return true;
  } catch (const std::out_of_range&) {
  }
  try {
    out = march::parse(text, "--against");
    return true;
  } catch (const march::ParseError& e) {
    report.add("EQ00", unit, -1,
               std::string{"--against source does not resolve: "} + e.what(),
               "pass a library algorithm name or march DSL text");
    return false;
  }
}

/// Pause duration the source algorithm uses (an image encodes *that* a
/// pause happens, not for how long), defaulting to the library convention.
std::uint64_t source_pause_ns(const march::MarchAlgorithm& alg) {
  for (const auto& e : alg.elements())
    if (e.is_pause) return e.pause_ns;
  return march::kDefaultPauseNs;
}

/// Translation validation: maps the equivalence verdict for a lifted image
/// onto the EQ diagnostics.
void check_against(const LiftResult& lifted,
                   const march::MarchAlgorithm& source,
                   const std::string& unit, Report& report) {
  const EquivResult verdict = check_equivalence(lifted, source);
  switch (verdict.kind) {
    case EquivKind::Unliftable:
      report.add("EQ01", unit, verdict.index,
                 "image is not liftable to a march algorithm: " +
                     verdict.detail,
                 "see docs/EQUIV.md for the liftable subset");
      return;
    case EquivKind::Mismatch: {
      std::string message = verdict.detail;
      for (const auto& line : verdict.trace) message += "\n      " + line;
      report.add("EQ02", unit, -1, std::move(message),
                 "the trace shows the first op a tester would see diverge");
      break;
    }
    case EquivKind::Equivalent:
      report.add("EQ04", unit, -1, verdict.detail);
      break;
  }
  if (lifted.ok && !lifted.full_structure()) {
    const char* missing =
        !lifted.has_data_loop
            ? (lifted.has_port_loop ? "data-background loop"
                                    : "data-background and port loops")
            : "port loop";
    report.add("EQ03", unit, -1,
               std::string{"image runs a single pass: it lacks the "} +
                   missing +
                   " (word-oriented / multiport memories would be "
                   "under-tested)",
               "append the loop tail (`pmbist assemble` emits it by "
               "default)");
  }
}

Report lint_march_text(const std::string& raw, std::string unit,
                       const LintOptions& options) {
  Report report;
  if (!options.against.empty()) {
    report.add("EQ00", unit, -1,
               "--against applies to controller images; this input is a "
               "march algorithm",
               "compare march algorithms directly with `pmbist expand`");
  }
  const std::string text = strip_march_comments(raw);
  march::MarchAlgorithm alg;
  try {
    alg = march::by_name(text);
  } catch (const std::out_of_range&) {
    try {
      alg = march::parse(text, unit);
    } catch (const march::ParseError& e) {
      report.add("MA00", std::move(unit), -1, e.what(),
                 "see docs/DSL.md for the grammar");
      return report;
    }
  }
  report.merge(lint_march(alg, {}, std::move(unit)));
  return report;
}

Report lint_ucode_text(const std::string& text, std::string unit,
                       const LintOptions& options) {
  mbist_ucode::MicrocodeProgram program;
  try {
    program = mbist_ucode::MicrocodeProgram::from_hex_text(text);
  } catch (const std::exception& e) {
    Report report;
    report.add("UC00", std::move(unit), -1, e.what(),
               "expected the `pmbist assemble --hex` image format");
    return report;
  }
  Report report = lint_ucode(program, {.storage_depth = options.storage_depth});
  if (!options.against.empty()) {
    march::MarchAlgorithm source;
    Report eq;
    if (resolve_against(options.against, unit, source, eq)) {
      const LiftResult lifted =
          lift_ucode(program, {.pause_ns = source_pause_ns(source)});
      check_against(lifted, source, unit, eq);
    }
    report.merge(std::move(eq));
  }
  return report;
}

Report lint_pfsm_text(const std::string& text, std::string unit,
                      const LintOptions& options) {
  mbist_pfsm::PfsmProgram program;
  try {
    program = mbist_pfsm::PfsmProgram::from_hex_text(text);
  } catch (const std::exception& e) {
    Report report;
    report.add("PF00", std::move(unit), -1, e.what(),
               "expected the `pmbist assemble --arch pfsm --hex` image "
               "format");
    return report;
  }
  Report report = lint_pfsm(program, {.buffer_depth = options.buffer_depth});
  if (!options.against.empty()) {
    march::MarchAlgorithm source;
    Report eq;
    if (resolve_against(options.against, unit, source, eq)) {
      const LiftResult lifted =
          lift_pfsm(program, {.pause_ns = source_pause_ns(source)});
      check_against(lifted, source, unit, eq);
    }
    report.merge(std::move(eq));
  }
  return report;
}

}  // namespace

std::string_view to_string(InputKind kind) {
  switch (kind) {
    case InputKind::March: return "march";
    case InputKind::UcodeImage: return "ucode";
    case InputKind::PfsmImage: return "pfsm";
    case InputKind::Chip: return "chip";
    case InputKind::Profile: return "profile";
  }
  return "?";
}

InputKind detect_kind(const std::string& text) {
  if (text.find("pmbist microcode image") != std::string::npos)
    return InputKind::UcodeImage;
  if (text.find("pmbist pfsm image") != std::string::npos)
    return InputKind::PfsmImage;
  std::istringstream lines{text};
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream words{line.substr(0, line.find('#'))};
    std::string first;
    if (!(words >> first)) continue;
    if (is_chip_directive(first)) return InputKind::Chip;
    if (is_profile_directive(first)) return InputKind::Profile;
    return InputKind::March;
  }
  return InputKind::March;
}

Report lint_text_as(InputKind kind, const std::string& text, std::string unit,
                    const LintOptions& options) {
  switch (kind) {
    case InputKind::March:
      return lint_march_text(text, std::move(unit), options);
    case InputKind::UcodeImage:
      return lint_ucode_text(text, std::move(unit), options);
    case InputKind::PfsmImage:
      return lint_pfsm_text(text, std::move(unit), options);
    case InputKind::Chip: {
      Report report;
      if (!options.against.empty())
        report.add("EQ00", unit, -1,
                   "--against applies to controller images; this input is a "
                   "chip file",
                   "lint the assigned programs individually");
      report.merge(lint_chip_text(text, std::move(unit)));
      return report;
    }
    case InputKind::Profile: {
      Report report;
      if (!options.against.empty())
        report.add("EQ00", unit, -1,
                   "--against applies to controller images; this input is a "
                   "mission profile",
                   "lint the assigned programs individually");
      report.merge(lint_profile_text(text, std::move(unit), options.chip));
      return report;
    }
  }
  return {};
}

Report lint_text(const std::string& text, std::string unit,
                 const LintOptions& options) {
  return lint_text_as(detect_kind(text), text, std::move(unit), options);
}

}  // namespace pmbist::lint
