#include "lint/driver.h"

#include <cstdio>
#include <sstream>

#include "field/manager.h"
#include "field/profile.h"
#include "field/schedule_io.h"
#include "lint/certify.h"
#include "lint/chip_lint.h"
#include "lint/equiv.h"
#include "lint/lifter.h"
#include "lint/march_lint.h"
#include "lint/profile_lint.h"
#include "lint/program_lint.h"
#include "march/library.h"
#include "march/parser.h"
#include "mbist_pfsm/isa.h"
#include "mbist_ucode/isa.h"
#include "soc/chip.h"
#include "soc/schedule_io.h"
#include "soc/scheduler.h"

namespace pmbist::lint {
namespace {

bool is_chip_directive(const std::string& word) {
  return word == "soc" || word == "mem" || word == "fault" ||
         word == "assign" || word == "power_budget";
}

bool is_profile_directive(const std::string& word) {
  return word == "profile" || word == "window" || word == "horizon" ||
         word == "bus_budget";
}

bool is_soc_schedule_directive(const std::string& word) {
  return word == "schedule" || word == "session";
}

bool is_field_schedule_directive(const std::string& word) {
  return word == "fieldschedule" || word == "fsession";
}

/// Line number embedded in a schedule parse-error message, or -1.
int schedule_lineno_of(const char* what) {
  int lineno = -1;
  std::sscanf(what, "schedule file line %d:", &lineno);
  if (lineno < 0) std::sscanf(what, "field schedule line %d:", &lineno);
  return lineno;
}

// The march parser has no comment syntax; on-disk .march files use the
// same '#' comments as chip files, so strip them (and line breaks) here.
std::string strip_march_comments(const std::string& text) {
  std::istringstream lines{text};
  std::string line;
  std::string out;
  while (std::getline(lines, line)) {
    if (!out.empty()) out += ' ';
    out += line.substr(0, line.find('#'));
  }
  return out;
}

/// Resolves a --against source (library name or march DSL, '#' comments
/// allowed).  Returns false after adding EQ00 when it does not resolve.
bool resolve_against(const std::string& raw, const std::string& unit,
                     march::MarchAlgorithm& out, Report& report) {
  const std::string text = strip_march_comments(raw);
  try {
    out = march::by_name(text);
    return true;
  } catch (const std::out_of_range&) {
  }
  try {
    out = march::parse(text, "--against");
    return true;
  } catch (const march::ParseError& e) {
    report.add("EQ00", unit, -1,
               std::string{"--against source does not resolve: "} + e.what(),
               "pass a library algorithm name or march DSL text");
    return false;
  }
}

/// Pause duration the source algorithm uses (an image encodes *that* a
/// pause happens, not for how long), defaulting to the library convention.
std::uint64_t source_pause_ns(const march::MarchAlgorithm& alg) {
  for (const auto& e : alg.elements())
    if (e.is_pause) return e.pause_ns;
  return march::kDefaultPauseNs;
}

/// Translation validation: maps the equivalence verdict for a lifted image
/// onto the EQ diagnostics.
void check_against(const LiftResult& lifted,
                   const march::MarchAlgorithm& source,
                   const std::string& unit, Report& report) {
  const EquivResult verdict = check_equivalence(lifted, source);
  switch (verdict.kind) {
    case EquivKind::Unliftable: {
      std::string message = "image is not liftable to a march algorithm: " +
                            verdict.detail;
      for (const auto& line : verdict.trace) message += "\n      " + line;
      report.add("EQ01", unit, verdict.index, std::move(message),
                 "see docs/EQUIV.md for the liftable subset (code " +
                     verdict.code + " names the reason)");
      return;
    }
    case EquivKind::Mismatch: {
      std::string message = verdict.detail;
      for (const auto& line : verdict.trace) message += "\n      " + line;
      report.add("EQ02", unit, -1, std::move(message),
                 "the trace shows the first op a tester would see diverge");
      break;
    }
    case EquivKind::Equivalent:
      report.add("EQ04", unit, -1, verdict.detail);
      break;
  }
  if (lifted.ok && !lifted.full_structure()) {
    const char* missing =
        !lifted.has_data_loop
            ? (lifted.has_port_loop ? "data-background loop"
                                    : "data-background and port loops")
            : "port loop";
    report.add("EQ03", unit, -1,
               std::string{"image runs a single pass: it lacks the "} +
                   missing +
                   " (word-oriented / multiport memories would be "
                   "under-tested)",
               "append the loop tail (`pmbist assemble` emits it by "
               "default)");
  }
}

Report lint_march_text(const std::string& raw, std::string unit,
                       const LintOptions& options) {
  Report report;
  if (!options.against.empty()) {
    report.add("EQ00", unit, -1,
               "--against applies to controller images; this input is a "
               "march algorithm",
               "compare march algorithms directly with `pmbist expand`");
  }
  const std::string text = strip_march_comments(raw);
  march::MarchAlgorithm alg;
  try {
    alg = march::by_name(text);
  } catch (const std::out_of_range&) {
    try {
      alg = march::parse(text, unit);
    } catch (const march::ParseError& e) {
      report.add("MA00", std::move(unit), -1, e.what(),
                 "see docs/DSL.md for the grammar");
      return report;
    }
  }
  report.merge(lint_march(alg, {}, std::move(unit)));
  return report;
}

Report lint_ucode_text(const std::string& text, std::string unit,
                       const LintOptions& options) {
  mbist_ucode::MicrocodeProgram program;
  try {
    program = mbist_ucode::MicrocodeProgram::from_hex_text(text);
  } catch (const std::exception& e) {
    Report report;
    report.add("UC00", std::move(unit), -1, e.what(),
               "expected the `pmbist assemble --hex` image format");
    return report;
  }
  Report report = lint_ucode(program, {.storage_depth = options.storage_depth});
  if (!options.against.empty()) {
    march::MarchAlgorithm source;
    Report eq;
    if (resolve_against(options.against, unit, source, eq)) {
      const LiftResult lifted =
          lift_ucode(program, {.pause_ns = source_pause_ns(source)});
      check_against(lifted, source, unit, eq);
    }
    report.merge(std::move(eq));
  }
  return report;
}

Report lint_pfsm_text(const std::string& text, std::string unit,
                      const LintOptions& options) {
  mbist_pfsm::PfsmProgram program;
  try {
    program = mbist_pfsm::PfsmProgram::from_hex_text(text);
  } catch (const std::exception& e) {
    Report report;
    report.add("PF00", std::move(unit), -1, e.what(),
               "expected the `pmbist assemble --arch pfsm --hex` image "
               "format");
    return report;
  }
  Report report = lint_pfsm(program, {.buffer_depth = options.buffer_depth});
  if (!options.against.empty()) {
    march::MarchAlgorithm source;
    Report eq;
    if (resolve_against(options.against, unit, source, eq)) {
      const LiftResult lifted =
          lift_pfsm(program, {.pause_ns = source_pause_ns(source)});
      check_against(lifted, source, unit, eq);
    }
    report.merge(std::move(eq));
  }
  return report;
}

/// EQ00 for input kinds --against cannot apply to.
void reject_against(const LintOptions& options, const std::string& unit,
                    const char* what, Report& report) {
  if (options.against.empty()) return;
  report.add("EQ00", unit, -1,
             std::string{"--against applies to controller images; this "
                         "input is a "} +
                 what,
             "lint the assigned programs individually");
}

/// Parses the --chip context.  Returns false after adding SC00 when it is
/// missing or does not parse (the schedule cannot be certified then).
bool resolve_chip_context(const LintOptions& options, const std::string& unit,
                          soc::ChipFile& chip, Report& report) {
  if (options.chip.empty()) {
    report.add("SC00", unit, -1,
               "a schedule cannot be certified without its chip context",
               "pass --chip CHIP (the file this schedule was computed for)");
    return false;
  }
  try {
    chip = soc::parse_chip(options.chip);
    return true;
  } catch (const std::exception& e) {
    report.add("SC00", unit, -1,
               std::string{"chip context is not certifiable: "} + e.what(),
               "fix the chip file first (pmbist lint CHIP)");
    return false;
  }
}

Report lint_soc_schedule_text(const std::string& text, std::string unit,
                              const LintOptions& options) {
  Report report;
  reject_against(options, unit, "SoC schedule", report);
  soc::SocScheduleFile file;
  try {
    file = soc::parse_schedule_text(text);
  } catch (const std::exception& e) {
    report.add("SC00", std::move(unit), schedule_lineno_of(e.what()),
               e.what(), "see docs/SOC.md for the .schedule grammar");
    return report;
  }
  soc::ChipFile chip;
  if (!resolve_chip_context(options, unit, chip, report)) return report;
  report.merge(certify_soc(chip.description, chip.plan, file.entries,
                           std::move(unit)));
  return report;
}

Report lint_field_schedule_text(const std::string& text, std::string unit,
                                const LintOptions& options) {
  Report report;
  reject_against(options, unit, "field schedule", report);
  field::FieldScheduleFile file;
  try {
    file = field::parse_field_schedule_text(text);
  } catch (const std::exception& e) {
    report.add("SC00", std::move(unit), schedule_lineno_of(e.what()),
               e.what(), "see docs/FIELD.md for the .fieldsched grammar");
    return report;
  }
  soc::ChipFile chip;
  if (!resolve_chip_context(options, unit, chip, report)) return report;
  field::MissionProfile profile;
  if (options.profile.empty()) {
    report.add("SC00", std::move(unit), -1,
               "a field schedule cannot be certified without its mission "
               "profile",
               "pass --profile PROFILE (the file this schedule was planned "
               "for)");
    return report;
  }
  try {
    profile = field::parse_profile_text(options.profile);
  } catch (const std::exception& e) {
    report.add("SC00", std::move(unit), -1,
               std::string{"profile context is not certifiable: "} + e.what(),
               "fix the profile file first (pmbist lint PROFILE --chip CHIP)");
    return report;
  }
  report.merge(certify_field(chip.description, chip.plan, profile,
                             file.entries, std::move(unit)));
  return report;
}

/// --certify behind a chip input: run the deterministic scheduling phase
/// and certify its own output.  Skipped when the chip already has lint
/// errors (there is no schedule to derive); a clean-linting chip whose
/// schedule cannot be computed becomes SC00.
void certify_chip_input(const std::string& text, const std::string& unit,
                        Report& report) {
  if (report.has_errors()) return;
  try {
    const soc::ChipFile chip = soc::parse_chip(text);
    const soc::Scheduler scheduler;
    report.merge(certify_soc(chip.description, chip.plan,
                             scheduler.compute_schedule(chip.description,
                                                        chip.plan),
                             unit));
  } catch (const std::exception& e) {
    report.add("SC00", unit, -1,
               std::string{"cannot derive a schedule to certify: "} +
                   e.what(),
               "fix the chip file first");
  }
}

/// --certify behind a profile input: run the field manager against the
/// --chip context and certify the planned session table (plus the
/// signature discipline of the executed passes).
void certify_profile_input(const std::string& text, const std::string& unit,
                           const LintOptions& options, Report& report) {
  if (report.has_errors()) return;
  if (options.chip.empty()) {
    report.add("SC00", unit, -1,
               "a mission profile cannot be certified without its chip "
               "context",
               "pass --chip CHIP alongside --certify");
    return;
  }
  try {
    const soc::ChipFile chip = soc::parse_chip(options.chip);
    const field::MissionProfile profile = field::parse_profile_text(text);
    const field::FieldReport fieldreport = field::run_field(
        chip.description, chip.plan, profile, {.jobs = 1});
    report.merge(certify_field(chip.description, chip.plan, profile,
                               fieldreport, unit));
  } catch (const std::exception& e) {
    report.add("SC00", unit, -1,
               std::string{"cannot derive a field schedule to certify: "} +
                   e.what(),
               "fix the chip and profile files first");
  }
}

}  // namespace

std::string_view to_string(InputKind kind) {
  switch (kind) {
    case InputKind::March: return "march";
    case InputKind::UcodeImage: return "ucode";
    case InputKind::PfsmImage: return "pfsm";
    case InputKind::Chip: return "chip";
    case InputKind::Profile: return "profile";
    case InputKind::SocSchedule: return "soc-schedule";
    case InputKind::FieldSchedule: return "field-schedule";
  }
  return "?";
}

InputKind detect_kind(const std::string& text) {
  if (text.find("pmbist microcode image") != std::string::npos)
    return InputKind::UcodeImage;
  if (text.find("pmbist pfsm image") != std::string::npos)
    return InputKind::PfsmImage;
  // The chip JSON mirror: the only accepted format that is a JSON object.
  const auto first_char = text.find_first_not_of(" \t\r\n");
  if (first_char != std::string::npos && text[first_char] == '{')
    return InputKind::Chip;
  std::istringstream lines{text};
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream words{line.substr(0, line.find('#'))};
    std::string first;
    if (!(words >> first)) continue;
    if (is_chip_directive(first)) return InputKind::Chip;
    if (is_profile_directive(first)) return InputKind::Profile;
    if (is_soc_schedule_directive(first)) return InputKind::SocSchedule;
    if (is_field_schedule_directive(first)) return InputKind::FieldSchedule;
    return InputKind::March;
  }
  return InputKind::March;
}

Report lint_text_as(InputKind kind, const std::string& text, std::string unit,
                    const LintOptions& options) {
  switch (kind) {
    case InputKind::March:
      return lint_march_text(text, std::move(unit), options);
    case InputKind::UcodeImage:
      return lint_ucode_text(text, std::move(unit), options);
    case InputKind::PfsmImage:
      return lint_pfsm_text(text, std::move(unit), options);
    case InputKind::Chip: {
      Report report;
      if (!options.against.empty())
        report.add("EQ00", unit, -1,
                   "--against applies to controller images; this input is a "
                   "chip file",
                   "lint the assigned programs individually");
      report.merge(lint_chip_text(text, unit));
      if (options.certify) certify_chip_input(text, unit, report);
      return report;
    }
    case InputKind::Profile: {
      Report report;
      if (!options.against.empty())
        report.add("EQ00", unit, -1,
                   "--against applies to controller images; this input is a "
                   "mission profile",
                   "lint the assigned programs individually");
      report.merge(lint_profile_text(text, unit, options.chip));
      if (options.certify) certify_profile_input(text, unit, options, report);
      return report;
    }
    case InputKind::SocSchedule:
      return lint_soc_schedule_text(text, std::move(unit), options);
    case InputKind::FieldSchedule:
      return lint_field_schedule_text(text, std::move(unit), options);
  }
  return {};
}

Report lint_text(const std::string& text, std::string unit,
                 const LintOptions& options) {
  return lint_text_as(detect_kind(text), text, std::move(unit), options);
}

}  // namespace pmbist::lint
