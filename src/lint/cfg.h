#pragma once
// Control-flow graphs over controller images.
//
// Both controller ISAs are lowered to one graph shape: instruction i has a
// set of successor indices derived from the real decode semantics
// (mbist_ucode::decode / the pFSM circular-buffer chaining), with every
// condition outcome contributing an edge.  From the per-instruction edges
// build_cfg() forms maximal basic blocks, computes reverse postorder and
// immediate dominators over the reachable region (iterative
// Cooper-Harvey-Kennedy), recovers the natural loops behind dominating
// back edges, and flags retreating edges whose target does not dominate
// their source — irreducible regions no loop structure explains.
//
// Microcode subtlety: LOOP_CELL branches to the *branch register*, whose
// value is program-state, not an instruction field.  ucode_branch_values()
// runs a forward may-analysis (worklist fixpoint over edge-specific
// transfer functions mirroring decode()'s ic_reset0/ic_reset1/branch_save
// updates) so LOOP_CELL successor sets are exact for every path, including
// images that enter an op group mid-way.
//
// Consumers: program_lint.cpp (LT00 unreachable blocks replace the ad-hoc
// prefix scan), lifter.cpp (reducibility gate + reachable-region walk) and
// fix.cpp (CFG-exact dead-code removal).  The graph API is ISA-agnostic on
// purpose: tests pin dominator/irreducibility behavior on synthetic edge
// lists that no well-formed image can produce (diagnostics code LT01).

#include <utility>
#include <vector>

#include "mbist_pfsm/isa.h"
#include "mbist_ucode/isa.h"

namespace pmbist::lint {

/// A maximal straight-line run of instructions [first, last].
struct BasicBlock {
  int first = 0;
  int last = 0;
  bool reachable = false;          ///< reachable from instruction 0
  std::vector<int> successors;     ///< block indices, sorted, deduplicated
  std::vector<int> predecessors;   ///< block indices, sorted, deduplicated
};

/// One natural loop: every dominating back edge into `header` contributes
/// its body; loops sharing a header are merged.
struct NaturalLoop {
  int header = 0;
  std::vector<int> body;  ///< block indices including the header, sorted
};

/// The analyzed graph.  Unreachable blocks are materialized (the linters
/// report them) but excluded from rpo / dominators / loops.
struct Cfg {
  std::vector<BasicBlock> blocks;
  std::vector<int> block_of;        ///< instruction index -> block index
  std::vector<bool> reachable_insn; ///< per instruction
  std::vector<int> rpo;             ///< reachable blocks in reverse postorder
  std::vector<int> rpo_index;       ///< block -> position in rpo (-1 unreachable)
  std::vector<int> idom;            ///< block -> immediate dominator (-1 unreachable)
  std::vector<NaturalLoop> loops;   ///< sorted by header block
  /// Retreating edges (u -> h in block indices) whose target does not
  /// dominate their source: the graph has no reducible loop nest.
  std::vector<std::pair<int, int>> irreducible_edges;

  /// True when block `a` dominates block `b` (both reachable).
  [[nodiscard]] bool dominates(int a, int b) const;
  [[nodiscard]] bool reducible() const noexcept {
    return irreducible_edges.empty();
  }
};

/// Per-instruction successor sets of a microcode image, one entry per
/// instruction, each sorted and deduplicated.  Every decode() outcome
/// contributes an edge; LOOP_CELL targets come from ucode_branch_values().
/// Targets at or past the end of the program (instruction-counter
/// exhaustion, the UC04 situation) are exits, not edges.
[[nodiscard]] std::vector<std::vector<int>> ucode_successors(
    const std::vector<mbist_ucode::Instruction>& code);

/// May-values of the branch register at entry to each instruction (sorted
/// sets; empty for unreachable instructions).  Forward worklist fixpoint
/// seeded with {0} at instruction 0.
[[nodiscard]] std::vector<std::vector<int>> ucode_branch_values(
    const std::vector<mbist_ucode::Instruction>& code);

/// Per-row successor sets of a pFSM circular buffer: component rows chain
/// to (i+1) mod n, a path-A row adds the per-background restart at 0, a
/// path-B row restarts at 0 per port and never falls through.
[[nodiscard]] std::vector<std::vector<int>> pfsm_successors(
    const std::vector<mbist_pfsm::PfsmInstruction>& rows);

/// Builds the full analysis from per-instruction successor sets (entry is
/// instruction 0).  Accepts arbitrary graphs — including the irreducible
/// shapes no controller image can encode — so tests can pin LT01 behavior.
[[nodiscard]] Cfg build_cfg(const std::vector<std::vector<int>>& successors);

[[nodiscard]] Cfg build_ucode_cfg(const mbist_ucode::MicrocodeProgram& p);
[[nodiscard]] Cfg build_pfsm_cfg(const mbist_pfsm::PfsmProgram& p);

}  // namespace pmbist::lint
