#include "lint/equiv.h"

#include <algorithm>
#include <sstream>

#include "march/expand.h"

namespace pmbist::lint {
namespace {

using march::MarchAlgorithm;
using march::MemOp;

std::string fmt_op(const MemOp& op) {
  std::ostringstream os;
  switch (op.kind) {
    case MemOp::Kind::Write:
      os << "w @" << op.addr << " d=" << op.data;
      break;
    case MemOp::Kind::Read:
      os << "r @" << op.addr << " expect=" << op.data;
      break;
    case MemOp::Kind::Pause:
      os << "pause " << op.pause_ns << "ns";
      break;
  }
  if (op.port != 0) os << " p" << op.port;
  return os.str();
}

/// Probe geometries for stream comparison: the qualifier's canonical
/// 4-word bit array plus a word-oriented multiport shape, so both the
/// address-order structure and the background/port loops are exercised.
constexpr memsim::MemoryGeometry kProbeA{.address_bits = 2, .word_bits = 1,
                                         .num_ports = 1};
constexpr memsim::MemoryGeometry kProbeB{.address_bits = 3, .word_bits = 2,
                                         .num_ports = 2};

/// Counterexample around the first divergence of the two probe streams.
std::vector<std::string> divergence_trace(const march::OpStream& want,
                                          const march::OpStream& got) {
  std::vector<std::string> trace;
  std::size_t k = 0;
  while (k < want.size() && k < got.size() && want[k] == got[k]) ++k;
  const std::size_t from = k >= 2 ? k - 2 : 0;
  for (std::size_t i = from; i < k; ++i)
    trace.push_back("op " + std::to_string(i) + ": both apply " +
                    fmt_op(want[i]));
  if (k < want.size() && k < got.size()) {
    trace.push_back("op " + std::to_string(k) + ": algorithm applies " +
                    fmt_op(want[k]) + ", image applies " + fmt_op(got[k]));
  } else if (k < want.size()) {
    trace.push_back("op " + std::to_string(k) +
                    ": image stream ends, algorithm continues with " +
                    fmt_op(want[k]));
  } else if (k < got.size()) {
    trace.push_back("op " + std::to_string(k) +
                    ": algorithm stream ends, image continues with " +
                    fmt_op(got[k]));
  }
  return trace;
}

}  // namespace

std::string_view to_string(EquivKind k) {
  switch (k) {
    case EquivKind::Equivalent: return "equivalent";
    case EquivKind::Mismatch: return "mismatch";
    case EquivKind::Unliftable: return "unliftable";
  }
  return "?";
}

MarchAlgorithm canonicalize(const MarchAlgorithm& alg) {
  std::vector<march::MarchElement> elements = alg.elements();
  for (auto& e : elements)
    if (!e.is_pause && e.order == march::AddressOrder::Any)
      e.order = march::AddressOrder::Up;
  return MarchAlgorithm{alg.name(), std::move(elements)};
}

EquivResult check_equivalence(const LiftResult& lifted,
                              const MarchAlgorithm& source) {
  EquivResult result;
  if (!lifted.ok) {
    result.kind = EquivKind::Unliftable;
    result.detail = lifted.why;
    result.index = lifted.index;
    result.code = lifted.code;
    result.trace = lifted.trace;
    return result;
  }

  const MarchAlgorithm canon_source = canonicalize(source);
  const MarchAlgorithm& canon_image = lifted.algorithm;  // always concrete

  if (canon_source.elements() == canon_image.elements()) {
    result.kind = EquivKind::Equivalent;
    result.detail = "image realizes '" + source.name() + "' (" +
                    std::to_string(canon_source.elements().size()) +
                    " elements, canonical lists equal)";
    return result;
  }

  // The element lists differ; the expanded streams decide.  Equal streams
  // on both probes mean the images apply the same ops — the algorithms
  // only split them into elements differently.
  for (const auto& probe : {kProbeA, kProbeB}) {
    const auto want = march::expand(canon_source, probe);
    const auto got = march::expand(canon_image, probe);
    if (want == got) continue;
    result.kind = EquivKind::Mismatch;
    result.trace = divergence_trace(want, got);
    std::size_t k = 0;
    while (k < want.size() && k < got.size() && want[k] == got[k]) ++k;
    result.detail =
        "image does not realize '" + source.name() + "': lifted " +
        std::to_string(canon_image.march_element_count()) +
        " march elements, eq. check diverges at op " + std::to_string(k) +
        " of the expanded stream";
    return result;
  }
  result.kind = EquivKind::Equivalent;
  result.detail = "image realizes '" + source.name() +
                  "' (element split differs; expanded op streams are "
                  "identical)";
  return result;
}

}  // namespace pmbist::lint
