#pragma once
// Lint driver: sniffs what kind of input a piece of text is (march DSL or
// library name, microcode hex image, pFSM hex image, chip file) and runs
// the matching pass.  This is the engine behind `pmbist lint`, which
// accepts any of the on-disk formats with one entry point.

#include <string>

#include "lint/diagnostics.h"

namespace pmbist::lint {

enum class InputKind : std::uint8_t {
  March,
  UcodeImage,
  PfsmImage,
  Chip,
  Profile,
  SocSchedule,
  FieldSchedule
};

[[nodiscard]] std::string_view to_string(InputKind kind);

/// Classifies text by shape: the ucode / pFSM image headers win, then a
/// leading '{' (the JSON chip mirror), then any line starting with a chip
/// directive (soc/mem/fault/assign/power_budget), a mission-profile
/// directive (profile/window/horizon/bus_budget), a SoC-schedule directive
/// (schedule/session) or a field-schedule directive (fieldschedule/
/// fsession), otherwise march (library name or DSL).
[[nodiscard]] InputKind detect_kind(const std::string& text);

struct LintOptions {
  int storage_depth = 32;  ///< microcode storage words (UC02)
  int buffer_depth = 16;   ///< pFSM buffer rows (PF02)
  /// Chip-file TEXT a mission profile is checked against (FP04/FP05) and
  /// schedules are certified against (SC codes).  Ignored for other input
  /// kinds; empty skips the cross-file checks (SC00 for schedules, which
  /// cannot be certified without their chip).
  std::string chip;
  /// Mission-profile TEXT a field schedule is certified against.  Only
  /// used for FieldSchedule inputs and for --certify on a Profile input.
  std::string profile;
  /// Certify the scheduler outputs behind a chip/profile input: runs the
  /// deterministic scheduling phase and the certificate checker
  /// (lint/certify.h) on its result, merging any SC diagnostics.
  /// Schedule inputs are always certified when their context is supplied.
  bool certify = false;
  /// Translation validation: march source (library name or DSL text) the
  /// image must realize.  When non-empty and the input is a controller
  /// image, the lifter recovers the algorithm the image applies and the
  /// equivalence checker proves it equal to this source (EQ04) or reports
  /// EQ01/EQ02 with a counterexample trace.  EQ00 when the source does not
  /// resolve or the input is not a controller image.
  std::string against;
};

/// Lints `text` as `kind`.  Never throws on malformed input — parse
/// failures become MA00/UC00/PF00/CH02/FP00/SC00 diagnostics.
[[nodiscard]] Report lint_text_as(InputKind kind, const std::string& text,
                                  std::string unit,
                                  const LintOptions& options = {});

/// detect_kind + lint_text_as.
[[nodiscard]] Report lint_text(const std::string& text, std::string unit,
                               const LintOptions& options = {});

}  // namespace pmbist::lint
