#pragma once
// Translation-validation lifter: symbolically executes a controller image
// (microcode storage unit or pFSM instruction buffer) and lifts it back
// into the canonical march::MarchAlgorithm it realizes.
//
// The lifter is an abstract interpreter over the same decode()/phase
// semantics the behavioral controllers use, but with the address, data and
// port generators left symbolic: instead of walking 2^address_bits cells it
// recognizes the element structure (leader .. closer op groups, the Repeat
// window with its reference-register polarity mask, the Pause timer, and
// the data-background / port loop-back paths) and emits one MarchElement
// per recognized group.  The result is geometry-independent: if the lift
// succeeds, the image applies exactly `expand(algorithm, g)` for every
// geometry g (restricted to a single pass when the loop tail is absent —
// see LiftResult::has_data_loop / has_port_loop).
//
// The lifter is sound, not complete: images whose behavior depends on the
// geometry (an address step mid-element, a loop-back to the middle of a
// previous group, a component row after the data loop, ...) are rejected
// as unliftable with the offending instruction named.  equiv.h builds the
// MISMATCH/UNLIFTABLE diagnostics and the round-trip gate
// `lift(assemble(A)) == A` on top of this.

#include <string>

#include "march/march.h"
#include "mbist_pfsm/isa.h"
#include "mbist_ucode/isa.h"

namespace pmbist::lint {

struct LiftOptions {
  /// Duration assigned to lifted pause elements.  The image encodes *that*
  /// a pause happens but not for how long (one timer config per program),
  /// so callers validating against a source algorithm pass the source's
  /// pause duration here.
  std::uint64_t pause_ns = 100'000'000;
};

struct LiftResult {
  /// True when the image was recognized as a march program.
  bool ok = false;
  /// When !ok: why the image is not liftable, naming the instruction.
  std::string why;
  /// When !ok: the offending instruction index (-1 when structural).
  int index = -1;

  /// When ok: the lifted algorithm (named after the program).
  march::MarchAlgorithm algorithm;
  /// When ok: true when the image ends in the data-background loop-back
  /// (microcode LOOP_DATA / pFSM path A) so word-oriented memories see
  /// every background.
  bool has_data_loop = false;
  /// When ok: true when the image ends in the port loop-back (microcode
  /// LOOP_PORT / pFSM path B) so every port is tested.
  bool has_port_loop = false;

  /// Full loop structure: the image repeats per background and per port,
  /// matching march::expand() on every geometry.
  [[nodiscard]] bool full_structure() const noexcept {
    return has_data_loop && has_port_loop;
  }
};

/// Lifts a microcode image.  Never throws; unliftable images return
/// ok=false with a reason.
[[nodiscard]] LiftResult lift_ucode(const mbist_ucode::MicrocodeProgram& p,
                                    const LiftOptions& options = {});

/// Lifts a pFSM instruction-buffer image.  Never throws.
[[nodiscard]] LiftResult lift_pfsm(const mbist_pfsm::PfsmProgram& p,
                                   const LiftOptions& options = {});

}  // namespace pmbist::lint
