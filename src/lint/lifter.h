#pragma once
// Translation-validation lifter: abstractly interprets a controller image
// (microcode storage unit or pFSM instruction buffer) over its control-flow
// graph (cfg.h) and lifts it back into the canonical march::MarchAlgorithm
// it realizes.
//
// The lifter runs the same decode()/phase semantics the behavioral
// controllers use, but with the address, data and port generators left
// symbolic: instead of walking 2^address_bits cells it recovers the element
// structure — op groups with their cell-loop bodies, the Repeat window with
// its reference-register polarity mask, the Pause timer, and the
// data-background / port loop-back tails — and emits one MarchElement per
// recovered group.  Group recovery is body-based, not shape-based: a
// LOOP_CELL closer is accepted whenever the ops its loop body (the rows
// from the branch-register target through the closer) applies per cell
// equal the ops the first cell saw, so images that enter an op group
// mid-way, pad groups with no-op rows, or step addresses over rows that
// touch no memory all lift.  The result is geometry-independent: if the
// lift succeeds, the image applies exactly `expand(algorithm, g)` for
// every geometry g (restricted to a single pass when the loop tail is
// absent — see LiftResult::has_data_loop / has_port_loop).
//
// Images with no canonical march are rejected with a stable diagnostic
// code (the LT registry in diagnostics.h, plus PF03 for out-of-table pFSM
// modes), a reason naming the offending instruction, and — where the
// rejection is a path disagreement — a counterexample trace of the two
// paths' op lists.  equiv.h builds the MISMATCH/UNLIFTABLE verdicts and
// the round-trip gate `lift(assemble(A)) == A` on top of this.

#include <string>
#include <vector>

#include "march/march.h"
#include "mbist_pfsm/isa.h"
#include "mbist_ucode/isa.h"

namespace pmbist::lint {

struct LiftOptions {
  /// Duration assigned to lifted pause elements.  The image encodes *that*
  /// a pause happens but not for how long (one timer config per program),
  /// so callers validating against a source algorithm pass the source's
  /// pause duration here.
  std::uint64_t pause_ns = 100'000'000;
};

struct LiftResult {
  /// True when the image was recognized as a march program.
  bool ok = false;
  /// When !ok: why the image is not liftable, naming the instruction.
  std::string why;
  /// When !ok: the stable diagnostic code of the rejection (an LT code
  /// from diagnostics.h, or "PF03" for out-of-table pFSM modes) so --json
  /// consumers can key on the reason instead of matching message text.
  std::string code;
  /// When !ok: counterexample lines for path disagreements (e.g. the ops
  /// the first cell sees vs the ops the loop-back body replays); empty
  /// when the reason needs no trace.
  std::vector<std::string> trace;
  /// When !ok: the offending instruction index (-1 when structural).
  int index = -1;

  /// When ok: the lifted algorithm (named after the program).
  march::MarchAlgorithm algorithm;
  /// When ok: true when the image ends in the data-background loop-back
  /// (microcode LOOP_DATA / pFSM path A) so word-oriented memories see
  /// every background.
  bool has_data_loop = false;
  /// When ok: true when the image ends in the port loop-back (microcode
  /// LOOP_PORT / pFSM path B) so every port is tested.
  bool has_port_loop = false;

  /// Full loop structure: the image repeats per background and per port,
  /// matching march::expand() on every geometry.
  [[nodiscard]] bool full_structure() const noexcept {
    return has_data_loop && has_port_loop;
  }
};

/// Lifts a microcode image.  Never throws; unliftable images return
/// ok=false with a reason, code and (when applicable) trace.
[[nodiscard]] LiftResult lift_ucode(const mbist_ucode::MicrocodeProgram& p,
                                    const LiftOptions& options = {});

/// Lifts a pFSM instruction-buffer image.  Never throws.
[[nodiscard]] LiftResult lift_pfsm(const mbist_pfsm::PfsmProgram& p,
                                   const LiftOptions& options = {});

}  // namespace pmbist::lint
