#pragma once
// Mechanical autofix for controller images (`pmbist lint --fix`).
//
// The fixable subset is deliberately narrow: transformations that provably
// preserve the op stream the controller applies.
//
//   - microcode: drop unreachable instructions (the dead suffix after the
//     first reachable TERMINATE / LOOP_PORT — never executed), then remove
//     reachable no-op sweeps (rw=NOP walk instructions).  Every no-op
//     removal renumbers the instructions after it, which shifts Repeat
//     windows and branch targets, so each candidate is verified through
//     the translation-validation lifter: the removal is kept only when the
//     shrunk image lifts to the identical march algorithm with the same
//     loop structure and does not lint worse than the original.
//   - pFSM: drop the unused rows after the first path-B (port loop / test
//     end) row — the circular buffer never runs them.
//
// March and chip inputs have no mechanical subset (their fix hints are
// semantic); fix_text reports them unfixable rather than guessing.

#include <string>

#include "lint/driver.h"
#include "mbist_pfsm/isa.h"
#include "mbist_ucode/isa.h"

namespace pmbist::lint {

struct FixOutcome {
  bool changed = false;
  std::string summary;  ///< human-readable description of what was removed
};

/// Fixes `program` in place (dead-code truncation + lifter-verified no-op
/// removal).  Never throws.
FixOutcome fix_ucode(mbist_ucode::MicrocodeProgram& program);

/// Drops the unused rows after the first port-loop row.  Never throws.
FixOutcome fix_pfsm(mbist_pfsm::PfsmProgram& program);

struct FixResult {
  bool changed = false;
  std::string text;     ///< rewritten hex image (valid when changed)
  std::string summary;  ///< what was fixed, or why nothing was
};

/// Sniffs the input kind and applies the matching mechanical fix.  March /
/// chip inputs and unparseable images return changed=false with the reason
/// in `summary`.  Never throws.
[[nodiscard]] FixResult fix_text(const std::string& text,
                                 const std::string& unit);

}  // namespace pmbist::lint
