#pragma once
// Mechanical autofix for controller images (`pmbist lint --fix`).
//
// The fixable subset is deliberately narrow: transformations that provably
// preserve the op stream the controller applies.
//
//   - microcode: drop unreachable instructions (the dead suffix after the
//     first reachable TERMINATE / LOOP_PORT — never executed), then remove
//     reachable no-op sweeps (rw=NOP walk instructions).  Every no-op
//     removal renumbers the instructions after it, which shifts Repeat
//     windows and branch targets, so each candidate is verified through
//     the translation-validation lifter: the removal is kept only when the
//     shrunk image lifts to the identical march algorithm with the same
//     loop structure and does not lint worse than the original.
//   - pFSM: drop the unused rows after the first path-B (port loop / test
//     end) row — the circular buffer never runs them.
//   - march: remove dead elements, gated by the semantic-diff guarantee —
//     a removal is kept only when the shrunk algorithm still validates,
//     the coverage prover's guaranteed fault classes stay a superset of
//     the original's (the prover verdict is unchanged-or-better) and the
//     march lint does not get worse.  Library algorithms are canonical
//     and never rewritten.
//   - chip: drop spare resources that can never engage (CH09) and raise
//     an infeasible power budget to admit the heaviest single session
//     (CH07), gated by the schedule-certificate guarantee — the rewritten
//     chip must re-lint no worse AND its re-computed schedule must pass
//     the certificate checker (lint/certify.h) with zero errors.
//
// Profile inputs have no mechanical subset (their fix hints are
// semantic); fix_text reports them unfixable rather than guessing.

#include <string>

#include "lint/driver.h"
#include "march/march.h"
#include "mbist_pfsm/isa.h"
#include "mbist_ucode/isa.h"

namespace pmbist::lint {

struct FixOutcome {
  bool changed = false;
  std::string summary;  ///< human-readable description of what was removed
};

/// Fixes `program` in place (dead-code truncation + lifter-verified no-op
/// removal).  Never throws.
FixOutcome fix_ucode(mbist_ucode::MicrocodeProgram& program);

/// Drops the unused rows after the first port-loop row.  Never throws.
FixOutcome fix_pfsm(mbist_pfsm::PfsmProgram& program);

/// Removes dead elements from `alg` in place, gated by the prover +
/// march-lint guarantee described above.  Never throws.
FixOutcome fix_march(march::MarchAlgorithm& alg);

struct FixResult {
  bool changed = false;
  std::string text;     ///< rewritten input (valid when changed)
  std::string summary;  ///< what was fixed, or why nothing was
};

/// Chip-file repairs (text format only) gated by the certificate
/// guarantee.  Never throws.
[[nodiscard]] FixResult fix_chip_text(const std::string& text,
                                      const std::string& unit);

/// Sniffs the input kind and applies the matching mechanical fix.
/// Profile inputs and unparseable images return changed=false with the
/// reason in `summary`.  Never throws.
[[nodiscard]] FixResult fix_text(const std::string& text,
                                 const std::string& unit);

}  // namespace pmbist::lint
