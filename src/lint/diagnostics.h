#pragma once
// Diagnostics engine of the static verifier (`pmbist lint`).
//
// Every finding is a Diagnostic: a stable code (e.g. "UC03"), a severity,
// the unit it was found in (program / algorithm / file name), an index
// locating it inside the unit (instruction index, element index or line
// number depending on the input kind; -1 when the finding is global), a
// message and an optional fix hint.  A Report collects diagnostics in
// emission order; renderers produce the CLI's text output and a JSON
// mirror for tool exchange.
//
// Codes are registered in all_codes() with their default severity and a
// one-line summary; docs/LINT.md documents every code with a triggering
// example and tests/test_docs.cpp enforces that the registry and the doc
// cannot drift apart.  Codes are append-only: once shipped, a code keeps
// its meaning (scripts grep for them).

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pmbist::lint {

enum class Severity : std::uint8_t { Note, Warning, Error };

[[nodiscard]] std::string_view to_string(Severity s);

/// One finding.
struct Diagnostic {
  std::string code;                      ///< stable code, e.g. "UC03"
  Severity severity = Severity::Error;
  std::string unit;                      ///< program / algorithm / file name
  int index = -1;                        ///< instruction / element / line; -1 = whole unit
  std::string message;
  std::string hint;                      ///< optional fix hint

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// An ordered collection of findings for one lint run.
class Report {
 public:
  void add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }
  void add(std::string_view code, std::string unit, int index,
           std::string message, std::string hint = {});

  void merge(Report other);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }
  [[nodiscard]] bool empty() const noexcept { return diagnostics_.empty(); }
  [[nodiscard]] int count(Severity s) const noexcept;
  [[nodiscard]] bool has_errors() const noexcept {
    return count(Severity::Error) > 0;
  }
  [[nodiscard]] bool has_code(std::string_view code) const noexcept;

  friend bool operator==(const Report&, const Report&) = default;

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Registry entry for one diagnostic code.
struct CodeInfo {
  std::string_view code;
  Severity severity = Severity::Error;
  std::string_view summary;
  /// True for codes only reachable through the C++ API (not expressible in
  /// any on-disk input); docs enforcement pins them by presence + unit test
  /// instead of a runnable example block.
  bool api_only = false;
};

/// Every diagnostic code the linter can emit, grouped MA / UC / PF / CH.
[[nodiscard]] std::span<const CodeInfo> all_codes();

/// Looks up one code; nullptr when unknown.
[[nodiscard]] const CodeInfo* find_code(std::string_view code);

/// Severity of a registered code (Error for unknown codes, defensively).
[[nodiscard]] Severity severity_of(std::string_view code);

/// Text rendering, one line per diagnostic:
///   <severity>[<code>] <unit>:<index>: <message>
///       hint: <hint>
[[nodiscard]] std::string format_text(const Report& report);

/// JSON rendering: {"diagnostics":[...],"errors":N,"warnings":N,"notes":N}.
[[nodiscard]] std::string format_json(const Report& report);

/// The CLI's complete stdout for one lint run: format_json + newline when
/// `json`, otherwise format_text followed by the per-unit summary line.
/// Shared verbatim by `pmbist lint` and the serve layer, which is what
/// pins serve lint payloads byte-identical to CLI output.
[[nodiscard]] std::string format_cli(const Report& report,
                                     const std::string& unit, bool json);

}  // namespace pmbist::lint
