#pragma once
// March-algorithm lint pass (MA codes): structural validity, observability
// (an algorithm with no reads tests nothing), read/state consistency (a
// read expecting a value no healthy cell can hold fails on *good* parts),
// pause placement, and the prover's guarantee summary.

#include "lint/diagnostics.h"
#include "march/march.h"

namespace pmbist::lint {

struct MarchLintOptions {
  /// Emit the MA05 note summarizing the statically proven fault classes
  /// (and MA06 when SAF is not guaranteed).
  bool prover_summary = true;
};

/// Lints one march algorithm.  `unit` defaults to the algorithm's name.
[[nodiscard]] Report lint_march(const march::MarchAlgorithm& alg,
                                const MarchLintOptions& options = {},
                                std::string unit = {});

}  // namespace pmbist::lint
