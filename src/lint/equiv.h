#pragma once
// Equivalence checker over lifted controller images: proves that the
// algorithm a lifter recovered from an image (lifter.h) equals a source
// march algorithm up to element canonicalization, and builds a readable
// counterexample operation trace when it does not.
//
// Canonical form: don't-care address orders (Any) run ascending in every
// controller of this repo, so the source is canonicalized Any -> Up before
// comparison; the lifted side is always concrete.  Two algorithms whose
// canonical element lists are equal expand to the same operation stream on
// every geometry, which is the repo's ground-truth notion of controller
// correctness (march::expand).  When the element lists differ but the
// expanded streams agree on the probe geometries, the checker still rules
// Equivalent (the split into elements differs; the applied ops do not).
//
// The counterexample trace is computed by expanding both sides on a small
// probe geometry and printing the ops around the first divergence — the
// exact reads/writes a tester would see disagree on silicon.

#include <string>
#include <vector>

#include "lint/lifter.h"
#include "march/march.h"

namespace pmbist::lint {

enum class EquivKind : std::uint8_t { Equivalent, Mismatch, Unliftable };

[[nodiscard]] std::string_view to_string(EquivKind k);

struct EquivResult {
  EquivKind kind = EquivKind::Unliftable;
  /// One-line verdict: the proof, the mismatch summary, or the unliftable
  /// reason.
  std::string detail;
  /// Counterexample lines: ops around the first divergence (Mismatch), or
  /// the lifter's path disagreement (Unliftable, when it produced one).
  std::vector<std::string> trace;
  /// Unliftable: offending instruction index (-1 when structural).
  int index = -1;
  /// Unliftable: the lifter's stable rejection code (LT registry / PF03)
  /// so consumers can key on the reason instead of the message text.
  std::string code;
};

/// Returns `alg` with every Any order rewritten to Up (the direction every
/// controller uses for don't-care elements).  Name and pauses unchanged.
[[nodiscard]] march::MarchAlgorithm canonicalize(
    const march::MarchAlgorithm& alg);

/// Proves `lifted` (from lift_ucode / lift_pfsm) equivalent to `source`,
/// or produces the counterexample.  Loop-structure completeness
/// (LiftResult::full_structure) is reported separately by the caller; this
/// checker compares what the image applies per (port, background) pass.
[[nodiscard]] EquivResult check_equivalence(const LiftResult& lifted,
                                            const march::MarchAlgorithm& source);

}  // namespace pmbist::lint
