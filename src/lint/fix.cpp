#include "lint/fix.h"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "lint/certify.h"
#include "lint/cfg.h"
#include "lint/chip_lint.h"
#include "lint/lifter.h"
#include "lint/march_lint.h"
#include "lint/program_lint.h"
#include "lint/prover.h"
#include "march/library.h"
#include "march/parser.h"
#include "soc/chip.h"
#include "soc/scheduler.h"

namespace pmbist::lint {
namespace {

using mbist_ucode::Flow;
using mbist_ucode::Instruction;
using mbist_ucode::MicrocodeProgram;
using mbist_ucode::Rw;
using mbist_pfsm::PfsmInstruction;
using mbist_pfsm::PfsmProgram;

/// Instructions to keep: the CFG-reachable region.  Removal is exact only
/// when the dead instructions form a suffix (removing an interior block
/// would renumber every absolute branch target after it — Repeat's
/// reset-to-1, the branch register, the loop restarts at 0), so anything
/// before the last reachable instruction is kept even when unreachable.
/// For microcode the two coincide: every flow either falls through or
/// branches backwards, making the reachable set a prefix — the CFG check
/// is the proof, not an approximation.
template <typename Code>
std::size_t reachable_prefix(const Code& code,
                             const std::vector<bool>& reachable) {
  std::size_t keep = 0;
  for (std::size_t i = 0; i < code.size(); ++i)
    if (reachable[i]) keep = i + 1;
  return keep;
}

/// A no-op sweep candidate: an op-flow instruction whose rw field is NOP.
/// Whether removing it preserves behavior depends on context (a NOP leader
/// carries the element's address order; a NOP LOOP_SELF mid-group truncates
/// the group), so candidates are verified through the lifter, not assumed.
bool is_nop_sweep(const Instruction& instr) {
  return instr.rw == Rw::Nop &&
         (instr.flow == Flow::Next || instr.flow == Flow::LoopCell ||
          instr.flow == Flow::LoopSelf);
}

/// True when removing the candidate left an image that provably applies the
/// same op stream and lints no worse than the original.
bool removal_is_safe(const MicrocodeProgram& before,
                     const MicrocodeProgram& after) {
  const LiftResult lifted_before = lift_ucode(before);
  if (!lifted_before.ok) return false;  // nothing to verify against
  const LiftResult lifted_after = lift_ucode(after);
  if (!lifted_after.ok ||
      lifted_after.algorithm.elements() != lifted_before.algorithm.elements() ||
      lifted_after.has_data_loop != lifted_before.has_data_loop ||
      lifted_after.has_port_loop != lifted_before.has_port_loop)
    return false;
  // Renumbering can re-anchor a Repeat window (its reset-to-1 path is an
  // absolute index): reject any removal that introduces new findings, e.g.
  // an emptied Repeat window (UC05).
  const Report before_lint = lint_ucode(before);
  const Report after_lint = lint_ucode(after);
  return after_lint.count(Severity::Error) <=
             before_lint.count(Severity::Error) &&
         after_lint.count(Severity::Warning) <=
             before_lint.count(Severity::Warning);
}

std::string plural(std::size_t n, const char* noun) {
  return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
}

/// The march semantic-diff gate: removing an element is safe only when the
/// shrunk algorithm still validates, every fault class the prover
/// guaranteed before stays guaranteed after (the verdict is
/// unchanged-or-better) and the march lint does not get worse.
bool march_removal_is_safe(const march::MarchAlgorithm& before,
                           const march::MarchAlgorithm& after) {
  if (!after.validate().empty()) return false;
  const CoverageProof proof_before = prove_coverage(before);
  const CoverageProof proof_after = prove_coverage(after);
  for (const auto cls : provable_classes()) {
    const ClassProof* b = proof_before.find(cls);
    const ClassProof* a = proof_after.find(cls);
    if (b != nullptr && b->guaranteed && (a == nullptr || !a->guaranteed))
      return false;
  }
  const Report lint_before = lint_march(before, {}, "fix");
  const Report lint_after = lint_march(after, {}, "fix");
  return lint_after.count(Severity::Error) <=
             lint_before.count(Severity::Error) &&
         lint_after.count(Severity::Warning) <=
             lint_before.count(Severity::Warning);
}

/// The march parser has no comment syntax; strip '#' comments like the
/// lint driver does for on-disk .march files.
std::string strip_march_comments(const std::string& text) {
  std::istringstream lines{text};
  std::string line;
  std::string out;
  while (std::getline(lines, line)) {
    if (!out.empty()) out += ' ';
    out += line.substr(0, line.find('#'));
  }
  return out;
}

}  // namespace

FixOutcome fix_ucode(MicrocodeProgram& program) {
  std::vector<Instruction> code = program.instructions();

  const Cfg cfg = build_ucode_cfg(program);
  const std::size_t keep = reachable_prefix(code, cfg.reachable_insn);
  const std::size_t dead = code.size() - keep;
  code.resize(keep);

  std::size_t swept = 0;
  MicrocodeProgram current{program.name(), code};
  for (std::size_t i = code.size(); i-- > 0;) {
    if (!is_nop_sweep(code[i])) continue;
    std::vector<Instruction> shrunk = code;
    shrunk.erase(shrunk.begin() + static_cast<std::ptrdiff_t>(i));
    MicrocodeProgram candidate{program.name(), shrunk};
    if (!removal_is_safe(current, candidate)) continue;
    code = std::move(shrunk);
    current = std::move(candidate);
    ++swept;
  }

  FixOutcome outcome;
  outcome.changed = dead > 0 || swept > 0;
  if (!outcome.changed) {
    outcome.summary = "no mechanical fixes apply";
    return outcome;
  }
  if (dead > 0)
    outcome.summary = "dropped " + plural(dead, "unreachable instruction");
  if (swept > 0) {
    if (!outcome.summary.empty()) outcome.summary += ", ";
    outcome.summary += "removed " + plural(swept, "no-op sweep");
  }
  program = MicrocodeProgram{program.name(), std::move(code)};
  return outcome;
}

FixOutcome fix_pfsm(PfsmProgram& program) {
  const auto& rows = program.instructions();
  const Cfg cfg = build_pfsm_cfg(program);
  const std::size_t used = reachable_prefix(rows, cfg.reachable_insn);

  FixOutcome outcome;
  if (used == rows.size()) {
    outcome.summary = "no mechanical fixes apply";
    return outcome;
  }
  outcome.changed = true;
  outcome.summary =
      "dropped " + plural(rows.size() - used, "unused trailing row");
  std::vector<PfsmInstruction> kept{rows.begin(),
                                    rows.begin() + static_cast<std::ptrdiff_t>(used)};
  program = PfsmProgram{program.name(), std::move(kept)};
  return outcome;
}

FixOutcome fix_march(march::MarchAlgorithm& alg) {
  std::vector<march::MarchElement> elements = alg.elements();
  march::MarchAlgorithm current = alg;
  std::size_t removed = 0;
  for (std::size_t i = elements.size(); i-- > 0;) {
    if (elements.size() <= 1) break;
    std::vector<march::MarchElement> shrunk = elements;
    shrunk.erase(shrunk.begin() + static_cast<std::ptrdiff_t>(i));
    march::MarchAlgorithm candidate{alg.name(), shrunk};
    if (!march_removal_is_safe(current, candidate)) continue;
    elements = std::move(shrunk);
    current = std::move(candidate);
    ++removed;
  }

  FixOutcome outcome;
  if (removed == 0) {
    outcome.summary = "no mechanical fixes apply";
    return outcome;
  }
  outcome.changed = true;
  outcome.summary = "removed " + plural(removed, "dead element") +
                    " (prover verdict preserved)";
  alg = std::move(current);
  return outcome;
}

FixResult fix_chip_text(const std::string& text, const std::string& unit) {
  FixResult result;
  const auto first_char = text.find_first_not_of(" \t\r\n");
  if (first_char != std::string::npos && text[first_char] == '{') {
    result.summary = unit + ": --fix applies to the text chip format "
                            "(regenerate the JSON mirror from the fixed "
                            "text)";
    return result;
  }
  soc::ChipFile chip;
  try {
    chip = soc::parse_chip_text(text, {.validate_plan = false});
  } catch (const std::exception& e) {
    result.summary = unit + ": cannot fix an unparseable chip file: " +
                     e.what();
    return result;
  }

  // Repair 1 (CH09): spare resources on word-oriented instances never
  // engage — dead elements of the chip description.
  std::size_t spares_dropped = 0;
  soc::SocDescription description{chip.description.name()};
  for (auto mem : chip.description.memories()) {
    if (mem.repair.any() && mem.geometry.word_bits > 1) {
      mem.repair = {};
      ++spares_dropped;
    }
    description.add(std::move(mem));
  }

  // Repair 2 (CH07): a budget no single session fits is statically
  // infeasible; rebalance it up to the heaviest effective weight — the
  // smallest budget that admits every session one at a time.
  const double old_budget = chip.plan.power().budget;
  double max_weight = 0.0;
  for (const auto& a : chip.plan.assignments()) {
    if (a.power_weight < 0.0) continue;
    const auto* mem = description.find(a.memory);
    if (mem == nullptr) continue;
    max_weight = std::max(max_weight, chip.plan.effective_weight(a, *mem));
  }
  const bool budget_raised = old_budget > 0.0 && max_weight > old_budget;

  if (spares_dropped == 0 && !budget_raised) {
    result.summary = "no mechanical fixes apply";
    return result;
  }

  soc::TestPlan plan;
  for (const auto& a : chip.plan.assignments()) plan.assign(a);
  if (budget_raised) plan.set_power_budget(max_weight);
  else plan.set_power_budget(old_budget);

  std::string fixed;
  try {
    fixed = soc::to_chip_text(description, plan);
  } catch (const std::exception& e) {
    result.summary = unit + ": fix rejected: cannot re-serialize: " + e.what();
    return result;
  }

  // Semantic-diff gate, part 1: the rewritten chip must lint no worse.
  const Report lint_before = lint_chip_text(text, unit);
  const Report lint_after = lint_chip_text(fixed, unit);
  if (lint_after.count(Severity::Error) > lint_before.count(Severity::Error) ||
      lint_after.count(Severity::Warning) >
          lint_before.count(Severity::Warning)) {
    result.summary = unit + ": fix rejected: the rewritten chip lints worse";
    return result;
  }

  // Part 2: the certified schedule must be unchanged-or-better — when a
  // schedule is derivable from the fixed chip it must pass the
  // certificate checker; a chip that loses schedulability is rejected.
  const auto certifies =
      [&](const std::string& chip_text) -> std::optional<bool> {
    try {
      const soc::ChipFile parsed = soc::parse_chip_text(chip_text);
      const soc::Scheduler scheduler;
      return !certify_soc(parsed.description, parsed.plan,
                          scheduler.compute_schedule(parsed.description,
                                                     parsed.plan),
                          unit)
                  .has_errors();
    } catch (const std::exception&) {
      return std::nullopt;  // no schedule derivable from this text
    }
  };
  const std::optional<bool> after_ok = certifies(fixed);
  if (after_ok.has_value() ? !*after_ok : certifies(text).has_value()) {
    result.summary =
        unit + ": fix rejected: the rewritten chip's schedule does not "
               "certify";
    return result;
  }

  result.changed = true;
  result.text = std::move(fixed);
  std::ostringstream os;
  if (spares_dropped > 0)
    os << "dropped dead spares on " << plural(spares_dropped, "instance");
  if (budget_raised) {
    if (spares_dropped > 0) os << ", ";
    os << "raised power_budget " << old_budget << " -> " << max_weight
       << " (admits the heaviest session)";
  }
  os << "; schedule re-certified";
  result.summary = os.str();
  return result;
}

FixResult fix_text(const std::string& text, const std::string& unit) {
  FixResult result;
  switch (detect_kind(text)) {
    case InputKind::UcodeImage: {
      mbist_ucode::MicrocodeProgram program;
      try {
        program = mbist_ucode::MicrocodeProgram::from_hex_text(text);
      } catch (const std::exception& e) {
        result.summary = unit + ": cannot fix an unparseable image: " + e.what();
        return result;
      }
      FixOutcome outcome = fix_ucode(program);
      result.changed = outcome.changed;
      result.summary = std::move(outcome.summary);
      if (result.changed) result.text = program.to_hex_text();
      return result;
    }
    case InputKind::PfsmImage: {
      mbist_pfsm::PfsmProgram program;
      try {
        program = mbist_pfsm::PfsmProgram::from_hex_text(text);
      } catch (const std::exception& e) {
        result.summary = unit + ": cannot fix an unparseable image: " + e.what();
        return result;
      }
      FixOutcome outcome = fix_pfsm(program);
      result.changed = outcome.changed;
      result.summary = std::move(outcome.summary);
      if (result.changed) result.text = program.to_hex_text();
      return result;
    }
    case InputKind::March: {
      const std::string stripped = strip_march_comments(text);
      try {
        (void)march::by_name(stripped);
        result.summary =
            unit + ": library algorithms are already canonical; nothing to "
                   "fix";
        return result;
      } catch (const std::out_of_range&) {
      }
      march::MarchAlgorithm alg;
      try {
        alg = march::parse(stripped, unit);
      } catch (const march::ParseError& e) {
        result.summary =
            unit + ": cannot fix an unparseable algorithm: " + e.what();
        return result;
      }
      FixOutcome outcome = fix_march(alg);
      result.changed = outcome.changed;
      result.summary = std::move(outcome.summary);
      if (result.changed) result.text = alg.to_string() + "\n";
      return result;
    }
    case InputKind::Chip:
      return fix_chip_text(text, unit);
    case InputKind::Profile:
      result.summary =
          unit + ": --fix does not apply to mission profiles (their "
                 "findings need semantic changes)";
      return result;
    case InputKind::SocSchedule:
    case InputKind::FieldSchedule:
      result.summary =
          unit + ": schedules are scheduler output — re-run `pmbist soc` / "
                 "`pmbist field` instead of editing them";
      return result;
  }
  return result;
}

}  // namespace pmbist::lint
