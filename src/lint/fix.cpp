#include "lint/fix.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "lint/lifter.h"
#include "lint/program_lint.h"

namespace pmbist::lint {
namespace {

using mbist_ucode::Flow;
using mbist_ucode::Instruction;
using mbist_ucode::MicrocodeProgram;
using mbist_ucode::Rw;
using mbist_pfsm::PfsmInstruction;
using mbist_pfsm::PfsmProgram;

/// Number of reachable instructions.  Control either advances to i+1,
/// branches backwards (LOOP_CELL/LOOP_SELF to the branch register, Repeat
/// to 1, LOOP_DATA/LOOP_PORT to 0 — all inside the already-visited prefix)
/// or stops (TERMINATE, exhausted LOOP_PORT), so the reachable set is
/// exactly the prefix up to and including the first TERMINATE / LOOP_PORT.
std::size_t ucode_reachable_prefix(const std::vector<Instruction>& code) {
  for (std::size_t i = 0; i < code.size(); ++i)
    if (code[i].flow == Flow::Terminate || code[i].flow == Flow::LoopPort)
      return i + 1;
  return code.size();
}

/// A no-op sweep candidate: an op-flow instruction whose rw field is NOP.
/// Whether removing it preserves behavior depends on context (a NOP leader
/// carries the element's address order; a NOP LOOP_SELF mid-group truncates
/// the group), so candidates are verified through the lifter, not assumed.
bool is_nop_sweep(const Instruction& instr) {
  return instr.rw == Rw::Nop &&
         (instr.flow == Flow::Next || instr.flow == Flow::LoopCell ||
          instr.flow == Flow::LoopSelf);
}

/// True when removing the candidate left an image that provably applies the
/// same op stream and lints no worse than the original.
bool removal_is_safe(const MicrocodeProgram& before,
                     const MicrocodeProgram& after) {
  const LiftResult lifted_before = lift_ucode(before);
  if (!lifted_before.ok) return false;  // nothing to verify against
  const LiftResult lifted_after = lift_ucode(after);
  if (!lifted_after.ok ||
      lifted_after.algorithm.elements() != lifted_before.algorithm.elements() ||
      lifted_after.has_data_loop != lifted_before.has_data_loop ||
      lifted_after.has_port_loop != lifted_before.has_port_loop)
    return false;
  // Renumbering can re-anchor a Repeat window (its reset-to-1 path is an
  // absolute index): reject any removal that introduces new findings, e.g.
  // an emptied Repeat window (UC05).
  const Report before_lint = lint_ucode(before);
  const Report after_lint = lint_ucode(after);
  return after_lint.count(Severity::Error) <=
             before_lint.count(Severity::Error) &&
         after_lint.count(Severity::Warning) <=
             before_lint.count(Severity::Warning);
}

std::string plural(std::size_t n, const char* noun) {
  return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
}

}  // namespace

FixOutcome fix_ucode(MicrocodeProgram& program) {
  std::vector<Instruction> code = program.instructions();

  const std::size_t reachable = ucode_reachable_prefix(code);
  const std::size_t dead = code.size() - reachable;
  code.resize(reachable);

  std::size_t swept = 0;
  MicrocodeProgram current{program.name(), code};
  for (std::size_t i = code.size(); i-- > 0;) {
    if (!is_nop_sweep(code[i])) continue;
    std::vector<Instruction> shrunk = code;
    shrunk.erase(shrunk.begin() + static_cast<std::ptrdiff_t>(i));
    MicrocodeProgram candidate{program.name(), shrunk};
    if (!removal_is_safe(current, candidate)) continue;
    code = std::move(shrunk);
    current = std::move(candidate);
    ++swept;
  }

  FixOutcome outcome;
  outcome.changed = dead > 0 || swept > 0;
  if (!outcome.changed) {
    outcome.summary = "no mechanical fixes apply";
    return outcome;
  }
  if (dead > 0)
    outcome.summary = "dropped " + plural(dead, "unreachable instruction");
  if (swept > 0) {
    if (!outcome.summary.empty()) outcome.summary += ", ";
    outcome.summary += "removed " + plural(swept, "no-op sweep");
  }
  program = MicrocodeProgram{program.name(), std::move(code)};
  return outcome;
}

FixOutcome fix_pfsm(PfsmProgram& program) {
  const auto& rows = program.instructions();
  std::size_t used = rows.size();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].ctrl && rows[i].ctrl_op) {  // path B ends the walk
      used = i + 1;
      break;
    }
  }

  FixOutcome outcome;
  if (used == rows.size()) {
    outcome.summary = "no mechanical fixes apply";
    return outcome;
  }
  outcome.changed = true;
  outcome.summary =
      "dropped " + plural(rows.size() - used, "unused trailing row");
  std::vector<PfsmInstruction> kept{rows.begin(),
                                    rows.begin() + static_cast<std::ptrdiff_t>(used)};
  program = PfsmProgram{program.name(), std::move(kept)};
  return outcome;
}

FixResult fix_text(const std::string& text, const std::string& unit) {
  FixResult result;
  switch (detect_kind(text)) {
    case InputKind::UcodeImage: {
      mbist_ucode::MicrocodeProgram program;
      try {
        program = mbist_ucode::MicrocodeProgram::from_hex_text(text);
      } catch (const std::exception& e) {
        result.summary = unit + ": cannot fix an unparseable image: " + e.what();
        return result;
      }
      FixOutcome outcome = fix_ucode(program);
      result.changed = outcome.changed;
      result.summary = std::move(outcome.summary);
      if (result.changed) result.text = program.to_hex_text();
      return result;
    }
    case InputKind::PfsmImage: {
      mbist_pfsm::PfsmProgram program;
      try {
        program = mbist_pfsm::PfsmProgram::from_hex_text(text);
      } catch (const std::exception& e) {
        result.summary = unit + ": cannot fix an unparseable image: " + e.what();
        return result;
      }
      FixOutcome outcome = fix_pfsm(program);
      result.changed = outcome.changed;
      result.summary = std::move(outcome.summary);
      if (result.changed) result.text = program.to_hex_text();
      return result;
    }
    case InputKind::March:
    case InputKind::Chip:
    case InputKind::Profile:
      result.summary =
          unit + ": --fix applies to controller images only (march, chip "
                 "and profile findings need semantic changes)";
      return result;
  }
  return result;
}

}  // namespace pmbist::lint
