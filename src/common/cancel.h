#pragma once
// Cooperative cancellation for the long-running engines.
//
// A CancelToken is an owner-set flag an engine polls at its natural shard
// boundaries (campaign lane-packs, scheduler units, field bursts).  When
// the flag is observed set, the engine throws Cancelled, unwinding through
// common::parallel_shards (which rethrows the first exception after every
// sibling drains — siblings observe the same flag, so a cancelled campaign
// quiesces quickly and leaves the shared pool reusable).
//
// Engines take the token as `const std::atomic<bool>*` in their option
// structs: nullptr (the default) means "not cancellable" and costs nothing.

#include <atomic>
#include <stdexcept>

namespace pmbist::common {

/// Thrown by engines when their options' cancel flag is observed set.
class Cancelled : public std::runtime_error {
 public:
  Cancelled() : std::runtime_error{"cancelled"} {}
};

/// Polls an optional cancellation flag; throws Cancelled when set.
inline void throw_if_cancelled(const std::atomic<bool>* cancel) {
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed))
    throw Cancelled{};
}

}  // namespace pmbist::common
