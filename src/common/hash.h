#pragma once
// Content hashing for the cross-request caches (march::StreamCache and the
// serve layer's verdict cache): 64-bit FNV-1a over the canonical input
// text.  Chosen over a cryptographic digest because the keyed inputs are
// trusted project files, the cache is advisory (a collision can only trade
// a correct entry for another deterministic one), and FNV keeps the hot
// request path dependency-free.

#include <cstdint>
#include <string_view>

namespace pmbist::common {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// 64-bit FNV-1a, optionally chained via `seed` to fold several fields
/// into one key: fnv1a64(b, fnv1a64(a)).
[[nodiscard]] constexpr std::uint64_t fnv1a64(
    std::string_view text, std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t h = seed;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace pmbist::common
