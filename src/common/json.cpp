#include "common/json.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pmbist::common::json {
namespace {

/// Nesting bound: malformed/adversarial protocol input must not be able to
/// blow the stack (the serve fuzz suite leans on this).
constexpr int kMaxDepth = 64;

[[noreturn]] void fail(std::size_t at, const std::string& what) {
  throw JsonError{"json offset " + std::to_string(at) + ": " + what};
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  [[nodiscard]] char peek() {
    if (pos >= text.size()) fail(pos, "unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (pos >= text.size() || text[pos] != c)
      fail(pos, std::string{"expected '"} + c + "'");
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  unsigned hex4() {
    if (pos + 4 > text.size()) fail(pos, "truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail(pos - 1, "bad \\u escape digit");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) fail(pos, "unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail(pos - 1, "unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail(pos, "truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF &&
              text.substr(pos, 2) == "\\u") {
            pos += 2;
            const unsigned lo = hex4();
            if (lo >= 0xDC00 && lo <= 0xDFFF)
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            else
              fail(pos, "unpaired surrogate");
          } else if (cp >= 0xD800 && cp <= 0xDFFF) {
            cp = 0xFFFD;  // lone surrogate: replacement character
          }
          append_utf8(out, cp);
          break;
        }
        default: fail(pos - 1, "unknown escape");
      }
    }
  }

  std::string parse_number_lexeme() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(
                                  text[pos])))
      fail(pos, "bad number");
    if (text[pos] == '0') ++pos;
    else while (pos < text.size() &&
                std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(
                                    text[pos])))
        fail(pos, "bad fraction");
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(
                                    text[pos])))
        fail(pos, "bad exponent");
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    return std::string{text.substr(start, pos - start)};
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail(pos, "nesting too deep");
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos;
      Value obj = Value::object();
      skip_ws();
      if (peek() == '}') { ++pos; return obj; }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj.set(std::move(key), parse_value(depth + 1));
        skip_ws();
        const char d = peek();
        ++pos;
        if (d == '}') return obj;
        if (d != ',') fail(pos - 1, "expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      Value arr = Value::array();
      skip_ws();
      if (peek() == ']') { ++pos; return arr; }
      for (;;) {
        arr.push(parse_value(depth + 1));
        skip_ws();
        const char d = peek();
        ++pos;
        if (d == ']') return arr;
        if (d != ',') fail(pos - 1, "expected ',' or ']'");
      }
    }
    if (c == '"') return Value::string(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail(pos, "bad literal");
      return Value::boolean(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail(pos, "bad literal");
      return Value::boolean(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail(pos, "bad literal");
      return Value{};
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
      return Value::number_lexeme(parse_number_lexeme());
    fail(pos, "unexpected character");
  }
};

void dump_into(const Value& v, std::string& out);

void dump_members(const Value& v, std::string& out) {
  out.push_back('{');
  bool first = true;
  for (const auto& [key, member] : v.members()) {
    if (!first) out.push_back(',');
    first = false;
    out += quote(key);
    out.push_back(':');
    dump_into(member, out);
  }
  out.push_back('}');
}

void dump_into(const Value& v, std::string& out) {
  switch (v.kind()) {
    case Value::Kind::Null: out += "null"; break;
    case Value::Kind::Bool: out += v.as_bool() ? "true" : "false"; break;
    case Value::Kind::Number:
      // Numbers re-emit their lexeme verbatim: exact round-trip.
      out += v.number_text();
      break;
    case Value::Kind::String: out += quote(v.as_string()); break;
    case Value::Kind::Array: {
      out.push_back('[');
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) out.push_back(',');
        first = false;
        dump_into(item, out);
      }
      out.push_back(']');
      break;
    }
    case Value::Kind::Object: dump_members(v, out); break;
  }
}

}  // namespace

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

Value Value::number(std::int64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, n);
  return number_lexeme(buf);
}

Value Value::number(std::uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, n);
  return number_lexeme(buf);
}

Value Value::number(double d) {
  if (!std::isfinite(d)) throw JsonError{"non-finite number"};
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return number_lexeme(buf);
}

Value Value::number_lexeme(std::string lexeme) {
  Value v;
  v.kind_ = Kind::Number;
  v.scalar_ = std::move(lexeme);
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = Kind::String;
  v.scalar_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::Array;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::Object;
  return v;
}

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) throw JsonError{"not a bool"};
  return bool_;
}

std::uint64_t Value::as_u64() const {
  if (kind_ != Kind::Number) throw JsonError{"not a number"};
  errno = 0;
  char* end = nullptr;
  if (!scalar_.empty() && scalar_[0] == '-')
    throw JsonError{"negative value where unsigned expected"};
  const auto v = std::strtoull(scalar_.c_str(), &end, 10);
  if (end != scalar_.c_str() + scalar_.size() || errno == ERANGE)
    throw JsonError{"not an exact unsigned integer: " + scalar_};
  return v;
}

std::int64_t Value::as_i64() const {
  if (kind_ != Kind::Number) throw JsonError{"not a number"};
  errno = 0;
  char* end = nullptr;
  const auto v = std::strtoll(scalar_.c_str(), &end, 10);
  if (end != scalar_.c_str() + scalar_.size() || errno == ERANGE)
    throw JsonError{"not an exact integer: " + scalar_};
  return v;
}

double Value::as_double() const {
  if (kind_ != Kind::Number) throw JsonError{"not a number"};
  char* end = nullptr;
  const double v = std::strtod(scalar_.c_str(), &end);
  if (end != scalar_.c_str() + scalar_.size())
    throw JsonError{"bad number: " + scalar_};
  return v;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) throw JsonError{"not a string"};
  return scalar_;
}

const std::string& Value::number_text() const {
  if (kind_ != Kind::Number) throw JsonError{"not a number"};
  return scalar_;
}

const std::vector<Value>& Value::items() const {
  if (kind_ != Kind::Array) throw JsonError{"not an array"};
  return items_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (kind_ != Kind::Object) throw JsonError{"not an object"};
  return members_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

Value& Value::push(Value v) {
  if (kind_ != Kind::Array) throw JsonError{"push on non-array"};
  items_.push_back(std::move(v));
  return *this;
}

Value& Value::set(std::string key, Value v) {
  if (kind_ != Kind::Object) throw JsonError{"set on non-object"};
  for (auto& [k, existing] : members_)
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

Value Value::parse(std::string_view text) {
  Parser p{text};
  Value v = p.parse_value(0);
  p.skip_ws();
  if (p.pos != text.size()) fail(p.pos, "trailing characters");
  return v;
}

std::string Value::dump() const {
  std::string out;
  dump_into(*this, out);
  return out;
}

std::string quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace pmbist::common::json
