#pragma once
// Minimal JSON value model, parser and writer — the wire format of the
// serve protocol (src/serve) and the JSON mirror of the chip file
// (soc/chip_json.h).  No external dependency, by project constraint.
//
// Design notes:
//   * numbers keep their raw lexeme, so 64-bit seeds and addresses
//     round-trip exactly (no silent double conversion);
//   * objects preserve insertion order, so dump() is deterministic and a
//     serialized value is byte-stable across runs — the serve protocol
//     pins golden responses against this;
//   * the parser is depth-limited and throws JsonError on any malformed
//     input; callers that must never throw (the protocol loop) catch it.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pmbist::common::json {

/// Raised on malformed JSON text or a type-mismatched accessor.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Value() = default;  ///< null
  static Value boolean(bool b);
  static Value number(std::int64_t v);
  static Value number(std::uint64_t v);
  static Value number(double v);
  /// A number from its raw lexeme (must already be valid JSON number text).
  static Value number_lexeme(std::string lexeme);
  static Value string(std::string s);
  static Value array();
  static Value object();

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::Object;
  }

  /// Typed accessors; throw JsonError on kind mismatch or (for the numeric
  /// ones) a lexeme outside the requested range.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] std::int64_t as_i64() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  /// Raw lexeme of a number value (exactly what was parsed or formatted).
  [[nodiscard]] const std::string& number_text() const;
  [[nodiscard]] const std::vector<Value>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const;

  /// Object lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Appends to an array value (throws JsonError otherwise).
  Value& push(Value v);
  /// Sets an object member, replacing any existing one (throws otherwise).
  Value& set(std::string key, Value v);

  /// Parses one complete JSON document; trailing non-space text is an
  /// error.  Throws JsonError with a character offset on malformed input.
  [[nodiscard]] static Value parse(std::string_view text);

  /// Compact, deterministic serialization (insertion-ordered members).
  [[nodiscard]] std::string dump() const;

  friend bool operator==(const Value&, const Value&) = default;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::string scalar_;  ///< number lexeme or string payload
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Escapes `text` as a JSON string literal, quotes included.
[[nodiscard]] std::string quote(std::string_view text);

}  // namespace pmbist::common::json
