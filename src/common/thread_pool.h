#pragma once
// Minimal reusable worker pool for the embarrassingly parallel loops in
// this project (fault-simulation campaigns, qualification sweeps).
//
// Design constraints, in order:
//   1. determinism — the pool never decides *what* a result is, only *who*
//      computes it; callers write into disjoint, pre-sized slots so output
//      is bit-identical for any worker count;
//   2. zero new dependencies — std::thread only;
//   3. reuse — one process-wide pool (shared_pool()) sized to the hardware,
//      so repeated campaigns do not pay thread start-up per call.
//
// Tasks must not block on work scheduled in the same pool (no nested
// parallel_shards from inside a task); the campaign engine keeps all
// nesting at the caller level.

#include <functional>
#include <vector>

namespace pmbist::common {

/// Maps a user-facing jobs request to a concrete worker count:
/// jobs <= 0 means "use the hardware" (std::thread::hardware_concurrency,
/// never less than 1); any positive value is taken literally.
[[nodiscard]] int resolve_jobs(int jobs);

/// Fixed-size worker pool.  submit() enqueues a task; TaskGroup (below)
/// provides completion tracking for a batch.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);

  [[nodiscard]] int size() const noexcept;

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-wide pool, lazily created with hardware_concurrency
/// workers.  Lives for the process lifetime (never destroyed, so tasks in
/// flight at exit cannot race teardown).
[[nodiscard]] ThreadPool& shared_pool();

/// Runs fn(shard) for every shard in [0, num_shards), using up to `jobs`
/// workers (resolved via resolve_jobs) from the shared pool; the calling
/// thread participates, so jobs <= 1 degenerates to a plain inline loop.
/// Shards are claimed dynamically (load-balanced); exceptions thrown by
/// `fn` are captured and the first one is rethrown on the caller.
void parallel_shards(int jobs, int num_shards,
                     const std::function<void(int)>& fn);

}  // namespace pmbist::common
