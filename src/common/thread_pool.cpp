#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace pmbist::common {

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  bool stopping = false;

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock{mu};
        cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (stopping && queue.empty()) return;
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(int num_threads) : impl_{new Impl} {
  num_threads = std::max(1, num_threads);
  impl_->workers.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{impl_->mu};
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock{impl_->mu};
    impl_->queue.push_back(std::move(task));
  }
  impl_->cv.notify_one();
}

int ThreadPool::size() const noexcept {
  return static_cast<int>(impl_->workers.size());
}

ThreadPool& shared_pool() {
  // Intentionally leaked: workers must outlive every campaign, and a
  // static destructor joining threads at exit can deadlock with atexit
  // ordering.  resolve_jobs(0) == hardware concurrency.
  static ThreadPool* pool = new ThreadPool{resolve_jobs(0)};
  return *pool;
}

void parallel_shards(int jobs, int num_shards,
                     const std::function<void(int)>& fn) {
  if (num_shards <= 0) return;
  jobs = std::min(resolve_jobs(jobs), num_shards);

  std::atomic<int> next{0};
  std::once_flag error_once;
  std::exception_ptr error;
  auto drain = [&] {
    for (int shard; (shard = next.fetch_add(1)) < num_shards;) {
      try {
        fn(shard);
      } catch (...) {
        std::call_once(error_once, [&] { error = std::current_exception(); });
        // Keep claiming shards so siblings terminate; work after an error
        // is discarded by the rethrow below.
      }
    }
  };

  if (jobs <= 1) {
    drain();
  } else {
    // jobs-1 pool workers plus the calling thread.
    std::atomic<int> pending{jobs - 1};
    std::mutex mu;
    std::condition_variable done;
    for (int w = 1; w < jobs; ++w) {
      shared_pool().submit([&] {
        drain();
        if (pending.fetch_sub(1) == 1) {
          std::lock_guard lock{mu};
          done.notify_one();
        }
      });
    }
    drain();
    std::unique_lock lock{mu};
    done.wait(lock, [&] { return pending.load() == 0; });
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace pmbist::common
