#pragma once
// Two-level logic primitives: cubes, covers, and truth tables over up to 24
// variables.  These are the input/output types of the Quine-McCluskey
// minimizer (qm.h) and the symbolic FSM synthesizer (fsm_synth.h).
//
// A cube is a product term: `mask` has a 1 for every variable the cube
// depends on (a "cared" literal) and `value` gives the required polarity of
// each cared variable.  A cube covers minterm m iff (m & mask) == value.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/gate_inventory.h"

namespace pmbist::netlist {

/// Maximum supported variable count for truth-table based minimization.
inline constexpr int kMaxLogicVars = 24;

/// A product term over up to kMaxLogicVars variables.
struct Cube {
  std::uint32_t value = 0;  ///< required polarity of cared variables
  std::uint32_t mask = 0;   ///< which variables are cared about

  [[nodiscard]] bool covers(std::uint32_t minterm) const noexcept {
    return (minterm & mask) == value;
  }
  /// Number of literals in the product term.
  [[nodiscard]] int literals() const noexcept {
    return __builtin_popcount(mask);
  }
  /// True if this cube's minterm set is a superset of `other`'s.
  [[nodiscard]] bool contains(const Cube& other) const noexcept {
    return (mask & ~other.mask) == 0 && ((value ^ other.value) & mask) == 0;
  }
  /// Render as e.g. "x0 x2' x5" for debugging; `num_vars` bounds the scan.
  [[nodiscard]] std::string to_string(int num_vars) const;

  friend bool operator==(const Cube&, const Cube&) = default;
  friend auto operator<=>(const Cube&, const Cube&) = default;
};

/// Sum-of-products: a set of cubes whose union is the function's onset.
using Cover = std::vector<Cube>;

/// Total literal count of a cover (standard two-level cost metric).
[[nodiscard]] int cover_literals(const Cover& cover);

/// Evaluates a cover at a minterm.
[[nodiscard]] bool cover_eval(const Cover& cover, std::uint32_t minterm);

/// Ternary output value of a truth-table row.
enum class Tri : std::uint8_t { Zero = 0, One = 1, DontCare = 2 };

/// Dense single-output truth table over `num_vars` inputs.
class TruthTable {
 public:
  explicit TruthTable(int num_vars);

  [[nodiscard]] int num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] std::uint32_t size() const noexcept {
    return std::uint32_t{1} << num_vars_;
  }
  void set(std::uint32_t minterm, Tri v);
  [[nodiscard]] Tri get(std::uint32_t minterm) const;

  /// All minterms with value One.
  [[nodiscard]] std::vector<std::uint32_t> onset() const;
  /// All minterms with value DontCare.
  [[nodiscard]] std::vector<std::uint32_t> dcset() const;

  /// True if the cover computes this table exactly on all cared rows.
  [[nodiscard]] bool is_implemented_by(const Cover& cover) const;

 private:
  int num_vars_;
  std::vector<Tri> rows_;
};

/// Options for converting a cover to a gate inventory.
struct SopCostOptions {
  /// If true (default), both polarities of every input are assumed free
  /// (typical when inputs come from flip-flops with Q/Q' outputs); otherwise
  /// one inverter is charged per distinct complemented input.
  bool free_input_complements = true;
};

/// Gate inventory of a two-level NAND-NAND implementation of one output.
/// Wide terms/outputs decompose into NAND2/3/4 trees with inverters.
[[nodiscard]] GateInventory sop_inventory(const Cover& cover,
                                          const SopCostOptions& opts = {});

/// Inventory of a wide `fan_in`-input NAND implemented from NAND2/3/4 and
/// inverters (exposed for testing the decomposition model).
[[nodiscard]] GateInventory wide_nand(int fan_in);

}  // namespace pmbist::netlist
