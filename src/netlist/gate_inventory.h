#pragma once
// GateInventory: a counted bag of standard cells, the currency of every
// structural area model in this project.  Controllers elaborate themselves
// into inventories; a TechLibrary prices an inventory in gate equivalents
// and um^2.  AreaReport groups named sub-block inventories into the
// hierarchical tables printed by the Table 1-3 benches.

#include <map>
#include <string>
#include <vector>

#include "netlist/tech_library.h"

namespace pmbist::netlist {

/// Counted multiset of standard cells.  Value-semantic; cheap to copy at the
/// sizes that occur here (tens of distinct cell classes).
class GateInventory {
 public:
  GateInventory() = default;

  /// Adds `n` instances of `c`.  `n` may be 0 (no-op); negative counts are
  /// not representable and are clamped away by precondition.
  void add(Cell c, long n = 1);

  /// Merges another inventory into this one.
  GateInventory& operator+=(const GateInventory& other);
  friend GateInventory operator+(GateInventory a, const GateInventory& b) {
    a += b;
    return a;
  }

  /// Returns an inventory with every count multiplied by `factor`.
  [[nodiscard]] GateInventory scaled(long factor) const;

  [[nodiscard]] long count(Cell c) const noexcept;
  [[nodiscard]] long total_cells() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return counts_.empty(); }

  [[nodiscard]] double total_ge(const TechLibrary& lib) const;
  [[nodiscard]] double total_area_um2(const TechLibrary& lib) const;

  /// One-line summary, e.g. "DFF:12 NAND2:40 ... (61.5 GE)".
  [[nodiscard]] std::string summary(const TechLibrary& lib) const;

  [[nodiscard]] const std::map<Cell, long>& counts() const noexcept {
    return counts_;
  }

  bool operator==(const GateInventory&) const = default;

 private:
  std::map<Cell, long> counts_;
};

/// A named sub-block of a larger design, for hierarchical reporting.
struct AreaBlock {
  std::string name;
  GateInventory inventory;
};

/// Hierarchical area report: an ordered list of named blocks plus totals.
class AreaReport {
 public:
  explicit AreaReport(std::string design_name)
      : design_name_{std::move(design_name)} {}

  void add_block(std::string name, GateInventory inv);

  [[nodiscard]] const std::string& design_name() const noexcept {
    return design_name_;
  }
  [[nodiscard]] const std::vector<AreaBlock>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] GateInventory total() const;
  [[nodiscard]] double total_ge(const TechLibrary& lib) const {
    return total().total_ge(lib);
  }
  [[nodiscard]] double total_area_um2(const TechLibrary& lib) const {
    return total().total_area_um2(lib);
  }

  /// Multi-line human-readable table: one row per block with GE and um^2.
  [[nodiscard]] std::string to_string(const TechLibrary& lib) const;

 private:
  std::string design_name_;
  std::vector<AreaBlock> blocks_;
};

}  // namespace pmbist::netlist
