#pragma once
// Quine-McCluskey two-level minimization with a greedy cover selector
// (essential primes first, then highest-coverage / fewest-literals).  This
// is the "synthesis" step of the area models: FSM next-state and decoder
// logic is expressed as truth tables, minimized here, and priced by
// sop_inventory().
//
// Exact for prime generation; the covering step is the standard greedy
// heuristic (adequate at the problem sizes in this project: <= ~12 inputs).

#include <span>

#include "netlist/logic.h"

namespace pmbist::netlist {

struct MinimizeResult {
  Cover cover;
  int literals = 0;  ///< cover_literals(cover), cached
};

/// Minimizes the single-output function with the given onset/dc-set
/// minterms over `num_vars` variables.  Minterms outside both sets are the
/// offset.  Returns a cover whose union equals the onset on all cared rows.
[[nodiscard]] MinimizeResult minimize(int num_vars,
                                      std::span<const std::uint32_t> onset,
                                      std::span<const std::uint32_t> dcset);

/// Convenience overload.
[[nodiscard]] MinimizeResult minimize(const TruthTable& table);

/// All prime implicants of the function (exposed for tests).
[[nodiscard]] Cover prime_implicants(int num_vars,
                                     std::span<const std::uint32_t> onset,
                                     std::span<const std::uint32_t> dcset);

}  // namespace pmbist::netlist
