#pragma once
// Technology library: standard-cell classes with gate-equivalent (GE) and
// area costs, modeled after a 0.35um ASIC library (IBM CMOS5S class).
//
// The paper (Zarrineh & Upadhyaya, DATE 1999) reports controller overhead in
// two units: "internal area" in 2x2-input-NAND gate equivalents and absolute
// size in um^2 for IBM CMOS5S (0.35 micron).  We reproduce both: every cell
// has a GE cost (1 GE == one 2-input NAND), and the library converts GE to
// um^2 with a calibrated area-per-GE constant.
//
// The library also models the paper's key storage-cell distinction:
//   * full mux-scan flip-flops (regular scannable state bits), and
//   * IBM-style "scan-only" storage cells, which the paper states are 4-5x
//     smaller and run at 1/8 - 1/6 of the functional clock rate.  These are
//     usable for the microcode storage unit because it holds static
//     instructions (no functional-rate shifting), which is the basis of the
//     paper's Table 3 "adjusted" microcode controller.

#include <array>
#include <cstdint>
#include <string_view>

namespace pmbist::netlist {

/// Standard-cell classes used by the structural area models.
enum class Cell : std::uint8_t {
  Inv,           ///< inverter
  Buf,           ///< non-inverting buffer
  Nand2,         ///< 2-input NAND (the gate-equivalent unit)
  Nand3,
  Nand4,
  Nor2,
  Nor3,
  And2,
  Or2,
  Xor2,
  Xnor2,
  Mux2,          ///< 2:1 multiplexer
  HalfAdder,     ///< XOR + AND (counter increment slice)
  Latch,         ///< transparent latch
  Dff,           ///< plain D flip-flop
  DffEn,         ///< D flip-flop with clock-enable mux
  ScanDff,       ///< mux-scan D flip-flop (full-scan register bit)
  ScanOnlyCell,  ///< slow scan-only storage cell (4-5x smaller than ScanDff)
  TriBuf,        ///< tri-state buffer
};

inline constexpr int kNumCells = static_cast<int>(Cell::TriBuf) + 1;

/// Static per-cell data: human-readable name and GE cost.
struct CellInfo {
  std::string_view name;
  double ge;                 ///< cost in 2-input-NAND gate equivalents
  double max_clock_fraction; ///< usable fraction of the functional clock rate
};

/// Storage-cell class selected for a register file / storage unit.
enum class StorageCellClass : std::uint8_t {
  FullScan,  ///< regular mux-scan flip-flops (functional-rate capable)
  ScanOnly,  ///< small slow scan-only cells (static contents only)
};

/// A technology library: cell costs plus the GE -> um^2 conversion for a
/// specific process.  Immutable after construction.
class TechLibrary {
 public:
  /// Library calibrated to a 0.35um process of the CMOS5S class.
  /// `area_per_ge_um2` is the area of one 2-input NAND footprint including
  /// routing overhead; 48.7 um^2 is a representative figure for 0.35um
  /// standard-cell rows (documented in EXPERIMENTS.md).
  static TechLibrary cmos5s();

  /// A coarser/larger 0.6um-class library, used by tests to check that area
  /// orderings are process-independent.
  static TechLibrary generic_0_6um();

  [[nodiscard]] const CellInfo& info(Cell c) const noexcept;
  [[nodiscard]] double ge(Cell c) const noexcept { return info(c).ge; }
  [[nodiscard]] double area_um2(Cell c) const noexcept {
    return info(c).ge * area_per_ge_um2_;
  }
  [[nodiscard]] double area_per_ge_um2() const noexcept {
    return area_per_ge_um2_;
  }
  [[nodiscard]] std::string_view process_name() const noexcept {
    return process_name_;
  }

  /// The flip-flop class used for one bit of a storage unit of the given
  /// storage-cell class.
  [[nodiscard]] static Cell storage_cell(StorageCellClass cls) noexcept {
    return cls == StorageCellClass::ScanOnly ? Cell::ScanOnlyCell
                                             : Cell::ScanDff;
  }

  /// Ratio ScanDff/ScanOnlyCell area — the paper states 4-5x.
  [[nodiscard]] double scan_only_shrink_factor() const noexcept {
    return ge(Cell::ScanDff) / ge(Cell::ScanOnlyCell);
  }

 private:
  TechLibrary(std::string_view process_name, double area_per_ge_um2,
              const std::array<CellInfo, kNumCells>& cells)
      : process_name_{process_name},
        area_per_ge_um2_{area_per_ge_um2},
        cells_{cells} {}

  std::string_view process_name_;
  double area_per_ge_um2_;
  std::array<CellInfo, kNumCells> cells_;
};

}  // namespace pmbist::netlist
