#include "netlist/components.h"

#include <cassert>

namespace pmbist::netlist {
namespace {

Cell cell_for(RegisterKind kind) {
  switch (kind) {
    case RegisterKind::Plain: return Cell::Dff;
    case RegisterKind::Enable: return Cell::DffEn;
    case RegisterKind::Scan: return Cell::ScanDff;
    case RegisterKind::ScanOnly: return Cell::ScanOnlyCell;
  }
  return Cell::Dff;
}

}  // namespace

GateInventory register_bank(int bits, RegisterKind kind) {
  assert(bits >= 0);
  GateInventory inv;
  inv.add(cell_for(kind), bits);
  return inv;
}

GateInventory shift_register(int bits, RegisterKind kind) {
  return register_bank(bits, kind);
}

GateInventory binary_counter(int bits) {
  assert(bits >= 1);
  GateInventory inv;
  inv.add(Cell::Dff, bits);
  // Increment chain: one half-adder slice (XOR for sum, AND for carry) per
  // bit; the LSB slice degenerates to an inverter.
  inv.add(Cell::HalfAdder, bits - 1);
  inv.add(Cell::Inv, 1);
  // Synchronous reset gating on each D input.
  inv.add(Cell::And2, bits);
  return inv;
}

GateInventory up_down_counter(int bits) {
  assert(bits >= 1);
  GateInventory inv = binary_counter(bits);
  // Direction handling: XOR each stored bit into the carry chain so the
  // same incrementer counts down when direction=1.
  inv.add(Cell::Xor2, bits);
  return inv;
}

GateInventory mux_tree(int bits, int ways) {
  assert(bits >= 0 && ways >= 1);
  GateInventory inv;
  inv.add(Cell::Mux2, static_cast<long>(bits) * (ways - 1));
  return inv;
}

GateInventory equality_comparator(int bits) {
  assert(bits >= 1);
  GateInventory inv;
  inv.add(Cell::Xnor2, bits);
  inv += constant_detector(bits);
  return inv;
}

GateInventory constant_detector(int bits) {
  assert(bits >= 1);
  GateInventory inv;
  inv.add(Cell::And2, bits - 1);
  return inv;
}

GateInventory or_tree(int bits) {
  assert(bits >= 1);
  GateInventory inv;
  inv.add(Cell::Or2, bits - 1);
  return inv;
}

GateInventory decoder(int select_bits) {
  assert(select_bits >= 1);
  GateInventory inv;
  const long outputs = 1L << select_bits;
  // Both polarities of each select line, then an AND tree per output.
  inv.add(Cell::Inv, select_bits);
  inv.add(Cell::And2, outputs * (select_bits - 1));
  if (select_bits == 1) inv.add(Cell::Buf, outputs);
  return inv;
}

GateInventory xor_bank(int bits) {
  GateInventory inv;
  inv.add(Cell::Xor2, bits);
  return inv;
}

GateInventory and_bank(int bits) {
  GateInventory inv;
  inv.add(Cell::And2, bits);
  return inv;
}

GateInventory mux_bank(int bits) {
  GateInventory inv;
  inv.add(Cell::Mux2, bits);
  return inv;
}

}  // namespace pmbist::netlist
