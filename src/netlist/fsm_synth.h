#pragma once
// Symbolic Moore FSM representation + synthesis into a gate inventory.
//
// Hardwired (non-programmable) BIST controllers are "the hardware
// realization of a selected memory test algorithm" (paper, Sec. 1): we
// generate a symbolic FSM from the march algorithm, then synthesize it here
// the way a 1999 ASIC flow would — binary state encoding, per-bit
// next-state/output truth tables, two-level minimization (Quine-McCluskey),
// NAND-NAND implementation — and count the resulting standard cells.
//
// The same FSM object also drives the cycle-accurate behavioral model, so
// the area numbers and the simulated behaviour come from a single artifact.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/components.h"
#include "netlist/logic.h"

namespace pmbist::netlist {

/// A conditional transition: taken when `condition` covers the current
/// input vector.  Arcs are evaluated in declaration order (priority).
struct FsmArc {
  Cube condition;  ///< over the FSM's input variables
  int next_state = 0;
};

/// One Moore state: fixed output vector plus prioritized arcs.  If no arc
/// matches, the machine goes to `default_next` (which defaults to self).
struct FsmState {
  std::string name;
  std::uint32_t outputs = 0;
  std::vector<FsmArc> arcs;
  int default_next = -1;  ///< -1 means "stay in this state"
};

/// Symbolic Moore finite-state machine over named binary inputs/outputs.
class MooreFsm {
 public:
  MooreFsm(std::string name, std::vector<std::string> input_names,
           std::vector<std::string> output_names);

  /// Adds a state and returns its index.  The first added state is reset.
  int add_state(std::string name, std::uint32_t outputs);

  /// Adds a prioritized arc `from --cond--> to`.
  void add_arc(int from, Cube condition, int to);

  /// Sets the else-transition of `from` (taken when no arc matches).
  void set_default_next(int from, int to);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int num_inputs() const noexcept {
    return static_cast<int>(input_names_.size());
  }
  [[nodiscard]] int num_outputs() const noexcept {
    return static_cast<int>(output_names_.size());
  }
  [[nodiscard]] int num_states() const noexcept {
    return static_cast<int>(states_.size());
  }
  [[nodiscard]] const FsmState& state(int i) const { return states_.at(i); }
  [[nodiscard]] const std::vector<std::string>& input_names() const noexcept {
    return input_names_;
  }
  [[nodiscard]] const std::vector<std::string>& output_names() const noexcept {
    return output_names_;
  }

  /// Next state for (state, input vector); input bits beyond num_inputs()
  /// must be zero.
  [[nodiscard]] int step(int state, std::uint32_t inputs) const;
  [[nodiscard]] std::uint32_t outputs_of(int state) const {
    return states_.at(state).outputs;
  }

  /// Checks structural sanity (arc targets in range, cube masks within the
  /// input width, at least one state).  Returns an empty string if valid,
  /// else a description of the first problem.
  [[nodiscard]] std::string validate() const;

 private:
  std::string name_;
  std::vector<std::string> input_names_;
  std::vector<std::string> output_names_;
  std::vector<FsmState> states_;
};

struct FsmSynthOptions {
  RegisterKind state_register_kind = RegisterKind::Scan;
};

/// Result of synthesizing a MooreFsm.
struct FsmSynthResult {
  GateInventory inventory;       ///< state register + all synthesized logic
  int state_bits = 0;
  int next_state_literals = 0;   ///< two-level literal count, next-state logic
  int output_literals = 0;       ///< two-level literal count, output logic
};

/// Synthesizes the FSM: binary state encoding in declaration order,
/// Quine-McCluskey per next-state/output bit, NAND-NAND costing.
[[nodiscard]] FsmSynthResult synthesize(const MooreFsm& fsm,
                                        const FsmSynthOptions& opts = {});

}  // namespace pmbist::netlist
