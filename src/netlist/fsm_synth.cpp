#include "netlist/fsm_synth.h"

#include <bit>
#include <cassert>
#include <sstream>

#include "netlist/qm.h"

namespace pmbist::netlist {

MooreFsm::MooreFsm(std::string name, std::vector<std::string> input_names,
                   std::vector<std::string> output_names)
    : name_{std::move(name)},
      input_names_{std::move(input_names)},
      output_names_{std::move(output_names)} {
  assert(num_inputs() <= 16 && num_outputs() <= 32);
}

int MooreFsm::add_state(std::string name, std::uint32_t outputs) {
  states_.push_back(FsmState{std::move(name), outputs, {}, -1});
  return static_cast<int>(states_.size()) - 1;
}

void MooreFsm::add_arc(int from, Cube condition, int to) {
  states_.at(from).arcs.push_back(FsmArc{condition, to});
}

void MooreFsm::set_default_next(int from, int to) {
  states_.at(from).default_next = to;
}

int MooreFsm::step(int state, std::uint32_t inputs) const {
  const FsmState& s = states_.at(state);
  for (const auto& arc : s.arcs)
    if (arc.condition.covers(inputs)) return arc.next_state;
  return s.default_next < 0 ? state : s.default_next;
}

std::string MooreFsm::validate() const {
  if (states_.empty()) return "FSM has no states";
  const std::uint32_t input_mask =
      num_inputs() == 0 ? 0u : ((1u << num_inputs()) - 1u);
  for (int i = 0; i < num_states(); ++i) {
    const auto& s = states_[i];
    if (s.default_next >= num_states()) {
      std::ostringstream os;
      os << "state " << s.name << ": default_next out of range";
      return os.str();
    }
    for (const auto& arc : s.arcs) {
      if (arc.next_state < 0 || arc.next_state >= num_states()) {
        std::ostringstream os;
        os << "state " << s.name << ": arc target out of range";
        return os.str();
      }
      if ((arc.condition.mask & ~input_mask) != 0) {
        std::ostringstream os;
        os << "state " << s.name << ": arc condition uses unknown inputs";
        return os.str();
      }
    }
  }
  const std::uint32_t output_mask =
      num_outputs() >= 32 ? ~0u : ((1u << num_outputs()) - 1u);
  for (const auto& s : states_)
    if ((s.outputs & ~output_mask) != 0)
      return "state " + s.name + ": outputs beyond declared width";
  return {};
}

FsmSynthResult synthesize(const MooreFsm& fsm, const FsmSynthOptions& opts) {
  assert(fsm.validate().empty());
  FsmSynthResult result;

  const int num_states = fsm.num_states();
  const int state_bits =
      num_states <= 1 ? 1 : std::bit_width(unsigned(num_states - 1));
  result.state_bits = state_bits;

  const int in_bits = fsm.num_inputs();
  const int ns_vars = in_bits + state_bits;
  assert(ns_vars <= kMaxLogicVars && "FSM too large for truth-table synth");

  // --- next-state logic: one truth table per state bit -------------------
  // Variable order: inputs occupy bits [0, in_bits), current-state bits
  // occupy [in_bits, in_bits+state_bits).
  std::vector<TruthTable> ns_tables(state_bits, TruthTable{ns_vars});
  const std::uint32_t in_count = std::uint32_t{1} << in_bits;
  for (std::uint32_t code = 0; code < (std::uint32_t{1} << state_bits);
       ++code) {
    const bool used = code < static_cast<std::uint32_t>(num_states);
    for (std::uint32_t in = 0; in < in_count; ++in) {
      const std::uint32_t row = (code << in_bits) | in;
      if (!used) {
        for (auto& t : ns_tables) t.set(row, Tri::DontCare);
        continue;
      }
      const auto next =
          static_cast<std::uint32_t>(fsm.step(static_cast<int>(code), in));
      for (int b = 0; b < state_bits; ++b)
        ns_tables[b].set(row, ((next >> b) & 1u) ? Tri::One : Tri::Zero);
    }
  }

  for (auto& t : ns_tables) {
    const MinimizeResult m = minimize(t);
    assert(t.is_implemented_by(m.cover));
    result.next_state_literals += m.literals;
    result.inventory += sop_inventory(m.cover);
  }

  // --- Moore output logic: one truth table per output bit ----------------
  for (int o = 0; o < fsm.num_outputs(); ++o) {
    TruthTable t{state_bits};
    for (std::uint32_t code = 0; code < (std::uint32_t{1} << state_bits);
         ++code) {
      if (code >= static_cast<std::uint32_t>(num_states)) {
        t.set(code, Tri::DontCare);
        continue;
      }
      const bool bit = (fsm.outputs_of(static_cast<int>(code)) >> o) & 1u;
      t.set(code, bit ? Tri::One : Tri::Zero);
    }
    const MinimizeResult m = minimize(t);
    assert(t.is_implemented_by(m.cover));
    result.output_literals += m.literals;
    result.inventory += sop_inventory(m.cover);
  }

  // --- state register -----------------------------------------------------
  result.inventory += register_bank(state_bits, opts.state_register_kind);
  return result;
}

}  // namespace pmbist::netlist
