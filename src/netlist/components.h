#pragma once
// Parameterized macro components: gate inventories for the datapath blocks
// every BIST controller in the paper is assembled from (registers, counters,
// multiplexer trees, comparators, decoders).  Each function returns the
// standard-cell inventory of one instance; callers compose them into
// AreaReports.
//
// Cost models follow conventional ripple/tree structures:
//   * an n-bit binary up counter is n DFFs plus an increment chain of
//     half-adder slices;
//   * an up/down counter adds one XOR per bit to conditionally complement
//     the carry chain;
//   * an n-way mux tree uses (n-1) MUX2 per routed bit;
//   * wide AND/OR detectors are balanced 2-input trees.

#include "netlist/gate_inventory.h"

namespace pmbist::netlist {

/// Flip-flop flavor for register banks and shift registers.
enum class RegisterKind : std::uint8_t {
  Plain,     ///< Dff
  Enable,    ///< DffEn (load-enable)
  Scan,      ///< ScanDff (mux-scan)
  ScanOnly,  ///< ScanOnlyCell (static storage, serial load only)
};

/// `bits` parallel flip-flops of the given kind.
[[nodiscard]] GateInventory register_bank(int bits, RegisterKind kind);

/// Serial shift register of `bits` stages (same cell cost as a register
/// bank; kept separate for readability at call sites).
[[nodiscard]] GateInventory shift_register(int bits, RegisterKind kind);

/// n-bit binary up counter with synchronous reset.
[[nodiscard]] GateInventory binary_counter(int bits);

/// n-bit binary up/down counter with synchronous reset and direction input.
[[nodiscard]] GateInventory up_down_counter(int bits);

/// Mux tree selecting one of `ways` buses of `bits` bits each.
[[nodiscard]] GateInventory mux_tree(int bits, int ways);

/// Equality comparator between two `bits`-bit buses (XNOR bank + AND tree).
[[nodiscard]] GateInventory equality_comparator(int bits);

/// Detects the all-ones (or, with inverters folded in, any constant) value
/// on a `bits`-bit bus: a balanced AND tree.
[[nodiscard]] GateInventory constant_detector(int bits);

/// Wide OR reduction of `bits` inputs (balanced OR tree).
[[nodiscard]] GateInventory or_tree(int bits);

/// `n`-to-2^n one-hot decoder.
[[nodiscard]] GateInventory decoder(int select_bits);

/// Bank of `bits` 2-input XOR gates (polarity application).
[[nodiscard]] GateInventory xor_bank(int bits);

/// Bank of `bits` 2-input AND gates (masking / gating).
[[nodiscard]] GateInventory and_bank(int bits);

/// Bank of `bits` 2:1 muxes.
[[nodiscard]] GateInventory mux_bank(int bits);

}  // namespace pmbist::netlist
