#pragma once
// Verilog-2001 RTL emission for the synthesized artifacts:
//
//   * emit_sop_module()  — a combinational module from minimized
//     sum-of-products covers (one assign per output), i.e. the exact logic
//     the area model priced;
//   * emit_fsm_module()  — a Moore FSM module (state register + prioritized
//     transition case + Moore output assigns) from a symbolic MooreFsm,
//     e.g. a generated hardwired BIST controller.
//
// Emission goes through a structured intermediate (expressions and case
// arms) that tests verify directly against Cover/MooreFsm semantics, so
// the printed text is a faithful rendering of the verified structure.

#include <string>
#include <vector>

#include "netlist/fsm_synth.h"
#include "netlist/logic.h"

namespace pmbist::netlist {

/// Renders a cube as a Verilog conjunction over `input_names`
/// (e.g. "start & ~last_addr"); the tautology cube renders as "1'b1".
[[nodiscard]] std::string cube_expression(
    const Cube& cube, const std::vector<std::string>& input_names);

/// Renders a cover as a disjunction of cube conjunctions; the empty cover
/// renders as "1'b0".
[[nodiscard]] std::string cover_expression(
    const Cover& cover, const std::vector<std::string>& input_names);

/// One output of a combinational SOP module.
struct SopOutput {
  std::string name;
  Cover cover;
};

/// Emits a purely combinational module: inputs, one `assign` per output.
[[nodiscard]] std::string emit_sop_module(
    const std::string& module_name,
    const std::vector<std::string>& input_names,
    const std::vector<SopOutput>& outputs);

/// Structured transition arm of one FSM state (tests verify these against
/// MooreFsm::step before the text is rendered).
struct FsmCaseArm {
  int state = 0;
  /// Prioritized (condition, next state) pairs; `conditions[i]` guards
  /// `targets[i]`.  The final default target has no condition.
  std::vector<Cube> conditions;
  std::vector<int> targets;
  int default_target = 0;
};

/// The transition structure the emitter renders (exposed for testing).
[[nodiscard]] std::vector<FsmCaseArm> fsm_case_arms(const MooreFsm& fsm);

/// Emits a Moore FSM as synthesizable RTL: synchronous active-high reset
/// to state 0, prioritized if/else transitions, Moore outputs as assigns.
[[nodiscard]] std::string emit_fsm_module(const MooreFsm& fsm,
                                          const std::string& module_name);

/// Sanitizes an arbitrary designation into a Verilog identifier.
[[nodiscard]] std::string verilog_identifier(const std::string& name);

}  // namespace pmbist::netlist
