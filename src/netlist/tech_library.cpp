#include "netlist/tech_library.h"

namespace pmbist::netlist {
namespace {

// GE costs follow the usual static-CMOS transistor-count accounting with a
// 2-input NAND (4 transistors) as the unit.  Sequential cells carry the
// customary library premium for clock buffering.
constexpr std::array<CellInfo, kNumCells> kBaseCells{{
    /* Inv          */ {"INV", 0.50, 1.0},
    /* Buf          */ {"BUF", 0.75, 1.0},
    /* Nand2        */ {"NAND2", 1.00, 1.0},
    /* Nand3        */ {"NAND3", 1.50, 1.0},
    /* Nand4        */ {"NAND4", 2.00, 1.0},
    /* Nor2         */ {"NOR2", 1.00, 1.0},
    /* Nor3         */ {"NOR3", 1.50, 1.0},
    /* And2         */ {"AND2", 1.25, 1.0},
    /* Or2          */ {"OR2", 1.25, 1.0},
    /* Xor2         */ {"XOR2", 2.25, 1.0},
    /* Xnor2        */ {"XNOR2", 2.25, 1.0},
    /* Mux2         */ {"MUX2", 1.75, 1.0},
    /* HalfAdder    */ {"HADD", 3.50, 1.0},
    /* Latch        */ {"LATCH", 3.00, 1.0},
    /* Dff          */ {"DFF", 5.50, 1.0},
    /* DffEn        */ {"DFFE", 6.75, 1.0},
    /* ScanDff      */ {"SDFF", 7.25, 1.0},
    // The paper: scan-only cells are "approximately 4 to 5 times smaller
    // than regular full scan registers and operate in about 1/8 or 1/6 of
    // functional clock rate".  7.25 / 4.5 ~= 1.61 GE.
    /* ScanOnlyCell */ {"SOCELL", 1.61, 1.0 / 6.0},
    /* TriBuf       */ {"TRIBUF", 1.00, 1.0},
}};

}  // namespace

TechLibrary TechLibrary::cmos5s() {
  // 48.7 um^2 per placed-and-routed NAND2 equivalent is representative of
  // 0.35um standard-cell libraries (CMOS5S class); see EXPERIMENTS.md for
  // the calibration note.
  return TechLibrary{"IBM CMOS5S-class 0.35um", 48.7, kBaseCells};
}

TechLibrary TechLibrary::generic_0_6um() {
  return TechLibrary{"generic 0.6um", 143.0, kBaseCells};
}

const CellInfo& TechLibrary::info(Cell c) const noexcept {
  return cells_[static_cast<int>(c)];
}

}  // namespace pmbist::netlist
