#include "netlist/qm.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_set>

namespace pmbist::netlist {
namespace {

// Packs a cube into a single 64-bit key for dedup sets.
std::uint64_t key_of(const Cube& c) {
  return (std::uint64_t{c.mask} << 32) | c.value;
}

}  // namespace

Cover prime_implicants(int num_vars, std::span<const std::uint32_t> onset,
                       std::span<const std::uint32_t> dcset) {
  assert(num_vars >= 0 && num_vars <= kMaxLogicVars);
  const std::uint32_t full_mask =
      num_vars == 0 ? 0u
                    : (num_vars == 32 ? ~0u : ((1u << num_vars) - 1u));

  // Current generation of cubes, deduped.
  std::vector<Cube> current;
  {
    std::unordered_set<std::uint64_t> seen;
    auto push = [&](std::uint32_t m) {
      Cube c{m & full_mask, full_mask};
      if (seen.insert(key_of(c)).second) current.push_back(c);
    };
    for (auto m : onset) push(m);
    for (auto m : dcset) push(m);
  }

  Cover primes;
  while (!current.empty()) {
    // Group by mask, then by popcount of value, so only adjacent groups are
    // compared (classic QM tabulation).
    std::map<std::uint32_t, std::map<int, std::vector<std::size_t>>> groups;
    for (std::size_t i = 0; i < current.size(); ++i) {
      const auto& c = current[i];
      groups[c.mask][__builtin_popcount(c.value)].push_back(i);
    }

    std::vector<bool> combined(current.size(), false);
    std::vector<Cube> next;
    std::unordered_set<std::uint64_t> next_seen;

    for (auto& [mask, by_count] : groups) {
      for (auto it = by_count.begin(); it != by_count.end(); ++it) {
        auto jt = by_count.find(it->first + 1);
        if (jt == by_count.end()) continue;
        for (std::size_t i : it->second) {
          for (std::size_t j : jt->second) {
            const std::uint32_t diff = current[i].value ^ current[j].value;
            if (__builtin_popcount(diff) != 1) continue;
            combined[i] = combined[j] = true;
            Cube merged{current[i].value & ~diff, mask & ~diff};
            if (next_seen.insert(key_of(merged)).second)
              next.push_back(merged);
          }
        }
      }
    }

    for (std::size_t i = 0; i < current.size(); ++i)
      if (!combined[i]) primes.push_back(current[i]);
    current = std::move(next);
  }

  std::sort(primes.begin(), primes.end());
  primes.erase(std::unique(primes.begin(), primes.end()), primes.end());
  return primes;
}

MinimizeResult minimize(int num_vars, std::span<const std::uint32_t> onset,
                        std::span<const std::uint32_t> dcset) {
  MinimizeResult result;
  if (onset.empty()) return result;  // constant 0

  // Deduplicate the onset; coverage bookkeeping is per distinct minterm.
  std::vector<std::uint32_t> ons(onset.begin(), onset.end());
  std::sort(ons.begin(), ons.end());
  ons.erase(std::unique(ons.begin(), ons.end()), ons.end());

  const Cover primes = prime_implicants(num_vars, ons, dcset);

  // prime -> indices of onset minterms it covers
  std::vector<std::vector<int>> covers_of(primes.size());
  // minterm index -> primes covering it
  std::vector<std::vector<int>> covered_by(ons.size());
  for (std::size_t p = 0; p < primes.size(); ++p) {
    for (std::size_t m = 0; m < ons.size(); ++m) {
      if (primes[p].covers(ons[m])) {
        covers_of[p].push_back(static_cast<int>(m));
        covered_by[m].push_back(static_cast<int>(p));
      }
    }
  }

  std::vector<bool> minterm_done(ons.size(), false);
  std::vector<bool> prime_used(primes.size(), false);
  std::size_t remaining = ons.size();

  auto take_prime = [&](int p) {
    if (prime_used[p]) return;
    prime_used[p] = true;
    result.cover.push_back(primes[p]);
    for (int m : covers_of[p]) {
      if (!minterm_done[m]) {
        minterm_done[m] = true;
        --remaining;
      }
    }
  };

  // Essential primes: any minterm covered by exactly one prime.
  for (std::size_t m = 0; m < ons.size(); ++m) {
    assert(!covered_by[m].empty() && "onset minterm must be covered");
    if (covered_by[m].size() == 1) take_prime(covered_by[m][0]);
  }

  // Candidate primes that still help.
  std::vector<int> candidates;
  for (std::size_t p = 0; p < primes.size(); ++p) {
    if (prime_used[p]) continue;
    for (int m : covers_of[p]) {
      if (!minterm_done[m]) {
        candidates.push_back(static_cast<int>(p));
        break;
      }
    }
  }

  // Exact branch-and-bound covering when the residual problem is small
  // (this is where greedy covers go wrong on cyclic cores); greedy
  // fallback otherwise.  Branch on the uncovered minterm with the fewest
  // covering candidates.
  constexpr std::size_t kExactLimit = 22;
  if (remaining > 0 && candidates.size() <= kExactLimit) {
    std::vector<int> chosen;
    std::vector<int> best_set;
    bool have_best = false;

    std::vector<int> cover_count(ons.size(), 0);
    for (std::size_t m = 0; m < ons.size(); ++m)
      if (minterm_done[m]) cover_count[m] = 1;

    auto recurse = [&](auto&& self) -> void {
      if (have_best && chosen.size() + 1 > best_set.size()) return;  // bound
      int pick = -1;
      std::size_t pick_options = SIZE_MAX;
      for (std::size_t m = 0; m < ons.size(); ++m) {
        if (cover_count[m] > 0) continue;
        std::size_t options = 0;
        for (int p : covered_by[m])
          if (!prime_used[p] &&
              std::find(chosen.begin(), chosen.end(), p) == chosen.end() &&
              std::find(candidates.begin(), candidates.end(), p) !=
                  candidates.end())
            ++options;
        if (options < pick_options) {
          pick_options = options;
          pick = static_cast<int>(m);
        }
      }
      if (pick < 0) {  // everything covered
        if (!have_best || chosen.size() < best_set.size()) {
          best_set = chosen;
          have_best = true;
        }
        return;
      }
      if (have_best && chosen.size() + 1 >= best_set.size()) return;
      for (int p : covered_by[static_cast<std::size_t>(pick)]) {
        if (prime_used[p]) continue;
        if (std::find(chosen.begin(), chosen.end(), p) != chosen.end())
          continue;
        chosen.push_back(p);
        for (int m : covers_of[p]) ++cover_count[m];
        self(self);
        for (int m : covers_of[p]) --cover_count[m];
        chosen.pop_back();
      }
    };
    recurse(recurse);
    assert(have_best && "exact covering must find a solution");
    for (int p : best_set) take_prime(p);
  }

  // Greedy: repeatedly pick the prime covering the most uncovered minterms,
  // breaking ties toward fewer literals (cheaper term).
  while (remaining > 0) {
    int best = -1;
    int best_gain = -1;
    for (std::size_t p = 0; p < primes.size(); ++p) {
      if (prime_used[p]) continue;
      int gain = 0;
      for (int m : covers_of[p])
        if (!minterm_done[m]) ++gain;
      if (gain > best_gain ||
          (gain == best_gain && best >= 0 &&
           primes[p].literals() < primes[best].literals())) {
        best = static_cast<int>(p);
        best_gain = gain;
      }
    }
    assert(best >= 0 && best_gain > 0);
    take_prime(best);
  }

  std::sort(result.cover.begin(), result.cover.end());
  result.literals = cover_literals(result.cover);
  return result;
}

MinimizeResult minimize(const TruthTable& table) {
  const auto ons = table.onset();
  const auto dcs = table.dcset();
  return minimize(table.num_vars(), ons, dcs);
}

}  // namespace pmbist::netlist
