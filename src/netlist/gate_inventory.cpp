#include "netlist/gate_inventory.h"

#include <cassert>
#include <sstream>
#include <iomanip>

namespace pmbist::netlist {

void GateInventory::add(Cell c, long n) {
  assert(n >= 0 && "cell counts are non-negative");
  if (n == 0) return;
  counts_[c] += n;
}

GateInventory& GateInventory::operator+=(const GateInventory& other) {
  for (const auto& [cell, n] : other.counts_) counts_[cell] += n;
  return *this;
}

GateInventory GateInventory::scaled(long factor) const {
  assert(factor >= 0);
  GateInventory out;
  for (const auto& [cell, n] : counts_) out.add(cell, n * factor);
  return out;
}

long GateInventory::count(Cell c) const noexcept {
  auto it = counts_.find(c);
  return it == counts_.end() ? 0 : it->second;
}

long GateInventory::total_cells() const noexcept {
  long total = 0;
  for (const auto& [cell, n] : counts_) total += n;
  return total;
}

double GateInventory::total_ge(const TechLibrary& lib) const {
  double total = 0.0;
  for (const auto& [cell, n] : counts_)
    total += static_cast<double>(n) * lib.ge(cell);
  return total;
}

double GateInventory::total_area_um2(const TechLibrary& lib) const {
  return total_ge(lib) * lib.area_per_ge_um2();
}

std::string GateInventory::summary(const TechLibrary& lib) const {
  std::ostringstream os;
  for (const auto& [cell, n] : counts_)
    os << lib.info(cell).name << ":" << n << " ";
  os << "(" << std::fixed << std::setprecision(1) << total_ge(lib) << " GE)";
  return os.str();
}

void AreaReport::add_block(std::string name, GateInventory inv) {
  blocks_.push_back(AreaBlock{std::move(name), std::move(inv)});
}

GateInventory AreaReport::total() const {
  GateInventory t;
  for (const auto& b : blocks_) t += b.inventory;
  return t;
}

std::string AreaReport::to_string(const TechLibrary& lib) const {
  std::ostringstream os;
  os << design_name_ << "  [" << lib.process_name() << "]\n";
  os << std::fixed << std::setprecision(1);
  for (const auto& b : blocks_) {
    os << "  " << std::left << std::setw(28) << b.name << std::right
       << std::setw(10) << b.inventory.total_ge(lib) << " GE  "
       << std::setw(12) << b.inventory.total_area_um2(lib) << " um^2\n";
  }
  os << "  " << std::left << std::setw(28) << "TOTAL" << std::right
     << std::setw(10) << total_ge(lib) << " GE  " << std::setw(12)
     << total_area_um2(lib) << " um^2\n";
  return os.str();
}

}  // namespace pmbist::netlist
