#include "netlist/logic.h"

#include <cassert>
#include <set>
#include <sstream>

namespace pmbist::netlist {

std::string Cube::to_string(int num_vars) const {
  std::ostringstream os;
  bool first = true;
  for (int v = 0; v < num_vars; ++v) {
    const std::uint32_t bit = std::uint32_t{1} << v;
    if (!(mask & bit)) continue;
    if (!first) os << " ";
    first = false;
    os << "x" << v;
    if (!(value & bit)) os << "'";
  }
  if (first) os << "1";  // tautology cube
  return os.str();
}

int cover_literals(const Cover& cover) {
  int total = 0;
  for (const auto& c : cover) total += c.literals();
  return total;
}

bool cover_eval(const Cover& cover, std::uint32_t minterm) {
  for (const auto& c : cover)
    if (c.covers(minterm)) return true;
  return false;
}

TruthTable::TruthTable(int num_vars) : num_vars_{num_vars} {
  assert(num_vars >= 0 && num_vars <= kMaxLogicVars);
  rows_.assign(std::size_t{1} << num_vars, Tri::Zero);
}

void TruthTable::set(std::uint32_t minterm, Tri v) {
  assert(minterm < size());
  rows_[minterm] = v;
}

Tri TruthTable::get(std::uint32_t minterm) const {
  assert(minterm < size());
  return rows_[minterm];
}

std::vector<std::uint32_t> TruthTable::onset() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t m = 0; m < size(); ++m)
    if (rows_[m] == Tri::One) out.push_back(m);
  return out;
}

std::vector<std::uint32_t> TruthTable::dcset() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t m = 0; m < size(); ++m)
    if (rows_[m] == Tri::DontCare) out.push_back(m);
  return out;
}

bool TruthTable::is_implemented_by(const Cover& cover) const {
  for (std::uint32_t m = 0; m < size(); ++m) {
    const Tri want = rows_[m];
    if (want == Tri::DontCare) continue;
    if (cover_eval(cover, m) != (want == Tri::One)) return false;
  }
  return true;
}

GateInventory wide_nand(int fan_in) {
  assert(fan_in >= 1);
  GateInventory inv;
  if (fan_in == 1) {
    inv.add(Cell::Inv);
    return inv;
  }
  if (fan_in == 2) {
    inv.add(Cell::Nand2);
    return inv;
  }
  if (fan_in == 3) {
    inv.add(Cell::Nand3);
    return inv;
  }
  if (fan_in == 4) {
    inv.add(Cell::Nand4);
    return inv;
  }
  // Decompose: groups of up to 4 inputs form ANDs (NANDk + INV), then a
  // wide NAND combines the group outputs.
  int remaining = fan_in;
  int groups = 0;
  while (remaining > 0) {
    const int take = remaining >= 4 ? 4 : remaining;
    if (take == 1) {
      // A lone leftover input passes straight into the combining NAND.
      ++groups;
      remaining = 0;
      break;
    }
    switch (take) {
      case 2: inv.add(Cell::Nand2); break;
      case 3: inv.add(Cell::Nand3); break;
      default: inv.add(Cell::Nand4); break;
    }
    inv.add(Cell::Inv);
    remaining -= take;
    ++groups;
  }
  inv += wide_nand(groups);
  return inv;
}

GateInventory sop_inventory(const Cover& cover, const SopCostOptions& opts) {
  GateInventory inv;
  if (cover.empty()) return inv;  // constant 0
  for (const auto& c : cover)
    if (c.mask == 0) return inv;  // constant 1 (tautology term)

  if (!opts.free_input_complements) {
    std::set<int> complemented;
    for (const auto& c : cover)
      for (int v = 0; v < kMaxLogicVars; ++v) {
        const std::uint32_t bit = std::uint32_t{1} << v;
        if ((c.mask & bit) && !(c.value & bit)) complemented.insert(v);
      }
    inv.add(Cell::Inv, static_cast<long>(complemented.size()));
  }

  for (const auto& c : cover) {
    const int lits = c.literals();
    if (lits >= 2) inv += wide_nand(lits);
    // Single-literal terms feed the output NAND directly in complemented
    // form; with free complements this costs nothing.
    if (lits == 1 && !opts.free_input_complements) {
      // Complement already charged above if the literal is negative; the
      // positive literal still needs one inverter to present an active-low
      // term to the output NAND.
      inv.add(Cell::Inv);
    }
  }

  const int terms = static_cast<int>(cover.size());
  if (terms == 1) {
    inv.add(Cell::Inv);  // single term: AND = NAND + INV
  } else {
    inv += wide_nand(terms);
  }
  return inv;
}

}  // namespace pmbist::netlist
