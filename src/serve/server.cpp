#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "backend/memtest.h"
#include "common/cancel.h"
#include "common/hash.h"
#include "common/json.h"
#include "field/manager.h"
#include "field/profile.h"
#include "lint/certify.h"
#include "lint/diagnostics.h"
#include "lint/driver.h"
#include "march/coverage.h"
#include "march/library.h"
#include "march/parser.h"
#include "soc/chip.h"
#include "soc/scheduler.h"

namespace pmbist::serve {
namespace {

namespace json = common::json;

march::MarchAlgorithm resolve_algorithm(const std::string& name) {
  try {
    return march::by_name(name);
  } catch (const std::out_of_range&) {
    return march::parse(name, "custom");
  }
}

memsim::FaultClass class_by_name(const std::string& name) {
  for (auto cls : memsim::all_fault_classes())
    if (memsim::fault_class_name(cls) == name) return cls;
  throw std::runtime_error("unknown fault class '" + name + "'");
}

/// Chains every lint input that can change the verdict into one key;
/// 0x1f separators keep adjacent fields from aliasing.
std::uint64_t lint_key(const Request& req) {
  std::uint64_t key = common::fnv1a64(req.input);
  const char sep[] = {0x1f, 0};
  auto mix = [&](const std::string& part) {
    key = common::fnv1a64(sep, key);
    key = common::fnv1a64(part, key);
  };
  mix(req.unit);
  mix(req.lint_json ? "json" : "text");
  mix(std::to_string(req.storage_depth));
  mix(std::to_string(req.buffer_depth));
  mix(req.against);
  mix(req.chip);
  mix(req.profile);
  mix(req.certify ? "certify" : "");
  return key;
}

/// Certify gate for exec_soc/exec_field under ServerOptions::certify: a
/// certificate violation fails the whole request (the caller turns the
/// throw into an `error` event) — never a corrupted-but-replied result.
void require_certified(const lint::Report& report, const char* what) {
  if (!report.has_errors()) return;
  throw std::runtime_error(std::string("schedule certificate failed (") +
                           what + "):\n" + lint::format_text(report));
}

json::Value cache_stats_json(std::uint64_t hits, std::uint64_t misses,
                             std::uint64_t evictions) {
  json::Value obj = json::Value::object();
  obj.set("hits", json::Value::number(hits));
  obj.set("misses", json::Value::number(misses));
  obj.set("evictions", json::Value::number(evictions));
  return obj;
}

}  // namespace

struct Server::TcpState {
  std::atomic<bool> stopping{false};
  std::atomic<int> listen_fd{-1};
  std::mutex mu;
  std::vector<int> client_fds;
  std::vector<std::thread> readers;
};

Server::Server(ServerOptions options)
    : options_{options},
      streams_{options.stream_cache_bytes},
      lints_{options.lint_cache_entries},
      tcp_{std::make_unique<TcpState>()},
      pool_{std::make_unique<common::ThreadPool>(
          std::max(1, options.sessions))} {}

Server::~Server() {
  shutdown();
  // ThreadPool's destructor drains queued sessions before joining; every
  // member they touch outlives pool_ (declaration order).
  pool_.reset();
}

void Server::emit(const Sink& sink, const std::string& line) {
  std::lock_guard lock{emit_mu_};
  sink(line);
}

bool Server::post(const std::string& line, Sink sink) {
  Request req;
  try {
    req = parse_request(line);
  } catch (const ProtocolError& e) {
    emit(sink, event_error("", e.what()));
    return false;
  }

  if (req.kind == RequestKind::Cancel) {
    std::shared_ptr<Session> target;
    {
      std::lock_guard lock{registry_mu_};
      if (const auto it = sessions_.find(req.target); it != sessions_.end())
        target = it->second;
    }
    if (target == nullptr) {
      emit(sink, event_error(req.id, "no active session '" + req.target + "'"));
    } else {
      target->cancel.store(true, std::memory_order_relaxed);
      emit(sink, event_result(req.id, 0, "cancelling '" + req.target + "'"));
    }
    return false;
  }

  if (req.kind == RequestKind::Stats) {
    emit(sink, event_result(req.id, 0, stats_payload()));
    return false;
  }

  auto session = std::make_shared<Session>();
  session->id = req.id;
  {
    std::lock_guard lock{registry_mu_};
    if (sessions_.contains(req.id)) {
      emit(sink, event_error(req.id,
                             "session '" + req.id + "' is already active"));
      return false;
    }
    sessions_.emplace(req.id, session);
  }
  // `accepted` goes out before post() returns, so a client always sees it
  // ahead of any progress/terminal event of the same request.
  emit(sink, event_accepted(req.id));
  pool_->submit([this, req = std::move(req), session, sink = std::move(sink)] {
    run_session(req, session, sink);
  });
  return true;
}

void Server::run_session(const Request& req,
                         const std::shared_ptr<Session>& session,
                         const Sink& sink) {
  try {
    const ExecResult result = execute(req, *session, sink);
    emit(sink, event_result(req.id, result.exit_code, result.payload));
  } catch (const common::Cancelled&) {
    emit(sink, event_cancelled(req.id));
  } catch (const std::exception& e) {
    emit(sink, event_error(req.id, e.what()));
  }
  {
    std::lock_guard lock{registry_mu_};
    sessions_.erase(req.id);
    ++completed_;
  }
  registry_cv_.notify_all();
}

Server::ExecResult Server::execute(const Request& req, Session& session,
                                   const Sink& sink) {
  switch (req.kind) {
    case RequestKind::Campaign: return exec_campaign(req, session, sink);
    case RequestKind::Soc: return exec_soc(req, session, sink);
    case RequestKind::Field: return exec_field(req, session, sink);
    case RequestKind::Memtest: return exec_memtest(req, session, sink);
    case RequestKind::Lint: return exec_lint(req);
    case RequestKind::Cancel:
    case RequestKind::Stats: break;  // handled synchronously in post()
  }
  throw std::logic_error("unreachable request kind");
}

Server::ExecResult Server::exec_campaign(const Request& req, Session& session,
                                         const Sink& sink) {
  const auto alg = resolve_algorithm(req.algorithm);
  std::vector<memsim::FaultClass> classes;
  if (req.fault_classes.empty()) {
    const auto& all = memsim::all_fault_classes();
    classes.assign(all.begin(), all.end());
  } else {
    for (const auto& name : req.fault_classes)
      classes.push_back(class_by_name(name));
  }

  const int total = static_cast<int>(classes.size());
  session.total.store(total, std::memory_order_relaxed);

  // Mirrors march::coverage_matrix over one algorithm, with the Server's
  // cross-request stream cache plugged in — identical cells, identical
  // table, plus a progress event per fault class.
  march::CoverageRow row;
  row.algorithm = alg.name();
  const march::CoverageOptions copts{.seed = req.seed,
                                     .max_instances_per_class = req.samples,
                                     .jobs = req.jobs,
                                     .kernel = req.kernel,
                                     .cache = &streams_,
                                     .cancel = &session.cancel};
  for (int i = 0; i < total; ++i) {
    common::throw_if_cancelled(&session.cancel);
    row.cells[classes[i]] =
        march::evaluate_coverage(alg, classes[i], req.geometry, copts);
    session.done.store(i + 1, std::memory_order_relaxed);
    emit(sink, event_progress(req.id, i + 1, total));
  }

  const std::vector<march::CoverageRow> rows{row};
  return {0, march::format_coverage_table(rows, classes)};
}

Server::ExecResult Server::exec_soc(const Request& req, Session& session,
                                    const Sink& sink) {
  soc::ChipFile chip = soc::parse_chip(req.chip);
  if (req.power_budget >= 0.0) chip.plan.set_power_budget(req.power_budget);

  const soc::SchedulerOptions opts{
      .jobs = req.jobs,
      .max_failures = req.max_failures,
      .cancel = &session.cancel,
      .progress = [this, &req, &session, &sink](int done, int total) {
        session.done.store(done, std::memory_order_relaxed);
        session.total.store(total, std::memory_order_relaxed);
        emit(sink, event_progress(req.id, done, total));
      }};
  const auto result = soc::run_soc(chip.description, chip.plan, opts);
  if (options_.certify)
    require_certified(
        lint::certify_soc(chip.description, chip.plan, result.schedule),
        "soc");
  return {result.all_healthy() ? 0 : 1,
          soc::format_soc_report(chip.description, chip.plan, result)};
}

Server::ExecResult Server::exec_field(const Request& req, Session& session,
                                      const Sink& sink) {
  const soc::ChipFile chip = soc::parse_chip(req.chip);
  const field::MissionProfile profile = field::parse_profile_text(req.profile);

  const field::FieldOptions opts{
      .jobs = req.jobs,
      .max_failures = req.max_failures,
      .cancel = &session.cancel,
      .progress = [this, &req, &session, &sink](int done, int total) {
        session.done.store(done, std::memory_order_relaxed);
        session.total.store(total, std::memory_order_relaxed);
        emit(sink, event_progress(req.id, done, total));
      }};
  const auto report = field::run_field(chip.description, chip.plan, profile,
                                       opts);
  if (options_.certify)
    require_certified(
        lint::certify_field(chip.description, chip.plan, profile, report),
        "field");
  return {report.all_healthy() ? 0 : 1, field::format_field_report(report)};
}

Server::ExecResult Server::exec_memtest(const Request& req, Session& session,
                                        const Sink& sink) {
  const auto alg = resolve_algorithm(req.algorithm);
  const backend::MemtestOptions opts{
      .size_bytes = req.size_mb << 20,
      .passes = req.passes,
      .backgrounds = req.backgrounds,
      .jobs = req.jobs,
      .backend = req.backend,
      .max_failures = req.max_failures,
      .cancel = &session.cancel,
      .progress = [this, &req, &session, &sink](std::uint64_t done,
                                                std::uint64_t total) {
        session.done.store(static_cast<int>(done), std::memory_order_relaxed);
        session.total.store(static_cast<int>(total), std::memory_order_relaxed);
        emit(sink, event_progress(req.id, static_cast<int>(done),
                                  static_cast<int>(total)));
      }};
  const auto report = backend::run_memtest(alg, opts);
  // The engine reports cancellation by returning early; serve's contract
  // is a `cancelled` terminal event, same as the other work kinds.
  if (!report.completed) throw common::Cancelled{};
  return {report.passed() ? 0 : 1, backend::format_memtest_report(report)};
}

Server::ExecResult Server::exec_lint(const Request& req) {
  const std::uint64_t key = lint_key(req);
  if (auto hit = lints_.get(key))
    return {hit->exit_code, std::move(hit->payload)};

  const lint::LintOptions lopts{.storage_depth = req.storage_depth,
                                .buffer_depth = req.buffer_depth,
                                .chip = req.chip,
                                .profile = req.profile,
                                .certify = req.certify,
                                .against = req.against};
  const lint::Report report = lint::lint_text(req.input, req.unit, lopts);
  VerdictCache::Verdict verdict{lint::format_cli(report, req.unit,
                                                 req.lint_json),
                                report.has_errors() ? 1 : 0};
  lints_.put(key, verdict);
  return {verdict.exit_code, std::move(verdict.payload)};
}

std::string Server::stats_payload() const {
  const Stats s = stats();
  json::Value obj = json::Value::object();
  json::Value streams = cache_stats_json(s.streams.hits, s.streams.misses,
                                         s.streams.evictions);
  streams.set("bytes", json::Value::number(s.streams.bytes));
  obj.set("streams", std::move(streams));
  json::Value lints = cache_stats_json(s.lints.hits, s.lints.misses,
                                       s.lints.evictions);
  lints.set("entries", json::Value::number(s.lints.entries));
  obj.set("lints", std::move(lints));
  obj.set("active", json::Value::number(static_cast<std::int64_t>(s.active)));
  obj.set("completed", json::Value::number(s.completed));
  return obj.dump();
}

Server::Stats Server::stats() const {
  Stats out;
  out.streams = streams_.stats();
  out.lints = lints_.stats();
  std::lock_guard lock{registry_mu_};
  out.active = static_cast<int>(sessions_.size());
  out.completed = completed_;
  return out;
}

march::StreamCache& Server::stream_cache() { return streams_; }

void Server::wait_finished(const std::string& id) {
  std::unique_lock lock{registry_mu_};
  registry_cv_.wait(lock, [&] { return !sessions_.contains(id); });
}

std::vector<std::string> Server::call(const std::string& line) {
  std::vector<std::string> events;
  // The emit mutex serializes sink invocations, so no extra locking here.
  Sink sink = [&events](const std::string& s) { events.push_back(s); };

  std::string id;
  try {
    id = parse_request(line).id;
  } catch (const ProtocolError&) {
    // post() re-parses and emits the error event.
  }
  const bool queued = post(line, std::move(sink));
  if (queued) wait_finished(id);
  return events;
}

void Server::run_pipe(std::istream& in, std::ostream& out,
                      const std::string& payload_dir) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    for (const std::string& event : call(line)) {
      out << event << '\n';
      if (payload_dir.empty()) continue;
      // Mirror result payloads to files (see header).  Our own events
      // always re-parse; guard anyway so a write problem cannot take the
      // whole batch down.
      try {
        const json::Value doc = json::Value::parse(event);
        const json::Value* kind = doc.find("event");
        const json::Value* payload = doc.find("payload");
        const json::Value* id = doc.find("id");
        if (kind != nullptr && kind->is_string() &&
            kind->as_string() == "result" && payload != nullptr &&
            id != nullptr) {
          std::ofstream file{payload_dir + "/" + id->as_string() + ".out",
                             std::ios::binary | std::ios::trunc};
          file << payload->as_string();
        }
      } catch (const json::JsonError&) {
      }
    }
    out.flush();
  }
}

namespace {

/// Full-buffer send; false on a broken connection (client went away —
/// the session still completes, its events are dropped).
bool send_all(int fd, const std::string& line) {
  std::string buf = line;
  buf.push_back('\n');
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n =
        ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int Server::serve_tcp(int port, const std::function<void(int)>& ready,
                      std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) *error = std::string(what) + ": " + std::strerror(errno);
    return -1;
  };

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return fail("bind");
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    return fail("listen");
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  tcp_->listen_fd.store(fd);
  if (ready) ready(ntohs(addr.sin_port));

  while (!tcp_->stopping.load()) {
    const int cfd = ::accept(fd, nullptr, nullptr);
    if (cfd < 0) {
      if (tcp_->stopping.load()) break;
      continue;
    }
    std::lock_guard lock{tcp_->mu};
    tcp_->client_fds.push_back(cfd);
    tcp_->readers.emplace_back([this, cfd] {
      Sink sink = [cfd](const std::string& line) { send_all(cfd, line); };
      std::vector<std::string> posted;  ///< session ids of this connection
      std::string pending;
      char buf[4096];
      for (;;) {
        const ssize_t n = ::recv(cfd, buf, sizeof buf, 0);
        if (n <= 0) break;
        pending.append(buf, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = pending.find('\n')) != std::string::npos) {
          const std::string line = pending.substr(0, nl);
          pending.erase(0, nl + 1);
          if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
          std::string id;
          try {
            id = parse_request(line).id;
          } catch (const ProtocolError&) {
          }
          if (post(line, sink)) posted.push_back(id);
        }
      }
      // Drain this connection's sessions before closing the socket, so a
      // client that half-closes after its last request still receives
      // every terminal event.
      for (const std::string& id : posted) wait_finished(id);
      ::close(cfd);
    });
  }

  {
    std::lock_guard lock{tcp_->mu};
    for (const int cfd : tcp_->client_fds) ::shutdown(cfd, SHUT_RD);
  }
  for (auto& reader : tcp_->readers) reader.join();
  {
    std::lock_guard lock{tcp_->mu};
    tcp_->readers.clear();
    tcp_->client_fds.clear();
  }
  ::close(fd);
  tcp_->listen_fd.store(-1);
  return 0;
}

void Server::shutdown() {
  tcp_->stopping.store(true);
  const int fd = tcp_->listen_fd.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace pmbist::serve
