#pragma once
// One in-flight serve request.
//
// A Session is the server-side arena of one work request (campaign / soc /
// field / lint): its identity, its cooperative cancellation flag (the
// target of `cancel` requests, polled by the engines at shard boundaries
// through common/cancel.h) and its progress counters.  Sessions live in
// the Server's registry from `accepted` until the terminal event
// (`result`, `error` or `cancelled`) has been emitted, and are reachable
// by id for exactly that window — cancelling a finished session is an
// error, which keeps cancel semantics unambiguous.

#include <atomic>
#include <string>

namespace pmbist::serve {

struct Session {
  std::string id;
  /// Set by a `cancel` request; engines poll it between shards.
  std::atomic<bool> cancel{false};
  /// Progress counters mirrored from the engine callbacks (exposed so
  /// stats/debugging never has to parse the event stream).
  std::atomic<int> done{0};
  std::atomic<int> total{0};
};

}  // namespace pmbist::serve
