#pragma once
// Wire protocol of `pmbist serve` (docs/SERVE.md).
//
// Requests arrive as newline-delimited JSON objects; every request names a
// client-chosen `id` and a `kind`.  The five work kinds mirror the one-shot
// CLI commands (campaign ~ `pmbist coverage`, soc ~ `pmbist soc`, field ~
// `pmbist field`, memtest ~ `pmbist memtest`, lint ~ `pmbist lint`) with
// all file payloads inlined;
// `cancel` aborts a running session between shards and `stats` reports the
// server's cache counters.
//
// Responses stream back as JSON events, one per line:
//
//   {"event":"accepted","id":...}             request parsed, session queued
//   {"event":"progress","id":...,"done":D,"total":T}
//   {"event":"result","id":...,"exit":E,"payload":"..."}
//   {"event":"error","id":...,"message":"..."}
//   {"event":"cancelled","id":...}
//
// `payload` is byte-identical to the stdout of the equivalent one-shot CLI
// invocation (same jobs/kernel) — the serve/CLI equivalence contract — and
// `exit` is the CLI's unified exit code (0 ok, 1 check failed).  Progress
// events carry counts only (never memory or class names), so an event
// stream from a single-session server is byte-stable for any jobs value.
//
// parse_request is the hardened edge: malformed or truncated JSON, wrong
// types, unknown fields and unknown kinds all throw ProtocolError (callers
// turn it into an `error` event); it never crashes on hostile input
// (fuzzed by tests/test_serve.cpp).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "march/kernel.h"
#include "memsim/memory.h"

namespace pmbist::serve {

/// Raised for every malformed request line.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class RequestKind : std::uint8_t {
  Campaign,  ///< fault-simulation coverage matrix for one algorithm
  Soc,       ///< whole-chip scheduled BIST from an inline chip payload
  Field,     ///< in-field windowed BIST from inline chip + profile payloads
  Memtest,   ///< host-RAM march sweep (~ pmbist memtest)
  Lint,      ///< static verification of an inline input
  Cancel,    ///< abort a running session by id
  Stats,     ///< cache hit/miss/eviction counters
};

[[nodiscard]] std::string_view to_string(RequestKind kind);

/// One parsed request.  Field defaults equal the CLI's flag defaults, so
/// a minimal request means the same thing as a bare CLI invocation.
struct Request {
  std::string id;
  RequestKind kind = RequestKind::Stats;

  // Shared engine options (campaign/soc/field).
  int jobs = 0;  ///< 0 = hardware concurrency

  // campaign (~ pmbist coverage)
  std::string algorithm;  ///< library name or DSL text
  memsim::MemoryGeometry geometry{.address_bits = 8, .word_bits = 1,
                                  .num_ports = 1};
  int samples = 64;
  std::uint64_t seed = 1;
  march::CampaignKernel kernel = march::CampaignKernel::Auto;
  std::vector<std::string> fault_classes;  ///< empty = all classes

  // soc / field (~ pmbist soc / pmbist field); `chip` and `profile` are
  // inline payloads (chip accepts the text format or the JSON mirror).
  std::string chip;
  std::string profile;
  double power_budget = -1.0;  ///< < 0 = keep the chip payload's budget
  std::size_t max_failures = 1024;

  // memtest (~ pmbist memtest); reuses `algorithm` (default March C) and
  // `jobs`.  `size_mb` bounds the per-request mapping a client may ask of
  // the serving host.
  std::uint64_t size_mb = 256;
  int passes = 1;
  int backgrounds = 0;  ///< 0 = all standard backgrounds
  backend::BackendKind backend = backend::BackendKind::HostRam;

  // lint (~ pmbist lint); all payloads inline.
  std::string input;
  std::string unit = "input";
  bool lint_json = false;
  int storage_depth = 32;
  int buffer_depth = 16;
  std::string against;
  bool certify = false;  ///< lint: run the schedule certificate checker
  // lint reuses `chip` for the profile-vs-chip cross-check payload and
  // `profile` for field-schedule certification.

  // cancel
  std::string target;  ///< id of the session to abort
};

/// Parses one request line.  Throws ProtocolError on anything malformed;
/// never crashes on hostile input.
[[nodiscard]] Request parse_request(const std::string& line);

/// Event constructors: one complete JSON line each (no trailing newline),
/// built through the deterministic JSON writer so escaping is correct and
/// member order is fixed.
[[nodiscard]] std::string event_accepted(const std::string& id);
[[nodiscard]] std::string event_progress(const std::string& id, int done,
                                         int total);
[[nodiscard]] std::string event_result(const std::string& id, int exit_code,
                                       const std::string& payload);
[[nodiscard]] std::string event_error(const std::string& id,
                                      const std::string& message);
[[nodiscard]] std::string event_cancelled(const std::string& id);

}  // namespace pmbist::serve
