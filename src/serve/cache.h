#pragma once
// Lint-verdict cache: the serve-layer twin of march::StreamCache.
//
// Lint requests are pure functions of their inputs (text + options), and
// fleet clients tend to re-lint the same units over and over (every commit
// re-checks mostly unchanged files), so the server memoizes the complete
// rendered verdict — payload string and exit code — keyed by an FNV-1a
// content hash over every input that can change the answer.  Entries are
// small (a few hundred bytes of rendered text), so the budget is an entry
// count rather than bytes.  Thread-safe; owned per-Server, never global
// (the reentrancy contract of campaign.h applies here too).

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace pmbist::serve {

class VerdictCache {
 public:
  /// `max_entries` bounds the entry count; 0 = unbounded.
  explicit VerdictCache(std::size_t max_entries = 256)
      : max_entries_{max_entries} {}

  VerdictCache(const VerdictCache&) = delete;
  VerdictCache& operator=(const VerdictCache&) = delete;

  struct Verdict {
    std::string payload;  ///< complete CLI-identical stdout
    int exit_code = 0;
  };

  /// Cache lookup; refreshes the entry's LRU position.  Counts a hit or a
  /// miss.
  [[nodiscard]] std::optional<Verdict> get(std::uint64_t key);

  /// Inserts (or refreshes) a verdict and evicts least-recently-used
  /// entries above the budget.
  void put(std::uint64_t key, Verdict verdict);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::uint64_t key = 0;
    Verdict verdict;
  };

  mutable std::mutex mu_;
  std::size_t max_entries_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  Stats counters_;
};

}  // namespace pmbist::serve
