#pragma once
// Fleet-scale BIST service: the engine behind `pmbist serve`.
//
// A Server turns the one-shot CLI commands into a long-running service:
// clients submit newline-delimited JSON requests (protocol.h) and receive
// streamed JSON events.  Three transports share one request path:
//
//   post()      in-process asynchronous submission (tests, benches);
//   run_pipe()  stdin/stdout batch mode, one request at a time — the
//               deterministic transport CI goldens pin;
//   serve_tcp() loopback TCP socket, one reader thread per connection,
//               requests from all connections interleaved on the pool.
//
// Concurrency model.  The Server owns a private common::ThreadPool of
// `sessions` workers; every work request becomes a Session (session.h)
// executed as one pool task.  The engines underneath parallelize each
// session across the process-wide shared_pool() via parallel_shards — the
// two layers never share a pool, so a session body blocking on its shards
// cannot starve the server (the no-nested-parallel_shards rule of
// thread_pool.h is respected by construction).
//
// Caching.  Two content-hash caches (FNV-1a over canonical inputs) are
// cross-request but per-Server: a march::StreamCache for reference op
// streams (byte-budgeted LRU) and a VerdictCache for rendered lint
// verdicts.  Two Servers in one process share nothing — pinned by
// tests/test_serve.cpp — which is what the reentrancy refactor of the
// engine layers (campaign.h) bought.
//
// Equivalence contract.  Every `result` payload is byte-identical to the
// stdout of the equivalent one-shot CLI invocation with the same
// jobs/kernel, because both sides call the same formatters
// (march::format_coverage_table, soc::format_soc_report,
// field::format_field_report, lint::format_cli).  docs/SERVE.md documents
// the protocol; bench/bench_serve.cpp measures throughput and cache
// effect.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "march/campaign.h"
#include "serve/cache.h"
#include "serve/protocol.h"
#include "serve/session.h"

namespace pmbist::serve {

struct ServerOptions {
  /// Concurrent session workers (the Server's own pool).  Each session
  /// still fans out across the shared campaign pool per its `jobs` field.
  int sessions = 2;
  /// Byte budget of the cross-request op-stream cache (0 = unbounded).
  std::size_t stream_cache_bytes = 64u << 20;
  /// Entry budget of the lint-verdict cache (0 = unbounded).
  std::size_t lint_cache_entries = 256;
  /// Certify every soc/field schedule with the certificate checker
  /// (lint/certify.h) before replying; a violation fails the request with
  /// an `error` event instead of a `result`.  The debug/CI belt — result
  /// payloads are unchanged when the certificate holds.
  bool certify = false;
};

class Server {
 public:
  /// Receives one complete JSON event line (no trailing newline).  Called
  /// from session worker threads and from inside post(); invocations are
  /// serialized by the Server, so a sink needs no locking of its own.
  using Sink = std::function<void(const std::string& line)>;

  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submits one request line.  Emits `accepted` (and queues the session)
  /// or the complete response for control requests (cancel/stats) and
  /// parse errors synchronously, before returning.  Returns true when a
  /// session was queued (a terminal event will follow asynchronously).
  bool post(const std::string& line, Sink sink);

  /// Synchronous convenience: post() and block until the terminal event;
  /// returns every event emitted for the request, in order.
  [[nodiscard]] std::vector<std::string> call(const std::string& line);

  /// Batch transport: reads request lines from `in` until EOF, writing
  /// events to `out`.  Requests run ONE AT A TIME (each drains before the
  /// next line is read), so the byte stream is deterministic — this is the
  /// mode CI pins against golden responses.  When `payload_dir` is
  /// non-empty, every `result` payload is additionally written verbatim to
  /// `payload_dir/<id>.out`, which is how CI diffs serve payloads against
  /// one-shot CLI stdout without parsing JSON in shell.
  void run_pipe(std::istream& in, std::ostream& out,
                const std::string& payload_dir = {});

  /// Blocking TCP transport on 127.0.0.1:`port` (0 = ephemeral).  Invokes
  /// `ready` with the bound port once listening.  Returns after shutdown()
  /// (0) or a socket setup failure (-1, message on the `error` out-param
  /// when given).  One reader thread per connection; sessions from all
  /// connections share the pool.
  int serve_tcp(int port, const std::function<void(int bound_port)>& ready = {},
                std::string* error = nullptr);

  /// Unblocks serve_tcp(): stops accepting, closes client connections
  /// after their in-flight sessions drain.  Idempotent; safe from any
  /// thread.
  void shutdown();

  struct Stats {
    march::StreamCache::Stats streams;
    VerdictCache::Stats lints;
    int active = 0;               ///< sessions currently registered
    std::uint64_t completed = 0;  ///< sessions that reached a terminal event
  };
  [[nodiscard]] Stats stats() const;

  /// The cross-request op-stream cache (exposed for tests and benches).
  [[nodiscard]] march::StreamCache& stream_cache();

  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

 private:
  struct ExecResult {
    int exit_code = 0;
    std::string payload;
  };

  void run_session(const Request& req, const std::shared_ptr<Session>& session,
                   const Sink& sink);
  ExecResult execute(const Request& req, Session& session, const Sink& sink);
  ExecResult exec_campaign(const Request& req, Session& session,
                           const Sink& sink);
  ExecResult exec_soc(const Request& req, Session& session, const Sink& sink);
  ExecResult exec_field(const Request& req, Session& session, const Sink& sink);
  ExecResult exec_memtest(const Request& req, Session& session,
                          const Sink& sink);
  ExecResult exec_lint(const Request& req);
  [[nodiscard]] std::string stats_payload() const;

  void emit(const Sink& sink, const std::string& line);
  void wait_finished(const std::string& id);

  ServerOptions options_;
  march::StreamCache streams_;
  VerdictCache lints_;

  mutable std::mutex registry_mu_;
  std::condition_variable registry_cv_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::uint64_t completed_ = 0;

  std::mutex emit_mu_;

  struct TcpState;
  std::unique_ptr<TcpState> tcp_;

  /// Declared last so its destructor (which drains queued sessions) runs
  /// first, while every member the sessions touch is still alive.
  std::unique_ptr<common::ThreadPool> pool_;
};

}  // namespace pmbist::serve
