#include "serve/protocol.h"

#include <limits>
#include <set>

#include "common/json.h"

namespace pmbist::serve {
namespace {

namespace json = common::json;

[[noreturn]] void fail(const std::string& what) { throw ProtocolError(what); }

/// Whitelists the fields a request kind accepts; unknown fields are hard
/// errors so client typos ("algorithim") cannot silently select defaults.
void check_fields(const json::Value& obj,
                  const std::set<std::string, std::less<>>& allowed) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    if (key == "id" || key == "kind") continue;
    if (!allowed.contains(key)) fail("unknown field '" + key + "'");
  }
}

std::string field_string(const json::Value& obj, std::string_view key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return {};
  if (!v->is_string()) fail("field '" + std::string(key) + "' must be a string");
  return v->as_string();
}

std::string require_string(const json::Value& obj, std::string_view key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_string() || v->as_string().empty())
    fail("field '" + std::string(key) + "' (non-empty string) is required");
  return v->as_string();
}

bool field_bool(const json::Value& obj, std::string_view key, bool fallback) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) fail("field '" + std::string(key) + "' must be a bool");
  return v->as_bool();
}

std::uint64_t field_u64(const json::Value& obj, std::string_view key,
                        std::uint64_t fallback, std::uint64_t max) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return fallback;
  std::uint64_t out = 0;
  try {
    out = v->as_u64();
  } catch (const json::JsonError&) {
    fail("field '" + std::string(key) + "' must be a non-negative integer");
  }
  if (out > max)
    fail("field '" + std::string(key) + "' out of range (max " +
         std::to_string(max) + ")");
  return out;
}

int field_int(const json::Value& obj, std::string_view key, int fallback,
              int min, int max) {
  const auto raw = field_u64(obj, key, static_cast<std::uint64_t>(fallback),
                             static_cast<std::uint64_t>(max));
  const int out = static_cast<int>(raw);
  if (out < min)
    fail("field '" + std::string(key) + "' must be >= " + std::to_string(min));
  return out;
}

double field_double(const json::Value& obj, std::string_view key,
                    double fallback) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return fallback;
  try {
    return v->as_double();
  } catch (const json::JsonError&) {
    fail("field '" + std::string(key) + "' must be a number");
  }
}

void parse_campaign(const json::Value& obj, Request& req) {
  check_fields(obj, {"algorithm", "addr_bits", "word_bits", "ports", "samples",
                     "seed", "jobs", "kernel", "classes"});
  req.algorithm = require_string(obj, "algorithm");
  req.geometry.address_bits = field_int(obj, "addr_bits", 8, 1, 20);
  req.geometry.word_bits = field_int(obj, "word_bits", 1, 1, 64);
  req.geometry.num_ports = field_int(obj, "ports", 1, 1, 4);
  req.samples = field_int(obj, "samples", 64, 1, 1 << 20);
  req.seed = field_u64(obj, "seed", 1,
                       std::numeric_limits<std::uint64_t>::max());
  req.jobs = field_int(obj, "jobs", 0, 0, 1024);
  if (const json::Value* k = obj.find("kernel"); k != nullptr) {
    if (!k->is_string()) fail("field 'kernel' must be a string");
    const auto parsed = march::parse_kernel(k->as_string());
    if (!parsed) fail("unknown kernel '" + k->as_string() + "'");
    req.kernel = *parsed;
  }
  if (const json::Value* classes = obj.find("classes"); classes != nullptr) {
    if (!classes->is_array()) fail("field 'classes' must be an array");
    for (const auto& item : classes->items()) {
      if (!item.is_string()) fail("field 'classes' must hold strings");
      req.fault_classes.push_back(item.as_string());
    }
  }
}

void parse_soc(const json::Value& obj, Request& req) {
  check_fields(obj, {"chip", "jobs", "power_budget", "max_failures"});
  req.chip = require_string(obj, "chip");
  req.jobs = field_int(obj, "jobs", 0, 0, 1024);
  req.power_budget = field_double(obj, "power_budget", -1.0);
  req.max_failures = field_u64(obj, "max_failures", 1024, 1 << 24);
}

void parse_field(const json::Value& obj, Request& req) {
  check_fields(obj, {"chip", "profile", "jobs", "max_failures"});
  req.chip = require_string(obj, "chip");
  req.profile = require_string(obj, "profile");
  req.jobs = field_int(obj, "jobs", 0, 0, 1024);
  req.max_failures = field_u64(obj, "max_failures", 1024, 1 << 24);
}

void parse_memtest(const json::Value& obj, Request& req) {
  check_fields(obj, {"algorithm", "size_mb", "passes", "backgrounds", "jobs",
                     "backend", "max_failures"});
  req.algorithm = field_string(obj, "algorithm");
  if (req.algorithm.empty()) req.algorithm = "March C";
  // 16 GiB cap: the engine's own geometry bound, restated here so hostile
  // requests fail at the protocol edge, before any mapping is attempted.
  req.size_mb = field_u64(obj, "size_mb", 256, 16ull << 10);
  if (req.size_mb == 0) fail("field 'size_mb' must be >= 1");
  req.passes = field_int(obj, "passes", 1, 1, 1 << 10);
  req.backgrounds = field_int(obj, "backgrounds", 0, 0, 7);
  req.jobs = field_int(obj, "jobs", 0, 0, 1024);
  if (const json::Value* b = obj.find("backend"); b != nullptr) {
    if (!b->is_string()) fail("field 'backend' must be a string");
    const auto parsed = backend::parse_backend(b->as_string());
    if (!parsed) fail("unknown backend '" + b->as_string() + "'");
    req.backend = *parsed;
  }
  req.max_failures = field_u64(obj, "max_failures", 1024, 1 << 24);
}

void parse_lint(const json::Value& obj, Request& req) {
  check_fields(obj, {"input", "unit", "json", "storage_depth", "buffer_depth",
                     "against", "chip", "profile", "certify"});
  req.input = require_string(obj, "input");
  if (const json::Value* unit = obj.find("unit"); unit != nullptr) {
    if (!unit->is_string()) fail("field 'unit' must be a string");
    req.unit = unit->as_string();
  }
  req.lint_json = field_bool(obj, "json", false);
  req.storage_depth = field_int(obj, "storage_depth", 32, 1, 1 << 16);
  req.buffer_depth = field_int(obj, "buffer_depth", 16, 1, 1 << 16);
  req.against = field_string(obj, "against");
  req.chip = field_string(obj, "chip");
  req.profile = field_string(obj, "profile");
  req.certify = field_bool(obj, "certify", false);
}

void parse_cancel(const json::Value& obj, Request& req) {
  check_fields(obj, {"target"});
  req.target = require_string(obj, "target");
}

json::Value event_base(std::string_view event, const std::string& id) {
  json::Value obj = json::Value::object();
  obj.set("event", json::Value::string(std::string(event)));
  obj.set("id", json::Value::string(id));
  return obj;
}

}  // namespace

std::string_view to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::Campaign: return "campaign";
    case RequestKind::Soc: return "soc";
    case RequestKind::Field: return "field";
    case RequestKind::Memtest: return "memtest";
    case RequestKind::Lint: return "lint";
    case RequestKind::Cancel: return "cancel";
    case RequestKind::Stats: return "stats";
  }
  return "?";
}

Request parse_request(const std::string& line) {
  json::Value doc;
  try {
    doc = json::Value::parse(line);
  } catch (const json::JsonError& e) {
    fail(std::string("bad json: ") + e.what());
  }
  if (!doc.is_object()) fail("request must be a json object");

  Request req;
  req.id = require_string(doc, "id");
  const std::string kind = require_string(doc, "kind");
  if (kind == "campaign") {
    req.kind = RequestKind::Campaign;
    parse_campaign(doc, req);
  } else if (kind == "soc") {
    req.kind = RequestKind::Soc;
    parse_soc(doc, req);
  } else if (kind == "field") {
    req.kind = RequestKind::Field;
    parse_field(doc, req);
  } else if (kind == "memtest") {
    req.kind = RequestKind::Memtest;
    parse_memtest(doc, req);
  } else if (kind == "lint") {
    req.kind = RequestKind::Lint;
    parse_lint(doc, req);
  } else if (kind == "cancel") {
    req.kind = RequestKind::Cancel;
    parse_cancel(doc, req);
  } else if (kind == "stats") {
    req.kind = RequestKind::Stats;
    check_fields(doc, {});
  } else {
    fail("unknown kind '" + kind + "'");
  }
  return req;
}

std::string event_accepted(const std::string& id) {
  return event_base("accepted", id).dump();
}

std::string event_progress(const std::string& id, int done, int total) {
  json::Value obj = event_base("progress", id);
  obj.set("done", json::Value::number(static_cast<std::int64_t>(done)));
  obj.set("total", json::Value::number(static_cast<std::int64_t>(total)));
  return obj.dump();
}

std::string event_result(const std::string& id, int exit_code,
                         const std::string& payload) {
  json::Value obj = event_base("result", id);
  obj.set("exit", json::Value::number(static_cast<std::int64_t>(exit_code)));
  obj.set("payload", json::Value::string(payload));
  return obj.dump();
}

std::string event_error(const std::string& id, const std::string& message) {
  json::Value obj = event_base("error", id);
  obj.set("message", json::Value::string(message));
  return obj.dump();
}

std::string event_cancelled(const std::string& id) {
  return event_base("cancelled", id).dump();
}

}  // namespace pmbist::serve
