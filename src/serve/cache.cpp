#include "serve/cache.h"

namespace pmbist::serve {

std::optional<VerdictCache::Verdict> VerdictCache::get(std::uint64_t key) {
  std::lock_guard lock{mu_};
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->verdict;
}

void VerdictCache::put(std::uint64_t key, Verdict verdict) {
  std::lock_guard lock{mu_};
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->verdict = std::move(verdict);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(verdict)});
  index_[key] = lru_.begin();
  while (max_entries_ != 0 && lru_.size() > max_entries_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

VerdictCache::Stats VerdictCache::stats() const {
  std::lock_guard lock{mu_};
  Stats out = counters_;
  out.entries = lru_.size();
  return out;
}

}  // namespace pmbist::serve
