#pragma once
// SoC test scheduler: turns (chip, plan) into a parallel whole-chip test.
//
// Two-phase contract:
//
//   1. compute_schedule() — greedy-but-deterministic list scheduling.
//      Session durations are EXACT controller cycle counts (the controller
//      op stream is data-independent, so bist::count_cycles needs no
//      memory), plus the program-(re)load cost a programmable controller
//      pays per memory (MicrocodeController/PfsmController::
//      program_load_cycles).  Tasks are started longest-first (ties broken
//      by instance name) whenever (a) their share group is idle and (b) the
//      summed toggle weight of running sessions stays within the power
//      budget.  The schedule — start/end cycles, makespan, peak power — is
//      a pure function of (chip, plan): it never depends on --jobs or the
//      host machine.
//
//   2. run() — executes every session via bist::run_session on the shared
//      ThreadPool.  Sessions of one share group run serially (in scheduled
//      order) on one worker, reusing one controller object and re-loading
//      its program per memory; dedicated sessions parallelize freely up to
//      `jobs`.  Each result is written into its pre-sized slot, and each
//      simulation depends only on (program, geometry, faults, power-up
//      seed) — so a SocResult is bit-identical for any worker count, the
//      same determinism contract as march::run_campaign.  Instances with
//      spare rows/columns that fail get the full BISR leg: fail bitmap ->
//      redundancy allocation -> spare switch-in -> retest.
//
// docs/SOC.md documents the power model, the sharing rules and this
// scheduling contract.

#include <atomic>
#include <functional>
#include <memory>
#include <optional>

#include "backend/backend.h"
#include "bist/session.h"
#include "repair/redundancy.h"
#include "soc/plan.h"

namespace pmbist::soc {

struct SchedulerOptions {
  /// Execution worker count: 0 = hardware concurrency, 1 = serial.
  /// Results are identical for every value.
  int jobs = 0;
  /// Per-session failure-log capacity.  Truncation caps the log (and what
  /// the repair bitmap can see), never the run.
  std::size_t max_failures = 1024;
  /// Runaway-controller bound per session.
  std::uint64_t max_cycles = 1'000'000'000;
  /// Memory-under-test backend.  Sim is the behavioral simulator (the only
  /// choice when the chip injects faults); HostRam runs every session
  /// against mmap'd host memory — run() throws SocError if any instance
  /// carries faults then.  Verdicts and schedules are identical across
  /// backends on a fault-free chip.
  backend::BackendKind backend = backend::BackendKind::Sim;
  /// Queue BISR retests as a second scheduling pass (sessions flagged
  /// `retest`, started after the first pass drains, under the same share
  /// group and power constraints) instead of an immediate same-seat rerun.
  /// Models repair time honestly; verdicts are identical either way.
  bool fold_retests = false;
  /// Optional cooperative cancellation flag (common/cancel.h): polled
  /// between instances; run() throws common::Cancelled once in-flight
  /// sessions drain.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional progress callback, invoked as (done, total) instance counts
  /// after each first-pass instance completes.  Called from worker threads
  /// (the callback must be thread-safe); carries counts only, so consumers
  /// stay order-independent of the worker count.
  std::function<void(int done, int total)> progress = nullptr;
};

/// One session in the modeled schedule.
struct ScheduledSession {
  std::string memory;
  std::string algorithm;
  ControllerKind controller = ControllerKind::Ucode;
  std::string share_group;
  double power_weight = 0.0;
  std::uint64_t load_cycles = 0;  ///< program (re)load before the test
  std::uint64_t test_cycles = 0;  ///< controller run, exact
  std::uint64_t start_cycle = 0;
  bool retest = false;  ///< post-repair second-pass session (fold_retests)

  [[nodiscard]] std::uint64_t duration() const noexcept {
    return load_cycles + test_cycles;
  }
  [[nodiscard]] std::uint64_t end_cycle() const noexcept {
    return start_cycle + duration();
  }
  friend bool operator==(const ScheduledSession&,
                         const ScheduledSession&) = default;
};

/// BISR outcome for an instance with redundancy that logged failures.
struct RepairOutcome {
  bool repairable = false;
  int spare_rows_used = 0;
  int spare_cols_used = 0;
  bool retest_passed = false;
  friend bool operator==(const RepairOutcome&, const RepairOutcome&) = default;
};

/// Test (+ repair) outcome of one instance.
struct InstanceResult {
  std::string memory;
  bist::SessionResult session;
  /// Engaged iff the instance has spare resources, a bit-oriented
  /// geometry, and the session logged failures.
  std::optional<RepairOutcome> repair;

  /// Healthy = passed outright, or repaired and retested clean.
  [[nodiscard]] bool healthy() const noexcept {
    return session.passed() || (repair && repair->retest_passed);
  }
  friend bool operator==(const InstanceResult&,
                         const InstanceResult&) = default;
};

/// Whole-chip outcome.  Everything except `wall_seconds` is deterministic
/// (operator== deliberately ignores wall time).
struct SocResult {
  std::vector<InstanceResult> instances;   ///< in plan-assignment order
  std::vector<ScheduledSession> schedule;  ///< by start cycle, then name
  std::uint64_t makespan_cycles = 0;       ///< modeled whole-chip test time
  double peak_power = 0.0;  ///< max summed toggle weight of a schedule instant
  double wall_seconds = 0.0;  ///< host execution time (not compared)

  [[nodiscard]] int healthy_count() const noexcept;
  [[nodiscard]] bool all_healthy() const noexcept {
    return healthy_count() == static_cast<int>(instances.size());
  }

  friend bool operator==(const SocResult& a, const SocResult& b) {
    return a.instances == b.instances && a.schedule == b.schedule &&
           a.makespan_cycles == b.makespan_cycles &&
           a.peak_power == b.peak_power;
  }
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options = {}) : options_{options} {}

  /// Phase 1 only: the modeled schedule, sorted by (start cycle, name).
  /// Validates (chip, plan); throws SocError on inconsistencies.
  [[nodiscard]] std::vector<ScheduledSession> compute_schedule(
      const SocDescription& chip, const TestPlan& plan) const;

  /// Phases 1+2: schedule, execute, repair.  Throws SocError on an invalid
  /// plan or a fault outside its instance's geometry.
  [[nodiscard]] SocResult run(const SocDescription& chip,
                              const TestPlan& plan) const;

  [[nodiscard]] const SchedulerOptions& options() const noexcept {
    return options_;
  }

 private:
  SchedulerOptions options_;
};

/// One-call front end.
[[nodiscard]] SocResult run_soc(const SocDescription& chip,
                                const TestPlan& plan,
                                const SchedulerOptions& options = {});

/// Canonical human-readable report of a whole-chip run: header, schedule
/// table, makespan/peak-power summary, per-instance verdicts, final
/// PASS/FAIL line.  Deliberately excludes wall_seconds, so the text is a
/// pure function of (chip, plan) — `pmbist soc` and the serve layer both
/// emit exactly this string, which is what pins serve responses
/// byte-identical to one-shot CLI runs.
[[nodiscard]] std::string format_soc_report(const SocDescription& chip,
                                            const TestPlan& plan,
                                            const SocResult& result);

/// Constructs the controller a plan assignment runs on, loaded with `alg`,
/// using the scheduler's shared storage sizing (microcode storage depth 64,
/// pFSM buffer depth 32).  Writes the program-load cost into `load_cycles`
/// when non-null (0 for hardwired).  Exposed for the in-field manager
/// (src/field), which segments the very same controllers' op streams.
[[nodiscard]] std::unique_ptr<bist::Controller> make_plan_controller(
    ControllerKind kind, const march::MarchAlgorithm& alg,
    const memsim::MemoryGeometry& geometry,
    std::uint64_t* load_cycles = nullptr);

}  // namespace pmbist::soc
