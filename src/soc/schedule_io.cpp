#include "soc/schedule_io.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace pmbist::soc {
namespace {

[[noreturn]] void fail(int lineno, const std::string& why) {
  throw ScheduleError("schedule file line " + std::to_string(lineno) + ": " +
                      why);
}

std::uint64_t parse_u64(const std::string& value, int lineno,
                        const std::string& key) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument{value};
    return v;
  } catch (const std::exception&) {
    fail(lineno, key + " expects a non-negative integer, got '" + value + "'");
  }
}

double parse_weight(const std::string& value, int lineno) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument{value};
    return v;
  } catch (const std::exception&) {
    fail(lineno, "weight expects a number, got '" + value + "'");
  }
}

std::string format_weight(double w) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", w);
  // Trim to the shortest form that round-trips exactly.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof shorter, "%.*g", precision, w);
    if (std::stod(shorter) == w) return shorter;
  }
  return buf;
}

}  // namespace

SocScheduleFile parse_schedule_text(const std::string& text) {
  SocScheduleFile file;
  bool saw_header = false;
  std::istringstream lines{text};
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    std::istringstream words{line.substr(0, line.find('#'))};
    std::string directive;
    if (!(words >> directive)) continue;
    if (directive == "schedule") {
      if (saw_header) fail(lineno, "duplicate schedule directive");
      if (!(words >> file.name)) fail(lineno, "schedule needs a name");
      saw_header = true;
      continue;
    }
    if (directive != "session")
      fail(lineno, "unknown directive '" + directive + "'");
    if (!saw_header) fail(lineno, "session before the schedule directive");
    ScheduleEntry entry;
    entry.line = lineno;
    if (!(words >> entry.memory)) fail(lineno, "session needs a memory name");
    bool saw_start = false;
    bool saw_load = false;
    bool saw_test = false;
    std::string token;
    while (words >> token) {
      if (token == "retest") {
        entry.retest = true;
        continue;
      }
      const auto eq = token.find('=');
      if (eq == std::string::npos)
        fail(lineno, "expected key=value or retest, got '" + token + "'");
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "start") {
        entry.start = parse_u64(value, lineno, key);
        saw_start = true;
      } else if (key == "load") {
        entry.load = parse_u64(value, lineno, key);
        saw_load = true;
      } else if (key == "test") {
        entry.test = parse_u64(value, lineno, key);
        saw_test = true;
      } else if (key == "weight") {
        entry.weight = parse_weight(value, lineno);
        entry.has_weight = true;
      } else {
        fail(lineno, "unknown session key '" + key + "'");
      }
    }
    if (!saw_start || !saw_load || !saw_test)
      fail(lineno, "session needs start=, load= and test=");
    file.entries.push_back(std::move(entry));
  }
  if (!saw_header) throw ScheduleError{"schedule file has no schedule directive"};
  return file;
}

std::string to_schedule_text(const std::string& name,
                             const std::vector<ScheduledSession>& schedule) {
  std::ostringstream os;
  os << "# pmbist soc schedule (certify with `pmbist lint FILE --chip CHIP`)\n";
  os << "schedule " << name << '\n';
  for (const auto& s : schedule) {
    os << "session " << s.memory << " start=" << s.start_cycle
       << " load=" << s.load_cycles << " test=" << s.test_cycles
       << " weight=" << format_weight(s.power_weight);
    if (s.retest) os << " retest";
    os << '\n';
  }
  return os.str();
}

std::vector<ScheduleEntry> schedule_entries(
    const std::vector<ScheduledSession>& schedule) {
  std::vector<ScheduleEntry> entries;
  entries.reserve(schedule.size());
  for (const auto& s : schedule) {
    ScheduleEntry e;
    e.memory = s.memory;
    e.start = s.start_cycle;
    e.load = s.load_cycles;
    e.test = s.test_cycles;
    e.weight = s.power_weight;
    e.has_weight = true;
    e.retest = s.retest;
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace pmbist::soc
