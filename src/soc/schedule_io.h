#pragma once
// On-disk form of a computed SoC schedule (.schedule) — the artifact the
// certificate checker (lint/certify.h) verifies independently of the
// scheduler that produced it.
//
// The file records only the scheduler's *decisions* (which memory starts
// when, at what cost); everything else — algorithm, controller kind, share
// group, power weight — is re-derived from the chip file at certification
// time, which is exactly what makes the certificate independent.
//
// Format, in the chip-file style ('#' comments, one directive per line):
//
//   schedule <name>
//   session <mem> start=N load=N test=N [weight=W] [retest]
//
// `pmbist soc --emit-schedule FILE` writes this file;
// `pmbist lint FILE --chip CHIP` certifies it (SC codes, docs/LINT.md).

#include <cstdint>
#include <string>
#include <vector>

#include "soc/scheduler.h"

namespace pmbist::soc {

/// Raised on malformed .schedule text; the message carries the line number.
class ScheduleError : public SocError {
 public:
  using SocError::SocError;
};

/// One parsed `session` directive.
struct ScheduleEntry {
  std::string memory;
  std::uint64_t start = 0;
  std::uint64_t load = 0;  ///< program (re)load cycles before the test
  std::uint64_t test = 0;  ///< controller run cycles
  double weight = 0.0;     ///< meaningful when has_weight
  bool has_weight = false;
  bool retest = false;
  int line = -1;  ///< 1-based source line (-1 when built in memory)

  [[nodiscard]] std::uint64_t duration() const noexcept {
    return load + test;
  }
  [[nodiscard]] std::uint64_t end() const noexcept {
    return start + duration();
  }
  friend bool operator==(const ScheduleEntry&,
                         const ScheduleEntry&) = default;
};

/// The parsed file.
struct SocScheduleFile {
  std::string name;
  std::vector<ScheduleEntry> entries;
  friend bool operator==(const SocScheduleFile&,
                         const SocScheduleFile&) = default;
};

/// Parses .schedule text.  Throws ScheduleError (with a line number) on
/// syntax errors; performs no semantic checks (that is the certifier's
/// job, as diagnostics rather than exceptions).
[[nodiscard]] SocScheduleFile parse_schedule_text(const std::string& text);

/// Serializes a computed schedule into .schedule text; the output
/// re-parses to equal entries (round-trip).  Weights are always emitted so
/// the certifier can cross-check them against the plan.
[[nodiscard]] std::string to_schedule_text(
    const std::string& name, const std::vector<ScheduledSession>& schedule);

/// Converts live scheduler output into entries (line = -1), the form the
/// certifier consumes.
[[nodiscard]] std::vector<ScheduleEntry> schedule_entries(
    const std::vector<ScheduledSession>& schedule);

}  // namespace pmbist::soc
