#pragma once
// Internal fault <-> key=value codec shared by the two chip-file front
// ends (chip.cpp for the line-oriented text format, chip_json.cpp for the
// JSON mirror).  Both formats describe a fault as a kind tag plus named
// arguments; keeping the codec in one place guarantees they accept and
// emit exactly the same fault vocabulary (docs/SOC.md).

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "memsim/fault_model.h"
#include "soc/description.h"

namespace pmbist::soc::detail {

/// Ordered key=value arguments of one serialized fault.
using FaultKv = std::vector<std::pair<std::string, std::string>>;

/// Parses one fault from its kind tag and argument map against a memory's
/// geometry.  `where` prefixes every error message (e.g. "chip file line
/// 7" or "memories[0].faults[2]").  Throws ChipError on unknown kinds,
/// missing/extra-typed arguments and out-of-geometry references.
[[nodiscard]] memsim::Fault parse_fault_kv(
    const std::string& kind, const std::map<std::string, std::string>& kv,
    const memsim::MemoryGeometry& geometry, const std::string& where);

/// Serializes a fault as its kind tag plus ordered arguments; the exact
/// inverse of parse_fault_kv.  Throws SocError for faults neither format
/// can express (NPSF).
[[nodiscard]] std::pair<std::string, FaultKv> fault_kv(
    const memsim::Fault& fault);

/// "addr:bit" cell reference text.
[[nodiscard]] std::string cell_text(const memsim::BitRef& cell);

/// Shortest round-trip "%g" rendering shared by both serializers.
[[nodiscard]] std::string real_text(double v);

}  // namespace pmbist::soc::detail
