#include "soc/chip.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "march/coverage.h"
#include "soc/chip_json.h"
#include "soc/fault_codec.h"

namespace pmbist::soc {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ChipError{"chip file line " + std::to_string(line) + ": " + what};
}

[[noreturn]] void fail_at(const std::string& where, const std::string& what) {
  throw ChipError{where + ": " + what};
}

/// Splits one line into tokens: double-quoted strings (kept verbatim, no
/// escapes) or maximal non-space runs.  `#` starts a comment outside quotes.
std::vector<std::string> tokenize(const std::string& line, std::size_t lineno) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
    } else if (c == '#') {
      break;
    } else if (c == '"') {
      const auto end = line.find('"', i + 1);
      if (end == std::string::npos) fail(lineno, "unterminated quote");
      tokens.push_back(line.substr(i + 1, end - i - 1));
      i = end + 1;
    } else {
      std::size_t end = i;
      while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
             line[end] != '#' && line[end] != '\r')
        ++end;
      tokens.push_back(line.substr(i, end - i));
      i = end;
    }
  }
  return tokens;
}

/// key=value arguments of one directive (or one JSON fault object —
/// `where` carries the error-message prefix either way).
class Args {
 public:
  Args(const std::vector<std::string>& tokens, std::size_t first,
       std::size_t lineno)
      : where_{"chip file line " + std::to_string(lineno)} {
    for (std::size_t i = first; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      if (eq == std::string::npos || eq == 0)
        fail_at(where_, "expected key=value, got '" + tokens[i] + "'");
      if (!kv_.emplace(tokens[i].substr(0, eq), tokens[i].substr(eq + 1))
               .second)
        fail_at(where_, "duplicate key '" + tokens[i].substr(0, eq) + "'");
    }
  }

  Args(std::map<std::string, std::string> kv, std::string where)
      : kv_{std::move(kv)}, where_{std::move(where)} {}

  [[nodiscard]] bool has(const std::string& key) const {
    return kv_.count(key) != 0;
  }
  [[nodiscard]] const std::map<std::string, std::string>& map() const {
    return kv_;
  }

  [[nodiscard]] std::uint64_t u64(const std::string& key) const {
    const auto& text = raw(key);
    try {
      std::size_t used = 0;
      const auto v = std::stoull(text, &used, 0);
      if (used != text.size()) throw std::invalid_argument{text};
      return v;
    } catch (const std::exception&) {
      fail_at(where_, "bad number for " + key + ": '" + text + "'");
    }
  }
  [[nodiscard]] std::uint64_t u64_or(const std::string& key,
                                     std::uint64_t fallback) const {
    return has(key) ? u64(key) : fallback;
  }
  [[nodiscard]] int num(const std::string& key) const {
    return static_cast<int>(u64(key));
  }
  [[nodiscard]] int num_or(const std::string& key, int fallback) const {
    return has(key) ? num(key) : fallback;
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    const auto v = u64(key);
    if (v > 1) fail_at(where_, key + " must be 0 or 1");
    return v != 0;
  }
  [[nodiscard]] bool flag_or(const std::string& key, bool fallback) const {
    return has(key) ? flag(key) : fallback;
  }
  [[nodiscard]] double real(const std::string& key) const {
    const auto& text = raw(key);
    try {
      std::size_t used = 0;
      const auto v = std::stod(text, &used);
      if (used != text.size()) throw std::invalid_argument{text};
      return v;
    } catch (const std::exception&) {
      fail_at(where_, "bad number for " + key + ": '" + text + "'");
    }
  }
  /// "addr:bit" cell reference.
  [[nodiscard]] memsim::BitRef cell(const std::string& key) const {
    const auto& text = raw(key);
    const auto colon = text.find(':');
    if (colon == std::string::npos)
      fail_at(where_, key + " must be <addr>:<bit>, got '" + text + "'");
    try {
      return {static_cast<memsim::Address>(
                  std::stoull(text.substr(0, colon), nullptr, 0)),
              static_cast<int>(std::stoull(text.substr(colon + 1), nullptr,
                                           0))};
    } catch (const std::exception&) {
      fail_at(where_, "bad cell reference '" + text + "'");
    }
  }
  [[nodiscard]] const std::string& raw(const std::string& key) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) fail_at(where_, "missing " + key + "=");
    return it->second;
  }
  [[nodiscard]] const std::string& where() const { return where_; }

 private:
  std::map<std::string, std::string> kv_;
  std::string where_;
};

memsim::FaultClass class_by_name(const std::string& name,
                                 const std::string& where) {
  for (const auto cls : memsim::all_fault_classes())
    if (memsim::fault_class_name(cls) == name) return cls;
  fail_at(where, "unknown fault class '" + name + "'");
}

memsim::BitRef checked_cell(const Args& args, const std::string& key,
                            const memsim::MemoryGeometry& g) {
  const auto c = args.cell(key);
  if (c.addr >= g.num_words() || c.bit < 0 || c.bit >= g.word_bits)
    fail_at(args.where(), key + "=" + std::to_string(c.addr) + ":" +
                              std::to_string(c.bit) +
                              " is outside the geometry");
  return c;
}

memsim::Fault parse_fault_args(const std::string& kind, const Args& args,
                               const memsim::MemoryGeometry& g) {
  using namespace memsim;
  const std::string& where = args.where();
  auto cell = [&](const char* key = "cell") {
    return checked_cell(args, key, g);
  };
  if (kind == "SAF") return StuckAtFault{cell(), args.flag("value")};
  if (kind == "TF") return TransitionFault{cell(), args.flag("rising")};
  if (kind == "CFin")
    return InversionCouplingFault{cell("aggressor"), cell("victim"),
                                  args.flag("rising")};
  if (kind == "CFid")
    return IdempotentCouplingFault{cell("aggressor"), cell("victim"),
                                   args.flag("rising"), args.flag("forced")};
  if (kind == "CFst")
    return StateCouplingFault{cell("aggressor"), cell("victim"),
                              args.flag("state"), args.flag("forced")};
  if (kind == "AF") {
    AddressDecoderFault af;
    af.logical = static_cast<Address>(args.u64("logical"));
    const auto& list = args.raw("physical");
    if (list != "none") {
      std::istringstream is{list};
      std::string part;
      while (std::getline(is, part, ','))
        af.physical.push_back(
            static_cast<Address>(std::stoull(part, nullptr, 0)));
    }
    if (af.logical >= g.num_words()) fail_at(where, "logical address too big");
    for (const auto p : af.physical)
      if (p >= g.num_words()) fail_at(where, "physical address too big");
    return af;
  }
  if (kind == "SOF") return StuckOpenFault{cell()};
  if (kind == "DRF")
    return DataRetentionFault{cell(), args.flag("leak_to"),
                              args.u64_or("hold_ns", 100'000)};
  if (kind == "IRF") return IncorrectReadFault{cell()};
  if (kind == "WDF") return WriteDisturbFault{cell()};
  if (kind == "RDF") return ReadDestructiveFault{cell(), false};
  if (kind == "DRDF") return ReadDestructiveFault{cell(), true};
  if (kind == "PF") {
    const int port = args.num("port"), bit = args.num("bit");
    if (port < 1 || port >= g.num_ports || bit < 0 || bit >= g.word_bits)
      fail_at(where, "port/bit outside the geometry");
    return PortReadFault{port, bit};
  }
  if (kind == "sample") {
    const auto cls = class_by_name(args.raw("class"), where);
    const auto seed = args.u64_or("seed", 1);
    const auto index = args.u64_or("index", 0);
    const auto universe = march::make_fault_universe(
        cls, g, seed, static_cast<int>(std::max<std::uint64_t>(64, index + 1)));
    if (universe.empty())
      fail_at(where, "empty fault universe for this class/geometry");
    return universe[index % universe.size()];
  }
  fail_at(where, "unknown fault kind '" + kind + "'");
}

// --- serialization ----------------------------------------------------

std::string fault_text(const memsim::Fault& fault) {
  const auto [kind, kv] = detail::fault_kv(fault);
  std::string out = kind;
  for (const auto& [key, value] : kv) out += " " + key + "=" + value;
  return out;
}

/// Quotes an algorithm reference for the chip file (no escaping needed:
/// neither library names nor the DSL use double quotes).
std::string quoted(const std::string& text) { return "\"" + text + "\""; }

}  // namespace

namespace detail {

memsim::Fault parse_fault_kv(const std::string& kind,
                             const std::map<std::string, std::string>& kv,
                             const memsim::MemoryGeometry& geometry,
                             const std::string& where) {
  return parse_fault_args(kind, Args{kv, where}, geometry);
}

std::string cell_text(const memsim::BitRef& cell) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u:%d", cell.addr, cell.bit);
  return buf;
}

std::string real_text(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::pair<std::string, FaultKv> fault_kv(const memsim::Fault& fault) {
  using namespace memsim;
  auto on = [](bool b) { return std::string{b ? "1" : "0"}; };
  struct Visitor {
    decltype(on)& flag;
    std::pair<std::string, FaultKv> operator()(const StuckAtFault& f) {
      return {"SAF", {{"cell", cell_text(f.cell)}, {"value", flag(f.value)}}};
    }
    std::pair<std::string, FaultKv> operator()(const TransitionFault& f) {
      return {"TF",
              {{"cell", cell_text(f.cell)}, {"rising", flag(f.rising)}}};
    }
    std::pair<std::string, FaultKv> operator()(
        const InversionCouplingFault& f) {
      return {"CFin",
              {{"aggressor", cell_text(f.aggressor)},
               {"victim", cell_text(f.victim)},
               {"rising", flag(f.on_rising)}}};
    }
    std::pair<std::string, FaultKv> operator()(
        const IdempotentCouplingFault& f) {
      return {"CFid",
              {{"aggressor", cell_text(f.aggressor)},
               {"victim", cell_text(f.victim)},
               {"rising", flag(f.on_rising)},
               {"forced", flag(f.forced_value)}}};
    }
    std::pair<std::string, FaultKv> operator()(const StateCouplingFault& f) {
      return {"CFst",
              {{"aggressor", cell_text(f.aggressor)},
               {"victim", cell_text(f.victim)},
               {"state", flag(f.aggressor_state)},
               {"forced", flag(f.forced_value)}}};
    }
    std::pair<std::string, FaultKv> operator()(const AddressDecoderFault& f) {
      std::string physical;
      if (f.physical.empty()) {
        physical = "none";
      } else {
        for (std::size_t i = 0; i < f.physical.size(); ++i) {
          if (i > 0) physical += ',';
          physical += std::to_string(f.physical[i]);
        }
      }
      return {"AF",
              {{"logical", std::to_string(f.logical)},
               {"physical", std::move(physical)}}};
    }
    std::pair<std::string, FaultKv> operator()(const StuckOpenFault& f) {
      return {"SOF", {{"cell", cell_text(f.cell)}}};
    }
    std::pair<std::string, FaultKv> operator()(const DataRetentionFault& f) {
      return {"DRF",
              {{"cell", cell_text(f.cell)},
               {"leak_to", flag(f.leak_to)},
               {"hold_ns", std::to_string(f.hold_time_ns)}}};
    }
    std::pair<std::string, FaultKv> operator()(const IncorrectReadFault& f) {
      return {"IRF", {{"cell", cell_text(f.cell)}}};
    }
    std::pair<std::string, FaultKv> operator()(const WriteDisturbFault& f) {
      return {"WDF", {{"cell", cell_text(f.cell)}}};
    }
    std::pair<std::string, FaultKv> operator()(const ReadDestructiveFault& f) {
      return {f.deceptive ? "DRDF" : "RDF", {{"cell", cell_text(f.cell)}}};
    }
    std::pair<std::string, FaultKv> operator()(
        const NeighborhoodPatternFault&) {
      throw SocError{"NPSF faults are not expressible in a chip file"};
    }
    std::pair<std::string, FaultKv> operator()(const PortReadFault& f) {
      return {"PF",
              {{"port", std::to_string(f.port)},
               {"bit", std::to_string(f.bit)}}};
    }
  };
  return std::visit(Visitor{on}, fault);
}

}  // namespace detail

ChipFile parse_chip_text(const std::string& text,
                         const ChipParseOptions& options) {
  ChipFile chip;
  std::istringstream lines{text};
  std::string line;
  std::size_t lineno = 0;
  bool named = false;
  while (std::getline(lines, line)) {
    ++lineno;
    const auto tokens = tokenize(line, lineno);
    if (tokens.empty()) continue;
    const auto& directive = tokens[0];
    try {
      if (directive == "soc") {
        if (tokens.size() != 2) fail(lineno, "usage: soc <name>");
        if (named) fail(lineno, "duplicate soc directive");
        chip.description = SocDescription{tokens[1]};
        named = true;
      } else if (directive == "power_budget") {
        if (tokens.size() != 2) fail(lineno, "usage: power_budget <weight>");
        try {
          chip.plan.set_power_budget(std::stod(tokens[1]));
        } catch (const std::exception&) {
          fail(lineno, "bad power budget '" + tokens[1] + "'");
        }
      } else if (directive == "power_model") {
        if (tokens.size() != 2 ||
            (tokens[1] != "calibrated" && tokens[1] != "heuristic")) {
          fail(lineno, "usage: power_model calibrated|heuristic");
        }
        chip.plan.set_power_calibrated(tokens[1] == "calibrated");
      } else if (directive == "mem") {
        if (tokens.size() < 3) fail(lineno, "usage: mem <name> addr_bits=N ...");
        const Args args{tokens, 2, lineno};
        MemoryInstance m;
        m.name = tokens[1];
        m.geometry = {.address_bits = args.num("addr_bits"),
                      .word_bits = args.num_or("word_bits", 1),
                      .num_ports = args.num_or("ports", 1)};
        m.powerup_seed = args.u64_or("seed", 1);
        m.row_bits = args.num_or("row_bits", -1);
        m.scramble_seed = args.u64_or("scramble", 0);
        m.repair = {.spare_rows = args.num_or("spare_rows", 0),
                    .spare_cols = args.num_or("spare_cols", 0)};
        chip.description.add(std::move(m));
      } else if (directive == "fault") {
        if (tokens.size() < 3) fail(lineno, "usage: fault <mem> <KIND> ...");
        const auto* mem = chip.description.find(tokens[1]);
        if (mem == nullptr)
          fail(lineno, "fault names unknown memory '" + tokens[1] +
                           "' (declare mem first)");
        const Args args{tokens, 3, lineno};
        chip.description.add_fault(
            tokens[1], parse_fault_args(tokens[2], args, mem->geometry));
      } else if (directive == "assign") {
        if (tokens.size() < 4)
          fail(lineno,
               "usage: assign <mem> \"<algorithm>\" <ucode|pfsm|hardwired>");
        const Args args{tokens, 4, lineno};
        TestAssignment a;
        a.memory = tokens[1];
        a.algorithm = tokens[2];
        a.controller = controller_kind_by_name(tokens[3]);
        if (args.has("group")) a.share_group = args.raw("group");
        if (args.has("weight")) a.power_weight = args.real("weight");
        chip.plan.assign(std::move(a));
      } else {
        fail(lineno, "unknown directive '" + directive + "'");
      }
    } catch (const ChipError&) {
      throw;
    } catch (const std::exception& e) {
      fail(lineno, e.what());
    }
  }
  if (options.validate_plan) {
    try {
      chip.plan.validate(chip.description);
    } catch (const std::exception& e) {
      throw ChipError{std::string{"chip file: "} + e.what()};
    }
  }
  return chip;
}

ChipFile parse_chip(const std::string& text, const ChipParseOptions& options) {
  // Sniff the format: a chip file cannot start with '{', a JSON mirror
  // cannot start with anything else.
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && text[first] == '{')
    return parse_chip_json(text, options);
  return parse_chip_text(text, options);
}

ChipFile load_chip_file(const std::string& path) {
  std::ifstream is{path};
  if (!is) throw ChipError{"cannot open chip file '" + path + "'"};
  std::ostringstream os;
  os << is.rdbuf();
  return parse_chip(os.str());
}

std::string to_chip_text(const SocDescription& chip, const TestPlan& plan) {
  std::ostringstream os;
  os << "soc " << chip.name() << "\n";
  if (plan.power().budget > 0.0)
    os << "power_budget " << detail::real_text(plan.power().budget) << "\n";
  if (plan.power().calibrated) os << "power_model calibrated\n";
  os << "\n";
  for (const auto& m : chip.memories()) {
    os << "mem " << m.name << " addr_bits=" << m.geometry.address_bits;
    if (m.geometry.word_bits != 1)
      os << " word_bits=" << m.geometry.word_bits;
    if (m.geometry.num_ports != 1) os << " ports=" << m.geometry.num_ports;
    if (m.powerup_seed != 1) os << " seed=" << m.powerup_seed;
    if (m.row_bits >= 0) os << " row_bits=" << m.row_bits;
    if (m.scramble_seed != 0) os << " scramble=" << m.scramble_seed;
    if (m.repair.spare_rows != 0) os << " spare_rows=" << m.repair.spare_rows;
    if (m.repair.spare_cols != 0) os << " spare_cols=" << m.repair.spare_cols;
    os << "\n";
  }
  bool any_fault = false;
  for (const auto& m : chip.memories())
    for (const auto& f : m.faults) {
      if (!any_fault) os << "\n";
      any_fault = true;
      os << "fault " << m.name << " " << fault_text(f) << "\n";
    }
  os << "\n";
  for (const auto& a : plan.assignments()) {
    os << "assign " << a.memory << " " << quoted(a.algorithm) << " "
       << to_string(a.controller);
    if (!a.share_group.empty()) os << " group=" << a.share_group;
    if (a.power_weight > 0.0)
      os << " weight=" << detail::real_text(a.power_weight);
    os << "\n";
  }
  return os.str();
}

}  // namespace pmbist::soc
