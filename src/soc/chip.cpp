#include "soc/chip.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "march/coverage.h"

namespace pmbist::soc {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ChipError{"chip file line " + std::to_string(line) + ": " + what};
}

/// Splits one line into tokens: double-quoted strings (kept verbatim, no
/// escapes) or maximal non-space runs.  `#` starts a comment outside quotes.
std::vector<std::string> tokenize(const std::string& line, std::size_t lineno) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
    } else if (c == '#') {
      break;
    } else if (c == '"') {
      const auto end = line.find('"', i + 1);
      if (end == std::string::npos) fail(lineno, "unterminated quote");
      tokens.push_back(line.substr(i + 1, end - i - 1));
      i = end + 1;
    } else {
      std::size_t end = i;
      while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
             line[end] != '#' && line[end] != '\r')
        ++end;
      tokens.push_back(line.substr(i, end - i));
      i = end;
    }
  }
  return tokens;
}

/// key=value arguments of one directive.
class Args {
 public:
  Args(const std::vector<std::string>& tokens, std::size_t first,
       std::size_t lineno)
      : lineno_{lineno} {
    for (std::size_t i = first; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      if (eq == std::string::npos || eq == 0)
        fail(lineno, "expected key=value, got '" + tokens[i] + "'");
      if (!kv_.emplace(tokens[i].substr(0, eq), tokens[i].substr(eq + 1))
               .second)
        fail(lineno, "duplicate key '" + tokens[i].substr(0, eq) + "'");
    }
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return kv_.count(key) != 0;
  }

  [[nodiscard]] std::uint64_t u64(const std::string& key) const {
    const auto& text = raw(key);
    try {
      std::size_t used = 0;
      const auto v = std::stoull(text, &used, 0);
      if (used != text.size()) throw std::invalid_argument{text};
      return v;
    } catch (const std::exception&) {
      fail(lineno_, "bad number for " + key + ": '" + text + "'");
    }
  }
  [[nodiscard]] std::uint64_t u64_or(const std::string& key,
                                     std::uint64_t fallback) const {
    return has(key) ? u64(key) : fallback;
  }
  [[nodiscard]] int num(const std::string& key) const {
    return static_cast<int>(u64(key));
  }
  [[nodiscard]] int num_or(const std::string& key, int fallback) const {
    return has(key) ? num(key) : fallback;
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    const auto v = u64(key);
    if (v > 1) fail(lineno_, key + " must be 0 or 1");
    return v != 0;
  }
  [[nodiscard]] bool flag_or(const std::string& key, bool fallback) const {
    return has(key) ? flag(key) : fallback;
  }
  [[nodiscard]] double real(const std::string& key) const {
    const auto& text = raw(key);
    try {
      std::size_t used = 0;
      const auto v = std::stod(text, &used);
      if (used != text.size()) throw std::invalid_argument{text};
      return v;
    } catch (const std::exception&) {
      fail(lineno_, "bad number for " + key + ": '" + text + "'");
    }
  }
  /// "addr:bit" cell reference.
  [[nodiscard]] memsim::BitRef cell(const std::string& key) const {
    const auto& text = raw(key);
    const auto colon = text.find(':');
    if (colon == std::string::npos)
      fail(lineno_, key + " must be <addr>:<bit>, got '" + text + "'");
    try {
      return {static_cast<memsim::Address>(
                  std::stoull(text.substr(0, colon), nullptr, 0)),
              static_cast<int>(std::stoull(text.substr(colon + 1), nullptr,
                                           0))};
    } catch (const std::exception&) {
      fail(lineno_, "bad cell reference '" + text + "'");
    }
  }
  [[nodiscard]] const std::string& raw(const std::string& key) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) fail(lineno_, "missing " + key + "=");
    return it->second;
  }

 private:
  std::map<std::string, std::string> kv_;
  std::size_t lineno_;
};

memsim::FaultClass class_by_name(const std::string& name, std::size_t lineno) {
  for (const auto cls : memsim::all_fault_classes())
    if (memsim::fault_class_name(cls) == name) return cls;
  fail(lineno, "unknown fault class '" + name + "'");
}

memsim::BitRef checked_cell(const Args& args, const std::string& key,
                            const memsim::MemoryGeometry& g,
                            std::size_t lineno) {
  const auto c = args.cell(key);
  if (c.addr >= g.num_words() || c.bit < 0 || c.bit >= g.word_bits)
    fail(lineno, key + "=" + std::to_string(c.addr) + ":" +
                     std::to_string(c.bit) + " is outside the geometry");
  return c;
}

memsim::Fault parse_fault(const std::string& kind, const Args& args,
                          const memsim::MemoryGeometry& g,
                          std::size_t lineno) {
  using namespace memsim;
  auto cell = [&](const char* key = "cell") {
    return checked_cell(args, key, g, lineno);
  };
  if (kind == "SAF") return StuckAtFault{cell(), args.flag("value")};
  if (kind == "TF") return TransitionFault{cell(), args.flag("rising")};
  if (kind == "CFin")
    return InversionCouplingFault{cell("aggressor"), cell("victim"),
                                  args.flag("rising")};
  if (kind == "CFid")
    return IdempotentCouplingFault{cell("aggressor"), cell("victim"),
                                   args.flag("rising"), args.flag("forced")};
  if (kind == "CFst")
    return StateCouplingFault{cell("aggressor"), cell("victim"),
                              args.flag("state"), args.flag("forced")};
  if (kind == "AF") {
    AddressDecoderFault af;
    af.logical = static_cast<Address>(args.u64("logical"));
    const auto& list = args.raw("physical");
    if (list != "none") {
      std::istringstream is{list};
      std::string part;
      while (std::getline(is, part, ','))
        af.physical.push_back(
            static_cast<Address>(std::stoull(part, nullptr, 0)));
    }
    if (af.logical >= g.num_words()) fail(lineno, "logical address too big");
    for (const auto p : af.physical)
      if (p >= g.num_words()) fail(lineno, "physical address too big");
    return af;
  }
  if (kind == "SOF") return StuckOpenFault{cell()};
  if (kind == "DRF")
    return DataRetentionFault{cell(), args.flag("leak_to"),
                              args.u64_or("hold_ns", 100'000)};
  if (kind == "IRF") return IncorrectReadFault{cell()};
  if (kind == "WDF") return WriteDisturbFault{cell()};
  if (kind == "RDF") return ReadDestructiveFault{cell(), false};
  if (kind == "DRDF") return ReadDestructiveFault{cell(), true};
  if (kind == "PF") {
    const int port = args.num("port"), bit = args.num("bit");
    if (port < 1 || port >= g.num_ports || bit < 0 || bit >= g.word_bits)
      fail(lineno, "port/bit outside the geometry");
    return PortReadFault{port, bit};
  }
  if (kind == "sample") {
    const auto cls = class_by_name(args.raw("class"), lineno);
    const auto seed = args.u64_or("seed", 1);
    const auto index = args.u64_or("index", 0);
    const auto universe = march::make_fault_universe(
        cls, g, seed, static_cast<int>(std::max<std::uint64_t>(64, index + 1)));
    if (universe.empty())
      fail(lineno, "empty fault universe for this class/geometry");
    return universe[index % universe.size()];
  }
  fail(lineno, "unknown fault kind '" + kind + "'");
}

// --- serialization ----------------------------------------------------

std::string cell_text(const memsim::BitRef& c) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u:%d", c.addr, c.bit);
  return buf;
}

std::string fault_text(const memsim::Fault& fault) {
  using namespace memsim;
  std::ostringstream os;
  struct Visitor {
    std::ostringstream& os;
    void operator()(const StuckAtFault& f) {
      os << "SAF cell=" << cell_text(f.cell) << " value=" << f.value;
    }
    void operator()(const TransitionFault& f) {
      os << "TF cell=" << cell_text(f.cell) << " rising=" << f.rising;
    }
    void operator()(const InversionCouplingFault& f) {
      os << "CFin aggressor=" << cell_text(f.aggressor)
         << " victim=" << cell_text(f.victim) << " rising=" << f.on_rising;
    }
    void operator()(const IdempotentCouplingFault& f) {
      os << "CFid aggressor=" << cell_text(f.aggressor)
         << " victim=" << cell_text(f.victim) << " rising=" << f.on_rising
         << " forced=" << f.forced_value;
    }
    void operator()(const StateCouplingFault& f) {
      os << "CFst aggressor=" << cell_text(f.aggressor)
         << " victim=" << cell_text(f.victim)
         << " state=" << f.aggressor_state << " forced=" << f.forced_value;
    }
    void operator()(const AddressDecoderFault& f) {
      os << "AF logical=" << f.logical << " physical=";
      if (f.physical.empty()) {
        os << "none";
      } else {
        for (std::size_t i = 0; i < f.physical.size(); ++i)
          os << (i ? "," : "") << f.physical[i];
      }
    }
    void operator()(const StuckOpenFault& f) {
      os << "SOF cell=" << cell_text(f.cell);
    }
    void operator()(const DataRetentionFault& f) {
      os << "DRF cell=" << cell_text(f.cell) << " leak_to=" << f.leak_to
         << " hold_ns=" << f.hold_time_ns;
    }
    void operator()(const IncorrectReadFault& f) {
      os << "IRF cell=" << cell_text(f.cell);
    }
    void operator()(const WriteDisturbFault& f) {
      os << "WDF cell=" << cell_text(f.cell);
    }
    void operator()(const ReadDestructiveFault& f) {
      os << (f.deceptive ? "DRDF" : "RDF") << " cell=" << cell_text(f.cell);
    }
    void operator()(const NeighborhoodPatternFault&) {
      throw SocError{"NPSF faults are not expressible in a chip file"};
    }
    void operator()(const PortReadFault& f) {
      os << "PF port=" << f.port << " bit=" << f.bit;
    }
  };
  std::visit(Visitor{os}, fault);
  return os.str();
}

std::string real_text(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Quotes an algorithm reference for the chip file (no escaping needed:
/// neither library names nor the DSL use double quotes).
std::string quoted(const std::string& text) { return "\"" + text + "\""; }

}  // namespace

ChipFile parse_chip_text(const std::string& text,
                         const ChipParseOptions& options) {
  ChipFile chip;
  std::istringstream lines{text};
  std::string line;
  std::size_t lineno = 0;
  bool named = false;
  while (std::getline(lines, line)) {
    ++lineno;
    const auto tokens = tokenize(line, lineno);
    if (tokens.empty()) continue;
    const auto& directive = tokens[0];
    try {
      if (directive == "soc") {
        if (tokens.size() != 2) fail(lineno, "usage: soc <name>");
        if (named) fail(lineno, "duplicate soc directive");
        chip.description = SocDescription{tokens[1]};
        named = true;
      } else if (directive == "power_budget") {
        if (tokens.size() != 2) fail(lineno, "usage: power_budget <weight>");
        try {
          chip.plan.set_power_budget(std::stod(tokens[1]));
        } catch (const std::exception&) {
          fail(lineno, "bad power budget '" + tokens[1] + "'");
        }
      } else if (directive == "mem") {
        if (tokens.size() < 3) fail(lineno, "usage: mem <name> addr_bits=N ...");
        const Args args{tokens, 2, lineno};
        MemoryInstance m;
        m.name = tokens[1];
        m.geometry = {.address_bits = args.num("addr_bits"),
                      .word_bits = args.num_or("word_bits", 1),
                      .num_ports = args.num_or("ports", 1)};
        m.powerup_seed = args.u64_or("seed", 1);
        m.row_bits = args.num_or("row_bits", -1);
        m.scramble_seed = args.u64_or("scramble", 0);
        m.repair = {.spare_rows = args.num_or("spare_rows", 0),
                    .spare_cols = args.num_or("spare_cols", 0)};
        chip.description.add(std::move(m));
      } else if (directive == "fault") {
        if (tokens.size() < 3) fail(lineno, "usage: fault <mem> <KIND> ...");
        const auto* mem = chip.description.find(tokens[1]);
        if (mem == nullptr)
          fail(lineno, "fault names unknown memory '" + tokens[1] +
                           "' (declare mem first)");
        const Args args{tokens, 3, lineno};
        chip.description.add_fault(
            tokens[1], parse_fault(tokens[2], args, mem->geometry, lineno));
      } else if (directive == "assign") {
        if (tokens.size() < 4)
          fail(lineno,
               "usage: assign <mem> \"<algorithm>\" <ucode|pfsm|hardwired>");
        const Args args{tokens, 4, lineno};
        TestAssignment a;
        a.memory = tokens[1];
        a.algorithm = tokens[2];
        a.controller = controller_kind_by_name(tokens[3]);
        if (args.has("group")) a.share_group = args.raw("group");
        if (args.has("weight")) a.power_weight = args.real("weight");
        chip.plan.assign(std::move(a));
      } else {
        fail(lineno, "unknown directive '" + directive + "'");
      }
    } catch (const ChipError&) {
      throw;
    } catch (const std::exception& e) {
      fail(lineno, e.what());
    }
  }
  if (options.validate_plan) {
    try {
      chip.plan.validate(chip.description);
    } catch (const std::exception& e) {
      throw ChipError{std::string{"chip file: "} + e.what()};
    }
  }
  return chip;
}

ChipFile load_chip_file(const std::string& path) {
  std::ifstream is{path};
  if (!is) throw ChipError{"cannot open chip file '" + path + "'"};
  std::ostringstream os;
  os << is.rdbuf();
  return parse_chip_text(os.str());
}

std::string to_chip_text(const SocDescription& chip, const TestPlan& plan) {
  std::ostringstream os;
  os << "soc " << chip.name() << "\n";
  if (plan.power().budget > 0.0)
    os << "power_budget " << real_text(plan.power().budget) << "\n";
  os << "\n";
  for (const auto& m : chip.memories()) {
    os << "mem " << m.name << " addr_bits=" << m.geometry.address_bits;
    if (m.geometry.word_bits != 1)
      os << " word_bits=" << m.geometry.word_bits;
    if (m.geometry.num_ports != 1) os << " ports=" << m.geometry.num_ports;
    if (m.powerup_seed != 1) os << " seed=" << m.powerup_seed;
    if (m.row_bits >= 0) os << " row_bits=" << m.row_bits;
    if (m.scramble_seed != 0) os << " scramble=" << m.scramble_seed;
    if (m.repair.spare_rows != 0) os << " spare_rows=" << m.repair.spare_rows;
    if (m.repair.spare_cols != 0) os << " spare_cols=" << m.repair.spare_cols;
    os << "\n";
  }
  bool any_fault = false;
  for (const auto& m : chip.memories())
    for (const auto& f : m.faults) {
      if (!any_fault) os << "\n";
      any_fault = true;
      os << "fault " << m.name << " " << fault_text(f) << "\n";
    }
  os << "\n";
  for (const auto& a : plan.assignments()) {
    os << "assign " << a.memory << " " << quoted(a.algorithm) << " "
       << to_string(a.controller);
    if (!a.share_group.empty()) os << " group=" << a.share_group;
    if (a.power_weight > 0.0) os << " weight=" << real_text(a.power_weight);
    os << "\n";
  }
  return os.str();
}

}  // namespace pmbist::soc
