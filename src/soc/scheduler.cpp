#include "soc/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <numeric>
#include <set>

#include "backend/hostram_backend.h"
#include "common/cancel.h"
#include "common/thread_pool.h"
#include "diag/bitmap.h"
#include "mbist_hardwired/controller.h"
#include "mbist_pfsm/controller.h"
#include "mbist_ucode/controller.h"
#include "memsim/faulty_memory.h"
#include "repair/repaired_memory.h"

namespace pmbist::soc {
namespace {

/// Storage sizing of the shared programmable controllers: generous enough
/// for every library algorithm and reasonable DSL programs.
constexpr int kUcodeStorageDepth = 64;
constexpr int kPfsmBufferDepth = 32;

/// One shared-controller seat: keeps the last controller alive and, when
/// the next session matches its kind and geometry, re-programs it in place
/// instead of constructing a new one — the scan/buffer reload path a
/// shared programmable controller uses between memories.
struct ControllerSlot {
  std::unique_ptr<bist::Controller> controller;
  ControllerKind kind = ControllerKind::Hardwired;
  memsim::MemoryGeometry geometry{};

  bist::Controller& prepare(ControllerKind k, const march::MarchAlgorithm& alg,
                            const memsim::MemoryGeometry& g) {
    if (controller && kind == k && geometry == g) {
      if (k == ControllerKind::Ucode) {
        static_cast<mbist_ucode::MicrocodeController&>(*controller)
            .load_algorithm(alg);
        return *controller;
      }
      if (k == ControllerKind::Pfsm) {
        static_cast<mbist_pfsm::PfsmController&>(*controller)
            .load_algorithm(alg);
        return *controller;
      }
    }
    controller = make_plan_controller(k, alg, g, nullptr);
    kind = k;
    geometry = g;
    return *controller;
  }
};

/// Per-assignment compiled task: resolved algorithm, instance, weight, and
/// exact cycle costs.
struct Task {
  march::MarchAlgorithm alg;
  const MemoryInstance* mem = nullptr;
  double weight = 0.0;
  std::uint64_t load_cycles = 0;
  std::uint64_t test_cycles = 0;

  [[nodiscard]] std::uint64_t duration() const noexcept {
    return load_cycles + test_cycles;
  }
};

std::vector<Task> compile_plan(const SocDescription& chip,
                               const TestPlan& plan,
                               const SchedulerOptions& options) {
  plan.validate(chip);
  const auto& assignments = plan.assignments();
  const auto n = assignments.size();
  std::vector<Task> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks[i].alg = resolve_algorithm(assignments[i].algorithm);
    tasks[i].mem = chip.find(assignments[i].memory);
    tasks[i].weight = plan.effective_weight(assignments[i], *tasks[i].mem);
  }
  // Exact durations: each worker steps one controller to completion (no
  // memory involved — controller op streams are data-independent).
  common::parallel_shards(
      options.jobs, static_cast<int>(n), [&](int i) {
        const auto& a = assignments[static_cast<std::size_t>(i)];
        auto& t = tasks[static_cast<std::size_t>(i)];
        const auto ctrl = make_plan_controller(a.controller, t.alg,
                                               t.mem->geometry, &t.load_cycles);
        t.test_cycles = bist::count_cycles(*ctrl, options.max_cycles);
      });
  return tasks;
}

/// Greedy list scheduling under share-group and power constraints.
/// Returns per-assignment start cycles.  Deterministic: priority is
/// (duration desc, name asc) and time advances through completion events.
/// Takes the assignment list explicitly so the retest pass can schedule a
/// subset of the plan through the same machinery.
std::vector<std::uint64_t> list_schedule(
    const std::vector<Task>& tasks,
    const std::vector<TestAssignment>& assignments, double budget) {
  const auto n = tasks.size();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (tasks[a].duration() != tasks[b].duration())
      return tasks[a].duration() > tasks[b].duration();
    return assignments[a].memory < assignments[b].memory;
  });

  std::vector<std::uint64_t> start(n, 0);
  std::vector<bool> placed(n, false);
  struct Running {
    std::uint64_t end;
    std::size_t index;
  };
  std::vector<Running> running;
  std::set<std::string> busy_groups;
  double power_in_use = 0.0;
  std::uint64_t now = 0;
  std::size_t num_placed = 0;

  while (num_placed < n) {
    for (const auto idx : order) {
      if (placed[idx]) continue;
      const auto& group = assignments[idx].share_group;
      if (!group.empty() && busy_groups.count(group) != 0) continue;
      if (budget > 0.0 && power_in_use + tasks[idx].weight > budget + 1e-9)
        continue;
      start[idx] = now;
      placed[idx] = true;
      ++num_placed;
      running.push_back({now + tasks[idx].duration(), idx});
      power_in_use += tasks[idx].weight;
      if (!group.empty()) busy_groups.insert(group);
    }
    if (num_placed == n) break;
    // Progress is guaranteed: validate() rejects any single session whose
    // weight exceeds a positive budget, so something is always running.
    std::uint64_t next = running.front().end;
    for (const auto& r : running) next = std::min(next, r.end);
    now = next;
    for (std::size_t i = running.size(); i-- > 0;) {
      if (running[i].end > now) continue;
      const auto idx = running[i].index;
      power_in_use -= tasks[idx].weight;
      if (!assignments[idx].share_group.empty())
        busy_groups.erase(assignments[idx].share_group);
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  return start;
}

std::vector<ScheduledSession> make_sessions(
    const std::vector<Task>& tasks, const TestPlan& plan,
    const std::vector<std::uint64_t>& start) {
  const auto& assignments = plan.assignments();
  std::vector<ScheduledSession> sessions(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    sessions[i] = ScheduledSession{.memory = assignments[i].memory,
                                   .algorithm = assignments[i].algorithm,
                                   .controller = assignments[i].controller,
                                   .share_group = assignments[i].share_group,
                                   .power_weight = tasks[i].weight,
                                   .load_cycles = tasks[i].load_cycles,
                                   .test_cycles = tasks[i].test_cycles,
                                   .start_cycle = start[i]};
  }
  return sessions;
}

void sort_for_display(std::vector<ScheduledSession>& sessions) {
  std::sort(sessions.begin(), sessions.end(),
            [](const ScheduledSession& a, const ScheduledSession& b) {
              if (a.start_cycle != b.start_cycle)
                return a.start_cycle < b.start_cycle;
              return a.memory < b.memory;
            });
}

double peak_power_of(const std::vector<ScheduledSession>& sessions) {
  double peak = 0.0;
  for (const auto& s : sessions) {
    double at_start = 0.0;
    for (const auto& other : sessions)
      if (other.start_cycle <= s.start_cycle &&
          s.start_cycle < other.end_cycle())
        at_start += other.power_weight;
    peak = std::max(peak, at_start);
  }
  return peak;
}

/// Backing storage of one instance session under the selected backend:
/// either the behavioral fault simulator or a hostram mapping presented
/// through the BackendMemory adapter.  Movable, so a pending retest can
/// carry the array state the first session left behind.
struct InstanceBacking {
  std::unique_ptr<memsim::FaultyMemory> sim;
  std::unique_ptr<backend::HostRamBackend> hostram;
  std::unique_ptr<backend::BackendMemory> view;

  [[nodiscard]] memsim::Memory& memory() {
    return sim ? static_cast<memsim::Memory&>(*sim) : *view;
  }
};

InstanceBacking make_instance_backing(const MemoryInstance& instance,
                                      backend::BackendKind kind) {
  InstanceBacking backing;
  if (kind == backend::BackendKind::Sim) {
    backing.sim = std::make_unique<memsim::FaultyMemory>(
        instance.geometry, instance.powerup_seed);
    try {
      for (const auto& fault : instance.faults) backing.sim->add_fault(fault);
    } catch (const std::exception& e) {
      throw SocError{"instance '" + instance.name + "': " + e.what()};
    }
    return backing;
  }
  try {
    backing.hostram =
        std::make_unique<backend::HostRamBackend>(instance.geometry);
  } catch (const backend::BackendError& e) {
    throw SocError{"instance '" + instance.name + "': " + e.what()};
  }
  backing.view = std::make_unique<backend::BackendMemory>(*backing.hostram);
  return backing;
}

/// Repaired-but-not-yet-retested state carried from the first pass to the
/// folded retest pass (fold_retests).  The backing keeps the array state
/// the first session left behind; the retest runs through the spare
/// switch-in view exactly as the immediate retest would.
struct PendingRetest {
  InstanceBacking backing;
  memsim::ArrayTopology topology;
  repair::RepairSolution solution;
};

InstanceResult run_instance(const TestAssignment& assignment,
                            const MemoryInstance& instance,
                            const march::MarchAlgorithm& alg,
                            ControllerSlot& slot,
                            const SchedulerOptions& options,
                            std::unique_ptr<PendingRetest>* deferred) {
  auto& controller = slot.prepare(assignment.controller, alg,
                                  instance.geometry);
  auto backing = make_instance_backing(instance, options.backend);
  const bist::SessionOptions session_options{
      .max_cycles = options.max_cycles, .max_failures = options.max_failures};
  InstanceResult result{
      .memory = instance.name,
      .session =
          bist::run_session(controller, backing.memory(), session_options),
      .repair = std::nullopt};
  if (instance.repair.any() && instance.geometry.bit_oriented() &&
      !result.session.failures.empty()) {
    RepairOutcome outcome;
    diag::FailBitmap bitmap{instance.geometry};
    bitmap.accumulate(result.session.failures);
    const auto topology = instance.topology();
    const auto solution = repair::allocate_redundancy(
        bitmap, topology,
        {.spare_rows = instance.repair.spare_rows,
         .spare_cols = instance.repair.spare_cols});
    outcome.repairable = solution.repairable;
    if (solution.repairable) {
      outcome.spare_rows_used = static_cast<int>(solution.rows_replaced.size());
      outcome.spare_cols_used = static_cast<int>(solution.cols_replaced.size());
      if (deferred != nullptr) {
        *deferred = std::make_unique<PendingRetest>(
            PendingRetest{std::move(backing), topology, solution});
      } else {
        repair::RepairedMemory repaired{backing.memory(), topology, solution};
        outcome.retest_passed =
            bist::run_session(controller, repaired, session_options).passed();
      }
    }
    result.repair = outcome;
  }
  return result;
}

/// Execution units: one per share group (members serialized in scheduled
/// order on one controller seat) and one per dedicated session.
/// `indices[j]` names an assignment; `start[j]` is its start cycle.  The
/// returned members are assignment-index positions within `indices`.
struct Unit {
  std::uint64_t first_start = 0;
  std::string first_name;
  std::vector<std::size_t> members;
};

std::vector<Unit> group_units(const std::vector<TestAssignment>& assignments,
                              const std::vector<std::size_t>& indices,
                              const std::vector<std::uint64_t>& start) {
  std::vector<Unit> units;
  std::map<std::string, std::vector<std::size_t>> grouped;
  for (std::size_t j = 0; j < indices.size(); ++j) {
    const auto& a = assignments[indices[j]];
    if (a.share_group.empty())
      units.push_back({start[j], a.memory, {j}});
    else
      grouped[a.share_group].push_back(j);
  }
  for (auto& [group, positions] : grouped) {
    std::sort(positions.begin(), positions.end(),
              [&](std::size_t x, std::size_t y) {
                if (start[x] != start[y]) return start[x] < start[y];
                return assignments[indices[x]].memory <
                       assignments[indices[y]].memory;
              });
    units.push_back({start[positions.front()],
                     assignments[indices[positions.front()]].memory,
                     std::move(positions)});
  }
  std::sort(units.begin(), units.end(), [](const Unit& a, const Unit& b) {
    if (a.first_start != b.first_start) return a.first_start < b.first_start;
    return a.first_name < b.first_name;
  });
  return units;
}

}  // namespace

std::unique_ptr<bist::Controller> make_plan_controller(
    ControllerKind kind, const march::MarchAlgorithm& alg,
    const memsim::MemoryGeometry& geometry, std::uint64_t* load_cycles) {
  switch (kind) {
    case ControllerKind::Ucode: {
      auto c = std::make_unique<mbist_ucode::MicrocodeController>(
          mbist_ucode::ControllerConfig{.geometry = geometry,
                                        .storage_depth = kUcodeStorageDepth});
      c->load_algorithm(alg);
      if (load_cycles != nullptr) *load_cycles = c->program_load_cycles();
      return c;
    }
    case ControllerKind::Pfsm: {
      auto c = std::make_unique<mbist_pfsm::PfsmController>(
          mbist_pfsm::PfsmConfig{.geometry = geometry,
                                 .buffer_depth = kPfsmBufferDepth});
      c->load_algorithm(alg);
      if (load_cycles != nullptr) *load_cycles = c->program_load_cycles();
      return c;
    }
    case ControllerKind::Hardwired:
      if (load_cycles != nullptr) *load_cycles = 0;
      return std::make_unique<mbist_hardwired::HardwiredController>(
          alg, mbist_hardwired::HardwiredConfig{.geometry = geometry});
  }
  throw SocError{"unreachable controller kind"};
}

int SocResult::healthy_count() const noexcept {
  int healthy = 0;
  for (const auto& r : instances)
    if (r.healthy()) ++healthy;
  return healthy;
}

std::vector<ScheduledSession> Scheduler::compute_schedule(
    const SocDescription& chip, const TestPlan& plan) const {
  const auto tasks = compile_plan(chip, plan, options_);
  auto sessions = make_sessions(
      tasks, plan,
      list_schedule(tasks, plan.assignments(), plan.power().budget));
  sort_for_display(sessions);
  return sessions;
}

SocResult Scheduler::run(const SocDescription& chip,
                         const TestPlan& plan) const {
  const auto t0 = std::chrono::steady_clock::now();
  if (options_.backend == backend::BackendKind::HostRam) {
    // Fail before any session runs: fault injection is a simulator
    // concept, and a chip that declares faults would silently "pass" on
    // real memory.
    for (const auto& m : chip.memories()) {
      if (!m.faults.empty()) {
        throw SocError{"instance '" + m.name +
                       "' injects faults; fault injection requires the sim "
                       "backend (--backend sim)"};
      }
    }
  }
  const auto tasks = compile_plan(chip, plan, options_);
  const auto& assignments = plan.assignments();
  const auto start = list_schedule(tasks, assignments, plan.power().budget);
  const auto n = assignments.size();

  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  const auto units = group_units(assignments, all, start);

  std::vector<InstanceResult> results(n);
  std::vector<std::unique_ptr<PendingRetest>> pending(n);
  std::atomic<int> done{0};
  common::parallel_shards(
      options_.jobs, static_cast<int>(units.size()), [&](int u) {
        ControllerSlot slot;
        for (const auto idx : units[static_cast<std::size_t>(u)].members) {
          common::throw_if_cancelled(options_.cancel);
          results[idx] = run_instance(
              assignments[idx], *tasks[idx].mem, tasks[idx].alg, slot,
              options_, options_.fold_retests ? &pending[idx] : nullptr);
          if (options_.progress)
            options_.progress(done.fetch_add(1) + 1, static_cast<int>(n));
        }
      });

  SocResult out;
  out.schedule = make_sessions(tasks, plan, start);
  std::uint64_t first_pass_makespan = 0;
  for (const auto& s : out.schedule)
    first_pass_makespan = std::max(first_pass_makespan, s.end_cycle());

  if (options_.fold_retests) {
    // Second pass: every repaired instance goes back through the scheduler
    // (same share-group and power constraints), starting once the first
    // pass has drained.  The retest set is a deterministic function of
    // (chip, plan): it depends only on injected faults and repair
    // resources, never on worker count.
    std::vector<std::size_t> retest_idx;
    for (std::size_t i = 0; i < n; ++i)
      if (pending[i]) retest_idx.push_back(i);
    if (!retest_idx.empty()) {
      std::vector<Task> rtasks;
      std::vector<TestAssignment> rassign;
      for (const auto idx : retest_idx) {
        rtasks.push_back(tasks[idx]);
        rassign.push_back(assignments[idx]);
      }
      auto rstart = list_schedule(rtasks, rassign, plan.power().budget);
      for (auto& s : rstart) s += first_pass_makespan;
      std::vector<std::size_t> rall(retest_idx.size());
      std::iota(rall.begin(), rall.end(), std::size_t{0});
      const auto runits = group_units(rassign, rall, rstart);
      const bist::SessionOptions session_options{
          .max_cycles = options_.max_cycles,
          .max_failures = options_.max_failures};
      common::parallel_shards(
          options_.jobs, static_cast<int>(runits.size()), [&](int u) {
            ControllerSlot slot;
            for (const auto j : runits[static_cast<std::size_t>(u)].members) {
              common::throw_if_cancelled(options_.cancel);
              const auto idx = retest_idx[j];
              auto& p = *pending[idx];
              auto& controller =
                  slot.prepare(assignments[idx].controller, tasks[idx].alg,
                               tasks[idx].mem->geometry);
              repair::RepairedMemory repaired{p.backing.memory(), p.topology,
                                              p.solution};
              results[idx].repair->retest_passed =
                  bist::run_session(controller, repaired, session_options)
                      .passed();
            }
          });
      for (std::size_t j = 0; j < retest_idx.size(); ++j) {
        ScheduledSession s{.memory = rassign[j].memory,
                           .algorithm = rassign[j].algorithm,
                           .controller = rassign[j].controller,
                           .share_group = rassign[j].share_group,
                           .power_weight = rtasks[j].weight,
                           .load_cycles = rtasks[j].load_cycles,
                           .test_cycles = rtasks[j].test_cycles,
                           .start_cycle = rstart[j],
                           .retest = true};
        out.schedule.push_back(std::move(s));
      }
    }
  }

  out.instances = std::move(results);
  for (const auto& s : out.schedule)
    out.makespan_cycles = std::max(out.makespan_cycles, s.end_cycle());
  out.peak_power = peak_power_of(out.schedule);
  sort_for_display(out.schedule);
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

SocResult run_soc(const SocDescription& chip, const TestPlan& plan,
                  const SchedulerOptions& options) {
  return Scheduler{options}.run(chip, plan);
}

std::string format_soc_report(const SocDescription& chip,
                              const TestPlan& plan, const SocResult& result) {
  std::string out;
  char line[256];
  auto emit = [&out, &line] { out += line; };

  std::snprintf(line, sizeof line,
                "chip '%s': %zu memories, power budget %g\n\n",
                chip.name().c_str(), chip.memories().size(),
                plan.power().budget);
  emit();
  std::snprintf(line, sizeof line, "%-12s %-10s %-14s %10s %10s %6s %s\n",
                "memory", "ctrl", "algorithm", "start", "end", "weight",
                "group");
  emit();
  for (const auto& s : result.schedule) {
    std::snprintf(line, sizeof line, "%-12s %-10s %-14s %10llu %10llu %6g %s\n",
                  s.memory.c_str(),
                  std::string{to_string(s.controller)}.c_str(),
                  s.algorithm.c_str(),
                  static_cast<unsigned long long>(s.start_cycle),
                  static_cast<unsigned long long>(s.end_cycle()),
                  s.power_weight, s.share_group.c_str());
    emit();
  }
  std::snprintf(line, sizeof line, "\nmakespan %llu cycles, peak power %g\n\n",
                static_cast<unsigned long long>(result.makespan_cycles),
                result.peak_power);
  emit();
  for (const auto& r : result.instances) {
    std::string note;
    if (r.repair) {
      if (!r.repair->repairable) {
        note = "  (unrepairable)";
      } else if (r.repair->retest_passed) {
        note = "  (repaired: " + std::to_string(r.repair->spare_rows_used) +
               " spare rows, " + std::to_string(r.repair->spare_cols_used) +
               " spare cols; retest clean)";
      } else {
        note = "  (repaired but retest failed)";
      }
    }
    std::snprintf(line, sizeof line, "  %-12s %s  mismatches=%llu%s\n",
                  r.memory.c_str(), r.healthy() ? "HEALTHY" : "FAULTY ",
                  static_cast<unsigned long long>(r.session.mismatches),
                  note.c_str());
    emit();
  }
  std::snprintf(line, sizeof line, "\nchip %s: %d/%zu memories healthy\n",
                result.all_healthy() ? "PASS" : "FAIL", result.healthy_count(),
                result.instances.size());
  emit();
  return out;
}

}  // namespace pmbist::soc
