#include "soc/description.h"

namespace pmbist::soc {

memsim::ArrayTopology MemoryInstance::topology() const {
  const int bits = geometry.address_bits;
  auto scrambler = scramble_seed == 0
                       ? memsim::AddressScrambler::identity(bits)
                       : memsim::AddressScrambler::scrambled(bits,
                                                             scramble_seed);
  return memsim::ArrayTopology{bits, effective_row_bits(),
                               std::move(scrambler)};
}

SocDescription& SocDescription::add(MemoryInstance instance) {
  if (instance.name.empty())
    throw SocError{"memory instance needs a non-empty name"};
  if (find(instance.name) != nullptr)
    throw SocError{"duplicate memory instance '" + instance.name + "'"};
  const auto& g = instance.geometry;
  if (g.address_bits < 1 || g.address_bits > 30 || g.word_bits < 1 ||
      g.word_bits > 64 || g.num_ports < 1)
    throw SocError{"instance '" + instance.name + "': degenerate geometry"};
  if (instance.row_bits >= 0 &&
      (instance.row_bits < 1 || instance.row_bits >= g.address_bits))
    throw SocError{"instance '" + instance.name +
                   "': row_bits must be in [1, address_bits)"};
  memories_.push_back(std::move(instance));
  return *this;
}

const MemoryInstance* SocDescription::find(std::string_view name) const {
  for (const auto& m : memories_)
    if (m.name == name) return &m;
  return nullptr;
}

SocDescription& SocDescription::add_fault(std::string_view memory,
                                          memsim::Fault fault) {
  for (auto& m : memories_)
    if (m.name == memory) {
      m.faults.push_back(std::move(fault));
      return *this;
    }
  throw SocError{"no such memory '" + std::string{memory} + "'"};
}

SocDescription demo_soc(int extra_addr_bits) {
  const int x = extra_addr_bits;
  const auto mem = [](std::string name, int addr_bits, int word_bits,
                      int num_ports, std::uint64_t seed) {
    MemoryInstance m;
    m.name = std::move(name);
    m.geometry = {addr_bits, word_bits, num_ports};
    m.powerup_seed = seed;
    return m;
  };
  SocDescription chip{"demo_soc"};
  chip.add(mem("cpu_l1i", 8 + x, 8, 1, 11));
  chip.add(mem("cpu_l1d", 8 + x, 8, 2, 12));
  chip.add(mem("cpu_l2", 10 + x, 8, 1, 13));
  chip.add(mem("dsp_x", 7 + x, 16, 1, 14));
  chip.add(mem("dsp_y", 7 + x, 16, 1, 15));
  chip.add(mem("gpu_tile", 9 + x, 4, 1, 16));
  chip.add(mem("nic_fifo", 6 + x, 8, 2, 17));
  // Two small repairable bit-oriented arrays shipped with defects — the
  // BISR leg of the demo (detect -> bitmap -> allocate -> repair -> retest).
  auto rom = mem("rom_patch", 6 + x, 1, 1, 18);
  rom.row_bits = 3;
  rom.scramble_seed = 7;
  rom.faults = {memsim::StuckAtFault{{9, 0}, true}};
  rom.repair = {.spare_rows = 1, .spare_cols = 2};
  chip.add(std::move(rom));
  auto sensor = mem("sensor_buf", 5 + x, 1, 1, 19);
  sensor.row_bits = 2;
  sensor.scramble_seed = 3;
  sensor.faults = {memsim::TransitionFault{{5, 0}, true}};
  sensor.repair = {.spare_rows = 1, .spare_cols = 1};
  chip.add(std::move(sensor));
  return chip;
}

}  // namespace pmbist::soc
