#pragma once
// SoC test plan: which algorithm runs on which memory, on which kind of
// controller, under which chip-level constraints.
//
// Two constraint families shape the schedule (scheduler.h):
//
//   * controller sharing — instances assigned to the same `share_group`
//     serialize on one shared programmable controller; the controller's
//     program is re-loaded per memory (mbist_ucode::assemble /
//     mbist_pfsm::compile output through the scan/buffer load path), and
//     the reload cycles are charged to each session.  Sharing requires a
//     programmable controller kind — a hardwired controller is one fixed
//     algorithm and cannot be retargeted.
//   * power — each active session toggles word lines, bit lines and
//     address lines every cycle; its toggle weight defaults to
//     word_bits + address_bits (overridable per assignment).  The sum of
//     weights of concurrently scheduled sessions never exceeds the
//     chip-level budget (0 = unconstrained).

#include <string>
#include <vector>

#include "march/march.h"
#include "soc/description.h"

namespace pmbist::soc {

/// Which controller architecture drives a session.
enum class ControllerKind : std::uint8_t { Ucode, Pfsm, Hardwired };

[[nodiscard]] std::string_view to_string(ControllerKind kind);
/// Parses "ucode" / "pfsm" / "hardwired".  Throws SocError otherwise.
[[nodiscard]] ControllerKind controller_kind_by_name(std::string_view name);

/// Resolves a library algorithm name ("March C+") or an inline DSL string.
/// Throws (march::ParseError) when neither works.
[[nodiscard]] march::MarchAlgorithm resolve_algorithm(const std::string& text);

/// One per-instance test assignment.
struct TestAssignment {
  std::string memory;     ///< instance name in the SocDescription
  std::string algorithm;  ///< library name or DSL text
  ControllerKind controller = ControllerKind::Ucode;
  std::string share_group;   ///< empty = dedicated controller
  double power_weight = 0.0;  ///< 0 = PowerModel::default_weight(geometry)

  friend bool operator==(const TestAssignment&,
                         const TestAssignment&) = default;
};

/// Chip-level power model for the scheduler.
struct PowerModel {
  /// Maximum summed toggle weight of concurrently active sessions;
  /// 0 = unconstrained.
  double budget = 0.0;

  /// Derive per-session toggle weights from the netlist area model
  /// (calibrated_weight) instead of the word+address-bits heuristic.
  /// Chip files select this with `power_model calibrated`.
  bool calibrated = false;

  /// Heuristic toggle weight of an active instance: one word's data bits
  /// plus the address lines switch every test cycle.
  [[nodiscard]] static double default_weight(
      const memsim::MemoryGeometry& g) noexcept {
    return static_cast<double>(g.word_bits + g.address_bits);
  }

  /// Area-calibrated toggle weight: gate equivalents of the BIST datapath
  /// built for this geometry (bist::datapath_inventory under the cmos5s
  /// library), normalized so the reference bit-oriented 1K geometry keeps
  /// its heuristic weight — larger datapaths toggle proportionally more
  /// logic per cycle.  Deterministic, and serialized losslessly by
  /// schedule_io, so calibrated schedules re-certify byte-exactly.
  [[nodiscard]] static double calibrated_weight(const memsim::MemoryGeometry& g);

  /// The active weight function (heuristic or calibrated).
  [[nodiscard]] double weight(const memsim::MemoryGeometry& g) const {
    return calibrated ? calibrated_weight(g) : default_weight(g);
  }

  friend bool operator==(const PowerModel&, const PowerModel&) = default;
};

/// The full plan: assignments + power model.
class TestPlan {
 public:
  /// Appends an assignment.  Throws SocError if the memory already has one.
  TestPlan& assign(TestAssignment assignment);

  [[nodiscard]] const std::vector<TestAssignment>& assignments()
      const noexcept {
    return assignments_;
  }
  [[nodiscard]] const PowerModel& power() const noexcept { return power_; }
  void set_power_budget(double budget) { power_.budget = budget; }
  void set_power_calibrated(bool calibrated) {
    power_.calibrated = calibrated;
  }

  /// Effective toggle weight of one assignment against its instance.
  [[nodiscard]] double effective_weight(const TestAssignment& a,
                                        const MemoryInstance& m) const;

  /// Full static validation against a chip: every assignment names an
  /// existing memory, algorithms resolve and are structurally valid, pFSM
  /// assignments are SM-mappable, share groups contain no hardwired
  /// controllers, and a positive budget admits every single session.
  /// Throws SocError naming the offending assignment.
  void validate(const SocDescription& chip) const;

  friend bool operator==(const TestPlan&, const TestPlan&) = default;

 private:
  std::vector<TestAssignment> assignments_;
  PowerModel power_;
};

/// The matching plan for demo_soc(): two shared programmable controllers
/// (ucode for the CPU caches, pFSM for the DSP scratchpads), dedicated
/// controllers elsewhere, and a budget tight enough to force scheduling
/// decisions.
[[nodiscard]] TestPlan demo_plan();

}  // namespace pmbist::soc
