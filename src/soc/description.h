#pragma once
// SoC-level memory catalog.
//
// The paper's case for programmable MBIST is amortization: one microcode /
// pFSM controller design serves many heterogeneous embedded memories on a
// chip.  Everything below src/soc tests ONE memory at a time; this module
// introduces the chip itself — a catalog of memory instances (geometry,
// physical topology, power-up state, optional injected defects, repair
// resources) that the test plan (plan.h) and scheduler (scheduler.h)
// operate over.  Catalogs are built programmatically or parsed from a chip
// file (chip.h, format in docs/SOC.md).

#include <stdexcept>
#include <string>
#include <vector>

#include "memsim/fault_model.h"
#include "memsim/topology.h"

namespace pmbist::soc {

/// Raised for every malformed SoC description / test plan.
class SocError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Spare rows/columns available to an instance (bit-oriented arrays only;
/// 0/0 = no redundancy, test-only instance).
struct RepairResources {
  int spare_rows = 0;
  int spare_cols = 0;

  [[nodiscard]] bool any() const noexcept {
    return spare_rows > 0 || spare_cols > 0;
  }
  friend bool operator==(const RepairResources&,
                         const RepairResources&) = default;
};

/// One embedded memory of the chip.
struct MemoryInstance {
  std::string name;
  memsim::MemoryGeometry geometry{};
  std::uint64_t powerup_seed = 1;
  /// Physical row-address bits; -1 derives address_bits/2 (squarish array).
  int row_bits = -1;
  /// Address-scrambling seed; 0 = identity logical->physical mapping.
  std::uint64_t scramble_seed = 0;
  /// Defects present in this instance (empty = healthy die).
  std::vector<memsim::Fault> faults;
  RepairResources repair;

  [[nodiscard]] int effective_row_bits() const noexcept {
    return row_bits >= 0 ? row_bits : geometry.address_bits / 2;
  }
  /// Physical array organization (for redundancy analysis / repair).
  [[nodiscard]] memsim::ArrayTopology topology() const;

  friend bool operator==(const MemoryInstance&,
                         const MemoryInstance&) = default;
};

/// The chip: a named, ordered catalog of memory instances.
class SocDescription {
 public:
  SocDescription() = default;
  explicit SocDescription(std::string name) : name_{std::move(name)} {}

  /// Appends an instance.  Throws SocError on an empty/duplicate name or a
  /// degenerate geometry.
  SocDescription& add(MemoryInstance instance);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<MemoryInstance>& memories() const noexcept {
    return memories_;
  }
  /// Instance by name, or nullptr.
  [[nodiscard]] const MemoryInstance* find(std::string_view name) const;

  /// Injects a defect into a declared instance.  Throws SocError when the
  /// instance does not exist.
  SocDescription& add_fault(std::string_view memory, memsim::Fault fault);

  friend bool operator==(const SocDescription&,
                         const SocDescription&) = default;

 private:
  std::string name_;
  std::vector<MemoryInstance> memories_;
};

/// A representative 9-instance heterogeneous chip (caches, DSP scratchpads,
/// FIFOs, two small repairable bit-oriented arrays with injected defects).
/// `extra_addr_bits` uniformly scales every instance up — the benches use
/// it to make sessions heavy enough for wall-clock measurements.
[[nodiscard]] SocDescription demo_soc(int extra_addr_bits = 0);

}  // namespace pmbist::soc
