#include "soc/plan.h"

#include "bist/datapath.h"
#include "march/library.h"
#include "march/parser.h"
#include "mbist_pfsm/compiler.h"
#include "netlist/tech_library.h"

namespace pmbist::soc {

std::string_view to_string(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::Ucode: return "ucode";
    case ControllerKind::Pfsm: return "pfsm";
    case ControllerKind::Hardwired: return "hardwired";
  }
  return "?";
}

ControllerKind controller_kind_by_name(std::string_view name) {
  if (name == "ucode") return ControllerKind::Ucode;
  if (name == "pfsm") return ControllerKind::Pfsm;
  if (name == "hardwired") return ControllerKind::Hardwired;
  throw SocError{"unknown controller kind '" + std::string{name} +
                 "' (expected ucode|pfsm|hardwired)"};
}

march::MarchAlgorithm resolve_algorithm(const std::string& text) {
  try {
    return march::by_name(text);
  } catch (const std::out_of_range&) {
    return march::parse(text, "custom");
  }
}

TestPlan& TestPlan::assign(TestAssignment assignment) {
  for (const auto& a : assignments_)
    if (a.memory == assignment.memory)
      throw SocError{"memory '" + assignment.memory +
                     "' already has an assignment"};
  assignments_.push_back(std::move(assignment));
  return *this;
}

double PowerModel::calibrated_weight(const memsim::MemoryGeometry& g) {
  // Reference point: the bit-oriented 1K geometry, whose heuristic weight
  // is 11 (10 address bits + 1 data bit).  Calibration scales that anchor
  // by the gate-equivalent ratio of the full BIST datapath (with the
  // retention pause timer, the configuration the area tables report), so
  // both models agree at the reference and diverge with real logic area.
  static const double reference_ge =
      bist::datapath_inventory(memsim::MemoryGeometry{}, true)
          .total_ge(netlist::TechLibrary::cmos5s());
  const double ge = bist::datapath_inventory(g, true).total_ge(
      netlist::TechLibrary::cmos5s());
  return default_weight(memsim::MemoryGeometry{}) * ge / reference_ge;
}

double TestPlan::effective_weight(const TestAssignment& a,
                                  const MemoryInstance& m) const {
  return a.power_weight > 0.0 ? a.power_weight : power_.weight(m.geometry);
}

void TestPlan::validate(const SocDescription& chip) const {
  if (power_.budget < 0.0) throw SocError{"power budget must be >= 0"};
  for (const auto& a : assignments_) {
    const auto context = "assignment '" + a.memory + "': ";
    const auto* mem = chip.find(a.memory);
    if (mem == nullptr)
      throw SocError{context + "no such memory in chip '" + chip.name() +
                     "'"};
    march::MarchAlgorithm alg;
    try {
      alg = resolve_algorithm(a.algorithm);
    } catch (const std::exception& e) {
      throw SocError{context + "cannot resolve algorithm: " + e.what()};
    }
    if (const auto why = alg.validate(); !why.empty())
      throw SocError{context + "invalid algorithm: " + why};
    if (a.controller == ControllerKind::Pfsm) {
      std::string why;
      if (!mbist_pfsm::is_mappable(alg, &why))
        throw SocError{context + "not pFSM-mappable: " + why};
    }
    if (a.controller == ControllerKind::Hardwired && !a.share_group.empty())
      throw SocError{context +
                     "a hardwired controller cannot join share group '" +
                     a.share_group + "' (it runs one fixed algorithm)"};
    if (a.power_weight < 0.0)
      throw SocError{context + "power weight must be >= 0"};
    const double w = effective_weight(a, *mem);
    if (power_.budget > 0.0 && w > power_.budget)
      throw SocError{context + "toggle weight " + std::to_string(w) +
                     " alone exceeds the chip budget " +
                     std::to_string(power_.budget)};
  }
}

TestPlan demo_plan() {
  const auto task = [](std::string memory, std::string algorithm,
                       ControllerKind controller, std::string group = {},
                       double weight = 0.0) {
    TestAssignment a;
    a.memory = std::move(memory);
    a.algorithm = std::move(algorithm);
    a.controller = controller;
    a.share_group = std::move(group);
    a.power_weight = weight;
    return a;
  };
  TestPlan plan;
  plan.set_power_budget(48.0);
  plan.assign(task("cpu_l1i", "March C", ControllerKind::Ucode, "cpu_ctrl"));
  plan.assign(task("cpu_l1d", "March C+", ControllerKind::Ucode, "cpu_ctrl"));
  plan.assign(task("cpu_l2", "March C", ControllerKind::Ucode));
  plan.assign(task("dsp_x", "March X", ControllerKind::Pfsm, "dsp_ctrl"));
  plan.assign(task("dsp_y", "March Y", ControllerKind::Pfsm, "dsp_ctrl"));
  plan.assign(task("gpu_tile", "MATS+", ControllerKind::Pfsm));
  plan.assign(task("nic_fifo", "March C", ControllerKind::Hardwired));
  plan.assign(task("rom_patch", "March C", ControllerKind::Ucode, {}, 4.0));
  plan.assign(task("sensor_buf", "MATS+", ControllerKind::Hardwired, {}, 2.0));
  return plan;
}

}  // namespace pmbist::soc
