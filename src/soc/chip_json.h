#pragma once
// JSON mirror of the chip-file format (docs/SOC.md, "JSON mirror"):
// the same SocDescription + TestPlan payload as the line-oriented text
// format, expressed as one JSON object so machine producers (and the
// serve protocol, which embeds chip payloads in requests) don't have to
// emit the text grammar.  Shape:
//
//   {
//     "soc": "name",
//     "power_budget": 6.0,                      // omitted when 0
//     "memories": [
//       {"name": "m", "addr_bits": 4, "word_bits": 8, "ports": 1,
//        "seed": 1, "row_bits": 2, "scramble": 7,
//        "spare_rows": 1, "spare_cols": 1,
//        "faults": [{"kind": "SAF", "cell": "0:0", "value": 1}, ...]}
//     ],
//     "assignments": [
//       {"memory": "m", "algorithm": "March C-", "controller": "ucode",
//        "group": "g0", "weight": 9.5}
//     ]
//   }
//
// Optional memory fields default exactly as their text-format keys do;
// fault objects carry the text format's kind tag and key=value arguments
// verbatim (numbers or strings both accepted for scalar arguments), so
// the two formats stay in lock-step through the shared fault codec
// (fault_codec.h).  `pmbist soc`/`field`/`lint` and the serve layer accept
// either format; load_chip_file sniffs a leading '{'.

#include <string>

#include "soc/chip.h"

namespace pmbist::soc {

/// Parses the JSON mirror into the same validated ChipFile as
/// parse_chip_text.  Throws ChipError on malformed JSON, unknown fields
/// and every semantic error the text parser reports.
[[nodiscard]] ChipFile parse_chip_json(const std::string& text,
                                       const ChipParseOptions& options = {});

/// Serializes a chip + plan as the JSON mirror (pretty-printed, stable
/// field order); parse_chip_json(serialize_chip_json(c, p)) round-trips to
/// an equal ChipFile.  Throws SocError for faults the format cannot
/// express (NPSF).
[[nodiscard]] std::string serialize_chip_json(const SocDescription& chip,
                                              const TestPlan& plan);

}  // namespace pmbist::soc
