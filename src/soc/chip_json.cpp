#include "soc/chip_json.h"

#include <map>
#include <set>
#include <sstream>

#include "common/json.h"
#include "soc/fault_codec.h"

namespace pmbist::soc {
namespace {

using common::json::JsonError;
using common::json::Value;

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw ChipError{
      (path.empty() ? std::string{"chip json"} : "chip json " + path) + ": " +
      what};
}

/// Rejects members outside the schema so typos surface instead of being
/// silently dropped (mirrors the text parser's unknown-directive error).
void check_keys(const Value& obj, std::initializer_list<const char*> allowed,
                const std::string& path) {
  for (const auto& [key, value] : obj.members()) {
    bool known = false;
    for (const char* a : allowed) known = known || key == a;
    if (!known) fail(path, "unknown field \"" + key + "\"");
  }
}

const Value& member(const Value& obj, const char* key,
                    const std::string& path) {
  const Value* v = obj.find(key);
  if (v == nullptr) fail(path, std::string{"missing \""} + key + "\"");
  return *v;
}

std::string string_field(const Value& obj, const char* key,
                         const std::string& path) {
  const Value& v = member(obj, key, path);
  if (!v.is_string()) fail(path, std::string{"\""} + key + "\" must be a string");
  return v.as_string();
}

int int_field_or(const Value& obj, const char* key, int fallback,
                 const std::string& path) {
  const Value* v = obj.find(key);
  if (v == nullptr) return fallback;
  try {
    return static_cast<int>(v->as_i64());
  } catch (const JsonError&) {
    fail(path, std::string{"\""} + key + "\" must be an integer");
  }
}

std::uint64_t u64_field_or(const Value& obj, const char* key,
                           std::uint64_t fallback, const std::string& path) {
  const Value* v = obj.find(key);
  if (v == nullptr) return fallback;
  try {
    return v->as_u64();
  } catch (const JsonError&) {
    fail(path, std::string{"\""} + key + "\" must be a non-negative integer");
  }
}

/// Renders one fault-argument value as the text codec's key=value payload:
/// numbers keep their lexeme, bools map to 1/0, strings pass through.
std::string scalar_text(const Value& v, const std::string& path) {
  switch (v.kind()) {
    case Value::Kind::Number:
      return v.number_text();
    case Value::Kind::String:
      return v.as_string();
    case Value::Kind::Bool:
      return v.as_bool() ? "1" : "0";
    default:
      fail(path, "fault arguments must be numbers, strings or booleans");
  }
}

memsim::Fault parse_fault_json(const Value& fault,
                               const memsim::MemoryGeometry& geometry,
                               const std::string& path) {
  if (!fault.is_object()) fail(path, "fault must be an object");
  std::string kind;
  std::map<std::string, std::string> kv;
  for (const auto& [key, value] : fault.members()) {
    if (key == "kind") {
      if (!value.is_string()) fail(path, "\"kind\" must be a string");
      kind = value.as_string();
    } else {
      kv[key] = scalar_text(value, path);
    }
  }
  if (kind.empty()) fail(path, "missing \"kind\"");
  return detail::parse_fault_kv(kind, kv, geometry,
                                "chip json " + path);
}

MemoryInstance parse_memory_json(const Value& mem, const std::string& path) {
  if (!mem.is_object()) fail(path, "memory must be an object");
  check_keys(mem,
             {"name", "addr_bits", "word_bits", "ports", "seed", "row_bits",
              "scramble", "spare_rows", "spare_cols", "faults"},
             path);
  MemoryInstance m;
  m.name = string_field(mem, "name", path);
  member(mem, "addr_bits", path);
  m.geometry = {.address_bits = int_field_or(mem, "addr_bits", 0, path),
                .word_bits = int_field_or(mem, "word_bits", 1, path),
                .num_ports = int_field_or(mem, "ports", 1, path)};
  m.powerup_seed = u64_field_or(mem, "seed", 1, path);
  m.row_bits = int_field_or(mem, "row_bits", -1, path);
  m.scramble_seed = u64_field_or(mem, "scramble", 0, path);
  m.repair = {.spare_rows = int_field_or(mem, "spare_rows", 0, path),
              .spare_cols = int_field_or(mem, "spare_cols", 0, path)};
  return m;
}

TestAssignment parse_assignment_json(const Value& a, const std::string& path) {
  if (!a.is_object()) fail(path, "assignment must be an object");
  check_keys(a, {"memory", "algorithm", "controller", "group", "weight"},
             path);
  TestAssignment out;
  out.memory = string_field(a, "memory", path);
  out.algorithm = string_field(a, "algorithm", path);
  try {
    out.controller =
        controller_kind_by_name(string_field(a, "controller", path));
  } catch (const ChipError&) {
    throw;
  } catch (const std::exception& e) {
    fail(path, e.what());
  }
  if (const Value* g = a.find("group")) {
    if (!g->is_string()) fail(path, "\"group\" must be a string");
    out.share_group = g->as_string();
  }
  if (const Value* w = a.find("weight")) {
    try {
      out.power_weight = w->as_double();
    } catch (const JsonError&) {
      fail(path, "\"weight\" must be a number");
    }
  }
  return out;
}

/// True when the text codec's value is a plain JSON integer lexeme (the
/// serializer emits those unquoted so 1/0 flags read naturally).
bool is_integer_text(const std::string& text) {
  if (text.empty()) return false;
  for (const char c : text)
    if (c < '0' || c > '9') return false;
  return !(text.size() > 1 && text[0] == '0');
}

}  // namespace

ChipFile parse_chip_json(const std::string& text,
                         const ChipParseOptions& options) {
  Value root;
  try {
    root = Value::parse(text);
  } catch (const JsonError& e) {
    fail("", e.what());
  }
  if (!root.is_object()) fail("", "top level must be an object");
  check_keys(root, {"soc", "power_budget", "power_model", "memories",
                    "assignments"},
             "");

  ChipFile chip;
  if (const Value* name = root.find("soc")) {
    if (!name->is_string()) fail("", "\"soc\" must be a string");
    chip.description = SocDescription{name->as_string()};
  }
  if (const Value* budget = root.find("power_budget")) {
    try {
      chip.plan.set_power_budget(budget->as_double());
    } catch (const JsonError&) {
      fail("", "\"power_budget\" must be a number");
    }
  }
  if (const Value* model = root.find("power_model")) {
    if (!model->is_string() || (model->as_string() != "calibrated" &&
                                model->as_string() != "heuristic")) {
      fail("", "\"power_model\" must be \"calibrated\" or \"heuristic\"");
    }
    chip.plan.set_power_calibrated(model->as_string() == "calibrated");
  }

  // Memories first (with faults deferred until the instance exists, same
  // declare-before-fault order the text format enforces).
  std::vector<const Value*> fault_lists;
  if (const Value* memories = root.find("memories")) {
    if (!memories->is_array()) fail("", "\"memories\" must be an array");
    for (std::size_t i = 0; i < memories->items().size(); ++i) {
      const std::string path = "memories[" + std::to_string(i) + "]";
      const Value& mem = memories->items()[i];
      try {
        chip.description.add(parse_memory_json(mem, path));
      } catch (const ChipError&) {
        throw;
      } catch (const std::exception& e) {
        fail(path, e.what());
      }
      fault_lists.push_back(mem.is_object() ? mem.find("faults") : nullptr);
    }
    for (std::size_t i = 0; i < fault_lists.size(); ++i) {
      const Value* faults = fault_lists[i];
      if (faults == nullptr) continue;
      const std::string mem_path = "memories[" + std::to_string(i) + "]";
      if (!faults->is_array()) fail(mem_path, "\"faults\" must be an array");
      const MemoryInstance& m = chip.description.memories()[i];
      for (std::size_t f = 0; f < faults->items().size(); ++f) {
        const std::string path =
            mem_path + ".faults[" + std::to_string(f) + "]";
        chip.description.add_fault(
            m.name, parse_fault_json(faults->items()[f], m.geometry, path));
      }
    }
  }

  if (const Value* assignments = root.find("assignments")) {
    if (!assignments->is_array()) fail("", "\"assignments\" must be an array");
    for (std::size_t i = 0; i < assignments->items().size(); ++i) {
      const std::string path = "assignments[" + std::to_string(i) + "]";
      try {
        chip.plan.assign(parse_assignment_json(assignments->items()[i], path));
      } catch (const ChipError&) {
        throw;
      } catch (const std::exception& e) {
        fail(path, e.what());
      }
    }
  }

  if (options.validate_plan) {
    try {
      chip.plan.validate(chip.description);
    } catch (const std::exception& e) {
      throw ChipError{std::string{"chip json: "} + e.what()};
    }
  }
  return chip;
}

std::string serialize_chip_json(const SocDescription& chip,
                                const TestPlan& plan) {
  using common::json::quote;
  std::ostringstream os;
  os << "{\n";
  os << "  \"soc\": " << quote(chip.name());
  if (plan.power().budget > 0.0)
    os << ",\n  \"power_budget\": " << detail::real_text(plan.power().budget);
  if (plan.power().calibrated) os << ",\n  \"power_model\": \"calibrated\"";
  os << ",\n  \"memories\": [";
  for (std::size_t i = 0; i < chip.memories().size(); ++i) {
    const MemoryInstance& m = chip.memories()[i];
    os << (i ? ",\n    {" : "\n    {");
    os << "\"name\": " << quote(m.name)
       << ", \"addr_bits\": " << m.geometry.address_bits;
    if (m.geometry.word_bits != 1)
      os << ", \"word_bits\": " << m.geometry.word_bits;
    if (m.geometry.num_ports != 1)
      os << ", \"ports\": " << m.geometry.num_ports;
    if (m.powerup_seed != 1) os << ", \"seed\": " << m.powerup_seed;
    if (m.row_bits >= 0) os << ", \"row_bits\": " << m.row_bits;
    if (m.scramble_seed != 0) os << ", \"scramble\": " << m.scramble_seed;
    if (m.repair.spare_rows != 0)
      os << ", \"spare_rows\": " << m.repair.spare_rows;
    if (m.repair.spare_cols != 0)
      os << ", \"spare_cols\": " << m.repair.spare_cols;
    if (!m.faults.empty()) {
      os << ", \"faults\": [";
      for (std::size_t f = 0; f < m.faults.size(); ++f) {
        const auto [kind, kv] = detail::fault_kv(m.faults[f]);
        os << (f ? ",\n      {" : "\n      {");
        os << "\"kind\": " << quote(kind);
        for (const auto& [key, value] : kv) {
          os << ", " << quote(key) << ": ";
          if (is_integer_text(value)) {
            os << value;
          } else {
            os << quote(value);
          }
        }
        os << "}";
      }
      os << "\n    ]";
    }
    os << "}";
  }
  os << (chip.memories().empty() ? "]" : "\n  ]");
  os << ",\n  \"assignments\": [";
  for (std::size_t i = 0; i < plan.assignments().size(); ++i) {
    const TestAssignment& a = plan.assignments()[i];
    os << (i ? ",\n    {" : "\n    {");
    os << "\"memory\": " << quote(a.memory)
       << ", \"algorithm\": " << quote(a.algorithm)
       << ", \"controller\": " << quote(std::string{to_string(a.controller)});
    if (!a.share_group.empty()) os << ", \"group\": " << quote(a.share_group);
    if (a.power_weight > 0.0)
      os << ", \"weight\": " << detail::real_text(a.power_weight);
    os << "}";
  }
  os << (plan.assignments().empty() ? "]" : "\n  ]");
  os << "\n}\n";
  return os.str();
}

}  // namespace pmbist::soc
