#pragma once
// Chip-file front end: a small line-oriented text format describing a chip
// (its memories and defects) together with its test plan.  The complete
// grammar, with examples, lives in docs/SOC.md; tests/test_docs.cpp parses
// every fenced example there through this module so the doc cannot drift.
//
// Shape:
//
//   # comment
//   soc <name>
//   power_budget <weight>
//   mem <name> addr_bits=N [word_bits=N] [ports=N] [seed=N] [row_bits=N]
//              [scramble=N] [spare_rows=N] [spare_cols=N]
//   fault <mem> <KIND> key=value...
//   assign <mem> "<algorithm|dsl>" <ucode|pfsm|hardwired> [group=G] [weight=W]
//
// Fault kinds mirror memsim's models (SAF, TF, CFin, CFid, CFst, AF, SOF,
// DRF, IRF, WDF, RDF, DRDF, PF) plus `sample`, which draws one instance
// from the deterministic class universe (march::make_fault_universe).

#include <string>

#include "soc/plan.h"

namespace pmbist::soc {

/// Raised on any malformed chip file; the message carries the line number.
class ChipError : public SocError {
 public:
  using SocError::SocError;
};

/// A parsed chip file: the catalog plus its (already validated) plan.
struct ChipFile {
  SocDescription description;
  TestPlan plan;
};

struct ChipParseOptions {
  /// Run TestPlan::validate at the end (the default).  The linter parses
  /// with this off so it can report every semantic problem itself instead
  /// of stopping at the first one.
  bool validate_plan = true;
};

/// Parses chip-file text.  Throws ChipError (with a line number) on syntax
/// errors and on plan/description inconsistencies.
[[nodiscard]] ChipFile parse_chip_text(const std::string& text,
                                       const ChipParseOptions& options = {});

/// Format-sniffing front end: text starting with '{' parses as the JSON
/// mirror (soc/chip_json.h), anything else as the line format.  Used by
/// load_chip_file and by every consumer of inline chip payloads (the serve
/// layer), so both formats are accepted everywhere a chip is accepted.
[[nodiscard]] ChipFile parse_chip(const std::string& text,
                                  const ChipParseOptions& options = {});

/// Reads and parses a chip file from disk.  Throws ChipError when the file
/// cannot be read.
[[nodiscard]] ChipFile load_chip_file(const std::string& path);

/// Serializes a chip + plan back into chip-file text; the output re-parses
/// to an equal ChipFile (round-trip).  Throws SocError for faults the
/// format cannot express (NPSF).
[[nodiscard]] std::string to_chip_text(const SocDescription& chip,
                                       const TestPlan& plan);

}  // namespace pmbist::soc
