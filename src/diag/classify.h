#pragma once
// Heuristic fault classification from BIST failure signatures.
//
// A programmable BIST controller can run a *suite* of algorithms against
// the same device and combine the failure signatures — the diagnostic use
// case that justifies the programmable architecture's extra area (paper,
// Sec. 1).  The classifier runs March C (the base detector), March C+
// (adds retention) and March C++ (adds deceptive-read coverage) and applies
// signature rules:
//
//   * clean on March C but failing on C+'s post-pause reads  -> DRF
//   * clean on March C/C+ but failing on C++'s repeated reads -> DRDF
//   * one cell failing only reads that expect 1              -> {SA0, TF-up}
//   * one cell failing only reads that expect 0              -> {SA1, TF-down}
//     (stuck-at and the matching transition fault are march-
//      indistinguishable once the initializing write is w0/w1)
//   * one cell failing reads of both polarities              -> {CF victim,
//                                                                RDF, ...}
//   * multiple failing addresses                             -> {AF, CF}
//
// The result is a candidate set, never a single guess — march tests bound,
// but do not always pinpoint, the defect mechanism.

#include <set>

#include "memsim/faulty_memory.h"
#include "march/coverage.h"

namespace pmbist::diag {

struct Diagnosis {
  bool any_failure = false;
  std::set<memsim::FaultClass> candidates;
  std::vector<memsim::BitRef> suspect_cells;
};

/// Runs the diagnostic suite against `memory` and classifies the combined
/// failure signature.  The memory is exercised (written) in the process.
[[nodiscard]] Diagnosis diagnose(memsim::Memory& memory);

/// Classifies pre-collected signatures (exposed for unit tests):
/// failures of March C, March C+ and March C++ runs, in that order.
[[nodiscard]] Diagnosis classify_signatures(
    const memsim::MemoryGeometry& geometry,
    const std::vector<march::Failure>& march_c,
    const std::vector<march::Failure>& march_c_plus,
    const std::vector<march::Failure>& march_c_plus_plus);

}  // namespace pmbist::diag
