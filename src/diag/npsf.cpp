#include "diag/npsf.h"

namespace pmbist::diag {

march::OpStream npsf_screen(const memsim::ArrayTopology& topology) {
  const int address_bits = topology.scrambler().address_bits();
  const auto num_words = memsim::Address{1} << address_bits;
  march::OpStream out;

  // Initialize the whole array (power-up contents are undefined).
  for (memsim::Address a = 0; a < num_words; ++a)
    out.push_back(march::MemOp::write(0, a, 0));

  for (memsim::Address base = 0; base < num_words; ++base) {
    const auto nbrs = topology.neighbors(base);
    const auto patterns = std::uint32_t{1} << nbrs.size();
    for (std::uint32_t p = 0; p < patterns; ++p) {
      // Apply the neighborhood pattern.
      for (std::size_t i = 0; i < nbrs.size(); ++i)
        out.push_back(march::MemOp::write(0, nbrs[i], (p >> i) & 1u));
      // The base must hold both values under this pattern.
      out.push_back(march::MemOp::write(0, base, 0));
      out.push_back(march::MemOp::read(0, base, 0));
      out.push_back(march::MemOp::write(0, base, 1));
      out.push_back(march::MemOp::read(0, base, 1));
    }
    // Restore the neighborhood to 0 for the next base cell.
    for (memsim::Address n : nbrs)
      out.push_back(march::MemOp::write(0, n, 0));
    out.push_back(march::MemOp::write(0, base, 0));
  }
  return out;
}

march::RunResult run_npsf_screen(const memsim::ArrayTopology& topology,
                                 memsim::Memory& memory,
                                 std::size_t max_failures) {
  return march::run_stream(npsf_screen(topology), memory, max_failures);
}

}  // namespace pmbist::diag
