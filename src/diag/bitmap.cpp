#include "diag/bitmap.h"

#include <sstream>

namespace pmbist::diag {

void FailBitmap::accumulate(std::span<const march::Failure> failures) {
  for (const auto& f : failures) {
    const memsim::Word diff =
        (f.op.data ^ f.actual) & geometry_.word_mask();
    for (int b = 0; b < geometry_.word_bits; ++b) {
      if ((diff >> b) & 1u) {
        ++counts_[{f.op.addr, b}];
        ++total_events_;
      }
    }
  }
}

int FailBitmap::fail_count(memsim::Address addr, int bit) const {
  const auto it = counts_.find({addr, bit});
  return it == counts_.end() ? 0 : it->second;
}

std::vector<memsim::BitRef> FailBitmap::failing_cells() const {
  std::vector<memsim::BitRef> out;
  out.reserve(counts_.size());
  for (const auto& [key, n] : counts_)
    if (n > 0) out.push_back(memsim::BitRef{key.first, key.second});
  return out;
}

std::map<memsim::Address, int> FailBitmap::row_histogram() const {
  std::map<memsim::Address, int> out;
  for (const auto& [key, n] : counts_) out[key.first] += n;
  return out;
}

std::map<int, int> FailBitmap::column_histogram() const {
  std::map<int, int> out;
  for (const auto& [key, n] : counts_) out[key.second] += n;
  return out;
}

std::string FailBitmap::render() const {
  std::ostringstream os;
  os << "fail bitmap (" << total_events_ << " failing-bit events)\n";
  const auto rows = row_histogram();
  for (const auto& [addr, n] : rows) {
    os << "  addr " << addr << " : ";
    for (int b = geometry_.word_bits - 1; b >= 0; --b)
      os << (fail_count(addr, b) > 0 ? 'X' : '.');
    os << "  (" << n << ")\n";
  }
  if (rows.empty()) os << "  (clean)\n";
  return os.str();
}

}  // namespace pmbist::diag
