#pragma once
// Transparent BIST (Nicolaidis, ITC'92 — the paper's ref [7]): periodic
// in-field testing that preserves the memory contents.  The paper's
// conclusion names on-line testing as the application that the programmable
// microcode architecture extends to; this module provides the march
// transform behind it.
//
// Transform: every march data value d is replaced by s_a XOR d, where s_a
// is the content of cell a at test start.  The initializing write element
// of the original algorithm degenerates to a refresh (w s_a), every
// subsequent op XORs the original pattern onto the preserved contents, and
// the final state equals the initial state provided the algorithm leaves a
// deterministic uniform value (true of all library algorithms, whose final
// write returns each cell to d=0/1; the transform maps that to s_a).
//
// Implementation note: a hardware transparent BIST predicts read values
// with a signature register; this behavioral model keeps the per-cell seed
// vector explicitly, which is equivalent for detection purposes and keeps
// the checker exact (per-op, not signature-compaction).

#include <vector>

#include "march/coverage.h"
#include "memsim/memory.h"

namespace pmbist::diag {

struct TransparentResult {
  bool passed = false;
  std::vector<march::Failure> failures;
  /// True if the memory contents after the test equal the contents before
  /// (checked against the captured seed; meaningful only when passed).
  bool contents_preserved = false;
};

/// Runs the transparent transform of `alg` on `memory`.
/// `max_failures` bounds the failure log.
[[nodiscard]] TransparentResult run_transparent(
    const march::MarchAlgorithm& alg, memsim::Memory& memory,
    std::size_t max_failures = 64);

/// The transparent expansion itself (exposed for tests): the op stream of
/// `alg` with all data values XORed with the seed vector `initial`.
[[nodiscard]] march::OpStream transparent_stream(
    const march::MarchAlgorithm& alg, const memsim::MemoryGeometry& geometry,
    const std::vector<memsim::Word>& initial);

/// True when the transparent transform of `alg` leaves a non-zero XOR
/// prefix on every cell, i.e. a restoring refresh pass must follow the
/// test proper before the contents equal the seed again.
[[nodiscard]] bool transparent_restore_needed(const march::MarchAlgorithm& alg,
                                              int word_bits);

/// transparent_stream() plus, when transparent_restore_needed(), the
/// restoring refresh pass (one write of the seed per word on port 0).
/// This is the full in-field session stream: the field manager segments
/// exactly this stream so a preempted session can resume mid-restore too.
[[nodiscard]] march::OpStream transparent_stream_with_restore(
    const march::MarchAlgorithm& alg, const memsim::MemoryGeometry& geometry,
    const std::vector<memsim::Word>& initial);

}  // namespace pmbist::diag
