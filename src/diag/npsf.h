#pragma once
// Exhaustive neighborhood-pattern screen for static NPSFs.
//
// March tests cannot guarantee NPSF detection: a march element writes the
// whole array to a uniform value per pass, so most of the 2^k neighborhood
// patterns are never applied around a given base cell.  The screen below
// is the direct (non-tiled) pattern-sensitivity test: for every base cell
// and every pattern of its physical von Neumann neighborhood, apply the
// pattern, then verify the base holds both a 0 and a 1.
//
// Cost: for a k-neighbor topology, about (k + 4) * 2^k operations per
// cell — ~288n for k=4 — versus 10n for March C.  This is precisely the
// kind of test-cost/coverage trade the programmable controller lets a
// product make per test phase (the paper's wafer-vs-final-test argument);
// note that the screen is *not* a march test (writes depend on the
// physical neighborhood), so it exceeds even the microcode controller's
// ISA: it represents the off-chip / enhanced-BIST end of the spectrum.

#include "march/coverage.h"
#include "memsim/topology.h"

namespace pmbist::diag {

/// Builds the exhaustive pattern-screen op stream for the topology.
/// Detects every static NPSF with von Neumann neighborhoods (and, being a
/// superset of a scan test, all SAFs).
[[nodiscard]] march::OpStream npsf_screen(
    const memsim::ArrayTopology& topology);

/// Convenience: runs the screen against a memory.
[[nodiscard]] march::RunResult run_npsf_screen(
    const memsim::ArrayTopology& topology, memsim::Memory& memory,
    std::size_t max_failures = 64);

}  // namespace pmbist::diag
