#include "diag/transparent.h"

#include <stdexcept>

#include "march/expand.h"

namespace pmbist::diag {

march::OpStream transparent_stream(const march::MarchAlgorithm& alg,
                                   const memsim::MemoryGeometry& geometry,
                                   const std::vector<memsim::Word>& initial) {
  if (initial.size() != geometry.num_words())
    throw std::invalid_argument("seed vector size mismatch");
  march::OpStream stream = march::expand(alg, geometry);
  for (auto& op : stream) {
    if (op.kind == march::MemOp::Kind::Pause) continue;
    op.data = (op.data ^ initial[op.addr]) & geometry.word_mask();
  }
  return stream;
}

bool transparent_restore_needed(const march::MarchAlgorithm& alg,
                                int word_bits) {
  if (march::final_data_value(alg) < 0)
    throw std::invalid_argument(
        "transparent transform requires a deterministic final value: " +
        alg.name());
  // The test leaves each cell at apply_background(d_final, B_last) ^ s_a.
  // When that prefix is non-zero (d_final = 1, or a non-zero final data
  // background), the hardware scheme appends a restoring element.
  const auto backgrounds = march::standard_backgrounds(word_bits);
  const memsim::Word mask =
      word_bits >= 64 ? ~memsim::Word{0} : ((memsim::Word{1} << word_bits) - 1);
  return march::apply_background(march::final_data_value(alg) == 1,
                                 backgrounds.back(), mask) != 0;
}

march::OpStream transparent_stream_with_restore(
    const march::MarchAlgorithm& alg, const memsim::MemoryGeometry& geometry,
    const std::vector<memsim::Word>& initial) {
  auto stream = transparent_stream(alg, geometry, initial);
  if (transparent_restore_needed(alg, geometry.word_bits)) {
    for (memsim::Address a = 0; a < geometry.num_words(); ++a)
      stream.push_back(march::MemOp::write(0, a, initial[a]));
  }
  return stream;
}

TransparentResult run_transparent(const march::MarchAlgorithm& alg,
                                  memsim::Memory& memory,
                                  std::size_t max_failures) {
  const auto& g = memory.geometry();
  if (march::final_data_value(alg) < 0)
    throw std::invalid_argument(
        "transparent transform requires a deterministic final value: " +
        alg.name());

  // Capture the seed (the hardware equivalent is the signature-prediction
  // read pass).
  std::vector<memsim::Word> initial(g.num_words());
  for (memsim::Address a = 0; a < g.num_words(); ++a)
    initial[a] = memory.read(0, a);

  auto stream = transparent_stream_with_restore(alg, g, initial);

  auto run = march::run_stream(stream, memory, max_failures);

  TransparentResult result;
  result.failures = std::move(run.failures);
  result.passed = result.failures.empty();

  result.contents_preserved = true;
  for (memsim::Address a = 0; a < g.num_words(); ++a) {
    if (memory.read(0, a) != initial[a]) {
      result.contents_preserved = false;
      break;
    }
  }
  return result;
}

}  // namespace pmbist::diag
