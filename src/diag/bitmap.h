#pragma once
// Fail-bitmap construction for diagnostics and process monitoring — the
// application domain the paper cites (ref [9], Schanstra et al.) as a key
// motivation for programmable BIST: the same controller that runs
// production tests can capture per-cell failure data in bring-up.

#include <map>
#include <span>
#include <string>
#include <vector>

#include "march/coverage.h"

namespace pmbist::diag {

/// Per-cell failure statistics accumulated from one or more runs.
class FailBitmap {
 public:
  explicit FailBitmap(memsim::MemoryGeometry geometry)
      : geometry_{geometry} {}

  /// Accumulates every failing bit of every logged failure.
  void accumulate(std::span<const march::Failure> failures);

  [[nodiscard]] const memsim::MemoryGeometry& geometry() const noexcept {
    return geometry_;
  }
  [[nodiscard]] int fail_count(memsim::Address addr, int bit) const;
  [[nodiscard]] std::vector<memsim::BitRef> failing_cells() const;
  [[nodiscard]] int total_events() const noexcept { return total_events_; }

  /// Failures per word address (word-line histogram).
  [[nodiscard]] std::map<memsim::Address, int> row_histogram() const;
  /// Failures per bit position (bit-line histogram).
  [[nodiscard]] std::map<int, int> column_histogram() const;

  /// ASCII rendering: one row per address with failing bits marked 'X'
  /// (addresses with no failures are elided).
  [[nodiscard]] std::string render() const;

 private:
  memsim::MemoryGeometry geometry_;
  std::map<std::pair<memsim::Address, int>, int> counts_;
  int total_events_ = 0;
};

}  // namespace pmbist::diag
