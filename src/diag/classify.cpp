#include "diag/classify.h"

#include <algorithm>

#include "march/expand.h"
#include "march/library.h"

namespace pmbist::diag {

using memsim::FaultClass;

namespace {

// Collects the failing cells and expected-polarity profile of a signature.
struct Signature {
  std::set<memsim::BitRef> cells;
  bool failed_expect0 = false;  ///< some failing read expected a 0 bit
  bool failed_expect1 = false;  ///< some failing read expected a 1 bit
};

Signature summarize(const memsim::MemoryGeometry& g,
                    const std::vector<march::Failure>& failures) {
  Signature s;
  for (const auto& f : failures) {
    const memsim::Word diff = (f.op.data ^ f.actual) & g.word_mask();
    for (int b = 0; b < g.word_bits; ++b) {
      if (!((diff >> b) & 1u)) continue;
      s.cells.insert(memsim::BitRef{f.op.addr, b});
      if ((f.op.data >> b) & 1u)
        s.failed_expect1 = true;
      else
        s.failed_expect0 = true;
    }
  }
  return s;
}

}  // namespace

Diagnosis classify_signatures(
    const memsim::MemoryGeometry& geometry,
    const std::vector<march::Failure>& march_c,
    const std::vector<march::Failure>& march_c_plus,
    const std::vector<march::Failure>& march_c_plus_plus) {
  Diagnosis d;
  const Signature sc = summarize(geometry, march_c);
  const Signature scp = summarize(geometry, march_c_plus);
  const Signature scpp = summarize(geometry, march_c_plus_plus);

  d.any_failure =
      !sc.cells.empty() || !scp.cells.empty() || !scpp.cells.empty();
  if (!d.any_failure) return d;

  std::set<memsim::BitRef> all = sc.cells;
  all.insert(scp.cells.begin(), scp.cells.end());
  all.insert(scpp.cells.begin(), scpp.cells.end());
  d.suspect_cells.assign(all.begin(), all.end());

  if (sc.cells.empty() && !scp.cells.empty()) {
    // Only the retention-enhanced algorithm sees it.
    d.candidates.insert(FaultClass::DRF);
    return d;
  }
  if (sc.cells.empty() && scp.cells.empty() && !scpp.cells.empty()) {
    // Only repeated reads see it.
    d.candidates.insert(FaultClass::DRDF);
    return d;
  }

  std::set<memsim::Address> addrs;
  for (const auto& c : all) addrs.insert(c.addr);

  if (addrs.size() > 1) {
    // Multiple failing addresses: decoder faults and coupling both produce
    // multi-address signatures.
    d.candidates.insert(FaultClass::AF);
    d.candidates.insert(FaultClass::CFin);
    d.candidates.insert(FaultClass::CFid);
    d.candidates.insert(FaultClass::CFst);
    return d;
  }

  // Single-cell signatures.
  if (sc.failed_expect1 && !sc.failed_expect0) {
    d.candidates.insert(FaultClass::SAF);  // SA0
    d.candidates.insert(FaultClass::TF);   // up-transition
  } else if (sc.failed_expect0 && !sc.failed_expect1) {
    d.candidates.insert(FaultClass::SAF);  // SA1
    d.candidates.insert(FaultClass::TF);   // down-transition
  } else {
    // Both polarities at one cell: destructive reads, single-cell coupling
    // victims, stuck-open residue effects.
    d.candidates.insert(FaultClass::RDF);
    d.candidates.insert(FaultClass::SOF);
    d.candidates.insert(FaultClass::CFin);
    d.candidates.insert(FaultClass::CFid);
    d.candidates.insert(FaultClass::CFst);
  }
  return d;
}

Diagnosis diagnose(memsim::Memory& memory) {
  const auto& g = memory.geometry();
  auto run = [&](const march::MarchAlgorithm& alg) {
    const auto stream = march::expand(alg, g);
    return march::run_stream(stream, memory, /*max_failures=*/256).failures;
  };
  const auto fc = run(march::march_c());
  const auto fcp = run(march::march_c_plus());
  const auto fcpp = run(march::march_c_plus_plus());
  return classify_signatures(g, fc, fcp, fcpp);
}

}  // namespace pmbist::diag
