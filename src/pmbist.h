#pragma once
// Umbrella header for the pmbist library — the reproduction of
// Zarrineh & Upadhyaya, "On Programmable Memory Built-In Self Test
// Architectures" (DATE 1999).
//
// Typical entry points:
//   march::by_name / march::parse      pick or write a test algorithm
//   mbist_ucode::MicrocodeController   the paper's microcode architecture
//   mbist_pfsm::PfsmController         the programmable FSM architecture
//   mbist_hardwired::HardwiredController  the non-programmable baseline
//   bist::run_session                  run any controller against a memory
//   memsim::FaultyMemory               the memory under test + fault zoo
//   march::analyze / evaluate_coverage qualification & fault simulation
//   mbist_ucode::microcode_area etc.   silicon-overhead models (Tables 1-3)
//   diag::* / repair::*                diagnostics, transparent test, BISR
//   backend::run_memtest               march the host's own RAM (memtest)

#include "backend/backend.h"
#include "backend/memtest.h"
#include "bist/controller.h"
#include "bist/datapath.h"
#include "bist/misr.h"
#include "bist/session.h"
#include "diag/bitmap.h"
#include "diag/classify.h"
#include "diag/npsf.h"
#include "diag/transparent.h"
#include "march/analysis.h"
#include "march/coverage.h"
#include "march/expand.h"
#include "march/library.h"
#include "march/march.h"
#include "march/parser.h"
#include "mbist_hardwired/area.h"
#include "mbist_hardwired/controller.h"
#include "mbist_hardwired/generator.h"
#include "mbist_pfsm/area.h"
#include "mbist_pfsm/compiler.h"
#include "mbist_pfsm/components.h"
#include "mbist_pfsm/controller.h"
#include "mbist_pfsm/isa.h"
#include "mbist_ucode/area.h"
#include "mbist_ucode/assembler.h"
#include "mbist_ucode/controller.h"
#include "mbist_ucode/isa.h"
#include "mbist_ucode/rtl.h"
#include "memsim/fault_model.h"
#include "memsim/faulty_memory.h"
#include "memsim/memory.h"
#include "memsim/topology.h"
#include "netlist/components.h"
#include "netlist/fsm_synth.h"
#include "netlist/gate_inventory.h"
#include "netlist/logic.h"
#include "netlist/qm.h"
#include "netlist/tech_library.h"
#include "netlist/verilog.h"
#include "repair/redundancy.h"
#include "repair/repaired_memory.h"
