#!/usr/bin/env bash
# CI entry point: the tier-1 build + test sweep, then a ThreadSanitizer
# build that exercises the parallel campaign engine (test_campaign) for
# data races.  Mirrors .github/workflows/ci.yml so the pipeline can be
# reproduced locally with a single command.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "== tier 1: build + full test suite =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== self-checking benches (campaign determinism gate included) =="
./build/bench/bench_fault_coverage
./build/bench/bench_qualifier

echo "== tsan: parallel campaign engine =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "${JOBS}" --target test_campaign
./build-tsan/tests/test_campaign

echo "== ci.sh: all green =="
