#!/usr/bin/env bash
# CI entry point: the tier-1 build + test sweep, the example programs, then
# a ThreadSanitizer build that exercises the parallel engines
# (test_campaign + test_soc) for data races.  Mirrors
# .github/workflows/ci.yml so the pipeline can be reproduced locally with a
# single command.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "== tier 1: build + full test suite =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== examples (end-to-end API walkthroughs) =="
for ex in quickstart fault_diagnosis custom_algorithm multiport_word \
          online_test repair_flow soc_schedule; do
  echo "-- ${ex}"
  ./build/examples/"${ex}" > /dev/null
done

echo "== self-checking benches (determinism + scheduling gates included) =="
./build/bench/bench_fault_coverage
./build/bench/bench_qualifier
./build/bench/bench_soc_schedule

echo "== tsan: parallel campaign engine + soc scheduler =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "${JOBS}" --target test_campaign --target test_soc
./build-tsan/tests/test_campaign
./build-tsan/tests/test_soc

echo "== ci.sh: all green =="
